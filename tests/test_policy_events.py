"""Tests for the transplant policy and the scheduled-events service."""

import pytest

from repro.errors import OrchestratorError
from repro.guest.drivers import PassthroughDriver
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.transplant import HyperTP
from repro.orchestrator.policy import Mechanism, TransplantPolicy
from repro.orchestrator.scheduled_events import (
    AZURE_MAINTENANCE_BOUND_S,
    EventState,
    EventType,
    ScheduledEventsService,
)


class TestScheduledEvents:
    def test_post_and_poll(self):
        service = ScheduledEventsService(notice_s=900.0)
        event = service.post("vm0", EventType.FREEZE, now=100.0,
                             expected_duration_s=2.0)
        assert event.not_before == 1000.0
        assert service.poll("vm0") == [event]
        assert service.poll("other") == []

    def test_freeze_over_bound_rejected(self):
        service = ScheduledEventsService()
        with pytest.raises(OrchestratorError, match="maintenance bound"):
            service.post("vm0", EventType.FREEZE, now=0.0,
                         expected_duration_s=AZURE_MAINTENANCE_BOUND_S + 1)

    def test_redeploy_may_exceed_bound(self):
        # Migrations take minutes but the VM barely pauses.
        service = ScheduledEventsService()
        event = service.post("vm0", EventType.REDEPLOY, now=0.0,
                             expected_duration_s=120.0)
        assert event.event_type is EventType.REDEPLOY

    def test_cannot_start_before_notice(self):
        service = ScheduledEventsService(notice_s=900.0)
        event = service.post("vm0", EventType.FREEZE, now=0.0,
                             expected_duration_s=2.0)
        with pytest.raises(OrchestratorError, match="notice"):
            service.start(event.event_id, now=100.0)
        service.start(event.event_id, now=901.0)

    def test_ack_waives_notice(self):
        service = ScheduledEventsService(notice_s=900.0)
        event = service.post("vm0", EventType.FREEZE, now=0.0,
                             expected_duration_s=2.0)
        service.acknowledge(event.event_id)
        started = service.start(event.event_id, now=1.0, require_ack=True)
        assert started.state is EventState.STARTED

    def test_require_ack_enforced(self):
        service = ScheduledEventsService(notice_s=0.0)
        event = service.post("vm0", EventType.FREEZE, now=0.0,
                             expected_duration_s=2.0)
        with pytest.raises(OrchestratorError, match="not acknowledged"):
            service.start(event.event_id, now=10.0, require_ack=True)

    def test_lifecycle(self):
        service = ScheduledEventsService(notice_s=0.0)
        event = service.post("vm0", EventType.FREEZE, now=0.0,
                             expected_duration_s=2.0)
        service.start(event.event_id, now=0.0)
        service.complete(event.event_id)
        assert event.state is EventState.COMPLETED
        assert service.poll("vm0") == []
        with pytest.raises(OrchestratorError):
            service.complete(event.event_id)

    def test_cancel(self):
        service = ScheduledEventsService(notice_s=0.0)
        event = service.post("vm0", EventType.FREEZE, now=0.0,
                             expected_duration_s=2.0)
        service.cancel(event.event_id)
        assert event.state is EventState.CANCELLED
        with pytest.raises(OrchestratorError):
            service.start(event.event_id, now=0.0)

    def test_history(self):
        service = ScheduledEventsService(notice_s=0.0)
        service.post("vm0", EventType.FREEZE, 0.0, 1.0)
        service.post("vm1", EventType.REDEPLOY, 0.0, 60.0)
        assert len(service.history()) == 2
        assert len(service.history("vm0")) == 1


class TestTransplantPolicy:
    def test_tolerant_vms_ride_inplace(self, xen_host_factory):
        machine = xen_host_factory(vm_count=3)
        policy = TransplantPolicy()  # default: 30 s tolerance
        plan = policy.plan_host(machine, HypervisorKind.KVM)
        assert len(plan.by_mechanism(Mechanism.INPLACE)) == 3
        assert plan.predicted_inplace_downtime_s < 5.0

    def test_strict_vm_migrates(self, xen_host_factory):
        machine = xen_host_factory(vm_count=2)
        names = sorted(d.vm.name
                       for d in machine.hypervisor.domains.values())
        policy = TransplantPolicy(tolerances_s={names[0]: 0.5})
        plan = policy.plan_host(machine, HypervisorKind.KVM)
        assert plan.by_mechanism(Mechanism.MIGRATION) == [names[0]]
        assert plan.by_mechanism(Mechanism.INPLACE) == [names[1]]

    def test_passthrough_vm_is_pinned(self, xen_host_factory):
        machine = xen_host_factory(vm_count=1)
        vm = next(iter(machine.hypervisor.domains.values())).vm
        vm.attach_device(PassthroughDriver("vf0"))
        # Even with zero tolerance, it cannot migrate.
        policy = TransplantPolicy(tolerances_s={vm.name: 0.0})
        plan = policy.plan_host(machine, HypervisorKind.KVM)
        assert plan.by_mechanism(Mechanism.PINNED) == [vm.name]

    def test_kvm_to_xen_prediction_is_larger(self, xen_host_factory,
                                             kvm_host_factory):
        policy = TransplantPolicy()
        xen_machine = xen_host_factory()
        kvm_machine = kvm_host_factory(vm_count=1)
        to_kvm = policy.predict_inplace_downtime_s(xen_machine,
                                                   HypervisorKind.KVM)
        to_xen = policy.predict_inplace_downtime_s(kvm_machine,
                                                   HypervisorKind.XEN)
        assert to_xen > to_kvm

    def test_prediction_tracks_actual(self, xen_host_factory):
        machine = xen_host_factory(vm_count=4, memory_gib=2.0)
        policy = TransplantPolicy()
        predicted = policy.predict_inplace_downtime_s(machine,
                                                      HypervisorKind.KVM)
        actual = HyperTP().inplace(machine, HypervisorKind.KVM,
                                   SimClock()).downtime_s
        assert predicted == pytest.approx(actual, rel=0.05)

    def test_apply_to_configs_feeds_transplant_host(self, xen_host_factory,
                                                    kvm_host_factory,
                                                    fabric):
        machine = xen_host_factory(vm_count=2)
        names = sorted(d.vm.name
                       for d in machine.hypervisor.domains.values())
        policy = TransplantPolicy(tolerances_s={names[0]: 0.0})
        plan = policy.apply_to_configs(machine, HypervisorKind.KVM)
        assert plan.by_mechanism(Mechanism.MIGRATION) == [names[0]]

        spare = kvm_host_factory(name="policy-spare")
        fabric.connect(machine, spare)
        report = HyperTP().transplant_host(
            machine, HypervisorKind.KVM, fabric=fabric, spare=spare,
        )
        assert report.migrated_count == 1
        assert report.migrated[0].vm_name == names[0]
        assert report.inplace_count == 1

    def test_negative_tolerance_rejected(self):
        with pytest.raises(OrchestratorError):
            TransplantPolicy(default_tolerance_s=-1.0)
