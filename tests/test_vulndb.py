"""Tests for the vulnerability database, analyses, timelines and advisor."""

import pytest

from repro.errors import NoSafeHypervisorError, VulnDBError
from repro.vulndb.advisor import TransplantAdvisor
from repro.vulndb.analysis import (
    category_breakdown,
    common_share,
    totals,
    yearly_counts,
)
from repro.vulndb.cve import (
    CVERecord,
    Severity,
    cvss_v2_base_score,
    severity_for_score,
)
from repro.vulndb.data import TABLE1_COUNTS, load_default_database
from repro.vulndb.timeline import window_statistics, windows_for


@pytest.fixture(scope="module")
def db():
    return load_default_database()


class TestCVSS:
    def test_severity_bands_match_paper(self):
        assert severity_for_score(7.0) is Severity.CRITICAL
        assert severity_for_score(10.0) is Severity.CRITICAL
        assert severity_for_score(6.9) is Severity.MEDIUM
        assert severity_for_score(4.0) is Severity.MEDIUM
        assert severity_for_score(3.9) is Severity.LOW

    def test_out_of_range_rejected(self):
        with pytest.raises(VulnDBError):
            severity_for_score(11.0)

    def test_cvss_v2_full_impact_network_vector(self):
        # AV:N/AC:L/Au:N/C:C/I:C/A:C is the canonical 10.0.
        assert cvss_v2_base_score("AV:N/AC:L/Au:N/C:C/I:C/A:C") == 10.0

    def test_cvss_v2_no_impact_is_zero(self):
        assert cvss_v2_base_score("AV:N/AC:L/Au:N/C:N/I:N/A:N") == 0.0

    def test_cvss_v2_partial_dos(self):
        # Local DoS, e.g. the #AC/#DB exception flaws: around 4.7-4.9.
        score = cvss_v2_base_score("AV:L/AC:L/Au:N/C:N/I:N/A:C")
        assert 4.0 <= score < 7.0

    def test_bad_vector_rejected(self):
        with pytest.raises(VulnDBError):
            cvss_v2_base_score("AV:N/AC:L")
        with pytest.raises(VulnDBError):
            cvss_v2_base_score("AV:X/AC:L/Au:N/C:C/I:C/A:C")

    def test_record_requires_score_or_vector(self):
        with pytest.raises(VulnDBError):
            CVERecord(cve_id="CVE-0-1", year=2020,
                      affected=frozenset({"xen"}), component="pv")

    def test_record_severity_from_vector(self):
        record = CVERecord(
            cve_id="CVE-0-2", year=2020, affected=frozenset({"xen"}),
            component="pv", cvss_vector="AV:N/AC:L/Au:N/C:C/I:C/A:C",
        )
        assert record.severity is Severity.CRITICAL


class TestDataset:
    def test_every_table1_row_matches(self, db):
        for row in yearly_counts(db):
            expected = TABLE1_COUNTS[row.year]
            assert (row.xen_critical, row.xen_medium, row.kvm_critical,
                    row.kvm_medium, row.common_critical,
                    row.common_medium) == expected

    def test_totals(self, db):
        t = totals(db)
        assert t.xen_critical == 55
        assert t.kvm_critical == 13
        assert t.kvm_medium == 56
        assert t.common_critical == 1
        assert t.common_medium == 2
        # Note: the paper's printed Xen-medium total (136) is inconsistent
        # with its own per-year column, which sums to 171.
        assert t.xen_medium == 171

    def test_real_common_cves_present(self, db):
        venom = db.get("CVE-2015-3456")
        assert venom.is_common
        assert venom.component == "qemu"
        assert venom.severity is Severity.CRITICAL
        for cve_id in ("CVE-2015-8104", "CVE-2015-5307"):
            record = db.get(cve_id)
            assert record.is_common
            assert record.severity is Severity.MEDIUM

    def test_common_counts(self, db):
        assert common_share(db) == (1, 2)

    def test_xen_component_shares_near_paper(self, db):
        shares = category_breakdown(db, "xen")
        assert shares["pv"] == pytest.approx(0.384, abs=0.05)
        assert shares["resource-mgmt"] == pytest.approx(0.282, abs=0.05)
        assert shares["hardware"] == pytest.approx(0.153, abs=0.05)

    def test_kvm_component_shares_near_paper(self, db):
        shares = category_breakdown(db, "kvm")
        assert shares["qemu"] == pytest.approx(0.36, abs=0.07)
        assert shares["ioctl"] == pytest.approx(0.27, abs=0.07)

    def test_deterministic(self):
        a = load_default_database()
        b = load_default_database()
        assert [r.cve_id for r in a.all()] == [r.cve_id for r in b.all()]

    def test_unknown_cve_raises(self, db):
        with pytest.raises(VulnDBError):
            db.get("CVE-1999-0001")


class TestTimeline:
    def test_kvm_window_statistics_match_paper(self, db):
        stats = window_statistics(db, "kvm")
        assert stats.count == 24
        assert stats.mean_days == pytest.approx(71, abs=1)
        assert stats.min_days == 8
        assert stats.max_days == 180
        assert stats.over_60_fraction == pytest.approx(0.6, abs=0.05)

    def test_named_endpoint_cves(self, db):
        assert db.get("CVE-2017-12188").days_to_patch == 180
        assert db.get("CVE-2013-0311").days_to_patch == 8
        assert db.get("CVE-2016-6258").days_to_patch == 7

    def test_windows_include_application_delay(self, db):
        windows = windows_for(db, patch_application_days=14)
        assert all(w.total_days == w.days_to_patch_release + 14
                   for w in windows)

    def test_transplant_collapses_window(self, db):
        window = windows_for(db, patch_application_days=14)[0]
        assert window.mitigated_days(transplant_hours=1.0) < 0.1
        assert window.mitigated_days(1.0) < window.total_days

    def test_mitigated_days_clamped_at_total(self, db):
        # Regression: a transplant slower than the patch cycle itself
        # must not report a window *longer* than doing nothing.
        for window in windows_for(db, patch_application_days=2):
            absurd = window.mitigated_days(
                transplant_hours=window.total_days * 24 * 10)
            assert absurd == window.total_days

    def test_negative_delay_rejected(self, db):
        with pytest.raises(VulnDBError):
            windows_for(db, patch_application_days=-1)


class TestAdvisor:
    def test_xen_flaw_recommends_kvm(self, db):
        advisor = TransplantAdvisor(db)
        advice = advisor.advise("CVE-2016-6258", "xen")
        assert advice.transplant_needed
        assert advice.recommended_target == "kvm"

    def test_common_flaw_has_no_safe_target(self, db):
        advisor = TransplantAdvisor(db)
        advice = advisor.advise("CVE-2015-3456", "xen")
        assert advice.recommended_target is None
        with pytest.raises(NoSafeHypervisorError):
            advisor.advise_or_raise("CVE-2015-3456", "xen")

    def test_unaffected_hypervisor_needs_no_transplant(self, db):
        advisor = TransplantAdvisor(db)
        advice = advisor.advise("CVE-2016-6258", "kvm")
        assert not advice.transplant_needed

    def test_medium_flaw_waits_for_patch(self, db):
        advisor = TransplantAdvisor(db)
        advice = advisor.advise("CVE-2015-8104", "xen")
        assert not advice.transplant_needed

    def test_open_cves_block_candidates(self, db):
        advisor = TransplantAdvisor(db)
        kvm_critical = db.affecting("kvm", Severity.CRITICAL)[0]
        advice = advisor.advise("CVE-2016-6258", "xen",
                                open_cves=[kvm_critical.cve_id])
        assert advice.recommended_target is None
        assert "kvm" in advice.rejected

    def test_never_recommends_vulnerable_target(self, db):
        # Property 8 of DESIGN.md: the advisor's pick is always clean.
        advisor = TransplantAdvisor(db)
        for record in db.affecting("xen", Severity.CRITICAL)[:20]:
            advice = advisor.advise(record.cve_id, "xen")
            if advice.recommended_target is not None:
                assert not record.affects(advice.recommended_target)

    def test_transplants_per_year_stay_low(self, db):
        # The feasibility argument: few critical flaws => few transplants.
        advisor = TransplantAdvisor(db)
        per_year = advisor.transplants_per_year("kvm")
        assert sum(per_year.values()) == 13
        assert max(per_year.values()) <= 3

    def test_empty_pool_rejected(self, db):
        with pytest.raises(VulnDBError):
            TransplantAdvisor(db, hypervisor_pool=())

    def test_advise_never_raises_for_any_critical_cve(self, db):
        # Property: ``advise`` is total over the whole dataset — every
        # critical flaw, from either incumbent, yields a well-formed
        # answer (a clean target, or an explicit rejection per candidate).
        advisor = TransplantAdvisor(db)
        for current in ("xen", "kvm"):
            for record in db.affecting(current, Severity.CRITICAL):
                advice = advisor.advise(record.cve_id, current)
                assert advice.transplant_needed
                if advice.recommended_target is not None:
                    assert not record.affects(advice.recommended_target)
                else:
                    candidates = [k for k in advisor.pool if k != current]
                    assert set(advice.rejected) == set(candidates)

    def test_tie_break_is_pool_order(self, db):
        # CVE-2016-6258 is xen-only, so kvm and nova are equally safe:
        # whichever the operator listed first wins, documented behavior.
        first_kvm = TransplantAdvisor(db, hypervisor_pool=("xen", "kvm",
                                                           "nova"))
        assert first_kvm.advise("CVE-2016-6258",
                                "xen").recommended_target == "kvm"
        first_nova = TransplantAdvisor(db, hypervisor_pool=("xen", "nova",
                                                            "kvm"))
        assert first_nova.advise("CVE-2016-6258",
                                 "xen").recommended_target == "nova"
