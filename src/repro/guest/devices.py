"""Virtual platform devices.

These are the architectural platform components the paper's Table 2 maps
between Xen HVM records, UISR and KVM ioctls: LAPIC (per-vCPU), IOAPIC, PIT,
MTRRs and the XSAVE extended state.  Note the deliberate heterogeneity we
reproduce: Xen models a 48-pin IOAPIC while KVM models 24 pins, so the
Xen→KVM conversion must apply a compatibility fixup (§4.2.1).
"""

import random
from dataclasses import dataclass, field
from typing import List, Tuple

XEN_IOAPIC_PINS = 48
KVM_IOAPIC_PINS = 24


@dataclass
class LAPICState:
    """Local APIC state for one vCPU."""

    apic_id: int
    apic_base_msr: int = 0xFEE00900
    task_priority: int = 0
    spurious_vector: int = 0x1FF
    lvt_timer: int = 0x400EC
    lvt_lint0: int = 0x700
    lvt_lint1: int = 0x400
    timer_initial_count: int = 0
    timer_divide: int = 0
    isr: Tuple[int, ...] = (0,) * 8
    irr: Tuple[int, ...] = (0,) * 8

    def registers_view(self) -> Tuple:
        return (
            self.apic_id,
            self.apic_base_msr,
            self.task_priority,
            self.spurious_vector,
            self.lvt_timer,
            self.lvt_lint0,
            self.lvt_lint1,
            self.timer_initial_count,
            self.timer_divide,
            self.isr,
            self.irr,
        )


@dataclass
class IOAPICPin:
    """One IOAPIC redirection-table entry."""

    vector: int = 0
    masked: bool = True
    trigger_level: bool = False
    dest_apic: int = 0

    def as_tuple(self) -> Tuple[int, bool, bool, int]:
        return (self.vector, self.masked, self.trigger_level, self.dest_apic)


@dataclass
class IOAPICState:
    """IOAPIC with a hypervisor-chosen pin count."""

    pins: List[IOAPICPin]
    ioapic_id: int = 0

    @property
    def pin_count(self) -> int:
        return len(self.pins)

    def redirection_view(self) -> Tuple:
        return tuple(p.as_tuple() for p in self.pins)


@dataclass
class PITState:
    """8254 programmable interval timer (3 channels)."""

    channel_counts: Tuple[int, int, int] = (0xFFFF, 0, 0)
    channel_modes: Tuple[int, int, int] = (2, 0, 0)
    speaker_enabled: bool = False

    def view(self) -> Tuple:
        return (self.channel_counts, self.channel_modes, self.speaker_enabled)


@dataclass
class MTRRState:
    """Memory-type range registers (per vCPU architecturally; the paper's
    Table 2 maps Xen's MTRR record to KVM MSRs)."""

    default_type: int = 6  # write-back
    fixed: Tuple[int, ...] = (0x0606060606060606,) * 11
    variable: Tuple[Tuple[int, int], ...] = ()

    def view(self) -> Tuple:
        return (self.default_type, self.fixed, self.variable)


@dataclass
class XSAVEState:
    """Extended processor state area (header + feature blocks)."""

    xstate_bv: int = 0x7
    xcomp_bv: int = 0
    blocks: Tuple[int, ...] = ()

    def view(self) -> Tuple:
        return (self.xstate_bv, self.xcomp_bv, self.blocks)


@dataclass
class PlatformState:
    """All shared (non-per-vCPU) platform devices plus per-vCPU LAPICs."""

    lapics: List[LAPICState] = field(default_factory=list)
    ioapic: IOAPICState = field(default_factory=lambda: IOAPICState(pins=[]))
    pit: PITState = field(default_factory=PITState)
    mtrr: MTRRState = field(default_factory=MTRRState)
    xsave: List[XSAVEState] = field(default_factory=list)

    def architectural_view(self) -> Tuple:
        return (
            tuple(l.registers_view() for l in self.lapics),
            self.ioapic.redirection_view(),
            self.pit.view(),
            self.mtrr.view(),
            tuple(x.view() for x in self.xsave),
        )


def make_default_platform(
    vcpus: int, ioapic_pins: int = XEN_IOAPIC_PINS, seed: int = 0
) -> PlatformState:
    """Build a deterministic, plausibly-populated platform for ``vcpus``.

    Only the low 16 IOAPIC pins carry live routes (legacy ISA IRQs), matching
    the paper's observation that dropping pins 24-47 during Xen→KVM
    transplant did not affect the tested applications.
    """
    rng = random.Random(seed ^ 0x9E3779B9)
    lapics = [
        LAPICState(
            apic_id=i,
            task_priority=0,
            timer_initial_count=rng.getrandbits(24),
            timer_divide=0b1011,
        )
        for i in range(vcpus)
    ]
    pins = []
    for pin in range(ioapic_pins):
        if pin < 16:
            pins.append(
                IOAPICPin(
                    vector=0x30 + pin,
                    masked=(pin in (0, 2)),
                    trigger_level=pin >= 8,
                    dest_apic=pin % max(1, vcpus),
                )
            )
        else:
            pins.append(IOAPICPin())
    # 512-byte AVX/AVX-512 extended region per vCPU.
    xsave = [
        XSAVEState(blocks=tuple(rng.getrandbits(64) for _ in range(64)))
        for _ in range(vcpus)
    ]
    variable_mtrr = ((0x00000000C0000000, 0xFFFFFFFFC0000800),)
    return PlatformState(
        lapics=lapics,
        ioapic=IOAPICState(pins=pins),
        pit=PITState(),
        mtrr=MTRRState(variable=variable_mtrr),
        xsave=xsave,
    )
