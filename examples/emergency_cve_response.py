#!/usr/bin/env python3
"""Emergency CVE response across a small datacenter (the Fig. 1b story).

A critical Xen vulnerability drops.  The advisor checks the operator's
hypervisor repertoire for a safe target, the Nova-style orchestrator rolls
the transplant across every affected host (evacuating downtime-intolerant
VMs first), and once the patch ships the fleet transplants back.
"""

from repro import (
    DatacenterAPI,
    HypervisorKind,
    M1_SPEC,
    NovaCompute,
    SimClock,
    TransplantAdvisor,
    VMConfig,
    load_default_database,
)
from repro.bench import make_kvm_host, make_xen_host
from repro.hw.network import Fabric
from repro.vulndb.timeline import window_statistics

GIB = 1024 ** 3
TRIGGER = "CVE-2016-6258"  # real Xen PV flaw; patch took 7 days


def main():
    db = load_default_database()

    stats = window_statistics(db, "kvm")
    print("Why transplant?  Measured vulnerability windows (KVM sample):")
    print(f"  n={stats.count}, mean {stats.mean_days:.0f} days, "
          f"max {stats.max_days} days, {stats.over_60_fraction:.0%} over "
          f"60 days — attackers have plenty of time.\n")

    # The fleet: three Xen hosts; one carries a VM that cannot tolerate
    # InPlaceTP downtime, so a KVM spare stands by for evacuation.
    fabric = Fabric()
    nova = NovaCompute(fabric=fabric)
    for i in range(3):
        nova.register_host(make_xen_host(M1_SPEC, vm_count=3,
                                         name=f"compute-{i}"))
    fragile_driver = nova.driver_for("compute-0")
    fragile_driver.connection.hypervisor.create_vm(VMConfig(
        "latency-critical", vcpus=1, memory_bytes=GIB,
        inplace_compatible=False,
    ))
    spare = make_kvm_host(M1_SPEC, name="spare-0")
    nova.register_host(spare)
    for i in range(3):
        fabric.connect(nova.driver_for(f"compute-{i}").machine, spare)

    advisor = TransplantAdvisor(db)
    api = DatacenterAPI(nova, advisor)

    print(f"{TRIGGER} disclosed: {db.get(TRIGGER).description}")
    clock = SimClock()
    report = api.respond_to_cve(TRIGGER, clock=clock,
                                evacuation_host="spare-0")

    target = report.advice.recommended_target
    print(f"Advisor verdict: transplant to {target!r} "
          f"(rejected: {report.advice.rejected or 'none'})")
    print(f"Hosts upgraded: {report.hosts_upgraded} "
          f"in {report.total_s:.1f} simulated seconds")
    for host, result in report.per_host.items():
        evacuated = [r.vm_name for r in result.migrated_away]
        print(f"  {host}: inplace VMs={result.inplace.vm_count}, "
              f"evacuated={evacuated or '-'}, "
              f"worst disruption {result.vm_disruption_s * 1000:.0f} ms"
              if result.vm_disruption_s < 1 else
              f"  {host}: inplace VMs={result.inplace.vm_count}, "
              f"evacuated={evacuated or '-'}, "
              f"worst disruption {result.vm_disruption_s:.2f} s")
    print(f"Worst VM disruption fleet-wide: "
          f"{report.worst_vm_disruption_s:.2f} s "
          f"(Azure's maintenance bound: 30 s)")

    # Seven days later the Xen patch ships — transplant the compute hosts
    # back (the spare keeps running KVM; it still hosts the evacuated VM).
    reverted = api.revert_after_patch(
        HypervisorKind.XEN, hosts=[f"compute-{i}" for i in range(3)],
        clock=SimClock(),
    )
    print(f"\nPatch shipped: {len(reverted)} hosts transplanted back to Xen.")
    for host in sorted(nova.database):
        print(f"  {host}: now {nova.database[host].hypervisor_type} "
              f"({nova.database[host].upgrades} upgrades)")

    # What would the exposure have been without HyperTP?
    print("\nExposure comparison for this flaw:")
    print("  traditional: 7 days to patch + operator rollout window")
    print(f"  with HyperTP: {report.total_s:.0f} simulated seconds of "
          f"reconfiguration, {report.worst_vm_disruption_s:.1f} s worst "
          f"VM disruption")


if __name__ == "__main__":
    main()
