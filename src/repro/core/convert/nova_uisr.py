"""NOVA <-> UISR converters.

The entirety of what "adding a hypervisor to the repertoire" costs under
the UISR design (§3.1): this one module, registered once.  Neither the Xen
nor the KVM code knows NOVA exists, yet all six transplant directions work.
"""

from typing import Optional

from repro.errors import UISRError
from repro.hypervisors.base import Domain, HypervisorKind
from repro.hypervisors.nova import formats
from repro.hypervisors.nova.hypervisor import NOVAHypervisor
from repro.core.convert.compat import apply_platform_fixups
from repro.core.convert.verify import verify_restore_target
from repro.core.convert.xen_to_uisr import _device_states, _memory_map_for
from repro.core.uisr.format import (
    UISR_VERSION,
    UISRPlatform,
    UISRVCpu,
    UISRVMState,
)


def to_uisr_nova(hypervisor: NOVAHypervisor, domain: Domain,
                 pram_file: Optional[str] = None) -> UISRVMState:
    """Translate a NOVA domain's VM_i State into UISR."""
    if hypervisor.kind is not HypervisorKind.NOVA:
        raise UISRError(f"to_uisr_nova called on {hypervisor.kind.value}")
    blob = hypervisor.save_platform_state(domain)
    vcpus, platform = formats.decode_snapshot(blob)
    return UISRVMState(
        version=UISR_VERSION,
        vm_name=domain.vm.name,
        vcpu_count=domain.vm.config.vcpus,
        memory_bytes=domain.vm.image.size_bytes,
        source_hypervisor=HypervisorKind.NOVA.value,
        vcpus=[UISRVCpu(v) for v in vcpus],
        platform=UISRPlatform(platform),
        memory_map=_memory_map_for(domain, pram_file),
        devices=_device_states(domain),
    )


def from_uisr_nova(hypervisor: NOVAHypervisor, domain: Domain,
                   state: UISRVMState, pram_fs=None) -> Domain:
    """Restore a UISR document into a NOVA domain."""
    if hypervisor.kind is not HypervisorKind.NOVA:
        raise UISRError(f"from_uisr_nova called on {hypervisor.kind.value}")
    verify_restore_target(
        domain,
        vm_name=state.vm_name,
        vcpu_count=state.vcpu_count,
        memory_bytes=state.memory_bytes,
        devices=state.devices,
    )
    domain.provenance = (state.source_hypervisor, state.version)

    if state.memory_map.by_reference:
        if pram_fs is None:
            raise UISRError(
                f"UISR {state.vm_name} references PRAM file "
                f"{state.memory_map.pram_file!r} but no PRAM fs was provided"
            )
        gfn_to_mfn = pram_fs.layout_of(state.memory_map.pram_file)
        domain.vm.image.adopt_mapping(gfn_to_mfn)

    platform = apply_platform_fixups(
        state.platform.platform,
        target_ioapic_pins=formats.NOVA_IOAPIC_PINS,
    )
    blob = formats.encode_snapshot(
        [record.vcpu for record in state.vcpus], platform
    )
    hypervisor.load_platform_state(domain, blob)
    domain.npt = hypervisor.build_npt(domain.vm)
    return domain
