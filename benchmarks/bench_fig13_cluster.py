"""Fig. 13 — cluster upgrade: migrations and time gain vs InPlaceTP share.

Paper anchors on the 10-host x 10-VM cluster: 154 migrations at 0 %
compatibility; 109 (-17 % time) at 20 %; ~73 % fewer migrations / 68 % less
time at 60 %; 25 migrations / ~80 % gain at 80 % (3 min 54 s vs up to
19 min all-migration).
"""

import argparse

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import cluster_fraction_cell
from repro.cluster.upgrade import UpgradeCampaign
from repro.par import ParallelRunner

FRACTIONS = [0.0, 0.2, 0.4, 0.6, 0.8]
PAPER_MIGRATIONS = {0.0: 154, 0.2: 109, 0.6: 42, 0.8: 25}
PAPER_GAINS = {0.2: 0.17, 0.6: 0.68, 0.8: 0.80}


def run():
    campaign = UpgradeCampaign()
    results = campaign.sweep(FRACTIONS)
    gains = UpgradeCampaign.time_gains(results)
    rows = []
    for result, gain in zip(results, gains):
        fraction = result.inplace_fraction
        rows.append([
            f"{fraction:.0%}",
            result.migration_count,
            PAPER_MIGRATIONS.get(fraction, "-"),
            result.total_minutes,
            f"{gain:.0%}",
            f"{PAPER_GAINS[fraction]:.0%}" if fraction in PAPER_GAINS else "-",
        ])
    return rows


HEADERS = ["InPlaceTP share", "migrations", "paper", "total (min)",
           "time gain", "paper gain"]


def test_fig13_cluster(benchmark):
    rows = benchmark(run)
    print_experiment("Fig. 13", "cluster upgrade vs InPlaceTP share",
                     format_table(HEADERS, rows))


def run_parallel(workers=1):
    """The same rows as :func:`run`, one worker cell per fraction.

    Cells return absolute totals only; the time *gain* is relative to
    the all-migration baseline, so it is recomputed here once every
    cell's total is in — exactly how the serial sweep derives it.
    """
    cells = [{"fraction": fraction} for fraction in FRACTIONS]
    runner = ParallelRunner(workers=workers, task_timeout_s=600.0)
    results = runner.map_tasks(cluster_fraction_cell, cells,
                               labels=[f"frac{c['fraction']:g}"
                                       for c in cells])
    baseline_s = results[0]["total_s"]
    rows = []
    for result in results:
        fraction = result["fraction"]
        gain = 1.0 - result["total_s"] / baseline_s
        rows.append([
            f"{fraction:.0%}",
            result["migration_count"],
            PAPER_MIGRATIONS.get(fraction, "-"),
            result["total_minutes"],
            f"{gain:.0%}",
            f"{PAPER_GAINS[fraction]:.0%}" if fraction in PAPER_GAINS else "-",
        ])
    return rows


def test_fig13_parallel_matches_serial():
    assert run_parallel(workers=1) == run()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()
    print_experiment("Fig. 13", "cluster upgrade vs InPlaceTP share",
                     format_table(HEADERS, run_parallel(args.workers)))
