"""Whole-cluster upgrade campaigns (Fig. 13).

Runs the §5.4 experiment end to end for a given InPlaceTP-compatible share:
build the 10x10 cluster, plan the rolling upgrade with the BtrPlace-style
planner, execute it, and report migration counts and total time.  Sweeping
the share reproduces both Fig. 13 panels (migration count, time gain).
"""

from dataclasses import dataclass
from typing import List

from repro.cluster.btrplace import BtrPlacePlanner
from repro.cluster.executor import ExecutionResult, PlanExecutor
from repro.cluster.model import build_paper_cluster
from repro.cluster.plan import ReconfigurationPlan


@dataclass
class CampaignResult:
    """One sweep point of Fig. 13."""

    inplace_fraction: float
    migration_count: int
    total_s: float

    @property
    def total_minutes(self) -> float:
        return self.total_s / 60.0


class UpgradeCampaign:
    """Parameterised §5.4 campaign."""

    def __init__(self, hosts: int = 10, vms_per_host: int = 10,
                 group_size: int = 2, seed: int = 42):
        self.hosts = hosts
        self.vms_per_host = vms_per_host
        self.group_size = group_size
        self.seed = seed
        self.executor = PlanExecutor()

    def run(self, inplace_fraction: float) -> CampaignResult:
        cluster = build_paper_cluster(
            hosts=self.hosts, vms_per_host=self.vms_per_host,
            inplace_fraction=inplace_fraction, seed=self.seed,
        )
        planner = BtrPlacePlanner(cluster, group_size=self.group_size)
        plan: ReconfigurationPlan = planner.plan(apply=True)
        result: ExecutionResult = self.executor.execute(plan)
        return CampaignResult(
            inplace_fraction=inplace_fraction,
            migration_count=result.migration_count,
            total_s=result.total_s,
        )

    def sweep(self, fractions: List[float]) -> List[CampaignResult]:
        return [self.run(f) for f in fractions]

    @staticmethod
    def time_gains(results: List[CampaignResult]) -> List[float]:
        """Per-point gain relative to the first (baseline) result."""
        if not results:
            return []
        baseline = results[0].total_s
        return [1.0 - r.total_s / baseline for r in results]
