"""Attack-surface analysis (§2.1's structural argument).

The paper's case for transplant rests on an observation: most
vulnerabilities live in *implementation-specific* interfaces — Xen's PV
hypercalls/event channels and toolstack, KVM's ioctl surface — and only
components literally shared between hypervisors (QEMU, hardware behaviour)
produce common flaws.  This module makes that argument computable: an
interface inventory per hypervisor, the sharing relation between them, and
the derived metric HyperTP cares about — the fraction of a hypervisor's
flaws that a transplant to some other repertoire member escapes.
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.errors import VulnDBError
from repro.vulndb.cve import Severity
from repro.vulndb.data import VulnerabilityDatabase


@dataclass(frozen=True)
class Interface:
    """One attack-surface component of a hypervisor stack."""

    name: str  # matches CVERecord.component values
    description: str
    shared_with: FrozenSet[str]  # other hypervisors exposing the same code


# Which vulnerability components each hypervisor exposes, and whether the
# underlying code is shared.  QEMU is literally the same codebase on Xen
# and KVM deployments; "hardware" flaws (Spectre-class, exception handling)
# hit every hypervisor riding the same silicon.
SURFACES: Dict[str, List[Interface]] = {
    "xen": [
        Interface("pv", "PV hypercalls, event channels, grant tables",
                  frozenset()),
        Interface("resource-mgmt", "CPU scheduler, memory ballooning",
                  frozenset()),
        Interface("hardware", "VT-x state handling, CPU errata",
                  frozenset({"kvm", "nova"})),
        Interface("toolstack", "libxl/xl management plane", frozenset()),
        Interface("qemu", "device emulation (QEMU)", frozenset({"kvm"})),
    ],
    "kvm": [
        Interface("ioctl", "/dev/kvm ioctl surface", frozenset()),
        Interface("resource-mgmt", "CFS interaction, mmu notifiers",
                  frozenset()),
        Interface("hardware", "VT-x state handling, CPU errata",
                  frozenset({"xen", "nova"})),
        Interface("qemu", "device emulation (QEMU)", frozenset({"xen"})),
    ],
    "nova": [
        # A microhypervisor: no QEMU, no PV layer; only the hardware
        # surface plus its small IPC interface.
        Interface("ipc", "capability invocation surface", frozenset()),
        Interface("hardware", "VT-x state handling, CPU errata",
                  frozenset({"xen", "kvm"})),
    ],
}


def interfaces_of(kind: str) -> List[Interface]:
    try:
        return SURFACES[kind]
    except KeyError:
        raise VulnDBError(f"no surface inventory for {kind!r}") from None


def shared_components(a: str, b: str) -> FrozenSet[str]:
    """Component names whose code both hypervisors expose."""
    return frozenset(
        interface.name for interface in interfaces_of(a)
        if b in interface.shared_with
    )


@dataclass
class EscapeReport:
    """How much of a hypervisor's flaw population a transplant escapes."""

    current: str
    target: str
    total_flaws: int
    escaped_flaws: int
    shared: FrozenSet[str]

    @property
    def escape_fraction(self) -> float:
        return self.escaped_flaws / self.total_flaws if self.total_flaws else 1.0


def escape_report(db: VulnerabilityDatabase, current: str, target: str,
                  severity: Optional[Severity] = None) -> EscapeReport:
    """Of ``current``'s recorded flaws, how many does moving to ``target``
    escape?  A flaw follows you only if it lives in a shared component *and*
    the record actually marks the target as affected."""
    records = db.affecting(current, severity)
    shared = shared_components(current, target)
    escaped = sum(1 for r in records if not r.affects(target))
    return EscapeReport(
        current=current,
        target=target,
        total_flaws=len(records),
        escaped_flaws=escaped,
        shared=shared,
    )


def per_interface_exposure(db: VulnerabilityDatabase, kind: str,
                           severity: Optional[Severity] = None) -> Dict[str, int]:
    """Flaw counts per interface, restricted to the inventory."""
    names = {i.name for i in interfaces_of(kind)}
    counts = {name: 0 for name in sorted(names)}
    for record in db.affecting(kind, severity):
        if record.component in counts:
            counts[record.component] += 1
    return counts


def repertoire_coverage(db: VulnerabilityDatabase,
                        pool: Sequence[str]) -> Dict[str, float]:
    """For each pool member: the worst-case escape fraction offered by the
    *best* alternative in the pool (the paper's 'as long as an alternative
    exists' guarantee, quantified)."""
    coverage = {}
    for current in pool:
        best = 0.0
        for target in pool:
            if target == current:
                continue
            best = max(best,
                       escape_report(db, current, target).escape_fraction)
        coverage[current] = best
    return coverage
