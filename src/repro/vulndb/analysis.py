"""Aggregations over the vulnerability database (§2.1 / Table 1)."""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.vulndb.cve import Severity
from repro.vulndb.data import KVM, XEN, VulnerabilityDatabase


@dataclass(frozen=True)
class YearRow:
    """One Table 1 row."""

    year: int
    xen_critical: int
    xen_medium: int
    kvm_critical: int
    kvm_medium: int
    common_critical: int
    common_medium: int


def yearly_counts(db: VulnerabilityDatabase) -> List[YearRow]:
    """Regenerate Table 1 from the record store."""
    years = sorted({r.year for r in db.all()})
    rows = []
    for year in years:
        records = db.in_year(year)
        def count(kind: str, severity: Severity) -> int:
            return sum(1 for r in records
                       if r.affects(kind) and r.severity is severity)
        def count_common(severity: Severity) -> int:
            return sum(1 for r in records
                       if r.is_common and r.severity is severity)
        rows.append(YearRow(
            year=year,
            xen_critical=count(XEN, Severity.CRITICAL),
            xen_medium=count(XEN, Severity.MEDIUM),
            kvm_critical=count(KVM, Severity.CRITICAL),
            kvm_medium=count(KVM, Severity.MEDIUM),
            common_critical=count_common(Severity.CRITICAL),
            common_medium=count_common(Severity.MEDIUM),
        ))
    return rows


def totals(db: VulnerabilityDatabase) -> YearRow:
    """The Table 1 "Total" row."""
    rows = yearly_counts(db)
    return YearRow(
        year=0,
        xen_critical=sum(r.xen_critical for r in rows),
        xen_medium=sum(r.xen_medium for r in rows),
        kvm_critical=sum(r.kvm_critical for r in rows),
        kvm_medium=sum(r.kvm_medium for r in rows),
        common_critical=sum(r.common_critical for r in rows),
        common_medium=sum(r.common_medium for r in rows),
    )


def category_breakdown(db: VulnerabilityDatabase, kind: str,
                       severity: Severity = Severity.CRITICAL
                       ) -> Dict[str, float]:
    """Per-component share of a hypervisor's vulnerabilities (§2.1)."""
    records = db.affecting(kind, severity)
    if not records:
        return {}
    by_component: Dict[str, int] = {}
    for record in records:
        by_component[record.component] = by_component.get(record.component, 0) + 1
    total = len(records)
    return {comp: count / total
            for comp, count in sorted(by_component.items())}


def common_share(db: VulnerabilityDatabase) -> Tuple[int, int]:
    """(common critical, common medium) counts over the whole period."""
    return (
        len(db.common(Severity.CRITICAL)),
        len(db.common(Severity.MEDIUM)),
    )
