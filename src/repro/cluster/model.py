"""Cluster model for the §5.4 experiment.

The paper's testbed: 10 physical hosts, each with 2x Xeon E5-2630 v3 and
96 GB RAM on a 10 Gbps network, each running 10 VMs (1 vCPU, 4 GB).  The VM
mix: 30 % video-streaming servers, 30 % CPU+memory-intensive, 40 % idle.

This module models placement abstractly (names and sizes) so the planner
can reason about thousands of VMs; the executor maps plan actions onto the
full simulated machinery when timing is needed.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ClusterError

GIB = 1024 ** 3


class WorkloadKind(enum.Enum):
    """The §5.4 VM mix; dirty rates drive per-migration times."""

    IDLE = "idle"
    CPU_MEMORY = "cpu-memory"
    STREAMING = "streaming"

    @property
    def dirty_rate_bytes_s(self) -> float:
        """Page-dirtying rate during pre-copy (drives migration length)."""
        return {
            WorkloadKind.IDLE: 1 << 20,            # ~1 MB/s
            WorkloadKind.CPU_MEMORY: 48 << 20,     # ~48 MB/s
            WorkloadKind.STREAMING: 96 << 20,      # ~96 MB/s
        }[self]


@dataclass
class ClusterVM:
    """One VM in the cluster plan."""

    name: str
    vcpus: int = 1
    memory_bytes: int = 4 * GIB
    workload: WorkloadKind = WorkloadKind.IDLE
    inplace_compatible: bool = False
    node: Optional[str] = None  # current placement


@dataclass
class ClusterNode:
    """One physical host in the cluster plan."""

    name: str
    capacity_vms: int = 22  # 96 GB / 4 GB minus host reservation
    hypervisor: str = "xen"
    upgraded: bool = False
    vms: List[str] = field(default_factory=list)

    @property
    def free_slots(self) -> int:
        return self.capacity_vms - len(self.vms)


class Cluster:
    """Placement state: nodes, VMs, and the mutation surface planners use."""

    def __init__(self):
        self.nodes: Dict[str, ClusterNode] = {}
        self.vms: Dict[str, ClusterVM] = {}

    # -- construction -------------------------------------------------------

    def add_node(self, node: ClusterNode) -> None:
        if node.name in self.nodes:
            raise ClusterError(f"duplicate node {node.name}")
        self.nodes[node.name] = node

    def add_vm(self, vm: ClusterVM, node_name: str) -> None:
        if vm.name in self.vms:
            raise ClusterError(f"duplicate VM {vm.name}")
        node = self._node(node_name)
        if node.free_slots <= 0:
            raise ClusterError(f"node {node_name} is full")
        vm.node = node_name
        node.vms.append(vm.name)
        self.vms[vm.name] = vm

    # -- queries ---------------------------------------------------------------

    def _node(self, name: str) -> ClusterNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise ClusterError(f"unknown node {name!r}") from None

    def _vm(self, name: str) -> ClusterVM:
        try:
            return self.vms[name]
        except KeyError:
            raise ClusterError(f"unknown VM {name!r}") from None

    def vms_on(self, node_name: str) -> List[ClusterVM]:
        return [self._vm(v) for v in self._node(node_name).vms]

    def total_vms(self) -> int:
        return len(self.vms)

    # -- mutations (used by plan execution) -----------------------------------------

    def move_vm(self, vm_name: str, dest_node: str) -> None:
        vm = self._vm(vm_name)
        dest = self._node(dest_node)
        if dest.free_slots <= 0:
            raise ClusterError(
                f"cannot move {vm_name} to {dest_node}: node full"
            )
        if vm.node is not None:
            self._node(vm.node).vms.remove(vm_name)
        dest.vms.append(vm_name)
        vm.node = dest_node

    def mark_upgraded(self, node_name: str, new_hypervisor: str) -> None:
        node = self._node(node_name)
        node.upgraded = True
        node.hypervisor = new_hypervisor


def build_paper_cluster(hosts: int = 10, vms_per_host: int = 10,
                        inplace_fraction: float = 0.0,
                        seed: int = 42) -> Cluster:
    """The §5.4 testbed with a chosen share of InPlaceTP-compatible VMs.

    Compatibility is assigned round-robin across the workload mix so every
    class participates proportionally (the paper varies the share without
    stating a skew).
    """
    import random

    if not 0.0 <= inplace_fraction <= 1.0:
        raise ClusterError(f"bad inplace fraction {inplace_fraction}")
    rng = random.Random(seed)
    cluster = Cluster()
    for h in range(hosts):
        cluster.add_node(ClusterNode(name=f"node{h:02d}"))

    # 30% streaming / 30% cpu+memory / 40% idle, deterministic per seed.
    kinds = []
    total = hosts * vms_per_host
    kinds.extend([WorkloadKind.STREAMING] * round(total * 0.3))
    kinds.extend([WorkloadKind.CPU_MEMORY] * round(total * 0.3))
    kinds.extend([WorkloadKind.IDLE] * (total - len(kinds)))
    rng.shuffle(kinds)

    compatible_count = round(total * inplace_fraction)
    flags = [True] * compatible_count + [False] * (total - compatible_count)
    rng.shuffle(flags)

    index = 0
    for h in range(hosts):
        for _ in range(vms_per_host):
            cluster.add_vm(
                ClusterVM(
                    name=f"vm{index:03d}",
                    workload=kinds[index],
                    inplace_compatible=flags[index],
                ),
                node_name=f"node{h:02d}",
            )
            index += 1
    return cluster
