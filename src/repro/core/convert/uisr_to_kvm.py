"""UISR -> KVM restoration (the ``from_uisr_*`` side for KVM).

On restore, the kvmtool process translates each platform device's UISR state
into KVM's internal formats and issues the corresponding ioctls (§4.2.1).
The IOAPIC compat fixup happens here — KVM's 24-pin model cannot accept
Xen's 48-pin table.

Restoration returns the domain the state landed in, after re-pointing the
guest memory: for an InPlaceTP (by-reference map) the frames are looked up
in the PRAM filesystem and mmap'd into the VMM; for MigrationTP (by-value
map) the destination already owns freshly-copied pages and the map is used
for verification only.
"""

from repro.errors import UISRError
from repro.guest.devices import KVM_IOAPIC_PINS
from repro.hypervisors.base import Domain, HypervisorKind
from repro.hypervisors.kvm import formats
from repro.hypervisors.kvm.hypervisor import KVMHypervisor
from repro.core.convert.compat import apply_platform_fixups
from repro.core.convert.verify import verify_restore_target
from repro.core.uisr.format import UISRVMState


def from_uisr_kvm(hypervisor: KVMHypervisor, domain: Domain,
                  state: UISRVMState, pram_fs=None) -> Domain:
    """Restore a UISR document into a KVM domain via kvmtool ioctls."""
    if hypervisor.kind is not HypervisorKind.KVM:
        raise UISRError(f"from_uisr_kvm called on {hypervisor.kind.value}")
    verify_restore_target(
        domain,
        vm_name=state.vm_name,
        vcpu_count=state.vcpu_count,
        memory_bytes=state.memory_bytes,
        devices=state.devices,
    )
    domain.provenance = (state.source_hypervisor, state.version)

    vmm = hypervisor.vmm_for(domain.domid)

    # Memory first: KVM needs the guest memory address before vCPU state.
    if state.memory_map.by_reference:
        if pram_fs is None:
            raise UISRError(
                f"UISR {state.vm_name} references PRAM file "
                f"{state.memory_map.pram_file!r} but no PRAM fs was provided"
            )
        gfn_to_mfn = pram_fs.layout_of(state.memory_map.pram_file)
        vmm.mmap_guest_memory(gfn_to_mfn)

    platform = apply_platform_fixups(
        state.platform.platform, target_ioapic_pins=KVM_IOAPIC_PINS
    )
    bundle = formats.encode_bundle(
        [record.vcpu for record in state.vcpus], platform
    )
    vmm.apply_state_bundle(bundle)
    # The EPT must reflect the (possibly adopted) memory layout.
    domain.npt = hypervisor.build_npt(domain.vm)
    return domain
