"""HyperTP-aware Nova scheduler filters (§4.5.2, step 4).

The paper extends Nova's scheduler so that transplantable VMs are kept
together, letting whole hosts be upgraded with a single InPlaceTP operation
instead of many migrations.

* :class:`InPlaceCompatibilityFilter` — pass only hosts whose existing
  population matches the new instance's compatibility class.
* :class:`TransplantConsolidationWeigher` — prefer the host with the most
  same-class VMs (consolidation), mirroring Nova's filter+weigher split.
"""

from typing import Dict, List

from repro.guest.vm import VMConfig
from repro.orchestrator.nova import NovaCompute


class InPlaceCompatibilityFilter:
    """Hard filter: host population must match the instance's class."""

    def __init__(self, nova: NovaCompute):
        self.nova = nova

    def _host_population(self, host: str) -> List[bool]:
        driver = self.nova.driver_for(host)
        hv = driver.connection.hypervisor
        return [d.vm.config.inplace_compatible for d in hv.domains.values()]

    def hosts_passing(self, config: VMConfig, candidates: List[str]) -> List[str]:
        passing = []
        for host in candidates:
            population = self._host_population(host)
            if not population:
                passing.append(host)  # empty hosts accept anything
            elif all(c is config.inplace_compatible for c in population):
                passing.append(host)
        return passing


class TransplantConsolidationWeigher:
    """Soft weigher: prefer hosts with more same-class VMs."""

    def __init__(self, nova: NovaCompute):
        self.nova = nova

    def weigh(self, config: VMConfig, candidates: List[str]) -> Dict[str, float]:
        weights = {}
        for host in candidates:
            driver = self.nova.driver_for(host)
            hv = driver.connection.hypervisor
            same = sum(
                1 for d in hv.domains.values()
                if d.vm.config.inplace_compatible is config.inplace_compatible
            )
            weights[host] = float(same)
        return weights

    def best_host(self, config: VMConfig, candidates: List[str]) -> str:
        weights = self.weigh(config, candidates)
        return max(sorted(weights), key=lambda h: weights[h])
