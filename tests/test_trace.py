"""Tests for span tracing and chrome-trace export."""

import json

import pytest

from repro.errors import ReproError
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.sim.trace import Span, Trace, trace_inplace, trace_migration
from repro.bench.runner import make_host_pair, make_xen_host
from repro.core.migration import MigrationTP
from repro.core.transplant import HyperTP


def _events(trace, ph="X"):
    document = json.loads(trace.to_chrome_trace())
    return [e for e in document["traceEvents"] if e["ph"] == ph]


class TestSpan:
    def test_duration(self):
        span = Span("x", "cat", 1.0, 3.5)
        assert span.duration_s == 2.5

    def test_backwards_span_rejected(self):
        with pytest.raises(ReproError):
            Span("x", "cat", 3.0, 1.0)

    def test_process_is_track_prefix(self):
        assert Span("x", "c", 0.0, 1.0, track="node03/nic").process == "node03"
        assert Span("x", "c", 0.0, 1.0, track="node03").process == "node03"


class TestTrace:
    def test_total_span(self):
        trace = Trace()
        trace.extend([Span("a", "c", 0.0, 1.0), Span("b", "c", 5.0, 7.0)])
        assert trace.total_span() == 7.0
        assert Trace().total_span() == 0.0

    def test_chrome_export_is_valid_json(self):
        trace = Trace()
        trace.add(Span("a", "c", 0.5, 1.0, args={"k": 1}))
        document = json.loads(trace.to_chrome_trace())
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        event = spans[0]
        assert event["name"] == "a"
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(0.5e6)
        assert event["args"] == {"k": 1}

    def test_integer_track_ids(self):
        # Regression: tids were once the raw track *strings*, which the
        # trace-event spec forbids and trace_processor rejects.
        trace = Trace()
        trace.add(Span("a", "c", 0.0, 1.0, track="node01"))
        trace.add(Span("b", "c", 0.0, 1.0, track="node01/nic"))
        trace.add(Span("c", "c", 0.0, 1.0, track="node00"))
        for event in _events(trace):
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        pid_of, tid_of = trace.track_ids()
        # Sorted-name numbering from 1: stable across insertion orders.
        assert pid_of == {"node00": 1, "node01": 2}
        assert tid_of == {"node00": 1, "node01": 2, "node01/nic": 3}

    def test_metadata_events_name_tracks(self):
        trace = Trace()
        trace.add(Span("a", "c", 0.0, 1.0, track="node01"))
        trace.add(Span("b", "c", 0.0, 1.0, track="node01/nic"))
        metadata = _events(trace, ph="M")
        names = {(e["name"], e["args"]["name"]) for e in metadata}
        assert ("process_name", "node01") in names
        assert ("thread_name", "nic") in names
        # The main track's thread is named after the process itself.
        assert ("thread_name", "node01") in names
        # Metadata precedes span events so viewers label rows up front.
        document = json.loads(trace.to_chrome_trace())
        phases = [e["ph"] for e in document["traceEvents"]]
        assert phases.index("X") > phases.index("M")

    def test_export_is_deterministic_regardless_of_insertion_order(self):
        spans = [
            Span("a", "c", 0.0, 1.0, track="h2"),
            Span("b", "c", 0.5, 0.8, track="h1"),
            Span("c", "c", 0.0, 2.0, track="h1"),
        ]
        forward, backward = Trace(), Trace()
        forward.extend(spans)
        backward.extend(reversed(spans))
        assert forward.to_chrome_trace() == backward.to_chrome_trace()

    def test_trace_is_iterable(self):
        trace = Trace()
        trace.add(Span("a", "c", 0.0, 1.0))
        assert [s.name for s in trace] == ["a"]
        assert len(trace) == 1


class TestReportTraces:
    def test_inplace_trace_matches_report(self):
        machine = make_xen_host(M1_SPEC, vm_count=1)
        report = HyperTP().inplace(machine, HypervisorKind.KVM, SimClock())
        trace = trace_inplace(report)
        by_name = {s.name: s for s in trace.spans}
        assert by_name["PRAM"].duration_s == pytest.approx(report.pram_s)
        assert by_name["Reboot"].duration_s == pytest.approx(report.reboot_s)
        # The guests-paused span covers exactly the downtime.
        assert by_name["VMs paused"].duration_s == pytest.approx(
            report.downtime_s
        )
        # Phases are contiguous: translation starts when PRAM ends.
        assert by_name["Translation"].start_s == pytest.approx(
            by_name["PRAM"].end_s
        )
        json.loads(trace.to_chrome_trace())  # exports cleanly

    def test_inplace_trace_fig6_phase_ordering(self):
        # Fig. 6: PRAM runs pre-pause, then Translation -> Reboot ->
        # Restoration back-to-back inside the downtime window.
        machine = make_xen_host(M1_SPEC, vm_count=2)
        report = HyperTP().inplace(machine, HypervisorKind.KVM, SimClock())
        trace = trace_inplace(report)
        by_name = {s.name: s for s in trace.spans}
        order = ["PRAM", "Translation", "Reboot", "Restoration"]
        for earlier, later in zip(order, order[1:]):
            assert by_name[earlier].end_s == pytest.approx(
                by_name[later].start_s
            ), f"{earlier} should hand off to {later}"
        # "VMs paused" covers exactly the downtime phases, no more.
        paused = by_name["VMs paused"]
        assert paused.start_s == pytest.approx(by_name["Translation"].start_s)
        assert paused.end_s == pytest.approx(by_name["Restoration"].end_s)
        assert paused.duration_s == pytest.approx(report.downtime_s)
        # NIC re-init overlaps restoration on its own sub-track.
        nic = by_name["NIC re-init"]
        assert nic.track.endswith("/nic")
        assert nic.start_s == pytest.approx(by_name["Reboot"].end_s)

    def test_migration_trace_rounds(self):
        source, destination, fabric = make_host_pair(
            M1_SPEC, HypervisorKind.KVM,
        )
        domain = next(iter(source.hypervisor.domains.values()))
        report = MigrationTP(fabric, source, destination).migrate(
            domain, dirty_rate_bytes_s=48 << 20,
        )
        trace = trace_migration(report)
        round_spans = [s for s in trace.spans if s.category == "precopy"]
        assert len(round_spans) == report.round_count
        stop = next(s for s in trace.spans if s.name == "stop-and-copy")
        assert stop.duration_s == pytest.approx(report.downtime_s)
        assert stop.start_s == pytest.approx(
            sum(r.duration_s for r in report.rounds)
        )
