"""Tests for the paravirtual transport swap across transplants."""

import pytest

from repro.guest.drivers import NetworkDriver
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.transplant import HyperTP
from repro.devices.model import NATIVE_NET_FLAVOR, restore_devices


class TestFlavorMapping:
    def test_every_hypervisor_has_a_flavor(self):
        for kind in HypervisorKind:
            assert kind.value in NATIVE_NET_FLAVOR

    def test_rescan_without_flavor_keeps_current(self):
        nic = NetworkDriver(flavor="xen-netfront")
        nic.unplug()
        nic.rescan()
        assert nic.flavor == "xen-netfront"

    def test_restore_devices_switches_flavor(self):
        nic = NetworkDriver(flavor="xen-netfront")
        nic.unplug()
        restore_devices([nic], target_kind="kvm")
        assert nic.flavor == "virtio-net"


class TestFlavorAcrossTransplants:
    def test_xen_to_kvm_installs_virtio(self, xen_host):
        vm = next(iter(xen_host.hypervisor.domains.values())).vm
        nic = NetworkDriver("net0", flavor="xen-netfront")
        vm.attach_device(nic)
        HyperTP().inplace(xen_host, HypervisorKind.KVM, SimClock())
        assert nic.flavor == "virtio-net"
        assert nic.state.value == "active"
        assert nic.tcp_connections_alive

    def test_round_trip_returns_to_netfront(self, xen_host):
        vm = next(iter(xen_host.hypervisor.domains.values())).vm
        nic = NetworkDriver("net0", flavor="xen-netfront")
        vm.attach_device(nic)
        hypertp = HyperTP()
        clock = SimClock()
        hypertp.inplace(xen_host, HypervisorKind.KVM, clock)
        assert nic.flavor == "virtio-net"
        hypertp.inplace(xen_host, HypervisorKind.XEN, clock)
        assert nic.flavor == "xen-netfront"

    def test_abort_keeps_source_flavor(self, xen_host):
        from repro.core.inplace import InPlaceTP
        from repro.errors import TransplantError

        vm = next(iter(xen_host.hypervisor.domains.values())).vm
        nic = NetworkDriver("net0", flavor="xen-netfront")
        vm.attach_device(nic)

        def hook(phase):
            if phase == "translate":
                raise RuntimeError("chaos")

        transplant = InPlaceTP(xen_host, HypervisorKind.KVM,
                               failure_hook=hook)
        with pytest.raises(TransplantError):
            transplant.run(SimClock())
        # Rolled back onto Xen: the interface must still be netfront.
        assert nic.flavor == "xen-netfront"
        assert nic.state.value == "active"
