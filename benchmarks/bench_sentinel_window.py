"""Sentinel end-to-end windows vs feed density and fleet size.

The fleet bench measures one campaign; this bench measures the response
*plane*: replay the whole embedded feed at several densities (mean gap
between advisories) against several fleet sizes and record the per-CVE
disclosure->fleet-no-longer-exposed window distribution, the exposure
integral, and how many disclosures each policy outcome absorbed
(transplant / patch-cycle / residual).  Denser feeds force overlapping
disclosures — queueing, coalescing and preemption — so the sweep also
exercises the response plane's concurrency machinery, not just its happy
path.

Every cell is an independent seeded replay, so the sweep runs through
:class:`repro.par.ParallelRunner` (``--workers N``) and the deterministic
payload is byte-identical for any worker count; wall-clock lives in the
volatile ``meta`` block.  Emits ``BENCH_sentinel_window.json`` next to
this file; ``--smoke`` restricts to the smallest cell for CI.
"""

import argparse
import os
import time
from pathlib import Path

from repro.bench.report import format_table, print_experiment, write_bench_json
from repro.par import ParallelRunner

FLEET_SIZES = [10, 50, 200]
SMOKE_SIZES = [10]
#: feed densities (mean days between advisories); 2 days makes campaign
#: and patch timers overlap heavily, 30 spreads them out
MEAN_GAPS_DAYS = [2.0, 7.0, 30.0]
SMOKE_GAPS_DAYS = [7.0]
SEED = 42

DEFAULT_JSON_PATH = (Path(__file__).resolve().parent
                     / "BENCH_sentinel_window.json")

PAYLOAD_FORMAT = "hypertp-bench-sentinel-window"
PAYLOAD_VERSION = 1


def measure_cell(cell):
    """Worker entrypoint: one feed replay for one sweep cell."""
    from repro.sentinel import FeedSchedule, Sentinel, SentinelConfig

    hosts = cell["hosts"]
    gap = cell["mean_gap_days"]
    seed = cell.get("seed", SEED)
    config = SentinelConfig(
        hosts=hosts, vms_per_host=10, group_size=max(2, hosts // 5),
        seed=seed,
        feed=FeedSchedule(seed=seed, mean_gap_days=gap),
    )
    started = time.perf_counter()
    report = Sentinel(config).run()
    wall_s = time.perf_counter() - started
    document = report.to_dict()
    windows, counters = document["windows"], document["counters"]
    return {
        "entry": {
            "hosts": hosts,
            "mean_gap_days": gap,
            "seed": seed,
            "disclosures": counters["disclosures"],
            "campaigns": counters["campaigns_launched"],
            "returns": counters["returns_launched"],
            "preemptions": counters["preemptions"],
            "residual": counters["residual_unresolved"],
            "transplant_count": windows["transplant_count"],
            "transplant_percentiles_days":
                windows["transplant_percentiles_days"],
            "patch_cycle_percentiles_days":
                windows["patch_cycle_percentiles_days"],
            "exposure_host_days": windows["exposure_host_days_total"],
        },
        "wall_s": round(wall_s, 4),
    }


def sweep_cells(smoke=False):
    sizes = SMOKE_SIZES if smoke else FLEET_SIZES
    gaps = SMOKE_GAPS_DAYS if smoke else MEAN_GAPS_DAYS
    return [{"hosts": hosts, "mean_gap_days": gap, "seed": SEED}
            for hosts in sizes for gap in gaps]


def cell_label(cell):
    return f"hosts{cell['hosts']}-gap{cell['mean_gap_days']:g}d"


def run(smoke=False, workers=1):
    """The sweep; returns per-cell dicts in cell order plus pool stats."""
    cells = sweep_cells(smoke)
    runner = ParallelRunner(workers=workers, task_timeout_s=600.0)
    results = runner.map_tasks(measure_cell, cells,
                               labels=[cell_label(c) for c in cells])
    return results, runner.stats


def write_json(results, path=DEFAULT_JSON_PATH, workers=1, stats=None,
               extra_meta=None):
    """Write the artifact: deterministic entries, volatile walls in meta."""
    payload = {
        "format": PAYLOAD_FORMAT,
        "version": PAYLOAD_VERSION,
        "seed": SEED,
        "results": [r["entry"] for r in results],
    }
    meta = {
        "workers": workers,
        "wall_s": round(sum(r["wall_s"] for r in results), 4),
        "cell_walls_s": [
            {"hosts": r["entry"]["hosts"],
             "mean_gap_days": r["entry"]["mean_gap_days"],
             "wall_s": r["wall_s"]}
            for r in results
        ],
    }
    if stats is not None:
        meta["pool"] = stats.to_dict()
    if extra_meta:
        meta.update(extra_meta)
    write_bench_json(str(path), payload, meta)
    return path


def to_rows(results):
    rows = []
    for result in results:
        entry = result["entry"]
        pct = entry["transplant_percentiles_days"]
        patch = entry["patch_cycle_percentiles_days"]
        rows.append([
            entry["hosts"],
            f"{entry['mean_gap_days']:g}",
            entry["campaigns"],
            entry["returns"],
            entry["preemptions"],
            entry["residual"],
            f"{pct['p50']:.1f}" if pct else "-",
            f"{pct['max']:.1f}" if pct else "-",
            f"{patch['p50']:.1f}" if patch else "-",
            f"{entry['exposure_host_days']:.0f}",
            f"{result['wall_s']:.3f}",
        ])
    return rows


HEADERS = ["hosts", "gap (d)", "camps", "returns", "preempt", "resid",
           "tp p50 (d)", "tp max (d)", "patch p50 (d)", "exp (host-d)",
           "wall (s)"]


def test_sentinel_window_sweep(benchmark):
    results, stats = benchmark.pedantic(run, kwargs={"smoke": True},
                                        rounds=1, iterations=1)
    write_json(results, stats=stats)
    print_experiment("sentinel window",
                     "per-CVE windows vs feed density and fleet size",
                     format_table(HEADERS, to_rows(results)))


def test_transplant_beats_patch_cycle_guard():
    """The response plane must beat the patch-cycle counterfactual."""
    result = measure_cell({"hosts": 10, "mean_gap_days": 7.0})
    entry = result["entry"]
    transplant = entry["transplant_percentiles_days"]
    patch = entry["patch_cycle_percentiles_days"]
    assert transplant, "no CVE was remediated by transplant"
    assert transplant["p50"] < patch["p50"]
    assert transplant["max"] < patch["max"]
    # The whole replay is a discrete-event simulation; wall stays small.
    assert result["wall_s"] < 60.0


def test_parallel_payload_identical():
    """Smoke sweep at 2 workers must match the serial payload exactly."""
    serial, _ = run(smoke=True, workers=1)
    parallel, _ = run(smoke=True, workers=2)
    assert [r["entry"] for r in parallel] == [r["entry"] for r in serial]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smallest cell only (CI)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep (1 = serial)")
    parser.add_argument("--compare-serial", action="store_true",
                        help="also run serially, assert byte-identical "
                             "payloads, and record the speedup in meta")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        default=str(DEFAULT_JSON_PATH))
    args = parser.parse_args()

    extra_meta = {}
    started = time.perf_counter()
    results, stats = run(smoke=args.smoke, workers=args.workers)
    elapsed = time.perf_counter() - started
    extra_meta["elapsed_s"] = round(elapsed, 4)

    if args.compare_serial and args.workers > 1:
        serial_started = time.perf_counter()
        serial_results, _ = run(smoke=args.smoke, workers=1)
        serial_elapsed = time.perf_counter() - serial_started
        if [r["entry"] for r in serial_results] != \
                [r["entry"] for r in results]:
            raise SystemExit(
                "parallel sweep payload differs from the serial sweep"
            )
        extra_meta["serial_elapsed_s"] = round(serial_elapsed, 4)
        extra_meta["speedup"] = round(serial_elapsed / max(elapsed, 1e-9), 2)
        print(f"serial {serial_elapsed:.2f} s vs {args.workers} workers "
              f"{elapsed:.2f} s -> speedup {extra_meta['speedup']:.2f}x "
              f"(payloads identical)")
        cores = os.cpu_count() or 1
        if cores < args.workers:
            print(f"note: only {cores} CPU core(s) visible; the sweep is "
                  f"CPU-bound, so {args.workers} workers cannot beat "
                  f"serial wall-clock on this host (see meta.host_env)")

    path = write_json(results, args.json_path, workers=args.workers,
                      stats=stats, extra_meta=extra_meta)
    print_experiment("sentinel window",
                     "per-CVE windows vs feed density and fleet size",
                     format_table(HEADERS, to_rows(results)))
    print(f"JSON written to {path}")


if __name__ == "__main__":
    main()
