"""The four InPlaceTP optimisations (§4.2.5) as explicit toggles.

* **prepare_ahead** — PRAM construction and device quiescing run before the
  VMs are paused (akin to live migration's pre-copy), keeping them out of
  the downtime.
* **parallel** — per-VM translations/restorations each get a thread,
  bounded by the machine's cores.
* **huge_pages** — PRAM entries cover 2 MB chunks instead of 4 KB pages,
  shrinking metadata 512x and speeding every per-entry loop.
* **early_restoration** — VM restoration starts as soon as the services KVM
  needs are up, instead of after full host boot.

The ablation benchmark (``benchmarks/bench_ablation_optimizations.py``)
switches these off one at a time to quantify each contribution.
"""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class OptimizationConfig:
    """Which of the four optimisations are active."""

    prepare_ahead: bool = True
    parallel: bool = True
    huge_pages: bool = True
    early_restoration: bool = True

    def without(self, name: str) -> "OptimizationConfig":
        """A copy with one optimisation disabled (ablation helper)."""
        if not hasattr(self, name):
            raise AttributeError(f"unknown optimisation {name!r}")
        return replace(self, **{name: False})

    @classmethod
    def all_disabled(cls) -> "OptimizationConfig":
        return cls(prepare_ahead=False, parallel=False, huge_pages=False,
                   early_restoration=False)

    def describe(self) -> str:
        flags = []
        for name in ("prepare_ahead", "parallel", "huge_pages",
                     "early_restoration"):
            mark = "+" if getattr(self, name) else "-"
            flags.append(f"{mark}{name}")
        return " ".join(flags)


DEFAULT_OPTIMIZATIONS = OptimizationConfig()
