"""Physical memory model with a frame allocator.

Guest memory is tracked at frame granularity.  Frames carry a *content
digest* rather than real bytes, so a 12 GB guest costs a few thousand Python
objects (with 2 MB huge pages) while still letting tests verify the core
HyperTP invariant: Guest State is bit-identical across a transplant.

Frames can be *pinned* (registered with PRAM) which forbids the allocator
from handing them out again after a micro-reboot — the mechanism the paper
adds to both Xen and KVM so that kexec does not scribble over guest RAM
(§4.2.4).
"""

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.errors import FrameAllocationError, HardwareError

PAGE_4K = 4 * 1024
PAGE_2M = 2 * 1024 * 1024

_VALID_PAGE_SIZES = (PAGE_4K, PAGE_2M)


@dataclass
class Frame:
    """One physical frame (machine frame number + size + content digest)."""

    mfn: int
    size: int
    digest: int = 0

    def __post_init__(self) -> None:
        if self.size not in _VALID_PAGE_SIZES:
            raise HardwareError(f"unsupported frame size {self.size}")


@dataclass
class _Region:
    """A contiguous span of free 4K base frames [start, start + count)."""

    start: int
    count: int


class PhysicalMemory:
    """Frame allocator over a machine's RAM.

    Internally everything is accounted in 4K base frames; 2 MB allocations
    consume 512 aligned base frames.  Allocation is first-fit, which produces
    the scattered layouts the PRAM structure must represent (Fig. 4).
    """

    def __init__(self, total_bytes: int):
        if total_bytes <= 0 or total_bytes % PAGE_4K:
            raise HardwareError(f"RAM size must be a positive 4K multiple: {total_bytes}")
        self.total_bytes = total_bytes
        self.total_base_frames = total_bytes // PAGE_4K
        self._free: List[_Region] = [_Region(0, self.total_base_frames)]
        self._allocated: Dict[int, Frame] = {}
        self._allocated_bytes = 0
        self._pinned: Set[int] = set()

    # -- queries ---------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        return self._allocated_bytes

    @property
    def free_bytes(self) -> int:
        return self.total_bytes - self.allocated_bytes

    def frame(self, mfn: int) -> Frame:
        try:
            return self._allocated[mfn]
        except KeyError:
            raise FrameAllocationError(f"mfn {mfn} is not allocated") from None

    def is_allocated(self, mfn: int) -> bool:
        return mfn in self._allocated

    def is_pinned(self, mfn: int) -> bool:
        return mfn in self._pinned

    def allocated_frames(self) -> List[Frame]:
        return list(self._allocated.values())

    # -- allocation ------------------------------------------------------

    def allocate(self, size: int = PAGE_4K, digest: int = 0) -> Frame:
        """Allocate one frame of ``size`` bytes (first fit, aligned)."""
        if size not in _VALID_PAGE_SIZES:
            raise FrameAllocationError(f"unsupported allocation size {size}")
        base_frames = size // PAGE_4K
        for idx, region in enumerate(self._free):
            start = self._align_up(region.start, base_frames)
            skip = start - region.start
            if region.count - skip >= base_frames:
                self._carve(idx, start, base_frames)
                frame = Frame(mfn=start, size=size, digest=digest)
                self._allocated[start] = frame
                self._allocated_bytes += size
                return frame
        raise FrameAllocationError(
            f"out of memory: need {size} bytes, {self.free_bytes} free"
        )

    def allocate_many(self, count: int, size: int = PAGE_4K) -> List[Frame]:
        """Allocate ``count`` frames; rolls back on partial failure."""
        frames: List[Frame] = []
        try:
            for _ in range(count):
                frames.append(self.allocate(size))
        except FrameAllocationError:
            for frame in frames:
                self.free(frame.mfn)
            raise
        return frames

    def free(self, mfn: int) -> None:
        """Return a frame to the allocator."""
        frame = self.frame(mfn)
        if mfn in self._pinned:
            raise FrameAllocationError(f"cannot free pinned frame mfn={mfn}")
        del self._allocated[mfn]
        self._allocated_bytes -= frame.size
        self._insert_free(_Region(mfn, frame.size // PAGE_4K))

    # -- pinning (PRAM protection across kexec) ---------------------------

    def pin(self, mfn: int) -> None:
        """Protect a frame from being freed or reused across micro-reboot."""
        self.frame(mfn)
        self._pinned.add(mfn)

    def unpin(self, mfn: int) -> None:
        self._pinned.discard(mfn)

    def pinned_frames(self) -> List[Frame]:
        return [self._allocated[m] for m in sorted(self._pinned)]

    def reset_except_pinned(self) -> None:
        """Re-initialize the allocator, keeping only pinned frames.

        This is what the target hypervisor's early-boot PRAM parsing does: it
        reserves every frame named by the PRAM structure and treats the rest
        of RAM as free (§4.2.4).
        """
        survivors = {m: self._allocated[m] for m in self._pinned}
        self._allocated = survivors
        self._allocated_bytes = sum(f.size for f in survivors.values())
        self._free = []
        cursor = 0
        for mfn in sorted(survivors):
            frame = survivors[mfn]
            if mfn > cursor:
                self._free.append(_Region(cursor, mfn - cursor))
            cursor = mfn + frame.size // PAGE_4K
        if cursor < self.total_base_frames:
            self._free.append(_Region(cursor, self.total_base_frames - cursor))

    # -- content ----------------------------------------------------------

    def write(self, mfn: int, digest: int) -> None:
        """Overwrite a frame's contents (sets its digest)."""
        self.frame(mfn).digest = digest

    def read(self, mfn: int) -> int:
        """Read a frame's content digest."""
        return self.frame(mfn).digest

    def digest_of(self, mfns: Iterable[int]) -> int:
        """Combined digest over an ordered set of frames (guest image hash)."""
        acc = 0
        for mfn in mfns:
            acc = (acc * 1000003 + self.frame(mfn).digest) & 0xFFFFFFFFFFFFFFFF
        return acc

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _align_up(value: int, alignment: int) -> int:
        return (value + alignment - 1) // alignment * alignment

    def _carve(self, idx: int, start: int, base_frames: int) -> None:
        region = self._free.pop(idx)
        before = _Region(region.start, start - region.start)
        after_start = start + base_frames
        after = _Region(after_start, region.start + region.count - after_start)
        replacement = [r for r in (before, after) if r.count > 0]
        self._free[idx:idx] = replacement

    def _insert_free(self, region: _Region) -> None:
        # The free list is always sorted and coalesced, so a freed region
        # needs only an ordered insert plus merges with its two direct
        # neighbors — O(log n + n·move), not the former full re-sort and
        # whole-list re-coalesce per free().
        idx = bisect_left(self._free, region.start, key=lambda r: r.start)
        if idx > 0:
            prev = self._free[idx - 1]
            if prev.start + prev.count == region.start:
                prev.count += region.count
                if (idx < len(self._free)
                        and prev.start + prev.count == self._free[idx].start):
                    prev.count += self._free[idx].count
                    del self._free[idx]
                return
        if (idx < len(self._free)
                and region.start + region.count == self._free[idx].start):
            successor = self._free[idx]
            successor.start = region.start
            successor.count += region.count
            return
        self._free.insert(idx, region)
