"""Tests for the PRAM over-kexec memory file system."""

import pytest

from repro.errors import PRAMError
from repro.guest.image import GuestImage
from repro.hw.memory import PAGE_2M, PAGE_4K, PhysicalMemory
from repro.core.pram import PageEntry, PRAMFilesystem

GIB = 1024 ** 3


def make_fs_with_vm(vm_gib=1.0, page_size=PAGE_2M):
    memory = PhysicalMemory(4 * GIB)
    image = GuestImage(memory, int(vm_gib * GIB), page_size=page_size)
    fs = PRAMFilesystem(memory)
    fs.add_vm_file("vm0", image.mappings(), page_size=page_size)
    return memory, image, fs


class TestPageEntry:
    def test_pack_unpack_roundtrip(self):
        entry = PageEntry(gfn=12345, mfn=67890, order=9)
        assert PageEntry.unpacked(entry.packed()) == entry

    def test_byte_size_power_of_two(self):
        assert PageEntry(gfn=0, mfn=0, order=0).byte_size == PAGE_4K
        assert PageEntry(gfn=0, mfn=0, order=9).byte_size == PAGE_2M

    def test_out_of_range_rejected(self):
        with pytest.raises(PRAMError):
            PageEntry(gfn=1 << 40, mfn=0, order=0).packed()


class TestPRAMFilesystem:
    def test_hugepage_vm_entry_count(self):
        _, image, fs = make_fs_with_vm()
        assert len(fs.files["vm0"].entries) == 512  # 1 GiB / 2 MiB

    def test_metadata_matches_paper_16kb_for_1gib(self):
        # §5.5: 16 KB of PRAM metadata for a single 1 GB VM with 2 MB pages.
        _, _, fs = make_fs_with_vm()
        assert fs.metadata_bytes() == 16 * 1024

    def test_metadata_matches_paper_60kb_for_12gib(self):
        memory = PhysicalMemory(16 * GIB)
        image = GuestImage(memory, 12 * GIB, page_size=PAGE_2M)
        fs = PRAMFilesystem(memory)
        fs.add_vm_file("big", image.mappings(), page_size=PAGE_2M)
        assert fs.metadata_bytes() == 60 * 1024

    def test_metadata_matches_paper_148kb_for_12_vms(self):
        memory = PhysicalMemory(16 * GIB)
        fs = PRAMFilesystem(memory)
        for i in range(12):
            image = GuestImage(memory, GIB, page_size=PAGE_2M)
            fs.add_vm_file(f"vm{i}", image.mappings(), page_size=PAGE_2M)
        assert fs.metadata_bytes() == 148 * 1024

    def test_worst_case_4k_overhead_2mb_per_gib(self):
        # §5.5: 8 B/page => ~2 MB of metadata per GB with all-4K pages.
        memory = PhysicalMemory(4 * GIB)
        image = GuestImage(memory, GIB, page_size=PAGE_4K)
        fs = PRAMFilesystem(memory)
        fs.add_vm_file("vm0", image.mappings(), page_size=PAGE_4K)
        overhead = fs.metadata_bytes()
        assert 2_000_000 < overhead < 2_300_000

    def test_layout_roundtrip(self):
        _, image, fs = make_fs_with_vm()
        assert fs.layout_of("vm0") == dict(image.mappings())

    def test_unknown_file_rejected(self):
        _, _, fs = make_fs_with_vm()
        with pytest.raises(PRAMError):
            fs.layout_of("ghost")

    def test_duplicate_file_rejected(self):
        memory, image, fs = make_fs_with_vm()
        with pytest.raises(PRAMError):
            fs.add_vm_file("vm0", image.mappings(), page_size=PAGE_2M)

    def test_seal_pins_guest_and_metadata(self):
        memory, image, fs = make_fs_with_vm()
        pointer = fs.seal()
        assert pointer is not None
        for _, mfn in image.mappings():
            assert memory.is_pinned(mfn)
        # Metadata pages are pinned too (they must survive the kexec).
        assert len(memory.pinned_frames()) > image.page_count

    def test_seal_twice_rejected(self):
        _, _, fs = make_fs_with_vm()
        fs.seal()
        with pytest.raises(PRAMError):
            fs.seal()

    def test_add_after_seal_rejected(self):
        memory, image, fs = make_fs_with_vm()
        fs.seal()
        with pytest.raises(PRAMError):
            fs.add_vm_file("late", [], page_size=PAGE_2M)

    def test_encode_decode_roundtrip(self):
        memory, image, fs = make_fs_with_vm()
        decoded = PRAMFilesystem.decode(fs.encode(), memory)
        assert decoded.layout_of("vm0") == fs.layout_of("vm0")
        assert decoded.files["vm0"].page_size == PAGE_2M

    def test_entries_survive_memory_reset(self):
        memory, image, fs = make_fs_with_vm()
        digest = image.content_digest()
        fs.seal()
        memory.reset_except_pinned()
        assert image.content_digest() == digest

    def test_teardown_returns_metadata(self):
        memory, image, fs = make_fs_with_vm()
        fs.seal()
        allocated_with_pram = memory.allocated_bytes
        fs.release_guest_pins("vm0")
        freed = fs.teardown()
        assert freed == 16 * 1024
        assert memory.allocated_bytes == allocated_with_pram - freed

    def test_described_bytes(self):
        _, image, fs = make_fs_with_vm()
        assert fs.described_bytes() == image.size_bytes

    def test_non_power_of_two_page_size_rejected(self):
        memory = PhysicalMemory(GIB)
        fs = PRAMFilesystem(memory)
        with pytest.raises(PRAMError):
            fs.add_vm_file("vm0", [], page_size=PAGE_4K * 3)
