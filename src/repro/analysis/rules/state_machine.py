"""State-machine conformance over the declared ``HostState`` relation.

``fleet/state.py`` declares the per-host transplant lifecycle twice: the
``LEGAL_TRANSITIONS`` relation that ``HostRecord.transition`` enforces at
runtime, and the ``terminal`` property.  This rule extracts both plus the
initial state (the ``HostRecord.state`` default) and proves:

* **relation structure** — every ``HostState`` member appears in the
  relation, terminal states are absorbing (no outgoing edges) and
  vice-versa, every state is reachable from the initial state, and every
  non-terminal state can reach a terminal one (no livelock pockets);
* **conformance** — every ``record.transition(HostState.X, ...)``
  performed in the controller/failure modules is legal from at least one
  state that may flow into that call site.  The may-in set is computed
  with the forward dataflow solver over per-method CFGs, propagated
  through ``self._helper()`` calls, so a transition that *no* path can
  legally perform is flagged while branch-correlated protocols (retry
  loops, rollback joins) stay quiet.

The runtime check in ``HostRecord.transition`` catches an illegal edge
only on the seeds that reach it; this rule catches it on every tree.
"""

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.cfg import CFGNode, build_cfg, payload_exprs, \
    walk_runtime
from repro.analysis.dataflow import solve_forward
from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule

#: where the relation is declared and where transitions are performed.
DECLARATION_PATH = "fleet/state.py"
CONFORMANCE_PATHS = ("fleet/controller.py", "fleet/failures.py")

ENUM_NAME = "HostState"
RELATION_NAME = "LEGAL_TRANSITIONS"
RECORD_CLASS = "HostRecord"


class _Declaration:
    """The extracted state machine: members, edges, terminals, initial."""

    def __init__(self, module: SourceModule, members: Dict[str, int],
                 relation: Dict[str, FrozenSet[str]],
                 relation_lines: Dict[str, int],
                 declared_terminal: Optional[FrozenSet[str]],
                 initial: str, relation_line: int):
        self.module = module
        self.members = members              # member -> def line
        self.relation = relation            # member -> successor members
        self.relation_lines = relation_lines  # relation key -> line
        self.declared_terminal = declared_terminal
        self.initial = initial
        self.relation_line = relation_line

    @property
    def terminal(self) -> FrozenSet[str]:
        """Terminal = declared with no outgoing edges (the absorbing check
        compares this against the ``terminal`` property's declaration).
        Members missing from the relation entirely are excluded — that is
        its own finding, and cascading it here would double-report."""
        return frozenset(
            member for member in self.members
            if member in self.relation and not self.relation[member]
        )


def _enum_members(cls: ast.ClassDef) -> Dict[str, int]:
    members: Dict[str, int] = {}
    for stmt in cls.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)):
            members[stmt.targets[0].id] = stmt.lineno
    return members


def _member_ref(expr: ast.expr) -> Optional[str]:
    """``HostState.X`` -> ``"X"``."""
    if (isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name)
            and expr.value.id == ENUM_NAME):
        return expr.attr
    return None


def _member_set(expr: ast.expr,
                module_sets: Dict[str, FrozenSet[str]]
                ) -> Optional[FrozenSet[str]]:
    """Evaluate a set-of-members expression: ``frozenset({A, B})``,
    ``{A, B}``, ``frozenset()`` or a module-level name bound to one."""
    if isinstance(expr, ast.Name):
        return module_sets.get(expr.id)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in ("frozenset", "set"):
        if not expr.args:
            return frozenset()
        return _member_set(expr.args[0], module_sets)
    if isinstance(expr, (ast.Set, ast.Tuple, ast.List)):
        members = []
        for element in expr.elts:
            member = _member_ref(element)
            if member is None:
                return None
            members.append(member)
        return frozenset(members)
    return None


def _extract_declaration(module: SourceModule) -> Optional[_Declaration]:
    enum_cls = None
    record_cls = None
    relation_assign = None
    module_sets: Dict[str, FrozenSet[str]] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.ClassDef):
            if stmt.name == ENUM_NAME:
                enum_cls = stmt
            elif stmt.name == RECORD_CLASS:
                record_cls = stmt
            continue
        # The relation may be a plain or an annotated assignment.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            name, value_expr = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.value is not None:
            name, value_expr = stmt.target.id, stmt.value
        else:
            continue
        if name == RELATION_NAME:
            relation_assign = stmt
        else:
            value = _member_set(value_expr, module_sets)
            if value is not None:
                module_sets[name] = value
    if enum_cls is None or relation_assign is None \
            or not isinstance(relation_assign.value, ast.Dict):
        return None

    members = _enum_members(enum_cls)
    relation: Dict[str, FrozenSet[str]] = {}
    relation_lines: Dict[str, int] = {}
    for key, value in zip(relation_assign.value.keys,
                          relation_assign.value.values):
        member = _member_ref(key) if key is not None else None
        if member is None:
            continue
        successors = _member_set(value, module_sets)
        relation[member] = successors if successors is not None \
            else frozenset()
        relation_lines[member] = key.lineno

    declared_terminal = _declared_terminal(enum_cls)
    initial = _initial_state(record_cls, members, relation)
    return _Declaration(module, members, relation, relation_lines,
                        declared_terminal, initial,
                        relation_assign.lineno)


def _declared_terminal(enum_cls: ast.ClassDef) -> Optional[FrozenSet[str]]:
    """Members the ``terminal`` property tests against, if parseable."""
    for stmt in enum_cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "terminal":
            members: Set[str] = set()
            for sub in ast.walk(stmt):
                member = _member_ref(sub) if isinstance(sub, ast.Attribute) \
                    else None
                if member is not None:
                    members.add(member)
            return frozenset(members)
    return None


def _initial_state(record_cls: Optional[ast.ClassDef],
                   members: Dict[str, int],
                   relation: Dict[str, FrozenSet[str]]) -> str:
    if record_cls is not None:
        for stmt in record_cls.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "state"
                    and stmt.value is not None):
                member = _member_ref(stmt.value)
                if member is not None:
                    return member
    # Fallback: a state no edge targets, else the first declared member.
    targeted: Set[str] = set()
    for successors in relation.values():
        targeted |= successors
    for member in members:
        if member not in targeted:
            return member
    return next(iter(members), "")


# -- performed-transition analysis --------------------------------------------


def _transition_target(call: ast.Call) -> Optional[Tuple[str, bool]]:
    """``(member, known)`` for a ``*.transition(...)`` call, else None."""
    if not (isinstance(call.func, ast.Attribute)
            and call.func.attr == "transition" and call.args):
        return None
    member = _member_ref(call.args[0])
    if member is not None:
        return member, True
    return "", False


def _node_steps(node: CFGNode, methods: Dict[str, ast.FunctionDef],
                generators: FrozenSet[str]) -> List[Tuple]:
    """(kind, value, line) steps: transition calls and self-method calls,
    in evaluation order (inner calls before outer).

    A self-call is either a ``call`` (state threads through: plain calls
    and ``yield from`` delegation) or a ``spawn`` (a generator object is
    created and driven elsewhere — e.g. handed to ``FleetProcess`` — so
    the callee is checked with the caller's states as entry, but its
    exit states do *not* flow back into the caller).
    """
    steps: List[Tuple] = []
    delegated = {
        id(sub.value) for expr in payload_exprs(node.payload)
        for sub in walk_runtime(expr) if isinstance(sub, ast.YieldFrom)
    }

    def emit(sub: ast.AST) -> None:
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda, ast.ClassDef)):
            return
        for child in ast.iter_child_nodes(sub):
            emit(child)
        if isinstance(sub, ast.Call):
            target = _transition_target(sub)
            if target is not None:
                steps.append(("transition", target, sub.lineno))
            elif (isinstance(sub.func, ast.Attribute)
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == "self"
                    and sub.func.attr in methods):
                callee = sub.func.attr
                spawned = (callee in generators
                           and id(sub) not in delegated)
                steps.append(("spawn" if spawned else "call", callee,
                              sub.lineno))

    for expr in payload_exprs(node.payload):
        emit(expr)
    return steps


class _ClassAnalysis:
    """Interprocedural may-state analysis over one class's methods."""

    def __init__(self, module: SourceModule, cls: ast.ClassDef,
                 declaration: _Declaration):
        self.module = module
        self.cls = cls
        self.declaration = declaration
        self.methods: Dict[str, ast.FunctionDef] = {
            stmt.name: stmt for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.generators = frozenset(
            name for name, func in self.methods.items()
            if any(isinstance(sub, (ast.Yield, ast.YieldFrom))
                   for sub in walk_runtime(func))
        )
        self.all_states = frozenset(declaration.members)
        # (method, entry fact) -> exit fact; None while being computed
        self._summaries: Dict[Tuple[str, FrozenSet[str]],
                              Optional[FrozenSet[str]]] = {}
        # union of may-in facts seen at each transition site
        self.site_states: Dict[Tuple[str, int, Tuple], Set[str]] = {}

    def run(self) -> None:
        called: Set[str] = set()
        for func in self.methods.values():
            for sub in ast.walk(func):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == "self"
                        and sub.func.attr in self.methods):
                    called.add(sub.func.attr)
        roots = [name for name in sorted(self.methods)
                 if name not in called]
        entry = frozenset({self.declaration.initial})
        for root in roots:
            self._summary(root, entry)
        # Methods only reachable through call cycles (or dead): analyze
        # with the widest entry so their transitions are still checked.
        for name in sorted(self.methods):
            if self._performs_transition(name) and not any(
                    key[0] == name for key in self._summaries):
                self._summary(name, self.all_states)

    def _performs_transition(self, name: str) -> bool:
        for sub in ast.walk(self.methods[name]):
            if isinstance(sub, ast.Call) \
                    and _transition_target(sub) is not None:
                return True
        return False

    def _summary(self, name: str,
                 entry: FrozenSet[str]) -> FrozenSet[str]:
        key = (name, entry)
        if key in self._summaries:
            cached = self._summaries[key]
            # In-progress (recursion): approximate with the entry states.
            return cached if cached is not None else entry
        self._summaries[key] = None
        func = self.methods[name]
        cfg = build_cfg(func)
        steps = {node.index: _node_steps(node, self.methods,
                                         self.generators)
                 for node in cfg.nodes}

        def apply_steps(node: CFGNode, fact: FrozenSet[str],
                        record_sites: bool) -> FrozenSet[str]:
            states = fact
            for kind, value, line in steps[node.index]:
                if kind == "transition":
                    if record_sites:
                        site = (name, line, value)
                        self.site_states.setdefault(site,
                                                    set()).update(states)
                    member, known = value
                    states = frozenset({member}) if known \
                        else self.all_states
                elif kind == "call":
                    states = self._summary(value, states)
                else:  # spawn: check the callee, keep the caller's states
                    self._summary(value, states)
            return states

        def transfer(node: CFGNode, fact: FrozenSet[str]) -> FrozenSet[str]:
            return apply_steps(node, fact, record_sites=False)

        solution = solve_forward(cfg, entry, transfer)

        # Record the may-in states at each transition site.
        for node in cfg.nodes:
            if solution.reachable(node.index):
                apply_steps(node, solution.in_fact(node.index),
                            record_sites=True)

        # Only normal exits feed the caller's continuation: on an
        # exception path the caller does not continue at all.
        if solution.reachable(cfg.exit):
            result = frozenset(solution.in_fact(cfg.exit))
        else:
            result = entry
        self._summaries[key] = result
        return result


@register_rule
class StateMachineConformanceRule(Rule):
    name = "state-machine-conformance"
    description = (
        "every HostState transition performed by the fleet layer is "
        "declared in LEGAL_TRANSITIONS, terminal states are absorbing, "
        "and the declared relation has no unreachable or livelocked "
        "states"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        declaration_module = project.get(DECLARATION_PATH)
        if declaration_module is None:
            return
        declaration = _extract_declaration(declaration_module)
        if declaration is None:
            return
        yield from self._check_relation(declaration)
        for path in CONFORMANCE_PATHS:
            module = project.get(path)
            if module is None:
                continue
            yield from self._check_module(module, declaration)

    # -- declared relation structure ------------------------------------

    def _check_relation(self, decl: _Declaration) -> Iterable[Finding]:
        path = decl.module.path
        for member, line in sorted(decl.members.items()):
            if member not in decl.relation:
                yield self.finding(
                    path, decl.relation_line,
                    f"state {ENUM_NAME}.{member} has no entry in "
                    f"{RELATION_NAME}; every state needs a declared "
                    f"(possibly empty) successor set", symbol=ENUM_NAME)
        for member in sorted(decl.relation):
            if member not in decl.members:
                yield self.finding(
                    path, decl.relation_lines[member],
                    f"{RELATION_NAME} declares transitions for unknown "
                    f"state {ENUM_NAME}.{member}", symbol=ENUM_NAME)
            for successor in sorted(decl.relation[member]):
                if successor not in decl.members:
                    yield self.finding(
                        path, decl.relation_lines[member],
                        f"{RELATION_NAME}[{ENUM_NAME}.{member}] targets "
                        f"unknown state {ENUM_NAME}.{successor}",
                        symbol=ENUM_NAME)

        terminal = decl.terminal
        if decl.declared_terminal is not None:
            for member in sorted(decl.declared_terminal - terminal):
                if member not in decl.members:
                    continue
                yield self.finding(
                    path, decl.relation_lines.get(member,
                                                  decl.relation_line),
                    f"{ENUM_NAME}.{member} is declared terminal but has "
                    f"outgoing transitions; terminal states must be "
                    f"absorbing", symbol=ENUM_NAME)
            for member in sorted(terminal - decl.declared_terminal):
                yield self.finding(
                    path, decl.relation_lines.get(member,
                                                  decl.relation_line),
                    f"{ENUM_NAME}.{member} has no outgoing transitions "
                    f"but the terminal property does not include it",
                    symbol=ENUM_NAME)

        known = {m for m in decl.members if m in decl.relation}
        reachable = self._closure({decl.initial}, decl.relation)
        for member in sorted(known - reachable):
            yield self.finding(
                path, decl.relation_lines.get(member, decl.relation_line),
                f"state {ENUM_NAME}.{member} is unreachable from the "
                f"initial state {ENUM_NAME}.{decl.initial}",
                symbol=ENUM_NAME)
        for member in sorted(known - terminal):
            if not self._closure({member}, decl.relation) & terminal:
                yield self.finding(
                    path,
                    decl.relation_lines.get(member, decl.relation_line),
                    f"non-terminal state {ENUM_NAME}.{member} cannot "
                    f"reach any terminal state; hosts entering it are "
                    f"livelocked", symbol=ENUM_NAME)

    @staticmethod
    def _closure(seed: Set[str],
                 relation: Dict[str, FrozenSet[str]]) -> Set[str]:
        seen = set(seed)
        frontier = list(seed)
        while frontier:
            state = frontier.pop()
            for successor in relation.get(state, frozenset()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    # -- performed transitions ------------------------------------------

    def _check_module(self, module: SourceModule,
                      decl: _Declaration) -> Iterable[Finding]:
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            analysis = _ClassAnalysis(module, stmt, decl)
            if not any(analysis._performs_transition(name)
                       for name in analysis.methods):
                continue
            analysis.run()
            for site in sorted(analysis.site_states):
                method, line, (member, known) = site
                states = analysis.site_states[site]
                symbol = f"{stmt.name}.{method}"
                if not known:
                    yield self.finding(
                        module.path, line,
                        f"transition target is not a {ENUM_NAME} member "
                        f"expression; the conformance check cannot "
                        f"verify it", symbol=symbol)
                    continue
                if member not in decl.members:
                    yield self.finding(
                        module.path, line,
                        f"transition to unknown state "
                        f"{ENUM_NAME}.{member}", symbol=symbol)
                    continue
                if states and not any(
                        member in decl.relation.get(state, frozenset())
                        for state in states):
                    origin = ", ".join(sorted(states))
                    yield self.finding(
                        module.path, line,
                        f"undeclared transition to {ENUM_NAME}.{member}: "
                        f"no state that may reach this call "
                        f"({{{origin}}}) has a declared edge to it",
                        symbol=symbol)
