"""Tests for the remote block storage substrate."""

import pytest

from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.transplant import HyperTP
from repro.storage import BlockDriver, RemoteBlockStore, StorageManager
from repro.storage.remote import BLOCK_SIZE, StorageError

MIB = 1 << 20


@pytest.fixture
def store():
    return RemoteBlockStore()


class TestRemoteBlockStore:
    def test_create_and_io(self, store):
        volume = store.create_volume("vol0", 16 * MIB)
        assert volume.block_count == 16 * MIB // BLOCK_SIZE
        volume.write_block(3, 0xABC)
        assert volume.read_block(3) == 0xABC
        assert volume.read_block(4) == 0  # sparse

    def test_bad_sizes_rejected(self, store):
        with pytest.raises(StorageError):
            store.create_volume("bad", BLOCK_SIZE + 1)
        with pytest.raises(StorageError):
            store.create_volume("bad2", 0)

    def test_lba_bounds(self, store):
        volume = store.create_volume("vol0", 2 * BLOCK_SIZE)
        with pytest.raises(StorageError):
            volume.read_block(2)
        with pytest.raises(StorageError):
            volume.write_block(-1, 0)

    def test_duplicate_volume_rejected(self, store):
        store.create_volume("vol0", 16 * MIB)
        with pytest.raises(StorageError):
            store.create_volume("vol0", 16 * MIB)

    def test_leases_are_exclusive(self, store):
        store.create_volume("vol0", 16 * MIB)
        store.acquire_lease("vol0", "vm-a")
        with pytest.raises(StorageError):
            store.acquire_lease("vol0", "vm-b")
        store.acquire_lease("vol0", "vm-a")  # re-acquire is idempotent
        store.release_lease("vol0", "vm-a")
        store.acquire_lease("vol0", "vm-b")

    def test_release_requires_holder(self, store):
        store.create_volume("vol0", 16 * MIB)
        with pytest.raises(StorageError):
            store.release_lease("vol0", "vm-x")

    def test_delete_attached_rejected(self, store):
        store.create_volume("vol0", 16 * MIB)
        store.acquire_lease("vol0", "vm-a")
        with pytest.raises(StorageError):
            store.delete_volume("vol0")

    def test_content_digest_tracks_writes(self, store):
        volume = store.create_volume("vol0", 16 * MIB)
        before = volume.content_digest()
        volume.write_block(0, 7)
        assert volume.content_digest() != before


class TestAttachments:
    def test_attach_and_io_through_driver(self, store, xen_host):
        manager = StorageManager(store)
        store.create_volume("root", 64 * MIB)
        vm = next(iter(xen_host.hypervisor.domains.values())).vm
        driver = manager.attach(vm, "root")
        assert isinstance(driver, BlockDriver)
        driver.write(10, 0x1234)
        assert driver.read(10) == 0x1234
        assert store.volume("root").attached_to == vm.name

    def test_detach(self, store, xen_host):
        manager = StorageManager(store)
        store.create_volume("root", 64 * MIB)
        vm = next(iter(xen_host.hypervisor.domains.values())).vm
        manager.attach(vm, "root")
        manager.detach(vm, "root")
        assert store.volume("root").attached_to is None
        assert not manager.attachments_of(vm.name)

    def test_detach_unattached_rejected(self, store, xen_host):
        manager = StorageManager(store)
        store.create_volume("root", 64 * MIB)
        vm = next(iter(xen_host.hypervisor.domains.values())).vm
        with pytest.raises(StorageError):
            manager.detach(vm, "root")

    def test_descriptor_roundtrip(self, store, xen_host):
        manager = StorageManager(store)
        store.create_volume("root", 64 * MIB)
        vm = next(iter(xen_host.hypervisor.domains.values())).vm
        driver = manager.attach(vm, "root")
        driver.write(1, 5)
        blob = driver.descriptor()
        name, volume_id, io_count = BlockDriver.parse_descriptor(blob)
        assert (name, volume_id, io_count) == (store.name, "root", 1)

    def test_disconnected_driver_rejects_io(self, store, xen_host):
        manager = StorageManager(store)
        store.create_volume("root", 64 * MIB)
        vm = next(iter(xen_host.hypervisor.domains.values())).vm
        driver = manager.attach(vm, "root")
        driver.disconnect()
        with pytest.raises(StorageError):
            driver.read(0)
        driver.reconnect()
        assert driver.read(0) == 0


class TestStorageAcrossTransplant:
    def test_volume_survives_inplace_transplant(self, store, xen_host):
        """The paper's design point: disk data is remote, so a transplant
        only re-establishes the attachment — contents never move."""
        manager = StorageManager(store)
        store.create_volume("root", 64 * MIB)
        vm = next(iter(xen_host.hypervisor.domains.values())).vm
        driver = manager.attach(vm, "root")
        for lba in range(32):
            driver.write(lba, lba * 7 + 1)
        disk_digest = store.volume("root").content_digest()

        HyperTP().inplace(xen_host, HypervisorKind.KVM, SimClock())

        assert store.volume("root").content_digest() == disk_digest
        assert store.volume("root").attached_to == vm.name
        assert manager.verify_attachments(vm)
        # I/O works on the new hypervisor.
        assert driver.read(5) == 5 * 7 + 1

    def test_volume_follows_migration(self, store, xen_host_factory,
                                      kvm_host_factory, fabric):
        from repro.core.migration import MigrationTP

        manager = StorageManager(store)
        store.create_volume("root", 64 * MIB)
        source = xen_host_factory(name="st-src")
        destination = kvm_host_factory(name="st-dst")
        fabric.connect(source, destination)
        domain = next(iter(source.hypervisor.domains.values()))
        driver = manager.attach(domain.vm, "root")
        driver.write(0, 99)

        MigrationTP(fabric, source, destination).migrate(domain)

        # Same lease, same data, reachable from the destination.
        assert store.volume("root").attached_to == domain.vm.name
        assert driver.read(0) == 99
        assert manager.verify_attachments(domain.vm)
