"""Tests for Xen PV interfaces: event channels and grant tables."""

import pytest

from repro.errors import HypervisorError
from repro.guest.vm import VMConfig
from repro.hypervisors import XenHypervisor
from repro.hypervisors.base import HypervisorKind
from repro.hypervisors.xen.events import (
    ChannelKind,
    EventChannelTable,
    GrantTable,
)
from repro.sim.clock import SimClock
from repro.core.transplant import HyperTP

GIB = 1024 ** 3


class TestEventChannels:
    def test_alloc_unbound(self):
        table = EventChannelTable()
        channel = table.alloc_unbound(1, remote_domid=0)
        assert channel.kind is ChannelKind.UNBOUND
        assert channel.port == 1
        assert table.get(1, 1) is channel

    def test_ports_are_per_domain(self):
        table = EventChannelTable()
        a = table.alloc_unbound(1, 0)
        b = table.alloc_unbound(2, 0)
        assert a.port == b.port == 1  # separate namespaces

    def test_bind_interdomain_pairs_up(self):
        table = EventChannelTable()
        backend = table.alloc_unbound(0, remote_domid=5)
        frontend = table.bind_interdomain(5, 0, backend.port)
        assert frontend.kind is ChannelKind.INTERDOMAIN
        assert backend.kind is ChannelKind.INTERDOMAIN
        assert backend.remote_port == frontend.port

    def test_bind_respects_reservation(self):
        table = EventChannelTable()
        backend = table.alloc_unbound(0, remote_domid=5)
        with pytest.raises(HypervisorError, match="reserved"):
            table.bind_interdomain(6, 0, backend.port)

    def test_bind_requires_unbound(self):
        table = EventChannelTable()
        backend = table.alloc_unbound(0, remote_domid=5)
        table.bind_interdomain(5, 0, backend.port)
        with pytest.raises(HypervisorError, match="not unbound"):
            table.bind_interdomain(5, 0, backend.port)

    def test_send_sets_pending_on_peer(self):
        table = EventChannelTable()
        backend = table.alloc_unbound(0, remote_domid=5)
        frontend = table.bind_interdomain(5, 0, backend.port)
        table.send(5, frontend.port)
        assert table.get(0, backend.port).pending

    def test_masked_peer_not_raised(self):
        table = EventChannelTable()
        backend = table.alloc_unbound(0, remote_domid=5)
        frontend = table.bind_interdomain(5, 0, backend.port)
        backend.masked = True
        table.send(5, frontend.port)
        assert not backend.pending

    def test_virq_unique_per_domain(self):
        table = EventChannelTable()
        table.bind_virq(1, 0)
        with pytest.raises(HypervisorError, match="already bound"):
            table.bind_virq(1, 0)
        table.bind_virq(2, 0)  # different domain is fine

    def test_close_unbinds_peer(self):
        table = EventChannelTable()
        backend = table.alloc_unbound(0, remote_domid=5)
        frontend = table.bind_interdomain(5, 0, backend.port)
        table.close(5, frontend.port)
        assert table.get(0, backend.port).kind is ChannelKind.UNBOUND
        with pytest.raises(HypervisorError):
            table.get(5, frontend.port)

    def test_close_domain_sweeps_everything(self):
        table = EventChannelTable()
        table.alloc_unbound(7, 0)
        table.bind_virq(7, 0)
        assert table.close_domain(7) == 2
        assert table.channels_of(7) == []


class TestGrantTable:
    def test_grant_and_map(self):
        table = GrantTable(domid=5)
        entry = table.grant(gfn=10, granted_to=0)
        mapped = table.map(entry.ref, mapper_domid=0)
        assert mapped.in_use
        table.unmap(entry.ref)
        assert not entry.in_use

    def test_map_checks_grantee(self):
        table = GrantTable(domid=5)
        entry = table.grant(gfn=10, granted_to=0)
        with pytest.raises(HypervisorError, match="for domain"):
            table.map(entry.ref, mapper_domid=3)

    def test_revoke_requires_unmapped(self):
        table = GrantTable(domid=5)
        entry = table.grant(gfn=10, granted_to=0)
        table.map(entry.ref, 0)
        with pytest.raises(HypervisorError, match="still mapped"):
            table.revoke(entry.ref)
        table.unmap(entry.ref)
        table.revoke(entry.ref)
        assert len(table) == 0

    def test_revoke_all_refuses_active(self):
        table = GrantTable(domid=5)
        entry = table.grant(gfn=10, granted_to=0)
        table.map(entry.ref, 0)
        with pytest.raises(HypervisorError):
            table.revoke_all()
        table.force_unmap_all()
        assert table.revoke_all() == 1

    def test_capacity_enforced(self):
        table = GrantTable(domid=5, entries=2)
        table.grant(1, 0)
        table.grant(2, 0)
        with pytest.raises(HypervisorError, match="full"):
            table.grant(3, 0)


class TestPVLifecycleOnXen:
    def test_domain_gets_standard_plumbing(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        domain = xen.create_vm(VMConfig("g", vcpus=1, memory_bytes=GIB))
        channels = xen.event_channels.channels_of(domain.domid)
        assert len(channels) == 3  # xenstore + console + timer VIRQ
        assert domain.domid in xen.grant_tables

    def test_destroy_sweeps_pv_state(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        domain = xen.create_vm(VMConfig("g", vcpus=1, memory_bytes=GIB))
        xen.destroy_domain(domain.domid)
        assert xen.event_channels.channels_of(domain.domid) == []
        assert domain.domid not in xen.grant_tables

    def test_transplant_tears_down_pv_state(self, xen_host):
        """Xen-only PV plumbing does not follow the VM to KVM — it is
        VM_i State that is rebuilt as virtio on the other side."""
        xen = xen_host.hypervisor
        domain = next(iter(xen.domains.values()))
        # A PV driver pair in flight: grants + a bound channel.
        table = xen.grant_tables[domain.domid]
        for gfn in range(8):
            entry = table.grant(gfn, granted_to=0)
            table.map(entry.ref, 0)
        backend = xen.event_channels.alloc_unbound(0, domain.domid)
        xen.event_channels.bind_interdomain(domain.domid, 0, backend.port)

        HyperTP().inplace(xen_host, HypervisorKind.KVM, SimClock())

        # The old Xen object is gone from the machine; its tables emptied.
        assert xen.event_channels.channels_of(domain.domid) == []
        assert domain.domid not in xen.grant_tables
        assert xen_host.hypervisor.kind is HypervisorKind.KVM
