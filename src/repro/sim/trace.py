"""Back-compat shim: span tracing moved to :mod:`repro.obs`.

This module once held the whole tracing story (two report builders and a
chrome-trace exporter); it grew into the unified observability layer at
:mod:`repro.obs` — live sim-clock tracers, a metrics registry, and a
spec-correct Perfetto exporter.  Import from ``repro.obs`` in new code;
the old names keep working here.
"""

from repro.obs.trace import Span, Trace
from repro.obs.builders import trace_inplace, trace_migration

__all__ = ["Span", "Trace", "trace_inplace", "trace_migration"]
