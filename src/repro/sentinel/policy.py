"""Response policy: whether, when, and where to transplant.

The paper's operational loop (§1, §3.1) is a policy, not a mechanism:
critical flaw lands -> pick an unaffected hypervisor from the repertoire
-> transplant the fleet -> transplant back once the patch ships.  This
module encodes that loop's decision points so the responder stays a thin
event pump:

* **severity gate** — only flaws at or above the configured band trigger
  a response; the rest ride the ordinary patch cycle.
* **target scoring** — candidates must be *safe* (no open critical flaw
  affects them, the :class:`~repro.vulndb.advisor.TransplantAdvisor`
  check) and among safe candidates the one escaping the largest fraction
  of the source's recorded flaws wins
  (:func:`~repro.vulndb.surface.escape_report`), pool order breaking
  ties.
* **launch timing** — maintenance windows and a concurrent-campaign cap
  delay a decided response without changing it.
* **return scheduling** — each handled CVE carries a patch-cycle timer
  (``days_to_patch`` + the datacenter's application lag); when it fires
  the flaw closes and, if configured, hosts transplant back.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import SentinelError
from repro.vulndb.advisor import TransplantAdvisor
from repro.vulndb.cve import CVERecord, Severity
from repro.vulndb.data import VulnerabilityDatabase
from repro.vulndb.surface import escape_report

DAY_S = 86400.0

_SEVERITY_RANK = {
    Severity.LOW: 0,
    Severity.MEDIUM: 1,
    Severity.CRITICAL: 2,
}


@dataclass(frozen=True)
class PolicyConfig:
    """Knobs for the response policy (all deterministic)."""

    #: minimum severity band that triggers a transplant response
    severity_gate: str = "critical"
    #: datacenter lag between patch release and fleet-wide application
    patch_application_days: float = 2.0
    #: patch-cycle length assumed for CVEs with no recorded timeline
    default_days_to_patch: float = 60.0
    #: maintenance-window cadence; 0 disables windowing (launch any time)
    maintenance_window_every_s: float = 0.0
    #: how long each maintenance window stays open
    maintenance_window_length_s: float = 0.0
    #: per-host VM slots that must stay free for a campaign to launch
    min_free_slots: int = 0
    #: campaigns allowed in flight at once (queue beyond this)
    max_concurrent_campaigns: int = 1
    #: transplant back to the preferred hypervisor once the patch lands
    return_transplant: bool = True
    #: where returns go; None = the fleet's configured baseline hypervisor
    preferred_hypervisor: Optional[str] = None

    def __post_init__(self):
        try:
            Severity(self.severity_gate)
        except ValueError:
            raise SentinelError(
                f"unknown severity gate {self.severity_gate!r}"
            ) from None
        if self.patch_application_days < 0:
            raise SentinelError("patch application lag cannot be negative")
        if self.default_days_to_patch <= 0:
            raise SentinelError("default patch cycle must be positive")
        if self.maintenance_window_every_s < 0:
            raise SentinelError("maintenance cadence cannot be negative")
        if self.maintenance_window_length_s < 0:
            raise SentinelError("maintenance window length cannot be negative")
        if self.maintenance_window_every_s > 0 \
                and self.maintenance_window_length_s <= 0:
            raise SentinelError(
                "maintenance windows need a positive length"
            )
        if self.maintenance_window_length_s > 0 \
                and self.maintenance_window_every_s > 0 \
                and self.maintenance_window_length_s \
                > self.maintenance_window_every_s:
            raise SentinelError(
                "maintenance window cannot outlast its cadence"
            )
        if self.min_free_slots < 0:
            raise SentinelError("min_free_slots cannot be negative")
        if self.max_concurrent_campaigns < 1:
            raise SentinelError("need at least one concurrent campaign")


@dataclass(frozen=True)
class TargetChoice:
    """The policy's scored answer for one (source kind, trigger) pair."""

    target: str
    escape_fraction: float
    #: pool candidates rejected, as sorted "kind: reason" strings
    rejected: Tuple[str, ...]


class ResponsePolicy:
    """Pure decision logic over a database and a hypervisor pool."""

    def __init__(self, config: PolicyConfig, db: VulnerabilityDatabase,
                 pool: Sequence[str]):
        self.config = config
        self.db = db
        self.pool = list(pool)
        self._advisor = TransplantAdvisor(db, hypervisor_pool=self.pool)
        self._gate_rank = _SEVERITY_RANK[Severity(config.severity_gate)]

    # ------------------------------------------------------------------
    # severity gate

    def should_respond(self, record: CVERecord, current_kind: str) -> bool:
        """Does this disclosure warrant a transplant off ``current_kind``?"""
        if not record.affects(current_kind):
            return False
        return _SEVERITY_RANK[record.severity] >= self._gate_rank

    # ------------------------------------------------------------------
    # target scoring

    def is_safe(self, kind: str, open_cves: Sequence[str]) -> bool:
        """No open critical flaw affects ``kind`` (the advisor's rule)."""
        return not self._advisor.open_critical_flaws(kind, open_cves)

    def choose_target(self, current_kind: str,
                      open_cves: Sequence[str]) -> Optional[TargetChoice]:
        """Best safe destination for hosts currently on ``current_kind``.

        Safety is the advisor's rule — no open *critical* flaw may affect
        the candidate.  Among safe candidates the highest
        ``escape_fraction`` (share of the source's recorded flaws the
        move escapes) wins; strict pool order breaks exact ties, so the
        choice is deterministic for any pool.  Returns None when nothing
        in the pool is safe (the paper's residual-risk case: a common
        flaw pins the whole repertoire).
        """
        best: Optional[TargetChoice] = None
        rejected: List[str] = []
        for candidate in self.pool:
            if candidate == current_kind:
                continue
            blocking = self._advisor.open_critical_flaws(candidate, open_cves)
            if blocking:
                rejected.append(
                    candidate + ": vulnerable to "
                    + ", ".join(sorted(r.cve_id for r in blocking))
                )
                continue
            fraction = escape_report(
                self.db, current_kind, candidate,
                severity=Severity.CRITICAL,
            ).escape_fraction
            if best is None or fraction > best.escape_fraction:
                best = TargetChoice(target=candidate,
                                    escape_fraction=fraction,
                                    rejected=())
        if best is None:
            return None
        return TargetChoice(target=best.target,
                            escape_fraction=best.escape_fraction,
                            rejected=tuple(sorted(rejected)))

    # ------------------------------------------------------------------
    # launch timing

    def launch_at(self, now_s: float) -> float:
        """Earliest time >= now the maintenance policy allows a launch."""
        every = self.config.maintenance_window_every_s
        if every <= 0:
            return now_s
        length = self.config.maintenance_window_length_s
        offset = now_s % every
        if offset < length:
            return now_s  # inside the current window
        return now_s + (every - offset)  # wait for the next one to open

    # ------------------------------------------------------------------
    # return scheduling

    def patch_closes_at(self, record: CVERecord,
                        disclosed_at_s: float) -> float:
        """When the ordinary patch cycle closes this flaw fleet-wide."""
        release_days = record.days_to_patch
        if release_days is None:
            release_days = self.config.default_days_to_patch
        total_days = release_days + self.config.patch_application_days
        return disclosed_at_s + total_days * DAY_S
