"""Public-API surface tests: the README's promises hold."""

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_readme_quickstart_runs(self):
        from repro import (HyperTP, HypervisorKind, Machine, M1_SPEC,
                           VMConfig, XenHypervisor, SimClock)

        machine = Machine(M1_SPEC)
        xen = XenHypervisor()
        xen.boot(machine)
        xen.create_vm(VMConfig("vm0", vcpus=1))
        report = HyperTP().inplace(machine, HypervisorKind.KVM, SimClock())
        assert report.downtime_s == pytest.approx(1.7, abs=0.2)

    def test_errors_are_catchable_from_base(self):
        from repro import ReproError
        from repro.errors import (
            ClusterError,
            HypervisorError,
            MigrationError,
            OrchestratorError,
            PRAMError,
            TransplantError,
            UISRError,
            VulnDBError,
        )

        for exc_type in (ClusterError, HypervisorError, MigrationError,
                         OrchestratorError, PRAMError, TransplantError,
                         UISRError, VulnDBError):
            assert issubclass(exc_type, ReproError)


class TestSubpackageSurfaces:
    def test_workloads_exports(self):
        from repro import workloads

        for name in workloads.__all__:
            assert hasattr(workloads, name)

    def test_orchestrator_exports(self):
        from repro import orchestrator

        for name in orchestrator.__all__:
            assert hasattr(orchestrator, name)

    def test_vulndb_exports(self):
        from repro import vulndb

        for name in vulndb.__all__:
            assert hasattr(vulndb, name)

    def test_storage_exports(self):
        from repro import storage

        for name in storage.__all__:
            assert hasattr(storage, name)

    def test_cluster_exports(self):
        from repro import cluster

        for name in cluster.__all__:
            assert hasattr(cluster, name)

    def test_sim_exports(self):
        from repro import sim

        for name in sim.__all__:
            assert hasattr(sim, name)


class TestDocumentationArtifacts:
    def test_repo_documents_exist(self):
        from pathlib import Path

        root = Path(repro.__file__).resolve().parents[2]
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                    "docs/cost-model.md", "docs/extending.md",
                    "docs/paper-mapping.md"):
            assert (root / doc).is_file(), f"{doc} missing"

    def test_public_classes_have_docstrings(self):
        from repro import (HyperTP, InPlaceTP, LiveMigration, MigrationTP,
                           NovaCompute, TransplantAdvisor, UpgradeCampaign)

        for cls in (HyperTP, InPlaceTP, LiveMigration, MigrationTP,
                    NovaCompute, TransplantAdvisor, UpgradeCampaign):
            assert cls.__doc__ and cls.__doc__.strip()

    def test_every_module_has_a_docstring(self):
        import importlib
        import pkgutil

        missing = []
        package = repro
        for info in pkgutil.walk_packages(package.__path__,
                                          prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ and module.__doc__.strip()):
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"
