"""Converter registry.

The paper structures hypervisor support around ``to_uisr_xxx`` /
``from_uisr_xxx`` functions written by each hypervisor's expert (§3.1).  The
registry holds those functions keyed by hypervisor kind, so adding a third
hypervisor to the repertoire is a matter of registering one converter pair —
no other hypervisor needs to know about it.
"""

from typing import Callable, Dict, Optional

from repro.errors import UISRError
from repro.hypervisors.base import HypervisorKind
from repro.core.uisr.format import UISRVMState

ToUISR = Callable[..., UISRVMState]
FromUISR = Callable[..., object]


class ConverterRegistry:
    """Maps hypervisor kinds to their UISR converter pair."""

    def __init__(self):
        self._to_uisr: Dict[HypervisorKind, ToUISR] = {}
        self._from_uisr: Dict[HypervisorKind, FromUISR] = {}

    def register(self, kind: HypervisorKind, to_uisr: ToUISR,
                 from_uisr: FromUISR) -> None:
        self._to_uisr[kind] = to_uisr
        self._from_uisr[kind] = from_uisr

    def supported_kinds(self):
        return sorted(set(self._to_uisr) & set(self._from_uisr),
                      key=lambda k: k.value)

    def to_uisr(self, kind: HypervisorKind) -> ToUISR:
        try:
            return self._to_uisr[kind]
        except KeyError:
            raise UISRError(
                f"no to_uisr converter registered for {kind.value}"
            ) from None

    def from_uisr(self, kind: HypervisorKind) -> FromUISR:
        try:
            return self._from_uisr[kind]
        except KeyError:
            raise UISRError(
                f"no from_uisr converter registered for {kind.value}"
            ) from None


_default: Optional["ConverterRegistry"] = None


def default_registry() -> ConverterRegistry:
    """The registry pre-populated with the Xen and KVM converter pairs."""
    global _default
    if _default is None:
        from repro.core.convert import (
            from_uisr_kvm,
            from_uisr_xen,
            to_uisr_kvm,
            to_uisr_xen,
        )
        from repro.core.convert.nova_uisr import from_uisr_nova, to_uisr_nova

        registry = ConverterRegistry()
        registry.register(HypervisorKind.XEN, to_uisr_xen, from_uisr_xen)
        registry.register(HypervisorKind.KVM, to_uisr_kvm, from_uisr_kvm)
        registry.register(HypervisorKind.NOVA, to_uisr_nova, from_uisr_nova)
        _default = registry
    return _default
