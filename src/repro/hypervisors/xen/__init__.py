"""Xen-like type-I hypervisor substrate.

Components mirror the real Xen stack the paper re-engineered:

* :mod:`formats` — HVM-context typed save records (the ``xc_domain_hvm_get/
  setcontext`` blob format).
* :mod:`npt` — p2m nested page table with Xen's management policy.
* :mod:`scheduler` — credit-scheduler run queues (VM Management State).
* :mod:`toolstack` — libxenctrl/libxl-style control surface.
* :mod:`hypervisor` — the hypervisor itself (hypervisor kernel + dom0).

Xen's live-migration behaviour (sequential receive side) is modeled in
:mod:`repro.core.migration`, which both baselines share.
"""

from repro.hypervisors.xen.hypervisor import XenHypervisor
from repro.hypervisors.xen.toolstack import XenToolstack

__all__ = ["XenHypervisor", "XenToolstack"]
