"""Tests for the attack-surface analysis."""

import pytest

from repro.errors import VulnDBError
from repro.vulndb.cve import Severity
from repro.vulndb.data import load_default_database
from repro.vulndb.surface import (
    escape_report,
    interfaces_of,
    per_interface_exposure,
    repertoire_coverage,
    shared_components,
)


@pytest.fixture(scope="module")
def db():
    return load_default_database()


class TestInventory:
    def test_xen_exposes_pv_and_toolstack(self):
        names = {i.name for i in interfaces_of("xen")}
        assert "pv" in names and "toolstack" in names

    def test_kvm_exposes_ioctls(self):
        names = {i.name for i in interfaces_of("kvm")}
        assert "ioctl" in names
        assert "pv" not in names

    def test_nova_has_no_qemu(self):
        names = {i.name for i in interfaces_of("nova")}
        assert "qemu" not in names

    def test_unknown_kind_rejected(self):
        with pytest.raises(VulnDBError):
            interfaces_of("esxi")

    def test_sharing_is_symmetric(self):
        assert shared_components("xen", "kvm") == \
            shared_components("kvm", "xen")
        assert shared_components("xen", "kvm") == {"hardware", "qemu"}
        assert shared_components("xen", "nova") == {"hardware"}


class TestExposure:
    def test_pv_dominates_xen_criticals(self, db):
        exposure = per_interface_exposure(db, "xen", Severity.CRITICAL)
        assert exposure["pv"] == max(exposure.values())
        assert sum(exposure.values()) == 55

    def test_kvm_exposure_sums_to_13(self, db):
        exposure = per_interface_exposure(db, "kvm", Severity.CRITICAL)
        assert sum(exposure.values()) == 13


class TestEscape:
    def test_xen_to_kvm_escapes_almost_everything(self, db):
        report = escape_report(db, "xen", "kvm", Severity.CRITICAL)
        # Only 1 of 55 critical Xen flaws (the shared QEMU one) follows.
        assert report.total_flaws == 55
        assert report.escaped_flaws == 54
        assert report.escape_fraction > 0.98

    def test_xen_to_nova_escapes_everything(self, db):
        # NOVA carries no QEMU; all recorded Xen flaws are escaped (the
        # dataset has no hardware-class flaw marked as affecting nova).
        report = escape_report(db, "xen", "nova", Severity.CRITICAL)
        assert report.escape_fraction == 1.0
        assert report.shared == {"hardware"}

    def test_medium_band_counts_commons(self, db):
        report = escape_report(db, "xen", "kvm", Severity.MEDIUM)
        # Two shared medium flaws (#AC/#DB) follow to KVM.
        assert report.total_flaws - report.escaped_flaws == 2

    def test_repertoire_coverage_improves_with_nova(self, db):
        two = repertoire_coverage(db, ["xen", "kvm"])
        three = repertoire_coverage(db, ["xen", "kvm", "nova"])
        assert three["xen"] >= two["xen"]
        assert three["kvm"] >= two["kvm"]
        assert all(v > 0.9 for v in three.values())
