"""Rule registry and the analysis driver.

Rules are small classes with a ``check(project)`` generator; registering is
one decorator.  :func:`run_analysis` runs every requested rule over a
:class:`~repro.analysis.project.Project`, drops findings the source
suppresses inline, and returns the rest sorted by location.
"""

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.errors import ReproError
from repro.analysis.findings import Finding, Severity, is_suppressed
from repro.analysis.project import Project


class AnalysisError(ReproError):
    """Raised for analysis-pass misuse (unknown rule, duplicate name)."""


class Rule(abc.ABC):
    """One analysis rule.

    Subclasses set ``name`` (kebab-case, stable — it is the suppression
    key) and ``description`` (one line, shown by ``repro lint
    --list-rules``), and yield :class:`Finding` objects from ``check``.
    """

    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR

    @abc.abstractmethod
    def check(self, project: Project) -> Iterable[Finding]:
        """Yield findings for ``project``."""

    def finding(self, path: str, line: int, message: str,
                symbol: str = "",
                severity: Optional[Severity] = None) -> Finding:
        return Finding(
            rule=self.name,
            severity=severity or self.default_severity,
            path=path,
            line=line,
            message=message,
            symbol=symbol,
        )


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.name:
        raise AnalysisError(f"rule {rule_cls.__name__} has no name")
    if rule_cls.name in _RULES:
        raise AnalysisError(f"duplicate rule name {rule_cls.name!r}")
    _RULES[rule_cls.name] = rule_cls
    return rule_cls


def all_rules() -> List[Type[Rule]]:
    return [_RULES[name] for name in sorted(_RULES)]


def run_analysis(project: Project,
                 rule_names: Optional[Sequence[str]] = None
                 ) -> Tuple[List[Finding], int]:
    """Run rules over ``project``.

    Returns ``(findings, suppressed_count)``: the findings that survived
    inline suppression, sorted by path/line/rule, and how many were
    silenced by ``# repro-lint: disable=`` directives.
    """
    if rule_names is None:
        selected = all_rules()
    else:
        unknown = sorted(set(rule_names) - set(_RULES))
        if unknown:
            raise AnalysisError(
                f"unknown rule(s) {unknown}; known: {sorted(_RULES)}"
            )
        selected = [_RULES[name] for name in sorted(set(rule_names))]

    kept: List[Finding] = []
    suppressed = 0
    for rule_cls in selected:
        rule = rule_cls()
        for finding in rule.check(project):
            module = project.get(finding.path)
            if module is not None and is_suppressed(finding, module.lines):
                suppressed += 1
            else:
                kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return kept, suppressed
