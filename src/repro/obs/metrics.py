"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry replaces the ad-hoc dicts the fleet and workload layers used
to accumulate numbers in.  Three instrument types cover the paper's
reporting needs:

* :class:`Counter` — monotonically-increasing totals (retries, migrations);
* :class:`Gauge` — point-in-time values (fleet window, hosts in flight);
* :class:`Histogram` — distributions over **fixed** bucket bounds, so two
  runs of the same campaign fill the same buckets and snapshots diff
  cleanly (per-host vulnerability windows, workload samples).

Snapshots are deterministic by construction: metric names sort, bucket
bounds are part of the metric's identity, and the JSON export uses sorted
keys — the same run always serializes to the same bytes.
"""

import json
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError

#: default histogram bounds (seconds): sub-ms to one hour, roughly
#: logarithmic — wide enough for workload samples and campaign windows.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyz0123456789_"
)


def _check_name(name: str) -> str:
    if not name or not set(name) <= _NAME_OK or name[0].isdigit():
        raise ObservabilityError(
            f"bad metric name {name!r}: use lowercase [a-z0-9_], "
            f"not starting with a digit"
        )
    return name


class Counter:
    """A monotonically-increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: Union[int, float] = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name}: cannot increment by {amount}"
            )
        self._value += float(amount)

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "help": self.help, "value": self._value}


class UpdateSequencer:
    """A monotonic stamp source shared by a registry's gauges.

    Gauges are point-in-time values, so merging shard snapshots needs to
    know *which shard wrote last*, not which value is largest.  Every
    gauge update draws the next stamp; the stamp lands in the gauge's
    snapshot and :func:`repro.par.shard.merge_snapshots` keeps the value
    with the highest one.  Shards that partition one logical timeline
    pass disjoint ``start`` offsets (see ``MetricsRegistry(seq_start=)``)
    so cross-shard updates stay ordered.
    """

    def __init__(self, start: int = 0):
        if start < 0:
            raise ObservabilityError(
                f"sequencer start must be >= 0, got {start}"
            )
        self._last = int(start)

    def next(self) -> int:
        self._last += 1
        return self._last


class Gauge:
    """A value that can go up and down.

    Each update stamps the gauge with the next value from its
    ``sequencer`` (a private one when constructed standalone), recorded
    in snapshots as ``seq`` — the last-writer tiebreaker shard merging
    needs for values that legitimately decrease.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 sequencer: Optional[UpdateSequencer] = None):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0
        self._sequencer = sequencer or UpdateSequencer()
        self._seq = 0

    @property
    def value(self) -> float:
        return self._value

    @property
    def seq(self) -> int:
        """Stamp of the last update (0 = never updated)."""
        return self._seq

    def set(self, value: Union[int, float]) -> None:
        self._value = float(value)
        self._seq = self._sequencer.next()

    def inc(self, amount: Union[int, float] = 1.0) -> None:
        self._value += float(amount)
        self._seq = self._sequencer.next()

    def dec(self, amount: Union[int, float] = 1.0) -> None:
        self._value -= float(amount)
        self._seq = self._sequencer.next()

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "help": self.help, "value": self._value,
                "seq": self._seq}


class Histogram:
    """A distribution over fixed, ascending bucket upper bounds.

    ``counts[i]`` is the number of observations ``<= bounds[i]``
    (non-cumulative); observations above the last bound land in the
    implicit overflow bucket.  Bounds are fixed at creation so snapshots
    of different runs are structurally comparable.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram {name}: bucket bounds must be non-empty, "
                f"strictly ascending and unique, got {list(buckets)}"
            )
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    def bucket_counts(self) -> List[Tuple[Optional[float], int]]:
        """``(upper_bound, count)`` pairs; ``None`` bound = overflow."""
        bounds: List[Optional[float]] = list(self.bounds)
        bounds.append(None)
        return list(zip(bounds, self._counts))

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "help": self.help,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in self.bucket_counts()
            ],
        }


SNAPSHOT_FORMAT = "hypertp-metrics"
#: version 2 added ``seq`` (last-update stamp) to gauge snapshots
SNAPSHOT_VERSION = 2


class MetricsRegistry:
    """Named instruments with get-or-create semantics and JSON snapshots.

    ``seq_start`` offsets the registry's gauge-update sequencer; shards
    that partition one logical run give each shard a disjoint range
    (e.g. ``shard_index * 10**9``) so merged gauges resolve to the true
    latest writer rather than the largest value.
    """

    def __init__(self, seq_start: int = 0):
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._sequencer = UpdateSequencer(seq_start)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str):
        return self._metrics.get(name)

    def _register(self, name: str, kind, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind.kind}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(
            name, Gauge, lambda: Gauge(name, help, self._sequencer)
        )

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._register(
            name, Histogram, lambda: Histogram(name, help, buckets)
        )
        if metric.bounds != tuple(float(b) for b in buckets):
            raise ObservabilityError(
                f"histogram {name!r} already registered with buckets "
                f"{list(metric.bounds)}"
            )
        return metric

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view of every metric, keyed and sorted by name."""
        return {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "metrics": {
                name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)
            },
        }

    def to_json(self) -> str:
        """Deterministic JSON: same instruments and values, same bytes."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)
