"""Xen HVM-context save-record format.

Xen serializes a domain's platform state as one blob of typed records, each
with a (typecode, instance, length) header — the format handled by
``xc_domain_hvm_getcontext`` / ``setcontext``.  We model that structure
directly: per-vCPU CPU records, per-vCPU LAPIC + LAPIC_REGS records, shared
MTRR/XSAVE/IOAPIC/PIT records, with a HEADER record first and an END record
last.  The IOAPIC record carries Xen's 48 pins.

The byte layout here is this library's own (we are not copying Xen's exact
struct packing), but the *shape* — typed records, one blob, 48-pin IOAPIC,
MTRR as its own record rather than MSRs — reproduces the heterogeneity the
UISR converters must bridge (Table 2).
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import StateFormatError
from repro.guest.devices import (
    IOAPICPin,
    IOAPICState,
    LAPICState,
    MTRRState,
    PITState,
    PlatformState,
    XSAVEState,
)
from repro.guest.vcpu import SegmentDescriptor, VCPUState
from repro.hypervisors.state import Packer, Unpacker

# Record typecodes (HVM_SAVE_CODE analogues).
REC_HEADER = 1
REC_CPU = 2
REC_LAPIC = 3
REC_LAPIC_REGS = 4
REC_MTRR = 5
REC_XSAVE = 6
REC_IOAPIC = 7
REC_PIT = 8
REC_END = 0

XEN_MAGIC = 0x58454E48  # "XENH"
XEN_VERSION = 2


@dataclass(frozen=True)
class Record:
    """One typed save record."""

    typecode: int
    instance: int
    payload: bytes


def _pack_records(records: List[Record]) -> bytes:
    packer = Packer()
    for record in records:
        packer.u16(record.typecode).u16(record.instance)
        packer.u32(len(record.payload)).raw(record.payload)
    return packer.bytes()


def _unpack_records(blob: bytes) -> List[Record]:
    unpacker = Unpacker(blob)
    records: List[Record] = []
    while unpacker.remaining:
        typecode = unpacker.u16()
        instance = unpacker.u16()
        length = unpacker.u32()
        payload = unpacker.raw(length)
        records.append(Record(typecode, instance, payload))
        if typecode == REC_END:
            break
    unpacker.expect_end()
    if not records or records[-1].typecode != REC_END:
        raise StateFormatError("Xen HVM context missing END record")
    return records


# -- per-record encoders -----------------------------------------------------

def _encode_header(vcpus: int) -> bytes:
    return Packer().u32(XEN_MAGIC).u32(XEN_VERSION).u32(vcpus).bytes()


def _decode_header(payload: bytes) -> int:
    unpacker = Unpacker(payload)
    magic = unpacker.u32()
    version = unpacker.u32()
    vcpus = unpacker.u32()
    unpacker.expect_end()
    if magic != XEN_MAGIC:
        raise StateFormatError(f"bad Xen HVM magic {magic:#x}")
    if version != XEN_VERSION:
        raise StateFormatError(f"unsupported Xen HVM version {version}")
    return vcpus


def _encode_cpu(vcpu: VCPUState) -> bytes:
    packer = Packer()
    packer.u32(vcpu.index)
    packer.u32(len(vcpu.gp))
    for name in sorted(vcpu.gp):
        packer.u8(len(name)).raw(name.encode()).u64(vcpu.gp[name])
    packer.u32(len(vcpu.segments))
    for name in sorted(vcpu.segments):
        seg = vcpu.segments[name]
        packer.u8(len(name)).raw(name.encode())
        packer.u16(seg.selector).u64(seg.base).u32(seg.limit).u16(seg.attributes)
    packer.u32(len(vcpu.control))
    for name in sorted(vcpu.control):
        packer.u8(len(name)).raw(name.encode()).u64(vcpu.control[name])
    packer.u32(len(vcpu.msrs))
    for msr in sorted(vcpu.msrs):
        packer.u32(msr).u64(vcpu.msrs[msr])
    packer.u64_seq(vcpu.fpu)
    packer.u64(vcpu.xcr0)
    return packer.bytes()


def _decode_cpu(payload: bytes) -> VCPUState:
    unpacker = Unpacker(payload)
    index = unpacker.u32()
    gp = {}
    for _ in range(unpacker.u32()):
        name = unpacker.raw(unpacker.u8()).decode()
        gp[name] = unpacker.u64()
    segments = {}
    for _ in range(unpacker.u32()):
        name = unpacker.raw(unpacker.u8()).decode()
        segments[name] = SegmentDescriptor(
            selector=unpacker.u16(),
            base=unpacker.u64(),
            limit=unpacker.u32(),
            attributes=unpacker.u16(),
        )
    control = {}
    for _ in range(unpacker.u32()):
        name = unpacker.raw(unpacker.u8()).decode()
        control[name] = unpacker.u64()
    msrs = {}
    for _ in range(unpacker.u32()):
        msr = unpacker.u32()
        msrs[msr] = unpacker.u64()
    fpu = unpacker.u64_seq()
    xcr0 = unpacker.u64()
    unpacker.expect_end()
    return VCPUState(
        index=index, gp=gp, segments=segments, control=control,
        msrs=msrs, fpu=fpu, xcr0=xcr0,
    )


def _encode_lapic(lapic: LAPICState) -> bytes:
    return Packer().u32(lapic.apic_id).u64(lapic.apic_base_msr).bytes()


# Xen splits the LAPIC across two HVM records (REC_LAPIC holds the id and
# base MSR, REC_LAPIC_REGS the register page); _decode_lapic consumes both
# payloads at once, so neither half matches a decoder one-for-one.
def _encode_lapic_regs(lapic: LAPICState) -> bytes:  # repro-lint: disable=codec-symmetry
    packer = Packer()
    packer.u32(lapic.task_priority).u32(lapic.spurious_vector)
    packer.u32(lapic.lvt_timer).u32(lapic.lvt_lint0).u32(lapic.lvt_lint1)
    packer.u32(lapic.timer_initial_count).u32(lapic.timer_divide)
    packer.u64_seq(lapic.isr)
    packer.u64_seq(lapic.irr)
    return packer.bytes()


def _decode_lapic(payload: bytes, regs_payload: bytes) -> LAPICState:  # repro-lint: disable=codec-symmetry
    head = Unpacker(payload)
    apic_id = head.u32()
    apic_base = head.u64()
    head.expect_end()
    regs = Unpacker(regs_payload)
    lapic = LAPICState(
        apic_id=apic_id,
        apic_base_msr=apic_base,
        task_priority=regs.u32(),
        spurious_vector=regs.u32(),
        lvt_timer=regs.u32(),
        lvt_lint0=regs.u32(),
        lvt_lint1=regs.u32(),
        timer_initial_count=regs.u32(),
        timer_divide=regs.u32(),
        isr=regs.u64_seq(),
        irr=regs.u64_seq(),
    )
    regs.expect_end()
    return lapic


def _encode_mtrr(mtrr: MTRRState) -> bytes:
    packer = Packer()
    packer.u32(mtrr.default_type)
    packer.u64_seq(mtrr.fixed)
    packer.u32(len(mtrr.variable))
    for base, mask in mtrr.variable:
        packer.u64(base).u64(mask)
    return packer.bytes()


def _decode_mtrr(payload: bytes) -> MTRRState:
    unpacker = Unpacker(payload)
    default_type = unpacker.u32()
    fixed = unpacker.u64_seq()
    variable = tuple(
        (unpacker.u64(), unpacker.u64()) for _ in range(unpacker.u32())
    )
    unpacker.expect_end()
    return MTRRState(default_type=default_type, fixed=fixed, variable=variable)


def _encode_xsave(xsave: XSAVEState) -> bytes:
    packer = Packer()
    packer.u64(xsave.xstate_bv).u64(xsave.xcomp_bv)
    packer.u64_seq(xsave.blocks)
    return packer.bytes()


def _decode_xsave(payload: bytes) -> XSAVEState:
    unpacker = Unpacker(payload)
    xsave = XSAVEState(
        xstate_bv=unpacker.u64(),
        xcomp_bv=unpacker.u64(),
        blocks=unpacker.u64_seq(),
    )
    unpacker.expect_end()
    return xsave


def _encode_ioapic(ioapic: IOAPICState) -> bytes:
    packer = Packer()
    packer.u32(ioapic.ioapic_id)
    packer.u32(len(ioapic.pins))
    for pin in ioapic.pins:
        packer.u8(pin.vector)
        packer.u8(1 if pin.masked else 0)
        packer.u8(1 if pin.trigger_level else 0)
        packer.u8(pin.dest_apic)
    return packer.bytes()


def _decode_ioapic(payload: bytes) -> IOAPICState:
    unpacker = Unpacker(payload)
    ioapic_id = unpacker.u32()
    count = unpacker.u32()
    pins = [
        IOAPICPin(
            vector=unpacker.u8(),
            masked=bool(unpacker.u8()),
            trigger_level=bool(unpacker.u8()),
            dest_apic=unpacker.u8(),
        )
        for _ in range(count)
    ]
    unpacker.expect_end()
    return IOAPICState(pins=pins, ioapic_id=ioapic_id)


def _encode_pit(pit: PITState) -> bytes:
    packer = Packer()
    for count in pit.channel_counts:
        packer.u32(count)
    for mode in pit.channel_modes:
        packer.u8(mode)
    packer.u8(1 if pit.speaker_enabled else 0)
    return packer.bytes()


def _decode_pit(payload: bytes) -> PITState:
    unpacker = Unpacker(payload)
    counts = tuple(unpacker.u32() for _ in range(3))
    modes = tuple(unpacker.u8() for _ in range(3))
    speaker = bool(unpacker.u8())
    unpacker.expect_end()
    return PITState(channel_counts=counts, channel_modes=modes,
                    speaker_enabled=speaker)


# -- whole-context API ---------------------------------------------------------

def encode_hvm_context(vcpus: List[VCPUState], platform: PlatformState) -> bytes:
    """Serialize full platform state as a Xen HVM-context blob."""
    if len(platform.lapics) != len(vcpus) or len(platform.xsave) != len(vcpus):
        raise StateFormatError("platform per-vCPU state count mismatch")
    records = [Record(REC_HEADER, 0, _encode_header(len(vcpus)))]
    for vcpu in vcpus:
        records.append(Record(REC_CPU, vcpu.index, _encode_cpu(vcpu)))
    for i, lapic in enumerate(platform.lapics):
        records.append(Record(REC_LAPIC, i, _encode_lapic(lapic)))
        records.append(Record(REC_LAPIC_REGS, i, _encode_lapic_regs(lapic)))
    records.append(Record(REC_MTRR, 0, _encode_mtrr(platform.mtrr)))
    for i, xsave in enumerate(platform.xsave):
        records.append(Record(REC_XSAVE, i, _encode_xsave(xsave)))
    records.append(Record(REC_IOAPIC, 0, _encode_ioapic(platform.ioapic)))
    records.append(Record(REC_PIT, 0, _encode_pit(platform.pit)))
    records.append(Record(REC_END, 0, b""))
    return _pack_records(records)


def decode_hvm_context(blob: bytes) -> Tuple[List[VCPUState], PlatformState]:
    """Parse a Xen HVM-context blob back into vCPU + platform state."""
    records = _unpack_records(blob)
    if records[0].typecode != REC_HEADER:
        raise StateFormatError("Xen HVM context must start with HEADER")
    vcpu_count = _decode_header(records[0].payload)

    by_type = {}
    for record in records[1:-1]:
        by_type.setdefault(record.typecode, {})[record.instance] = record.payload

    cpus = by_type.get(REC_CPU, {})
    lapics = by_type.get(REC_LAPIC, {})
    lapic_regs = by_type.get(REC_LAPIC_REGS, {})
    xsaves = by_type.get(REC_XSAVE, {})
    if (len(cpus) != vcpu_count or len(lapics) != vcpu_count
            or len(lapic_regs) != vcpu_count or len(xsaves) != vcpu_count):
        raise StateFormatError(
            f"per-vCPU record counts disagree with header ({vcpu_count} vCPUs)"
        )

    vcpus = [_decode_cpu(cpus[i]) for i in range(vcpu_count)]
    platform = PlatformState(
        lapics=[_decode_lapic(lapics[i], lapic_regs[i]) for i in range(vcpu_count)],
        ioapic=_decode_ioapic(by_type[REC_IOAPIC][0]),
        pit=_decode_pit(by_type[REC_PIT][0]),
        mtrr=_decode_mtrr(by_type[REC_MTRR][0]),
        xsave=[_decode_xsave(xsaves[i]) for i in range(vcpu_count)],
    )
    # Re-attach per-vCPU data that Xen stores apart from the CPU record.
    for vcpu, lapic in zip(vcpus, platform.lapics):
        vcpu.apic_id = lapic.apic_id
    return vcpus, platform
