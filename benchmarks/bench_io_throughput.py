"""repro.io streaming codec throughput and dedup ratio across guest sizes.

All three state-movement paths (wire, PRAM, plan blobs) encode through the
``repro.io`` frame layer, so this bench measures that layer directly: page
batches of duplicate-heavy and unique-content guest images are pushed
through the shared :class:`~repro.io.pages.PageStreamEncoder` in
wire-sized batches, round-tripped, and the encode/decode throughput plus
the dedup ratio recorded; PRAM entry records exercise the run-coalescing
codec the same way.

Emits ``BENCH_io_throughput.json`` next to this file (override with
``--json PATH``); ``--smoke`` restricts to the smallest guest for CI.
The JSON holds only deterministic fields (bytes, counts, ratios — never
wall time), so two seeded runs produce byte-identical artifacts; the
wall-clock guard lives in the test, not the document.
"""

import argparse
import json
import random
import time
from pathlib import Path

from repro.bench.report import format_table, print_experiment
from repro.core.wire import MAX_BATCH_PAGES
from repro.io import (
    PageStreamDecoder,
    PageStreamEncoder,
    decode_entry_records,
    encode_entry_records,
)

GUEST_PAGES = [512, 4096, 16384]
SMOKE_PAGES = [512]

#: fraction of distinct page contents in the duplicate-heavy image —
#: zero-filled and copy-on-write pages make real guests look like this.
DUP_HEAVY_UNIQUE = 0.25
SEED = 42

DEFAULT_JSON_PATH = Path(__file__).resolve().parent / "BENCH_io_throughput.json"


def guest_pages(page_count, unique_fraction, seed=SEED):
    """Synthesize (gfn, digest) records with a bounded content pool."""
    rng = random.Random(seed)
    if unique_fraction >= 1.0:
        return [(gfn, rng.getrandbits(63) | 1) for gfn in range(page_count)]
    unique = max(1, int(page_count * unique_fraction))
    pool = [rng.getrandbits(63) | 1 for _ in range(unique)]
    return [(gfn, pool[rng.randrange(unique)]) for gfn in range(page_count)]


def measure_pages(page_count, unique_fraction, seed=SEED):
    """Round-trip one guest image through the page-batch codec."""
    records = guest_pages(page_count, unique_fraction, seed)
    encoder = PageStreamEncoder()
    started = time.perf_counter()
    batches = [
        encoder.encode_batch(records[start:start + MAX_BATCH_PAGES])
        for start in range(0, len(records), MAX_BATCH_PAGES)
    ]
    encode_s = time.perf_counter() - started
    decoder = PageStreamDecoder()
    started = time.perf_counter()
    decoded = [page for batch in batches for page in decoder.decode_batch(batch)]
    decode_s = time.perf_counter() - started
    if decoded != records:
        raise AssertionError("page-batch round trip corrupted records")
    stats = encoder.stats
    return {
        "pages": page_count,
        "unique_fraction": unique_fraction,
        "batches": stats.batches,
        "unique_digests": stats.unique_digests,
        "dedup_hits": stats.dedup_hits,
        "logical_bytes": stats.logical_bytes,
        "encoded_bytes": stats.encoded_bytes,
        "dedup_ratio": round(stats.ratio, 6),
    }, encode_s, decode_s


def measure_entries(entry_count):
    """Round-trip contiguous PRAM entries through the run codec."""
    records = [(gfn, gfn + 1024, 9) for gfn in range(entry_count)]
    encoded = encode_entry_records(records)
    if decode_entry_records(encoded) != records:
        raise AssertionError("entry-record round trip corrupted records")
    raw_bytes = 8 * entry_count
    return {
        "entries": entry_count,
        "raw_bytes": raw_bytes,
        "encoded_bytes": len(encoded),
        "coalesce_ratio": round(raw_bytes / len(encoded), 6),
    }


def run(smoke=False):
    """The sweep; returns (json-ready results, wall-clock rows)."""
    sizes = SMOKE_PAGES if smoke else GUEST_PAGES
    page_results = []
    walls = []
    for pages in sizes:
        for unique_fraction in (DUP_HEAVY_UNIQUE, 1.0):
            entry, encode_s, decode_s = measure_pages(pages, unique_fraction)
            page_results.append(entry)
            walls.append((pages, unique_fraction, encode_s, decode_s))
    results = {
        "pages": page_results,
        "pram_entries": [measure_entries(n) for n in sizes],
    }
    return results, walls


def write_json(results, path=DEFAULT_JSON_PATH):
    document = {
        "format": "hypertp-bench-io-throughput",
        "version": 1,
        "seed": SEED,
        "results": results,
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


def to_rows(results, walls):
    rows = []
    wall_by_key = {(w[0], w[1]): (w[2], w[3]) for w in walls}
    for entry in results["pages"]:
        encode_s, decode_s = wall_by_key[
            (entry["pages"], entry["unique_fraction"])]
        throughput = (entry["logical_bytes"] / max(encode_s, 1e-9)) / (1 << 20)
        rows.append([
            entry["pages"],
            f"{entry['unique_fraction']:.0%}",
            entry["unique_digests"],
            entry["dedup_hits"],
            entry["encoded_bytes"],
            f"{entry['dedup_ratio']:.2f}",
            f"{throughput:.1f}",
            f"{decode_s * 1000:.2f}",
        ])
    return rows


HEADERS = ["pages", "unique", "digests", "dedup hits", "enc bytes",
           "ratio", "enc MB/s", "dec (ms)"]


def test_io_throughput_sweep(benchmark):
    results, walls = benchmark.pedantic(run, kwargs={"smoke": True},
                                        rounds=1, iterations=1)
    write_json(results)
    print_experiment("io throughput", "codec throughput and dedup ratio",
                     format_table(HEADERS, to_rows(results, walls)))


def test_dedup_ratio_beats_baseline():
    """A duplicate-heavy image must compress (> 1.0) vs raw records."""
    entry, _, _ = measure_pages(4096, DUP_HEAVY_UNIQUE)
    assert entry["dedup_ratio"] > 1.0
    assert entry["dedup_hits"] > 0


def test_wall_clock_guard():
    """The largest sweep point stays cheap — the codec is O(pages)."""
    started = time.perf_counter()
    measure_pages(GUEST_PAGES[-1], DUP_HEAVY_UNIQUE)
    assert time.perf_counter() - started < 10.0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smallest guest only (CI)")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        default=str(DEFAULT_JSON_PATH))
    args = parser.parse_args()
    results, walls = run(smoke=args.smoke)
    path = write_json(results, args.json_path)
    print_experiment("io throughput", "codec throughput and dedup ratio",
                     format_table(HEADERS, to_rows(results, walls)))
    print(f"JSON written to {path}")


if __name__ == "__main__":
    main()
