"""UISR -> Xen restoration (the ``from_uisr_*`` side for Xen).

The reverse direction of the paper's focus chapter: KVM -> Xen.  Encodes the
UISR content as a Xen HVM-context blob and loads it through
``xc_domain_hvm_setcontext``.  Xen's 48-pin IOAPIC means a 24-pin table from
KVM is grown with disconnected pins.  For InPlaceTP, guest memory is adopted
through the PRAM filesystem API the paper added to Xen (§4.2.2).
"""

from repro.errors import UISRError
from repro.guest.devices import XEN_IOAPIC_PINS
from repro.hypervisors.base import Domain, HypervisorKind
from repro.hypervisors.xen import formats
from repro.hypervisors.xen.hypervisor import XenHypervisor
from repro.core.convert.compat import apply_platform_fixups
from repro.core.convert.verify import verify_restore_target
from repro.core.uisr.format import UISRVMState


def from_uisr_xen(hypervisor: XenHypervisor, domain: Domain,
                  state: UISRVMState, pram_fs=None) -> Domain:
    """Restore a UISR document into a Xen domain via the toolstack."""
    if hypervisor.kind is not HypervisorKind.XEN:
        raise UISRError(f"from_uisr_xen called on {hypervisor.kind.value}")
    verify_restore_target(
        domain,
        vm_name=state.vm_name,
        vcpu_count=state.vcpu_count,
        memory_bytes=state.memory_bytes,
        devices=state.devices,
    )
    domain.provenance = (state.source_hypervisor, state.version)

    if state.memory_map.by_reference:
        if pram_fs is None:
            raise UISRError(
                f"UISR {state.vm_name} references PRAM file "
                f"{state.memory_map.pram_file!r} but no PRAM fs was provided"
            )
        gfn_to_mfn = pram_fs.layout_of(state.memory_map.pram_file)
        domain.vm.image.adopt_mapping(gfn_to_mfn)

    platform = apply_platform_fixups(
        state.platform.platform, target_ioapic_pins=XEN_IOAPIC_PINS
    )
    blob = formats.encode_hvm_context(
        [record.vcpu for record in state.vcpus], platform
    )
    hypervisor.toolstack.xc_domain_hvm_setcontext(domain.domid, blob)
    # The p2m must reflect the (possibly adopted) memory layout.
    domain.npt = hypervisor.build_npt(domain.vm)
    return domain
