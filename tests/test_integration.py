"""Cross-module integration scenarios.

These exercise the whole stack the way the paper's deployment story does:
a CVE drops, the advisor picks a target, the orchestrator transplants the
fleet, workloads observe the blip, and everything survives bit-identical.
"""

from repro import (
    DatacenterAPI,
    HyperTP,
    HypervisorKind,
    LiveMigration,
    M1_SPEC,
    M2_SPEC,
    Machine,
    MigrationTP,
    NovaCompute,
    SimClock,
    TransplantAdvisor,
    XenHypervisor,
    load_default_database,
)
from repro.bench import make_kvm_host, make_xen_host
from repro.guest.drivers import NetworkDriver
from repro.hw.network import Fabric
from repro.sim.engine import Engine
from repro.workloads import RedisWorkload, timeline_for_inplace

GIB = 1024 ** 3


class TestEmergencyResponseScenario:
    """The paper's Fig. 1(b) story, end to end."""

    def test_full_cycle(self):
        fabric = Fabric()
        nova = NovaCompute(fabric=fabric)
        hosts = [make_xen_host(M1_SPEC, vm_count=3, name=f"rack1-{i}")
                 for i in range(3)]
        for host in hosts:
            nova.register_host(host)
        digests = {
            host.name: {
                d.vm.name: d.vm.image.content_digest()
                for d in host.hypervisor.domains.values()
            }
            for host in hosts
        }

        api = DatacenterAPI(nova, TransplantAdvisor(load_default_database()))
        clock = SimClock()
        report = api.respond_to_cve("CVE-2016-6258", clock=clock)

        assert report.hosts_upgraded == 3
        assert report.worst_vm_disruption_s < 30.0  # the Azure bound
        for host in hosts:
            assert host.hypervisor.kind is HypervisorKind.KVM
            for domain in host.hypervisor.domains.values():
                assert domain.vm.state.value == "running"
                assert (domain.vm.image.content_digest()
                        == digests[host.name][domain.vm.name])

        # Patch ships: transplant back.
        api.revert_after_patch(HypervisorKind.XEN, clock=SimClock())
        for host in hosts:
            assert host.hypervisor.kind is HypervisorKind.XEN
            for domain in host.hypervisor.domains.values():
                assert (domain.vm.image.content_digest()
                        == digests[host.name][domain.vm.name])


class TestRepeatedTransplants:
    def test_ping_pong_five_rounds(self, xen_host_factory):
        machine = xen_host_factory(vm_count=2)
        vms = [d.vm for d in machine.hypervisor.domains.values()]
        digests = [vm.image.content_digest() for vm in vms]
        hypertp = HyperTP()
        clock = SimClock()
        kinds = [HypervisorKind.KVM, HypervisorKind.XEN] * 5
        for target in kinds:
            hypertp.inplace(machine, target, clock)
        assert machine.hypervisor.kind is HypervisorKind.XEN
        assert [vm.image.content_digest() for vm in vms] == digests
        for vm in vms:
            assert len(vm.pause_intervals) == 10

    def test_migrate_then_inplace(self, fabric):
        source = make_xen_host(M1_SPEC, vm_count=2, name="mi-src")
        destination = make_kvm_host(M1_SPEC, name="mi-dst")
        fabric.connect(source, destination)
        domains = sorted(source.hypervisor.domains.values(),
                         key=lambda d: d.domid)
        vm0 = domains[0].vm
        MigrationTP(fabric, source, destination).migrate(domains[0])
        # The emptied-out slot does not block the in-place transplant.
        report = HyperTP().inplace(source, HypervisorKind.KVM, SimClock())
        assert report.vm_count == 1
        assert vm0.state.value == "running"
        assert len(destination.hypervisor.domains) == 1


class TestWorkloadsThroughTransplants:
    def test_redis_observes_the_blip_in_engine_time(self, xen_host_factory):
        machine = xen_host_factory(vm_count=1, vcpus=2, memory_gib=8.0)
        vm = next(iter(machine.hypervisor.domains.values())).vm
        vm.attach_device(NetworkDriver("net0"))
        report = HyperTP().inplace(machine, HypervisorKind.KVM, SimClock())
        timeline = timeline_for_inplace(report, 50.0, HypervisorKind.XEN,
                                        HypervisorKind.KVM)

        engine = Engine()
        samples = []

        def sampler():
            workload = RedisWorkload(noise=0.0)
            for _ in range(180):
                samples.append((engine.now,
                                workload.sample(engine.now, timeline)))
                yield 1.0

        engine.run_process(sampler())
        outage = [t for t, v in samples if v == 0.0]
        assert outage, "the transplant blip must be visible"
        assert min(outage) >= 50.0
        assert max(outage) - min(outage) < 12.0


class TestHeterogeneousFleet:
    def test_mixed_machine_types(self):
        # M1 and M2 hosts in one fleet, upgraded in one sweep.
        nova = NovaCompute()
        nova.register_host(make_xen_host(M1_SPEC, vm_count=1, name="small"))
        nova.register_host(make_xen_host(M2_SPEC, vm_count=1, name="big"))
        api = DatacenterAPI(nova, TransplantAdvisor(load_default_database()))
        report = api.respond_to_cve("CVE-2016-6258")
        assert report.hosts_upgraded == 2
        small = report.per_host["small"].inplace
        big = report.per_host["big"].inplace
        # M2's reboot dominates its downtime; M1 stays under 2 s.
        assert small.downtime_s < big.downtime_s

    def test_baseline_migration_unaffected_by_hypertp_changes(self, fabric):
        # Xen->Xen still works as a baseline next to the transplant paths.
        a = make_xen_host(M1_SPEC, vm_count=1, name="base-a")
        b = Machine(M1_SPEC, name="base-b")
        XenHypervisor().boot(b)
        fabric.connect(a, b)
        domain = next(iter(a.hypervisor.domains.values()))
        report = LiveMigration(fabric, a, b).migrate(domain)
        assert not report.heterogeneous
        assert report.guest_digest_preserved


class TestResourceHygiene:
    def test_no_leaked_pins_after_many_transplants(self, xen_host_factory):
        machine = xen_host_factory(vm_count=3)
        hypertp = HyperTP()
        clock = SimClock()
        for target in (HypervisorKind.KVM, HypervisorKind.XEN,
                       HypervisorKind.KVM):
            hypertp.inplace(machine, target, clock)
        assert not machine.memory.pinned_frames()

    def test_memory_footprint_stable_across_round_trip(self, xen_host_factory):
        machine = xen_host_factory(vm_count=2)
        before = machine.memory.allocated_bytes
        hypertp = HyperTP()
        clock = SimClock()
        hypertp.inplace(machine, HypervisorKind.KVM, clock)
        hypertp.inplace(machine, HypervisorKind.XEN, clock)
        assert machine.memory.allocated_bytes == before
