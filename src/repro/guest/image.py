"""Guest physical address space backed by host frames.

A :class:`GuestImage` maps guest frame numbers (GFNs) to host machine frames
(MFNs).  The mapping is deliberately *scattered* — first-fit allocation over a
fragmented host — because PRAM exists precisely to describe such scattered
layouts (Fig. 4).  Page contents are digests; ``content_digest()`` gives the
whole-image fingerprint used to verify the Guest-State-untouched invariant.
"""

import random
from typing import Dict, Iterator, List, Tuple

from repro.errors import HardwareError, VMLifecycleError
from repro.hw.memory import PAGE_2M, PhysicalMemory


class GuestImage:
    """The memory of one VM: an ordered GFN -> Frame mapping."""

    def __init__(self, memory: PhysicalMemory, size_bytes: int,
                 page_size: int = PAGE_2M, seed: int = 0):
        if size_bytes <= 0 or size_bytes % page_size:
            raise HardwareError(
                f"guest size {size_bytes} is not a positive multiple of "
                f"page size {page_size}"
            )
        self.memory = memory
        self.size_bytes = size_bytes
        self.page_size = page_size
        self.page_count = size_bytes // page_size
        self._gfn_to_frame: Dict[int, int] = {}
        rng = random.Random(seed ^ 0xA5A5A5A5)
        frames = memory.allocate_many(self.page_count, size=page_size)
        for gfn, frame in enumerate(frames):
            frame.digest = rng.getrandbits(63) | 1  # never zero: looks "used"
            self._gfn_to_frame[gfn] = frame.mfn
        self._released = False
        # Dirty logging (Xen log-dirty mode / KVM_GET_DIRTY_LOG): while
        # enabled, guest stores record the written GFNs for pre-copy.
        self._dirty_logging = False
        self._dirty_gfns: set = set()

    # -- mapping -----------------------------------------------------------

    def mfn_of(self, gfn: int) -> int:
        try:
            return self._gfn_to_frame[gfn]
        except KeyError:
            raise HardwareError(f"gfn {gfn} not mapped") from None

    def mappings(self) -> Iterator[Tuple[int, int]]:
        """Yield (gfn, mfn) pairs in GFN order."""
        for gfn in range(self.page_count):
            yield gfn, self._gfn_to_frame[gfn]

    def mfns(self) -> List[int]:
        return [self._gfn_to_frame[g] for g in range(self.page_count)]

    # -- content -----------------------------------------------------------

    def write_page(self, gfn: int, digest: int) -> None:
        """Guest-side store: mutate one page's contents."""
        self.memory.write(self.mfn_of(gfn), digest)
        if self._dirty_logging:
            self._dirty_gfns.add(gfn)

    # -- dirty logging (live-migration support) ------------------------------

    @property
    def dirty_logging(self) -> bool:
        return self._dirty_logging

    def start_dirty_logging(self) -> None:
        """Begin tracking written GFNs (the pre-copy loop's first step)."""
        self._dirty_logging = True
        self._dirty_gfns.clear()

    def stop_dirty_logging(self) -> None:
        self._dirty_logging = False
        self._dirty_gfns.clear()

    def read_and_clear_dirty_log(self) -> List[int]:
        """Atomically fetch-and-reset the dirty set (one pre-copy round)."""
        if not self._dirty_logging:
            raise HardwareError("dirty logging is not enabled")
        dirty = sorted(self._dirty_gfns)
        self._dirty_gfns.clear()
        return dirty

    def read_page(self, gfn: int) -> int:
        return self.memory.read(self.mfn_of(gfn))

    def content_digest(self) -> int:
        """Order-sensitive digest over all pages (the Guest State invariant)."""
        return self.memory.digest_of(self.mfns())

    def dirty_some(self, fraction: float, rng: random.Random) -> List[int]:
        """Mutate a random ``fraction`` of pages; returns dirtied GFNs.

        Used by the migration model to emulate writable working sets during
        pre-copy rounds.
        """
        if not 0 <= fraction <= 1:
            raise HardwareError(f"dirty fraction must be in [0,1]: {fraction}")
        count = int(self.page_count * fraction)
        gfns = rng.sample(range(self.page_count), count) if count else []
        for gfn in gfns:
            self.write_page(gfn, rng.getrandbits(63) | 1)
        return gfns

    # -- lifecycle -----------------------------------------------------------

    def pin_all(self) -> None:
        """Pin every backing frame (PRAM registration before kexec)."""
        for mfn in self._gfn_to_frame.values():
            self.memory.pin(mfn)

    def unpin_all(self) -> None:
        for mfn in self._gfn_to_frame.values():
            self.memory.unpin(mfn)

    def release(self) -> None:
        """Free all backing frames (VM destruction)."""
        if self._released:
            raise VMLifecycleError("guest image already released")
        for mfn in self._gfn_to_frame.values():
            self.memory.unpin(mfn)
            self.memory.free(mfn)
        self._gfn_to_frame.clear()
        self._released = True

    def adopt_mapping(self, gfn_to_mfn: Dict[int, int]) -> None:
        """Replace the GFN->MFN table (used after PRAM-based restoration)."""
        if set(gfn_to_mfn) != set(range(self.page_count)):
            raise HardwareError("adopted mapping does not cover the guest")
        self._gfn_to_frame = dict(gfn_to_mfn)

    def __repr__(self) -> str:
        return (
            f"GuestImage({self.size_bytes >> 20} MiB, "
            f"{self.page_count}x{self.page_size >> 10}K pages)"
        )
