"""The parallel subsystem's one wall-clock boundary.

Everything simulated in this repository takes time from
:class:`~repro.sim.clock.SimClock` — the ``sim-clock-hygiene`` lint rule
enforces it, and ``par/`` is inside that rule's scope.  But the worker
pool is *real* infrastructure: task timeouts, crash-respawn backoff and
the select() deadline all need the host's monotonic clock, exactly like
``repro.io`` is the one layer allowed to touch ``struct``.

This module is therefore the single place in ``repro.par`` (and the whole
simulated tree) that may read or sleep on the wall clock.  Each call site
carries an explicit lint suppression so the exception stays visible and
reviewed; any *other* wall-clock call in ``par/`` is still a lint error.

Nothing read from this module may flow into result payloads that are
byte-compared across runs — wall-clock numbers belong in the volatile
``meta`` block of bench artifacts (see :mod:`repro.bench.report`), never
in the deterministic payload.
"""

import time


def monotonic() -> float:
    """Wall-clock seconds for pool deadlines (never for sim results)."""
    # The pool's watchdog needs real time; sim results never see it.
    return time.monotonic()  # repro-lint: disable=sim-clock-hygiene pool deadlines are real infrastructure


def sleep(seconds: float) -> None:
    """Real sleep for crash-respawn backoff (never on a simulated path)."""
    if seconds > 0:
        # Backoff between worker respawns happens in real time.
        time.sleep(seconds)  # repro-lint: disable=sim-clock-hygiene respawn backoff is real infrastructure
