"""Tests for ``repro.par`` — the deterministic multi-process subsystem.

Three layers of the determinism contract are under test here:

1. the pool's **mechanics** (frame protocol over pipes, submission-order
   results, crash/timeout retry, inline fallback);
2. the **merge layer** (seed derivation, order-independent snapshot and
   trace merging);
3. the **end-to-end contract**: a fleet campaign routed through workers
   is byte-identical to the serial run, even when workers are killed or
   hung mid-task;

plus fixture tests for the ``par-*`` lint rules.

The fault-injection worker entrypoints below are module-level on purpose
(``tests`` is a package, so workers import them as ``tests.test_par:fn``)
and coordinate through marker files: crash/hang on the first attempt,
succeed on the retry — deterministic from the parent's point of view.
"""

import json
import os
import signal
import textwrap
import time

import pytest

from repro.analysis import Project, run_analysis
from repro.errors import ParError
from repro.obs import MetricsRegistry, Tracer
from repro.obs.trace import Span, Trace
from repro.par import (
    ParallelRunner,
    PoolStats,
    Task,
    WorkerPool,
    check_payload,
    derive_seed,
    fleet_campaign_task,
    func_ref,
    merge_snapshots,
    merge_traces,
    resolve_ref,
    run_fleet_campaign,
    span_from_payload,
    spans_to_payload,
)
from repro.sim.clock import SimClock


# -- module-level worker entrypoints ------------------------------------------


def double(payload):
    return payload * 2


def slow_then_value(payload):
    """Sleep ``payload['delay_s']`` (real time), then return the value.

    Used to force out-of-order completion in the pool.
    """
    time.sleep(payload["delay_s"])
    return payload["value"]


def crash_once(payload):
    """SIGKILL the worker on the first attempt; succeed on the retry."""
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return payload["value"] * 2


def crash_always(payload):
    """SIGKILL the worker every time — only inline fallback can finish."""
    if payload.get("in_worker_only") and payload["parent_pid"] != os.getpid():
        os.kill(os.getpid(), signal.SIGKILL)
    return payload["value"] + 100


def hang_once(payload):
    """Hang past any reasonable timeout on the first attempt."""
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(600)
    return payload["value"] + 1


def raise_value_error(payload):
    raise ValueError(f"deterministic task failure: {payload}")


def noisy_task(payload):
    """A stray print must not corrupt the frame stream on stdout."""
    print("this goes to stderr, not into the frame protocol")
    return payload


def campaign_entry(payload):
    return fleet_campaign_task(payload)


# -- func_ref / resolve_ref / payload guard -----------------------------------


class TestEntrypointReferences:
    def test_module_level_function_roundtrips(self):
        ref = func_ref(double)
        assert ref == "tests.test_par:double"
        assert resolve_ref(ref) is double

    def test_string_ref_passes_through(self):
        assert func_ref("math:sqrt") == "math:sqrt"
        assert resolve_ref("math:sqrt")(9.0) == 3.0

    def test_lambda_rejected(self):
        with pytest.raises(ParError, match="lambda or nested"):
            func_ref(lambda x: x)

    def test_nested_function_rejected(self):
        def inner(payload):
            return payload

        with pytest.raises(ParError, match="lambda or nested"):
            func_ref(inner)

    def test_bound_method_rejected(self):
        with pytest.raises(ParError, match="method"):
            func_ref(SimClock().advance)

    def test_bad_string_ref_rejected(self):
        with pytest.raises(ParError, match="module:function"):
            func_ref("no_colon_here")
        with pytest.raises(ParError, match="entrypoint"):
            resolve_ref("math:not_a_function")
        with pytest.raises(ParError, match="cannot import"):
            resolve_ref("definitely_not_a_module_xyz:fn")

    def test_payload_guard_rejects_simclock(self):
        with pytest.raises(ParError, match="SimClock"):
            check_payload({"seed": 1, "clock": SimClock()})

    def test_payload_guard_rejects_nested_tracer(self):
        with pytest.raises(ParError, match="Tracer"):
            check_payload({"outer": [1, 2, {"t": Tracer()}]})

    def test_payload_guard_accepts_plain_data(self):
        check_payload({"seed": 7, "hosts": [1, 2, 3],
                       "nested": {"ok": (1.5, "x")}})


# -- seed derivation ----------------------------------------------------------


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        a = derive_seed(42, "fleet", 100, 0.01)
        assert a == derive_seed(42, "fleet", 100, 0.01)
        assert a != derive_seed(42, "fleet", 100, 0.05)
        assert a != derive_seed(43, "fleet", 100, 0.01)

    def test_part_boundaries_matter(self):
        # ("ab", "c") must not collide with ("a", "bc")
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_fits_in_63_bits(self):
        for seed in (0, 1, 2**31, 12345):
            derived = derive_seed(seed, "x")
            assert 0 <= derived < 2**63


# -- snapshot merging ---------------------------------------------------------


def _registry(counter=0.0, gauge=0.0, observations=()):
    registry = MetricsRegistry()
    registry.counter("jobs_total").inc(counter)
    registry.gauge("inflight").set(gauge)
    histogram = registry.histogram("window_s", buckets=(1.0, 10.0, 100.0))
    for value in observations:
        histogram.observe(value)
    return registry


class TestMergeSnapshots:
    def test_counters_sum_gauges_latest_writer(self):
        a = _registry(counter=3, gauge=5).snapshot()
        b = _registry(counter=4, gauge=2).snapshot()
        merged = merge_snapshots([a, b])
        assert merged["metrics"]["jobs_total"]["value"] == 7.0
        # equal seq stamps (one set() each): larger value breaks the tie
        assert merged["metrics"]["inflight"]["value"] == 5.0

    def test_decreasing_gauge_merges_to_latest_not_peak(self):
        # Inline, one registry sees the whole history: 10 in flight,
        # then the campaign drains to 0.
        inline = MetricsRegistry()
        gauge = inline.gauge("inflight")
        gauge.set(10)
        gauge.set(0)
        inline_value = inline.snapshot()["metrics"]["inflight"]["value"]

        # The same history split across two shards with disjoint seq
        # ranges.  A merge-by-max reports the peak (10.0) — the inline
        # vs 2-worker divergence this regression test pins; the
        # (seq, value) latest-writer merge must agree with inline.
        first = MetricsRegistry(seq_start=0)
        first.gauge("inflight").set(10)
        second = MetricsRegistry(seq_start=10**9)
        second.gauge("inflight").set(0)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert inline_value == 0.0
        assert merged["metrics"]["inflight"]["value"] == inline_value

    def test_decreasing_gauge_merge_is_order_independent(self):
        first = MetricsRegistry(seq_start=0)
        first.gauge("inflight").set(10)
        second = MetricsRegistry(seq_start=10**9)
        second.gauge("inflight").set(0)
        snaps = [first.snapshot(), second.snapshot()]
        forward = merge_snapshots(snaps)["metrics"]["inflight"]
        backward = merge_snapshots(list(reversed(snaps)))["metrics"]["inflight"]
        assert forward == backward
        assert forward["value"] == 0.0

    def test_legacy_snapshots_without_seq_fall_back_to_value_max(self):
        # v1 snapshots predate the seq stamp; they sort as seq 0, so a
        # mixed merge degrades to the old max-by-value behaviour instead
        # of crashing.
        legacy = _registry(gauge=7).snapshot()
        del legacy["metrics"]["inflight"]["seq"]
        current = _registry(gauge=3).snapshot()
        merged = merge_snapshots([legacy, current])
        assert merged["metrics"]["inflight"]["value"] == 3.0  # seq 1 > 0
        tied = _registry(gauge=9).snapshot()
        del tied["metrics"]["inflight"]["seq"]
        merged = merge_snapshots([legacy, tied])
        assert merged["metrics"]["inflight"]["value"] == 9.0

    def test_histograms_merge_bucketwise(self):
        a = _registry(observations=[0.5, 50.0]).snapshot()
        b = _registry(observations=[5.0, 500.0]).snapshot()
        merged = merge_snapshots([a, b])["metrics"]["window_s"]
        assert merged["count"] == 4
        assert merged["sum"] == pytest.approx(555.5)
        assert merged["min"] == 0.5
        assert merged["max"] == 500.0
        counts = [bucket["count"] for bucket in merged["buckets"]]
        assert counts == [1, 1, 1, 1]  # <=1, <=10, <=100, overflow

    def test_merge_is_order_independent(self):
        snaps = [_registry(counter=i, gauge=i,
                           observations=[float(i)]).snapshot()
                 for i in range(1, 5)]
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(list(reversed(snaps)))
        assert json.dumps(forward, sort_keys=True) == \
            json.dumps(backward, sort_keys=True)

    def test_bucket_bound_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1.0)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0, 3.0)).observe(1.0)
        with pytest.raises(ParError, match="bucket bounds"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_kind_clash_raises(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        b = MetricsRegistry()
        b.gauge("x").set(1.0)
        with pytest.raises(ParError, match="kind"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_wrong_format_raises(self):
        with pytest.raises(ParError, match="format"):
            merge_snapshots([{"format": "something-else", "metrics": {}}])


# -- trace merging ------------------------------------------------------------


def _spans(track, count=2):
    trace = Trace()
    for i in range(count):
        trace.add(Span(name=f"op{i}", category="test",
                       start_s=float(i), end_s=float(i) + 0.5, track=track))
    return trace


class TestMergeTraces:
    def test_prefixed_merge_namespaces_tracks(self):
        merged = merge_traces([
            ("cell-a", spans_to_payload(_spans("host0"))),
            ("cell-b", spans_to_payload(_spans("host0"))),
        ])
        assert merged.tracks() == ["cell-a/host0", "cell-b/host0"]

    def test_merge_is_order_independent(self):
        shards = [("cell-a", spans_to_payload(_spans("h0"))),
                  ("cell-b", spans_to_payload(_spans("h1", count=3)))]
        forward = merge_traces(shards).to_chrome_trace()
        backward = merge_traces(list(reversed(shards))).to_chrome_trace()
        assert forward == backward

    def test_unprefixed_merge_reproduces_inline_trace(self):
        trace = _spans("node03/nic", count=4)
        merged = merge_traces([("x", spans_to_payload(trace))], prefix=False)
        assert merged.to_chrome_trace() == trace.to_chrome_trace()

    def test_duplicate_labels_rejected(self):
        shard = ("same", spans_to_payload(_spans("h")))
        with pytest.raises(ParError, match="duplicate shard label"):
            merge_traces([shard, shard])

    def test_span_payload_roundtrip(self):
        span = Span(name="s", category="c", start_s=1.0, end_s=2.0,
                    track="h/t", args={"k": 1})
        assert span_from_payload(spans_to_payload([span])[0]) == span


# -- pool mechanics -----------------------------------------------------------


class TestWorkerPool:
    def test_inline_path_for_single_worker(self):
        pool = WorkerPool(workers=1)
        results = pool.run([Task(func=func_ref(double), payload=i)
                            for i in range(5)])
        assert results == [0, 2, 4, 6, 8]
        assert pool.stats.respawns == 0

    def test_pooled_results_keep_submission_order(self):
        # First task finishes last: completion order is reversed, the
        # result order must not be.
        pool = WorkerPool(workers=3, task_timeout_s=30)
        tasks = [Task(func=func_ref(slow_then_value),
                      payload={"delay_s": delay, "value": value})
                 for value, delay in ((1, 0.4), (2, 0.2), (3, 0.0))]
        assert pool.run(tasks) == [1, 2, 3]

    def test_pooled_matches_inline(self):
        tasks = [Task(func=func_ref(double), payload=i) for i in range(8)]
        inline = WorkerPool(workers=1).run(tasks)
        pooled = WorkerPool(workers=4, task_timeout_s=30).run(tasks)
        assert pooled == inline

    def test_stray_prints_do_not_corrupt_frames(self):
        pool = WorkerPool(workers=2, task_timeout_s=30)
        tasks = [Task(func=func_ref(noisy_task), payload=i)
                 for i in range(4)]
        assert pool.run(tasks) == [0, 1, 2, 3]

    def test_task_error_surfaces_with_traceback(self):
        pool = WorkerPool(workers=2, task_timeout_s=30)
        with pytest.raises(ParError) as excinfo:
            pool.run([Task(func=func_ref(raise_value_error), payload="x"),
                      Task(func=func_ref(double), payload=1)])
        assert "deterministic task failure" in str(excinfo.value)

    def test_unpicklable_payload_rejected(self):
        import threading

        pool = WorkerPool(workers=2, task_timeout_s=30)
        with pytest.raises(ParError, match="picklable"):
            pool.run([Task(func=func_ref(double), payload=threading.Lock()),
                      Task(func=func_ref(double), payload=1)])

    def test_bad_configuration_rejected(self):
        with pytest.raises(ParError):
            WorkerPool(workers=0)
        with pytest.raises(ParError):
            WorkerPool(task_timeout_s=0)
        with pytest.raises(ParError):
            WorkerPool(max_retries=-1)


class TestWorkerFaults:
    def test_killed_worker_is_respawned_and_task_retried(self, tmp_path):
        pool = WorkerPool(workers=2, task_timeout_s=30, max_retries=2,
                          backoff_base_s=0.01)
        marker = str(tmp_path / "crash-marker")
        tasks = [Task(func=func_ref(crash_once),
                      payload={"marker": marker, "value": 21}),
                 Task(func=func_ref(double), payload=5)]
        assert pool.run(tasks) == [42, 10]
        assert pool.stats.worker_crashes == 1
        assert pool.stats.retries == 1
        assert pool.stats.respawns == 1
        assert pool.stats.inline_fallbacks == 0

    def test_hung_worker_times_out_and_task_retried(self, tmp_path):
        pool = WorkerPool(workers=2, task_timeout_s=1.0, max_retries=1,
                          backoff_base_s=0.01)
        marker = str(tmp_path / "hang-marker")
        tasks = [Task(func=func_ref(hang_once),
                      payload={"marker": marker, "value": 9})]
        assert pool.run(tasks) == [10]
        assert pool.stats.timeouts == 1
        assert pool.stats.retries == 1

    def test_exhausted_retries_fall_back_inline(self):
        # The task kills every worker it runs in; only the parent's
        # inline fallback (same process, no kill branch) can finish it.
        pool = WorkerPool(workers=2, task_timeout_s=30, max_retries=1,
                          backoff_base_s=0.01)
        tasks = [Task(func=func_ref(crash_always),
                      payload={"in_worker_only": True,
                               "parent_pid": os.getpid(), "value": 1}),
                 Task(func=func_ref(double), payload=3)]
        assert pool.run(tasks) == [101, 6]
        assert pool.stats.inline_fallbacks == 1
        assert pool.stats.worker_crashes == 2  # initial + retry

    def test_merged_fleet_output_identical_despite_crash(self, tmp_path):
        """The headline contract: a worker SIGKILLed mid-campaign must
        not change a single output byte after retry."""
        payload = {"config": {"hosts": 10, "seed": 11}, "trace": True,
                   "metrics": True}
        serial = fleet_campaign_task(payload)

        marker = str(tmp_path / "campaign-crash")
        pool = WorkerPool(workers=2, task_timeout_s=120, max_retries=2,
                          backoff_base_s=0.01)
        results = pool.run([
            Task(func=func_ref(crash_once),
                 payload={"marker": marker, "value": 1}),
            Task(func=func_ref(campaign_entry), payload=payload),
        ])
        assert pool.stats.worker_crashes == 1
        assert json.dumps(results[1], sort_keys=True) == \
            json.dumps(serial, sort_keys=True)


# -- runner + fleet campaign --------------------------------------------------


class TestParallelRunner:
    def test_map_tasks_preserves_order(self):
        runner = ParallelRunner(workers=3, task_timeout_s=30)
        results = runner.map_tasks(double, list(range(6)))
        assert results == [0, 2, 4, 6, 8, 10]
        assert isinstance(runner.stats, PoolStats)
        assert runner.stats.results == 6

    def test_label_count_mismatch_rejected(self):
        runner = ParallelRunner(workers=1)
        with pytest.raises(ParError, match="labels"):
            runner.map_tasks(double, [1, 2], labels=["only-one"])

    def test_fleet_campaign_serial_vs_pooled_bytes(self):
        payload = {"config": {"hosts": 8, "seed": 5}, "fail_rate": 0.05,
                   "injector_seed": 5, "max_retries": 3,
                   "trace": True, "metrics": True}
        serial = run_fleet_campaign(payload, workers=1)
        pooled = run_fleet_campaign(payload, workers=3)
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(pooled, sort_keys=True)
        # and the merged trace exporter output is byte-identical too
        serial_trace = merge_traces([("fleet", serial["spans"])],
                                    prefix=False).to_chrome_trace()
        pooled_trace = merge_traces([("fleet", pooled["spans"])],
                                    prefix=False).to_chrome_trace()
        assert serial_trace == pooled_trace

    def test_sweep_shards_merge_order_independently(self):
        payloads = [{"config": {"hosts": 4, "seed": seed}, "metrics": True}
                    for seed in (1, 2, 3)]
        runner = ParallelRunner(workers=3, task_timeout_s=120)
        results = runner.map_tasks(fleet_campaign_task, payloads)
        snapshots = [r["registry"] for r in results]
        merged = merge_snapshots(snapshots)
        reversed_merge = merge_snapshots(list(reversed(snapshots)))
        assert json.dumps(merged, sort_keys=True) == \
            json.dumps(reversed_merge, sort_keys=True)
        done = merged["metrics"]["fleet_hosts_done_total"]["value"]
        assert done == sum(r["document"]["robustness"]["done_hosts"]
                           for r in results)


# -- par-* lint rules ---------------------------------------------------------


def analyze(sources, rules=None):
    return run_analysis(Project.from_sources(sources), rule_names=rules)


class TestParHygieneRules:
    def test_lambda_entrypoint_flagged(self):
        findings, _ = analyze({
            "jobs.py": textwrap.dedent("""
                from repro.par import ParallelRunner

                def launch(runner: ParallelRunner):
                    return runner.map_tasks(lambda x: x + 1, [1, 2])
            """),
        }, rules=["par-entrypoint-hygiene"])
        assert len(findings) == 1
        assert findings[0].path == "jobs.py"
        assert "lambda" in findings[0].message

    def test_nested_def_entrypoint_flagged(self):
        findings, _ = analyze({
            "jobs.py": textwrap.dedent("""
                from repro.par import func_ref

                def launch():
                    def cell(payload):
                        return payload
                    return func_ref(cell)
            """),
        }, rules=["par-entrypoint-hygiene"])
        assert len(findings) == 1
        assert "nested" in findings[0].message

    def test_bound_method_entrypoint_flagged(self):
        findings, _ = analyze({
            "jobs.py": textwrap.dedent("""
                from repro.par import Task

                class Campaign:
                    def cell(self, payload):
                        return payload

                    def tasks(self):
                        return [Task(func=self.cell, payload=1)]
            """),
        }, rules=["par-entrypoint-hygiene"])
        assert len(findings) == 1
        assert "bound method" in findings[0].message

    def test_module_level_entrypoint_clean(self):
        findings, _ = analyze({
            "jobs.py": textwrap.dedent("""
                from repro.par import ParallelRunner, Task, func_ref

                def cell(payload):
                    return payload

                def launch(runner: ParallelRunner):
                    ref = func_ref(cell)
                    runner.map_tasks(cell, [1, 2])
                    return [Task(func=ref, payload=3)]
            """),
        }, rules=["par-entrypoint-hygiene"])
        assert findings == []

    def test_live_clock_in_payload_flagged(self):
        findings, _ = analyze({
            "jobs.py": textwrap.dedent("""
                from repro.par import ParallelRunner
                from repro.sim.clock import SimClock

                def launch(runner: ParallelRunner, cell):
                    clock = SimClock()
                    runner.map_tasks(cell, [{"clock": clock}])
            """),
        }, rules=["par-payload-hygiene"])
        assert len(findings) == 1
        assert "SimClock" in findings[0].message

    def test_inline_tracer_constructor_flagged(self):
        findings, _ = analyze({
            "jobs.py": textwrap.dedent("""
                from repro.obs import Tracer
                from repro.par import Task

                def build():
                    return Task(func="m:f", payload={"t": Tracer()})
            """),
        }, rules=["par-payload-hygiene"])
        assert len(findings) == 1
        assert "Tracer" in findings[0].message

    def test_seed_payload_clean(self):
        findings, _ = analyze({
            "jobs.py": textwrap.dedent("""
                from repro.par import Task

                def build(seed):
                    return Task(func="m:f",
                                payload={"seed": seed, "hosts": 10})
            """),
        }, rules=["par-payload-hygiene"])
        assert findings == []

    def test_suppression_directive_respected(self):
        findings, suppressed = analyze({
            "jobs.py": textwrap.dedent("""
                from repro.par import func_ref

                def launch():
                    def cell(payload):
                        return payload
                    return func_ref(cell)  # repro-lint: disable=par-entrypoint-hygiene test fixture
            """),
        }, rules=["par-entrypoint-hygiene"])
        assert findings == []
        assert suppressed == 1

    def test_sim_clock_scope_covers_par(self):
        findings, _ = analyze({
            "par/custom.py": textwrap.dedent("""
                import time

                def deadline():
                    return time.monotonic() + 5
            """),
        }, rules=["sim-clock-hygiene"])
        assert len(findings) == 1
        assert "time.monotonic" in findings[0].message
