"""Property-based whole-transplant invariants and device-record flow."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest.drivers import EmulatedDriver, NetworkDriver
from repro.guest.vm import VMConfig
from repro.hw.machine import M1_SPEC, Machine
from repro.hypervisors import XenHypervisor
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.convert import to_uisr_xen
from repro.core.inplace import InPlaceTP
from repro.core.transplant import HyperTP
from repro.core.uisr.codec import decode_uisr, encode_uisr

GIB = 1024 ** 3


@given(
    vm_count=st.integers(min_value=1, max_value=4),
    vcpus=st.integers(min_value=1, max_value=4),
    memory_gib=st.sampled_from([1, 2]),
    target=st.sampled_from([HypervisorKind.KVM, HypervisorKind.NOVA]),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
@settings(max_examples=15, deadline=None)
def test_inplace_invariants_hold_for_any_population(vm_count, vcpus,
                                                    memory_gib, target,
                                                    seed):
    """For arbitrary small VM populations and either target:
    digests preserved, downtime positive and bounded, memory balanced."""
    machine = Machine(M1_SPEC)
    xen = XenHypervisor()
    xen.boot(machine)
    for i in range(vm_count):
        xen.create_vm(VMConfig(f"p{i}", vcpus=vcpus,
                               memory_bytes=memory_gib * GIB,
                               seed=seed + i))
    allocated_before = machine.memory.allocated_bytes
    report = HyperTP().inplace(machine, target, SimClock())
    assert report.guest_digests_preserved
    assert 0 < report.downtime_s < 30.0  # the Azure bound
    assert machine.memory.allocated_bytes == allocated_before
    assert not machine.memory.pinned_frames()
    assert machine.hypervisor.kind is target
    assert len(machine.hypervisor.domains) == vm_count
    assert machine.hypervisor.scheduler_report()["queued_vcpus"] == \
        vm_count * vcpus


class TestDeviceRecordsInUISR:
    def test_device_records_travel_in_uisr(self, xen_host):
        xen = xen_host.hypervisor
        domain = next(iter(xen.domains.values()))
        domain.vm.attach_device(NetworkDriver("net0"))
        domain.vm.attach_device(EmulatedDriver("blk0",
                                               vmm_state_bytes=1024))
        state = to_uisr_xen(xen, domain)
        by_name = {d.name: d for d in state.devices}
        assert by_name["net0"].strategy == "unplug-rescan"
        assert by_name["blk0"].strategy == "translate"
        assert len(by_name["blk0"].payload) > 0
        # And they survive the codec.
        decoded = decode_uisr(encode_uisr(state))
        assert {d.name for d in decoded.devices} == {"net0", "blk0"}

    def test_device_records_cross_the_migration_wire(self, xen_host_factory,
                                                     kvm_host_factory,
                                                     fabric):
        from repro.core.migration import MigrationTP

        source = xen_host_factory(name="dev-src")
        destination = kvm_host_factory(name="dev-dst")
        fabric.connect(source, destination)
        domain = next(iter(source.hypervisor.domains.values()))
        domain.vm.attach_device(EmulatedDriver("serial0",
                                               vmm_state_bytes=256))
        report = MigrationTP(fabric, source, destination).migrate(domain)
        assert report.guest_digest_preserved
        # The device object followed the VM to the destination domain.
        landed = next(iter(destination.hypervisor.domains.values()))
        assert any(d.name == "serial0" for d in landed.vm.devices)


class TestDowntimePredictability:
    def test_report_downtime_equals_pause_interval(self, xen_host_factory):
        machine = xen_host_factory(vm_count=3)
        vms = [d.vm for d in machine.hypervisor.domains.values()]
        report = InPlaceTP(machine, HypervisorKind.KVM).run(SimClock())
        for vm in vms:
            (start, end), = vm.pause_intervals
            assert end - start == pytest.approx(report.downtime_s)

    def test_direction_ordering_of_downtime(self, xen_host_factory,
                                            kvm_host_factory):
        """NOVA < KVM < Xen as a reboot target, on identical hosts."""
        to_nova = HyperTP().inplace(xen_host_factory(),
                                    HypervisorKind.NOVA, SimClock())
        to_kvm = HyperTP().inplace(xen_host_factory(),
                                   HypervisorKind.KVM, SimClock())
        to_xen = HyperTP().inplace(kvm_host_factory(vm_count=1),
                                   HypervisorKind.XEN, SimClock())
        assert (to_nova.downtime_s < to_kvm.downtime_s < to_xen.downtime_s)
