"""Ablation — the four §4.2.5 optimisations, disabled one at a time.

Not a paper table, but DESIGN.md calls these design choices out; this bench
quantifies each one's contribution to InPlaceTP's downtime on a loaded host
(6 VMs, 1 GB each, M1, Xen->KVM).
"""

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import inplace_breakdown
from repro.core.optimizations import OptimizationConfig
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind

VM_COUNT = 6


def run():
    configs = [("all enabled", OptimizationConfig())]
    for name in ("prepare_ahead", "parallel", "huge_pages",
                 "early_restoration"):
        configs.append((f"-{name}", OptimizationConfig().without(name)))
    configs.append(("all disabled", OptimizationConfig.all_disabled()))

    rows = []
    baseline = None
    for label, config in configs:
        report = inplace_breakdown(M1_SPEC, HypervisorKind.KVM,
                                   vm_count=VM_COUNT, optimizations=config)
        if baseline is None:
            baseline = report.downtime_s
        rows.append([
            label, report.downtime_s,
            f"{report.downtime_s / baseline:.2f}x",
            report.pram_s, report.pram_metadata_bytes / 1024,
        ])
    return rows


HEADERS = ["configuration", "downtime (s)", "vs baseline", "PRAM (s)",
           "PRAM metadata (KiB)"]


def test_ablation_optimizations(benchmark):
    rows = benchmark(run)
    print_experiment("Ablation", "InPlaceTP optimisations (6 VMs, M1)",
                     format_table(HEADERS, rows))


if __name__ == "__main__":
    print_experiment("Ablation", "InPlaceTP optimisations (6 VMs, M1)",
                     format_table(HEADERS, run()))
