"""Tests for MigrationTP and the homogeneous live-migration baseline."""

import pytest

from repro.errors import MigrationError
from repro.guest.drivers import PassthroughDriver
from repro.core.migration import (
    LiveMigration,
    MigrationTP,
    migrate_group,
    plan_precopy,
)
from repro.core.timings import DEFAULT_COST_MODEL

GIB = 1024 ** 3
MB = 1 << 20


class TestPreCopyPlanning:
    def test_round1_ships_everything(self):
        rounds = plan_precopy(GIB, 100 * MB, MB, DEFAULT_COST_MODEL)
        assert rounds[0].bytes_sent == GIB

    def test_idle_vm_converges_quickly(self):
        rounds = plan_precopy(GIB, 100 * MB, MB, DEFAULT_COST_MODEL)
        assert len(rounds) <= 3
        assert rounds[-1].dirty_after_bytes <= GIB * 0.002

    def test_busy_vm_needs_more_rounds(self):
        idle = plan_precopy(GIB, 100 * MB, MB, DEFAULT_COST_MODEL)
        busy = plan_precopy(GIB, 100 * MB, 50 * MB, DEFAULT_COST_MODEL)
        assert len(busy) > len(idle)
        assert sum(r.bytes_sent for r in busy) > sum(r.bytes_sent for r in idle)

    def test_write_storm_cuts_to_stop_and_copy(self):
        # Dirty rate >= link rate: pre-copy cannot converge.
        rounds = plan_precopy(GIB, 100 * MB, 200 * MB, DEFAULT_COST_MODEL)
        assert len(rounds) <= DEFAULT_COST_MODEL.max_precopy_rounds

    def test_round_budget_respected(self):
        rounds = plan_precopy(GIB, 100 * MB, 90 * MB, DEFAULT_COST_MODEL)
        assert len(rounds) <= DEFAULT_COST_MODEL.max_precopy_rounds

    def test_zero_rate_rejected(self):
        with pytest.raises(MigrationError):
            plan_precopy(GIB, 0, MB, DEFAULT_COST_MODEL)


class TestMigrationTP:
    def _pair(self, xen_host_factory, kvm_host_factory, fabric, **src_kwargs):
        source = xen_host_factory(name="src", **src_kwargs)
        destination = kvm_host_factory(name="dst")
        fabric.connect(source, destination)
        return source, destination

    def test_requires_heterogeneous(self, xen_host_factory, fabric):
        a = xen_host_factory(name="a")
        b = xen_host_factory(name="b", vm_count=0)
        fabric.connect(a, b)
        with pytest.raises(MigrationError):
            MigrationTP(fabric, a, b)

    def test_vm_lands_on_destination(self, xen_host_factory,
                                     kvm_host_factory, fabric):
        source, destination = self._pair(xen_host_factory, kvm_host_factory,
                                         fabric, vm_count=1)
        domain = next(iter(source.hypervisor.domains.values()))
        vm = domain.vm
        MigrationTP(fabric, source, destination).migrate(domain)
        assert not source.hypervisor.domains
        assert len(destination.hypervisor.domains) == 1
        assert vm in [d.vm for d in destination.hypervisor.domains.values()]
        assert vm.state.value == "running"

    def test_guest_pages_bit_identical(self, xen_host_factory,
                                       kvm_host_factory, fabric):
        source, destination = self._pair(xen_host_factory, kvm_host_factory,
                                         fabric, vm_count=1)
        domain = next(iter(source.hypervisor.domains.values()))
        digest = domain.vm.image.content_digest()
        report = MigrationTP(fabric, source, destination).migrate(domain)
        assert report.guest_digest_preserved
        assert domain.vm.image.content_digest() == digest

    def test_source_memory_released(self, xen_host_factory,
                                    kvm_host_factory, fabric):
        source, destination = self._pair(xen_host_factory, kvm_host_factory,
                                         fabric, vm_count=1)
        domain = next(iter(source.hypervisor.domains.values()))
        MigrationTP(fabric, source, destination).migrate(domain)
        assert source.memory.allocated_bytes == 0

    def test_table4_anchors(self, xen_host_factory, kvm_host_factory, fabric):
        # Table 4: ~9.6 s total, ~5 ms downtime for 1 GB over 1 Gbps.
        source, destination = self._pair(xen_host_factory, kvm_host_factory,
                                         fabric, vm_count=1)
        domain = next(iter(source.hypervisor.domains.values()))
        report = MigrationTP(fabric, source, destination).migrate(domain)
        assert report.total_s == pytest.approx(9.6, abs=1.0)
        assert report.downtime_s < 0.02

    def test_passthrough_device_blocks_migration(self, xen_host_factory,
                                                 kvm_host_factory, fabric):
        source, destination = self._pair(xen_host_factory, kvm_host_factory,
                                         fabric, vm_count=1)
        domain = next(iter(source.hypervisor.domains.values()))
        domain.vm.attach_device(PassthroughDriver("nic-vf0"))
        with pytest.raises(MigrationError):
            MigrationTP(fabric, source, destination).migrate(domain)

    def test_memory_size_scales_total_not_downtime(self, xen_host_factory,
                                                   kvm_host_factory, fabric):
        # Fig. 8/9: memory grows migration time; downtime barely moves.
        small_src, small_dst = self._pair(xen_host_factory, kvm_host_factory,
                                          fabric, vm_count=1, memory_gib=1.0)
        small = MigrationTP(fabric, small_src, small_dst).migrate(
            next(iter(small_src.hypervisor.domains.values()))
        )
        big_src = xen_host_factory(name="src-big", memory_gib=8.0)
        big_dst = kvm_host_factory(name="dst-big")
        fabric.connect(big_src, big_dst)
        big = MigrationTP(fabric, big_src, big_dst).migrate(
            next(iter(big_src.hypervisor.domains.values()))
        )
        assert big.total_s > 6 * small.total_s
        assert big.downtime_s == pytest.approx(small.downtime_s, abs=0.05)


class TestXenBaseline:
    def _xen_pair(self, xen_host_factory, fabric, vm_count=1):
        source = xen_host_factory(name="xsrc", vm_count=vm_count)
        destination = xen_host_factory(name="xdst", vm_count=0)
        fabric.connect(source, destination)
        return source, destination

    def test_requires_homogeneous(self, xen_host_factory, kvm_host_factory,
                                  fabric):
        a = xen_host_factory(name="a")
        b = kvm_host_factory(name="b")
        fabric.connect(a, b)
        with pytest.raises(MigrationError):
            LiveMigration(fabric, a, b)

    def test_table4_xen_downtime(self, xen_host_factory, fabric):
        source, destination = self._xen_pair(xen_host_factory, fabric)
        domain = next(iter(source.hypervisor.domains.values()))
        report = LiveMigration(fabric, source, destination).migrate(domain)
        # Table 4: 133.59 ms downtime, ~9.56 s total.
        assert report.downtime_s == pytest.approx(0.134, abs=0.03)
        assert report.total_s == pytest.approx(9.6, abs=1.0)

    def test_migrationtp_downtime_much_lower_than_xen(
            self, xen_host_factory, kvm_host_factory, fabric):
        xsrc, xdst = self._xen_pair(xen_host_factory, fabric)
        xen_report = LiveMigration(fabric, xsrc, xdst).migrate(
            next(iter(xsrc.hypervisor.domains.values()))
        )
        tsrc = xen_host_factory(name="tsrc")
        tdst = kvm_host_factory(name="tdst")
        fabric.connect(tsrc, tdst)
        tp_report = MigrationTP(fabric, tsrc, tdst).migrate(
            next(iter(tsrc.hypervisor.domains.values()))
        )
        # Table 4: 27x lower; accept an order of magnitude as the bar.
        assert xen_report.downtime_s > 10 * tp_report.downtime_s


class TestGroupMigration:
    def test_xen_downtime_variance_grows_with_vms(self, xen_host_factory,
                                                  fabric):
        source = xen_host_factory(name="gsrc", vm_count=6)
        destination = xen_host_factory(name="gdst", vm_count=0)
        fabric.connect(source, destination)
        domains = sorted(source.hypervisor.domains.values(),
                         key=lambda d: d.domid)
        reports = migrate_group(
            LiveMigration(fabric, source, destination), domains
        )
        downtimes = [r.downtime_s for r in reports]
        # Fig. 8: the receive queue makes later VMs wait longer.
        assert downtimes == sorted(downtimes)
        assert downtimes[-1] > 3 * downtimes[0]

    def test_migrationtp_downtime_constant_across_vms(self, xen_host_factory,
                                                      kvm_host_factory,
                                                      fabric):
        source = xen_host_factory(name="gsrc2", vm_count=6)
        destination = kvm_host_factory(name="gdst2")
        fabric.connect(source, destination)
        domains = sorted(source.hypervisor.domains.values(),
                         key=lambda d: d.domid)
        reports = migrate_group(
            MigrationTP(fabric, source, destination), domains
        )
        downtimes = [r.downtime_s for r in reports]
        assert max(downtimes) - min(downtimes) < 0.005

    def test_concurrency_slows_precopy(self, xen_host_factory,
                                       kvm_host_factory, fabric):
        source = xen_host_factory(name="gsrc3", vm_count=4)
        destination = kvm_host_factory(name="gdst3")
        fabric.connect(source, destination)
        domains = sorted(source.hypervisor.domains.values(),
                         key=lambda d: d.domid)
        reports = migrate_group(
            MigrationTP(fabric, source, destination), domains
        )
        # Four flows share the 1 Gbps link: ~4x a solo 1 GB migration.
        assert reports[0].precopy_s > 30.0
