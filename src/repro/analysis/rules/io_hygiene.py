"""I/O format hygiene rule.

``io-format-hygiene``: only the ``repro.io`` package may touch the
``struct`` module.  Every byte that crosses a state-movement boundary —
the migration wire, the PRAM encoding parsed across the kexec, UISR
documents, plan blobs — must go through the framed, CRC-checked codec
layer; a stray ``struct.pack`` elsewhere is an unversioned, unchecksummed
byte format waiting to corrupt a guest silently.  (This migrates the
historical allowance of ``hypervisors/state.py``, which is now a thin
re-export of :mod:`repro.io.frames`.)
"""

import ast
from typing import Iterable

from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule, dotted_name
from repro.analysis.rules.hygiene import _import_aliases

#: the one layer allowed to use the struct module
IO_SCOPE = ("io/",)


@register_rule
class IOFormatHygieneRule(Rule):
    name = "io-format-hygiene"
    description = (
        "struct.pack/struct.unpack only inside repro/io/; every other "
        "byte format must go through the framed codec layer"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if module.path.startswith(IO_SCOPE):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterable[Finding]:
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            head, _, tail = dotted.partition(".")
            resolved = aliases.get(head)
            if resolved is not None:
                dotted = resolved + ("." + tail if tail else "")
            if dotted == "struct" or dotted.startswith("struct."):
                yield self.finding(
                    module.path, node.lineno,
                    f"{dotted}() outside repro/io/ hand-rolls a byte "
                    f"format; use the repro.io frame/packing layer so the "
                    f"bytes stay versioned and CRC-checked",
                )
