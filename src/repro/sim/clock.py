"""Simulated clock.

The clock only moves forward.  Every duration in the library is expressed in
simulated seconds (floats); wall-clock time never leaks into results.
"""

from repro.errors import SimulationError


class SimClock:
    """A monotonically-advancing simulated clock.

    The clock starts at ``0.0`` (or an explicit epoch) and can only advance.
    It is shared by the engine, hardware models and workloads so that a single
    timeline orders every event in an experiment.
    """

    def __init__(self, epoch: float = 0.0):
        if epoch < 0:
            raise SimulationError(f"clock epoch must be >= 0, got {epoch}")
        self._now = float(epoch)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise SimulationError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        Raises :class:`SimulationError` if ``timestamp`` lies in the past.
        """
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
