"""Plain-text table/series rendering for the benchmark harness.

Every ``benchmarks/bench_*`` file prints the rows or series the paper's
corresponding table/figure reports, via these helpers, so the regenerated
artifacts are easy to eyeball against the original.
"""

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render a (figure) series as aligned x/y columns."""
    rows = [(x, y) for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=name)


def print_experiment(exp_id: str, description: str, body: str) -> None:
    """Uniform experiment banner + body used by every bench file."""
    banner = f"=== {exp_id}: {description} ==="
    print()
    print(banner)
    print(body)
    print("=" * len(banner))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)
