"""Observability hygiene rules.

``span-hygiene``: tracer spans may only be opened with a ``with`` statement
(``with tracer.span(...)``).  A ``.span()`` call whose context manager is
never entered — or entered by hand via ``__enter__`` — can leave the span
open forever; the exporter then refuses the whole trace, or worse, the
span silently never appears.  The ``with`` form guarantees every opened
span closes, even on exceptions and across generator yields.

``trace-format-hygiene``: only :mod:`repro.obs` may format trace
timestamps — i.e. build Chrome trace-event dicts (``"ph"``/``"ts"`` keys,
``"traceEvents"`` envelopes) by hand.  Hand-rolled events are how the
string-``tid`` bug shipped: every producer must go through
:meth:`repro.obs.Trace.to_chrome_trace`, so the µs conversion, the stable
integer ids, and the metadata events exist in exactly one place.
"""

import ast
from typing import Iterable, Set

from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule

#: the one layer allowed to open spans freely and format trace events
OBS_SCOPE = ("obs/",)

#: dict keys that mark a hand-built Chrome trace event / envelope
EVENT_KEYS = frozenset({"ph", "ts"})
ENVELOPE_KEYS = frozenset({"traceEvents"})


def _in_obs(module: SourceModule) -> bool:
    return module.path.startswith(OBS_SCOPE)


@register_rule
class SpanHygieneRule(Rule):
    name = "span-hygiene"
    description = (
        "tracer spans must be opened with 'with tracer.span(...)' so every "
        "opened span is closed"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if _in_obs(module):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterable[Finding]:
        with_contexts: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "span"):
                continue
            if id(node) in with_contexts:
                continue
            yield self.finding(
                module.path, node.lineno,
                ".span(...) outside a 'with' statement can leave the span "
                "open forever; use 'with tracer.span(...)' so it always "
                "closes",
            )


@register_rule
class TraceFormatHygieneRule(Rule):
    name = "trace-format-hygiene"
    description = (
        "only repro.obs may format trace timestamps; build events via "
        "Trace.to_chrome_trace, never by hand"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if _in_obs(module):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Dict):
                    continue
                keys = {
                    key.value for key in node.keys
                    if isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                }
                if EVENT_KEYS <= keys or keys & ENVELOPE_KEYS:
                    yield self.finding(
                        module.path, node.lineno,
                        "hand-built Chrome trace event; only repro.obs may "
                        "format trace timestamps (use Trace.to_chrome_trace)",
                    )
