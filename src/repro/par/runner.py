"""High-level parallel runner and the fleet-campaign worker entrypoint.

:class:`ParallelRunner` is the convenience layer the benchmarks and the
CLI use: map a module-level function over payloads, get results back in
submission order, keep the pool's operational stats for the artifact's
``meta`` block.

:func:`fleet_campaign_task` is the canonical worker entrypoint — one
complete fleet campaign per task, built *inside* the worker from a plain
config payload (never shipped live objects), returning plain dicts: the
metrics document, span payloads and a registry snapshot.  Because the
campaign is seeded and the document serialization is deterministic, the
same payload produces the same dicts inline, in a worker, or in a worker
that crashed twice and was retried.
"""

from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.par.pool import PoolStats, Task, WorkerPool, func_ref


class ParallelRunner:
    """Order-preserving parallel map over module-level task functions."""

    def __init__(self, workers: int = 1, task_timeout_s: float = 300.0,
                 max_retries: int = 1, backoff_base_s: float = 0.05):
        self.workers = workers
        self.task_timeout_s = task_timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.stats = PoolStats()

    def map_tasks(self, fn: Union[str, Callable], payloads: Sequence[Any],
                  labels: Optional[Sequence[str]] = None,
                  timeout_s: Optional[float] = None) -> List[Any]:
        """Run ``fn(payload)`` for every payload; results keep input order."""
        ref = func_ref(fn)
        if labels is not None and len(labels) != len(payloads):
            from repro.errors import ParError

            raise ParError(
                f"got {len(labels)} labels for {len(payloads)} payloads"
            )
        tasks = [
            Task(func=ref, payload=payload,
                 label=labels[index] if labels else f"{ref}#{index}",
                 timeout_s=timeout_s)
            for index, payload in enumerate(payloads)
        ]
        pool = WorkerPool(
            workers=self.workers,
            task_timeout_s=self.task_timeout_s,
            max_retries=self.max_retries,
            backoff_base_s=self.backoff_base_s,
        )
        try:
            return pool.run(tasks)
        finally:
            self.stats = pool.stats


# -- the fleet campaign as a worker entrypoint --------------------------------


def fleet_campaign_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one seeded fleet campaign and return plain-dict results.

    ``payload`` keys:

    * ``config`` — :class:`~repro.fleet.controller.FleetConfig` kwargs;
    * ``fail_rate`` — failure-injection probability (default 0.0);
    * ``injector_seed`` — injector RNG seed (default: the config seed);
    * ``max_retries`` — per-host retry budget (default: policy default);
    * ``trace`` — collect spans and return them as payloads;
    * ``metrics`` — publish into a registry and return its snapshot.

    Everything live — clock, engine, tracer, registry — is constructed
    here, inside the executing process; only seeds and plain data cross
    the pipe.  The returned ``document`` is exactly
    ``FleetMetrics.to_dict()``, so serial and parallel runs serialize to
    identical bytes.
    """
    from repro.fleet import (
        FailureInjector,
        FleetConfig,
        FleetController,
        RetryPolicy,
    )
    from repro.obs import MetricsRegistry, Tracer
    from repro.par.shard import spans_to_payload

    config = FleetConfig(**payload.get("config", {}))
    injector = FailureInjector(
        payload.get("fail_rate", 0.0),
        seed=payload.get("injector_seed", config.seed),
    )
    if payload.get("max_retries") is not None:
        retry = RetryPolicy(max_retries=payload["max_retries"])
    else:
        retry = RetryPolicy()
    tracer = Tracer() if payload.get("trace") else None
    registry = MetricsRegistry() if payload.get("metrics") else None

    kwargs = {"injector": injector, "retry": retry}
    if tracer is not None:
        kwargs["tracer"] = tracer
    if registry is not None:
        kwargs["registry"] = registry
    controller = FleetController(config, **kwargs)
    metrics = controller.run()

    result: Dict[str, Any] = {"document": metrics.to_dict()}
    # Sorted plain dicts: serializes identically from any worker.
    result["mechanism_mix"] = controller.mechanism_mix()
    if tracer is not None:
        result["spans"] = spans_to_payload(tracer.trace)
    if registry is not None:
        result["registry"] = registry.snapshot()
    return result


def sentinel_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one seeded sentinel feed replay and return plain-dict results.

    ``payload`` keys:

    * ``config`` — :class:`~repro.sentinel.responder.SentinelConfig`
      payload (the ``to_payload`` shape: nested ``feed``/``policy``
      dicts, a plain-list pool);
    * ``trace`` — collect response-plane spans and return them as
      payloads;
    * ``metrics`` — publish into a registry and return its snapshot.

    Same discipline as :func:`fleet_campaign_task`: clock, engine,
    tracer and registry are built here, in the executing process; the
    returned ``document`` is exactly ``SentinelReport.to_dict()``, so
    serial and parallel runs serialize to identical bytes.
    """
    from repro.obs import MetricsRegistry, Tracer
    from repro.par.shard import spans_to_payload
    from repro.sentinel import Sentinel, SentinelConfig

    config = SentinelConfig.from_payload(payload.get("config", {}))
    tracer = Tracer() if payload.get("trace") else None
    registry = MetricsRegistry() if payload.get("metrics") else None

    kwargs: Dict[str, Any] = {}
    if tracer is not None:
        kwargs["tracer"] = tracer
    if registry is not None:
        kwargs["registry"] = registry
    report = Sentinel(config, **kwargs).run()

    result: Dict[str, Any] = {"document": report.to_dict()}
    if tracer is not None:
        result["spans"] = spans_to_payload(tracer.trace)
    if registry is not None:
        result["registry"] = registry.snapshot()
    return result


def run_sentinel(payload: Dict[str, Any], workers: int = 1,
                 task_timeout_s: float = 600.0) -> Dict[str, Any]:
    """One sentinel replay, optionally routed through the worker pool.

    Mirrors :func:`run_fleet_campaign`: ``workers <= 1`` runs inline;
    more routes the single task through a subprocess, and the output
    must be byte-identical either way.
    """
    runner = ParallelRunner(workers=workers, task_timeout_s=task_timeout_s)
    return runner.map_tasks(sentinel_task, [payload],
                            labels=["sentinel"])[0]


def run_fleet_campaign(payload: Dict[str, Any], workers: int = 1,
                       task_timeout_s: float = 600.0) -> Dict[str, Any]:
    """One campaign, optionally routed through the worker pool.

    With ``workers <= 1`` the campaign runs inline — the serial path.
    With more, the single task takes the full subprocess round trip
    (frames out, campaign in a fresh interpreter, frames back), which is
    the determinism contract the CLI's ``--workers`` flag exposes: the
    output must be byte-identical either way.
    """
    runner = ParallelRunner(workers=workers, task_timeout_s=task_timeout_s)
    return runner.map_tasks(fleet_campaign_task, [payload],
                            labels=["fleet-campaign"])[0]
