"""``repro.par`` — deterministic multi-process execution.

Fleet campaigns and benchmark sweeps are embarrassingly parallel (every
cell is an independent seeded simulation), but parallelism is only
admissible here if it is *invisible in the output*: the merged artifact
must be byte-identical for any worker count and any completion order,
and ``workers=1`` must be exactly the serial path.  The subsystem:

* :mod:`pool` — spawn-based :class:`WorkerPool` whose task/result
  protocol rides the :mod:`repro.io` frame codec over pipes, with
  per-task timeouts, crash detection, bounded retry and inline fallback;
* :mod:`shard` — :func:`derive_seed` (stable per-shard seeds) and the
  order-independent mergers for metrics snapshots and trace spans;
* :mod:`runner` — :class:`ParallelRunner` (order-preserving map) and the
  fleet-campaign worker entrypoint;
* :mod:`realtime` — the subsystem's one audited wall-clock boundary.

See ``docs/parallelism.md`` for the protocol and the determinism
contract, and the ``par-entrypoint-hygiene`` / ``par-payload-hygiene``
lint rules for the statically-enforced parts.
"""

import importlib

# Lazy re-exports (PEP 562): the worker boot command imports
# ``repro.par.pool`` through this package; pulling :mod:`runner` and
# :mod:`shard` (and their repro.obs dependencies) eagerly would tax
# every worker spawn.  Attributes resolve on first access.
_EXPORTS = {
    "TASK_FRAME": "repro.par.pool",
    "RESULT_FRAME": "repro.par.pool",
    "ERROR_FRAME": "repro.par.pool",
    "Task": "repro.par.pool",
    "PoolStats": "repro.par.pool",
    "WorkerPool": "repro.par.pool",
    "func_ref": "repro.par.pool",
    "resolve_ref": "repro.par.pool",
    "check_payload": "repro.par.pool",
    "worker_main": "repro.par.pool",
    "ParallelRunner": "repro.par.runner",
    "fleet_campaign_task": "repro.par.runner",
    "run_fleet_campaign": "repro.par.runner",
    "sentinel_task": "repro.par.runner",
    "run_sentinel": "repro.par.runner",
    "derive_seed": "repro.par.shard",
    "merge_snapshots": "repro.par.shard",
    "merge_traces": "repro.par.shard",
    "span_to_payload": "repro.par.shard",
    "span_from_payload": "repro.par.shard",
    "spans_to_payload": "repro.par.shard",
}


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "TASK_FRAME",
    "RESULT_FRAME",
    "ERROR_FRAME",
    "Task",
    "PoolStats",
    "WorkerPool",
    "func_ref",
    "resolve_ref",
    "check_payload",
    "worker_main",
    "ParallelRunner",
    "fleet_campaign_task",
    "run_fleet_campaign",
    "sentinel_task",
    "run_sentinel",
    "derive_seed",
    "merge_snapshots",
    "merge_traces",
    "span_to_payload",
    "span_from_payload",
    "spans_to_payload",
]
