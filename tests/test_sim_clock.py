"""Tests for the simulated clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock


def test_starts_at_zero():
    assert SimClock().now == 0.0


def test_starts_at_epoch():
    assert SimClock(epoch=12.5).now == 12.5


def test_negative_epoch_rejected():
    with pytest.raises(SimulationError):
        SimClock(epoch=-1.0)


def test_advance_moves_forward():
    clock = SimClock()
    assert clock.advance(2.5) == 2.5
    assert clock.advance(0.5) == 3.0
    assert clock.now == 3.0


def test_advance_zero_is_allowed():
    clock = SimClock()
    clock.advance(0.0)
    assert clock.now == 0.0


def test_advance_negative_rejected():
    clock = SimClock()
    with pytest.raises(SimulationError):
        clock.advance(-0.1)


def test_advance_to_absolute():
    clock = SimClock()
    clock.advance_to(7.0)
    assert clock.now == 7.0


def test_advance_to_past_rejected():
    clock = SimClock()
    clock.advance_to(5.0)
    with pytest.raises(SimulationError):
        clock.advance_to(4.999)


def test_advance_to_same_time_is_noop():
    clock = SimClock()
    clock.advance_to(5.0)
    clock.advance_to(5.0)
    assert clock.now == 5.0


def test_repr_contains_time():
    assert "3.5" in repr(SimClock(epoch=3.5))
