"""Build host timelines from transplant reports.

These helpers connect the transplant machinery to the workload models: run
an InPlaceTP or MigrationTP (on the simulated machinery), then express the
result as the :class:`HostTimeline` a workload observes — pause window,
hypervisor switch, pre-copy degradation, network blackout.
"""

from repro.hypervisors.base import HypervisorKind
from repro.core.inplace import InPlaceReport
from repro.core.migration import MigrationReport
from repro.workloads.base import HostTimeline


def timeline_for_inplace(report: InPlaceReport, trigger_t: float,
                         source: HypervisorKind,
                         target: HypervisorKind) -> HostTimeline:
    """Timeline of a VM that rode an InPlaceTP at ``trigger_t``.

    PRAM construction precedes the pause (prepare-ahead); the VM pauses for
    Translation+Reboot+Restoration; the network returns ``network_s`` after
    the reboot completes, overlapping restoration.
    """
    pause_start = trigger_t + report.pram_s
    pause_end = pause_start + report.downtime_s
    reboot_end = pause_start + report.translation_s + report.reboot_s
    network_back = reboot_end + report.network_s
    return HostTimeline(
        switches=[(0.0, source), (reboot_end, target)],
        paused=[(pause_start, pause_end)],
        network_down=[(pause_start, max(network_back, pause_end))],
    )


def timeline_for_migration(report: MigrationReport, trigger_t: float,
                           source: HypervisorKind,
                           target: HypervisorKind,
                           precopy_throughput_factor: float = 0.55
                           ) -> HostTimeline:
    """Timeline of a VM that was live-migrated starting at ``trigger_t``.

    During pre-copy the guest keeps running but loses throughput to page
    tracking and network contention (the Fig. 11/12 dip); the stop-and-copy
    pause is milliseconds.
    """
    precopy_end = trigger_t + report.precopy_s
    pause_end = precopy_end + report.downtime_s
    return HostTimeline(
        switches=[(0.0, source), (pause_end, target)],
        paused=[(precopy_end, pause_end)],
        degraded=[(trigger_t, precopy_end, precopy_throughput_factor)],
    )
