"""PRAM — the persistent-over-kexec memory file system (Fig. 4).

PRAM records each VM's memory as a *file*: a named sequence of page entries,
each entry being an 8-byte record holding the guest frame number, the
machine frame number and the chunk size as a power-of-two page count (so
2 MB host large pages cost one entry, not 512).

Structure (all metadata is page-aligned, as in the paper):

* the **PRAM pointer** — a single machine address passed to the target
  kernel on its boot command line;
* **root directory pages** (a linked list), each referring to file-info
  pages;
* **file-info pages**, one per VM file, heading a chain of **node pages**
  filled with page entries.

The implementation keeps the structure in real metadata pages allocated
from host RAM (so Fig. 14's "PRAM structures" series is *measured*), with a
byte-exact encoding of every page.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import PRAMError, StateFormatError
from repro.hw.memory import PAGE_4K, PhysicalMemory
from repro.io.frames import FrameReader, FrameWriter, Packer, StreamMeter, Unpacker
from repro.io.pages import (
    DedupStats,
    PageStreamDecoder,
    PageStreamEncoder,
    decode_entry_records,
    encode_entry_records,
    pack_entry_record,
    unpack_entry_record,
)
from repro.obs import NULL_TRACER
from repro.obs.metrics import MetricsRegistry

# Byte budget per metadata page and record sizes.
_PAGE_BYTES = PAGE_4K
_PAGE_ENTRY_BYTES = 8
_NODE_HEADER_BYTES = 16  # next-node pointer + entry count
_ENTRIES_PER_NODE = (_PAGE_BYTES - _NODE_HEADER_BYTES) // _PAGE_ENTRY_BYTES
_FILEINFO_HEADER_BYTES = 64  # name, size, mode, first-node pointer
_FILES_PER_ROOT_PAGE = (_PAGE_BYTES - 16) // 8

# The 8-byte (gfn:28, mfn:30, order:6) page-entry bit layout lives in
# repro.io.pages — the shared codec layer — and is wrapped here so range
# violations surface as PRAMError.
def _pack_entry(gfn: int, mfn: int, order: int) -> int:
    try:
        return pack_entry_record(gfn, mfn, order)
    except StateFormatError as exc:
        raise PRAMError(str(exc)) from exc


def _unpack_entry(packed: int) -> Tuple[int, int, int]:
    return unpack_entry_record(packed)


# Frame type tags of the PRAM stream (see docs/state-io.md).
_FRAME_HEADER = 1
_FRAME_FILE = 2
_FRAME_CONTENTS = 3


@dataclass(frozen=True)
class PageEntry:
    """One chunk of guest memory: GFN, MFN, 2**order base (4K) pages."""

    gfn: int
    mfn: int
    order: int

    @property
    def byte_size(self) -> int:
        return PAGE_4K << self.order

    def packed(self) -> int:
        return _pack_entry(self.gfn, self.mfn, self.order)

    @staticmethod
    def unpacked(value: int) -> "PageEntry":
        gfn, mfn, order = _unpack_entry(value)
        return PageEntry(gfn=gfn, mfn=mfn, order=order)


@dataclass
class PRAMFile:
    """One VM's memory described as a PRAM file.

    ``entries`` are the on-disk-format records at *entry* granularity (4 KB
    without the huge-page optimisation, 2 MB with it); ``guest_layout`` is
    the GFN -> MFN map at the guest's own page granularity, which is what
    restoration consumes.
    """

    name: str
    page_size: int  # guest page size
    entries: List[PageEntry] = field(default_factory=list)
    guest_layout: Dict[int, int] = field(default_factory=dict)
    mode: int = 0o600

    @property
    def total_bytes(self) -> int:
        return sum(entry.byte_size for entry in self.entries)

    def layout(self) -> Dict[int, int]:
        """GFN -> MFN map (in guest page_size units)."""
        return dict(self.guest_layout)

    @property
    def node_page_count(self) -> int:
        if not self.entries:
            return 1
        return -(-len(self.entries) // _ENTRIES_PER_NODE)

    def metadata_bytes(self) -> int:
        """Bytes of node pages + file-info header this file consumes."""
        return self.node_page_count * _PAGE_BYTES


class PRAMFilesystem:
    """The whole PRAM structure for one machine.

    Building the structure allocates real metadata pages from host RAM and
    pins them (plus every described guest frame) so the micro-reboot cannot
    recycle them.  ``teardown`` releases the metadata after restoration —
    the "extra memory is given back" note of §5.5.
    """

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory
        self.files: Dict[str, PRAMFile] = {}
        self._metadata_mfns: List[int] = []
        self.pram_pointer: Optional[int] = None
        self._sealed = False
        #: dedup statistics of the last ``encode(include_contents=True)``.
        self.last_encode_stats: Optional[DedupStats] = None

    # -- construction -------------------------------------------------------

    def add_vm_file(self, name: str, mappings: Iterable[Tuple[int, int]],
                    page_size: int,
                    entry_page_size: Optional[int] = None) -> PRAMFile:
        """Describe one VM's memory as a file of page entries.

        ``mappings`` yields (gfn, mfn) in *guest page* units.  With the
        huge-page optimisation (the default), each guest page costs a single
        8-byte record; passing ``entry_page_size=PAGE_4K`` for a huge-paged
        guest models the unoptimised patchset, where every 4 KB base page
        gets its own record (512x the metadata, §4.2.5).
        """
        if self._sealed:
            raise PRAMError("PRAM structure already sealed")
        if name in self.files:
            raise PRAMError(f"duplicate PRAM file {name!r}")
        entry_page_size = entry_page_size or page_size
        if entry_page_size > page_size or page_size % entry_page_size:
            raise PRAMError(
                f"entry page size {entry_page_size} does not divide guest "
                f"page size {page_size}"
            )
        order = (entry_page_size // PAGE_4K).bit_length() - 1
        if PAGE_4K << order != entry_page_size:
            raise PRAMError(
                f"page size {entry_page_size} is not a power-of-two multiple "
                f"of 4K"
            )
        guest_layout = dict(mappings)
        expansion = page_size // entry_page_size
        entries = []
        for gfn, mfn in guest_layout.items():
            for sub in range(expansion):
                entries.append(PageEntry(gfn=gfn * expansion + sub,
                                         mfn=mfn + sub, order=order))
        pram_file = PRAMFile(name=name, page_size=page_size, entries=entries,
                             guest_layout=guest_layout)
        self.files[name] = pram_file
        return pram_file

    def seal(self) -> int:
        """Finalize: allocate+pin metadata pages, pin guest frames.

        Returns the PRAM pointer (the MFN of the first root directory page)
        that will be passed on the target kernel's command line.
        """
        if self._sealed:
            raise PRAMError("PRAM structure already sealed")
        root_pages = max(1, -(-len(self.files) // _FILES_PER_ROOT_PAGE))
        node_pages = sum(f.node_page_count for f in self.files.values())
        fileinfo_pages = len(self.files)
        metadata_frames = self.memory.allocate_many(
            root_pages + fileinfo_pages + node_pages, size=PAGE_4K
        )
        self._metadata_mfns = [frame.mfn for frame in metadata_frames]
        for mfn in self._metadata_mfns:
            self.memory.pin(mfn)
        # Pinning happens at the allocator's granularity: the guest layout
        # names base frames, which cover any finer-grained entry records.
        for pram_file in self.files.values():
            for mfn in pram_file.guest_layout.values():
                self.memory.pin(mfn)
        self.pram_pointer = self._metadata_mfns[0] if self._metadata_mfns else None
        self._sealed = True
        return self.pram_pointer

    # -- queries ---------------------------------------------------------------

    @property
    def sealed(self) -> bool:
        return self._sealed

    def layout_of(self, name: str) -> Dict[int, int]:
        try:
            return self.files[name].layout()
        except KeyError:
            raise PRAMError(f"no PRAM file named {name!r}") from None

    def total_entries(self) -> int:
        return sum(len(f.entries) for f in self.files.values())

    def metadata_bytes(self) -> int:
        """Measured metadata footprint (the Fig. 14 'PRAM structures' series)."""
        if self._sealed:
            return len(self._metadata_mfns) * _PAGE_BYTES
        root_pages = max(1, -(-len(self.files) // _FILES_PER_ROOT_PAGE))
        node_pages = sum(f.node_page_count for f in self.files.values())
        return (root_pages + len(self.files) + node_pages) * _PAGE_BYTES

    def described_bytes(self) -> int:
        return sum(f.total_bytes for f in self.files.values())

    # -- serialization (what early boot parses) ----------------------------------

    def encode(self, include_contents: bool = False,
               registry: Optional[MetricsRegistry] = None,
               tracer=NULL_TRACER) -> bytes:
        """Byte-exact encoding of the metadata pages (what early boot parses).

        One ``repro.io`` framed stream: a header frame, one FILE frame per
        VM (entries run-coalesced when smaller), and — with
        ``include_contents=True`` — one CONTENTS frame per file carrying
        the described frames' ``(gfn, digest)`` records through the shared
        page-batch encoder, so the restored guest can be verified against
        what was sealed (stats land in :attr:`last_encode_stats`).
        """
        with tracer.span("pram.encode", "io"):
            meter = StreamMeter("pram", registry)
            writer = FrameWriter(meter)
            header = Packer().u32(len(self.files)).u8(
                1 if include_contents else 0)
            writer.frame(_FRAME_HEADER, header.bytes())
            pages_encoder = PageStreamEncoder(meter) if include_contents else None
            self.last_encode_stats = None
            for name in sorted(self.files):
                pram_file = self.files[name]
                encoded_name = name.encode()
                packer = Packer()
                packer.u16(len(encoded_name)).raw(encoded_name)
                packer.u32(pram_file.page_size)
                packer.u32(pram_file.mode)
                packer.raw(encode_entry_records(
                    (e.gfn, e.mfn, e.order) for e in pram_file.entries))
                writer.frame(_FRAME_FILE, packer.bytes())
                if pages_encoder is not None:
                    records = [(gfn, self.memory.read(mfn))
                               for gfn, mfn
                               in sorted(pram_file.guest_layout.items())]
                    contents = Packer()
                    contents.u16(len(encoded_name)).raw(encoded_name)
                    contents.raw(pages_encoder.encode_batch(records))
                    writer.frame(_FRAME_CONTENTS, contents.bytes())
            if pages_encoder is not None:
                self.last_encode_stats = pages_encoder.stats
            return writer.finish()

    @staticmethod
    def decode(blob: bytes, memory: PhysicalMemory,
               registry: Optional[MetricsRegistry] = None,
               tracer=NULL_TRACER) -> "PRAMFilesystem":
        """Rebuild a PRAM view from its encoding (target's early boot).

        When the stream carries CONTENTS frames, every recorded page
        digest is checked against the frame it describes — state that was
        scribbled over during the kexec fails loudly instead of restoring
        a silently-wrong guest.
        """
        with tracer.span("pram.decode", "io"):
            try:
                return PRAMFilesystem._decode_frames(blob, memory, registry)
            except PRAMError:
                raise
            except StateFormatError as exc:
                raise PRAMError(f"corrupt PRAM encoding: {exc}") from exc

    @staticmethod
    def _decode_frames(blob: bytes, memory: PhysicalMemory,
                       registry: Optional[MetricsRegistry]) -> "PRAMFilesystem":
        reader = FrameReader(blob, StreamMeter("pram", registry))
        first = reader.read()
        if first is None or first[0] != _FRAME_HEADER:
            raise PRAMError("PRAM stream does not start with a header frame")
        header = Unpacker(first[1])
        file_count = header.u32()
        has_contents = bool(header.u8())
        header.expect_end()
        fs = PRAMFilesystem(memory)
        pages_decoder = PageStreamDecoder() if has_contents else None
        for frame_type, payload in reader.frames():
            if frame_type == _FRAME_FILE:
                unpacker = Unpacker(payload)
                name = unpacker.raw(unpacker.u16()).decode()
                page_size = unpacker.u32()
                mode = unpacker.u32()
                entries = [
                    PageEntry(gfn=gfn, mfn=mfn, order=order)
                    for gfn, mfn, order in decode_entry_records(
                        unpacker.raw(unpacker.remaining))
                ]
                guest_layout: Dict[int, int] = {}
                if entries:
                    expansion = page_size // entries[0].byte_size
                    for entry in entries:
                        if entry.gfn % expansion == 0:
                            guest_layout[entry.gfn // expansion] = entry.mfn
                if name in fs.files:
                    raise PRAMError(f"duplicate PRAM file {name!r}")
                fs.files[name] = PRAMFile(
                    name=name, page_size=page_size, entries=entries,
                    guest_layout=guest_layout, mode=mode)
            elif frame_type == _FRAME_CONTENTS:
                if pages_decoder is None:
                    raise PRAMError(
                        "CONTENTS frame in a stream whose header declared none")
                unpacker = Unpacker(payload)
                name = unpacker.raw(unpacker.u16()).decode()
                pram_file = fs.files.get(name)
                if pram_file is None:
                    raise PRAMError(
                        f"CONTENTS frame for unknown PRAM file {name!r}")
                records = pages_decoder.decode_batch(
                    unpacker.raw(unpacker.remaining))
                for gfn, digest in records:
                    mfn = pram_file.guest_layout.get(gfn)
                    if mfn is None:
                        raise PRAMError(
                            f"content record for unmapped gfn {gfn} in "
                            f"PRAM file {name!r}")
                    if memory.read(mfn) != digest:
                        raise PRAMError(
                            f"content digest mismatch for gfn {gfn} of "
                            f"{name!r}: frame was modified across the kexec")
            else:
                raise PRAMError(f"unknown PRAM frame type {frame_type}")
        reader.expect_end()
        if len(fs.files) != file_count:
            raise PRAMError(
                f"PRAM stream carried {len(fs.files)} files, "
                f"header declared {file_count}")
        return fs

    # -- teardown ------------------------------------------------------------

    def release_guest_pins(self, name: str) -> None:
        """Unpin one VM's frames after its restoration completed."""
        for mfn in self.files[name].guest_layout.values():
            self.memory.unpin(mfn)

    def teardown(self) -> int:
        """Free all metadata pages; returns bytes returned to the host."""
        freed = 0
        for mfn in self._metadata_mfns:
            self.memory.unpin(mfn)
            self.memory.free(mfn)
            freed += _PAGE_BYTES
        self._metadata_mfns = []
        return freed
