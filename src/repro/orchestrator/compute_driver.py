"""Nova ComputeDriver interface, extended with HyperTP operations (§4.5.2).

The paper adds three driver-level operations alongside the classic
suspend/resume/live_migration verbs:

* ``hypertp_save_guest_state`` — akin to suspend, but externalizes VM_i
  State as UISR;
* ``hypertp_load_kernel`` — stage the target hypervisor for kexec;
* ``hypertp_restore_guest_state`` — akin to resume, from UISR.

``LibvirtComputeDriver`` implements them on top of the HyperTP core; a
deployment with another virt driver would implement the same interface.
"""

import abc
from typing import List, Optional

from repro.errors import OrchestratorError
from repro.hw.machine import Machine
from repro.hw.network import Fabric
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.inplace import InPlaceReport, InPlaceTP
from repro.core.migration import MigrationReport, MigrationTP
from repro.core.transplant import HyperTP
from repro.orchestrator.libvirt import LibvirtConnection


class ComputeDriver(abc.ABC):
    """The subset of Nova's driver interface HyperTP touches."""

    @abc.abstractmethod
    def list_instances(self) -> List[str]:
        ...

    @abc.abstractmethod
    def suspend(self, instance: str, now: float) -> None:
        ...

    @abc.abstractmethod
    def resume(self, instance: str, now: float) -> None:
        ...

    @abc.abstractmethod
    def live_migration(self, instance: str, dest_driver: "ComputeDriver",
                       clock: SimClock) -> MigrationReport:
        ...

    # -- HyperTP extensions --

    @abc.abstractmethod
    def hypertp_load_kernel(self, target: HypervisorKind) -> None:
        ...

    @abc.abstractmethod
    def hypertp_host_upgrade(self, target: HypervisorKind,
                             clock: SimClock) -> InPlaceReport:
        ...


class LibvirtComputeDriver(ComputeDriver):
    """The libvirt-backed driver, one per compute host."""

    def __init__(self, machine: Machine, fabric: Optional[Fabric] = None,
                 hypertp: Optional[HyperTP] = None):
        self.machine = machine
        self.fabric = fabric
        self.hypertp = hypertp or HyperTP()
        self.connection = LibvirtConnection(machine)

    @property
    def hypervisor_kind(self) -> HypervisorKind:
        return self.connection.hypervisor.kind

    def list_instances(self) -> List[str]:
        return self.connection.list_domains()

    def suspend(self, instance: str, now: float) -> None:
        self.connection.lookup(instance).suspend(now)

    def resume(self, instance: str, now: float) -> None:
        self.connection.lookup(instance).resume(now)

    def live_migration(self, instance: str, dest_driver: "ComputeDriver",
                       clock: SimClock) -> MigrationReport:
        if not isinstance(dest_driver, LibvirtComputeDriver):
            raise OrchestratorError("destination driver is not libvirt-backed")
        if self.fabric is None:
            raise OrchestratorError(
                f"{self.machine.name}: no fabric configured for migration"
            )
        domain = self.connection._domain_by_name(instance)
        migrator = MigrationTP(
            self.fabric, self.machine, dest_driver.machine,
            registry=self.hypertp.registry, cost_model=self.hypertp.cost,
        )
        return migrator.migrate(domain, clock)

    def hypertp_load_kernel(self, target: HypervisorKind) -> None:
        from repro.core.kexec import load_kexec_image

        load_kexec_image(self.machine, target)

    def hypertp_host_upgrade(self, target: HypervisorKind,
                             clock: SimClock) -> InPlaceReport:
        """Save guest state, kexec, restore — the new driver operation."""
        transplant = InPlaceTP(
            self.machine, target, registry=self.hypertp.registry,
            cost_model=self.hypertp.cost, optimizations=self.hypertp.opts,
        )
        report = transplant.run(clock)
        # The connection keeps working: libvirt now speaks to the new
        # hypervisor and the URI changes under the hood.
        return report
