"""Xen PV interfaces: event channels and grant tables.

These are the mechanisms behind 38.4 % of Xen's critical vulnerabilities
(§2.1) and the reason Xen PV guests cannot be transplanted at all (§4.1
footnote: PV couples guests tightly to the Xen API).  HVM guests still use
them through their PV *drivers* (netfront/blkfront), which is why the
§4.2.3 unplug/rescan strategy exists: the channels and grants are Xen-only
state, torn down before the micro-reboot and re-created as virtio queues on
the KVM side.

Both structures are classic VM_i State: hypervisor-dependent, per-domain,
and discarded (not translated) because the target hypervisor's paravirtual
transport is a different mechanism entirely.
"""

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import HypervisorError

MAX_EVENT_CHANNELS = 4096
GRANT_TABLE_ENTRIES = 1024


class ChannelKind(enum.Enum):
    UNBOUND = "unbound"
    INTERDOMAIN = "interdomain"
    VIRQ = "virq"


@dataclass
class EventChannel:
    """One event-channel port of one domain."""

    port: int
    domid: int
    kind: ChannelKind
    remote_domid: Optional[int] = None
    remote_port: Optional[int] = None
    virq: Optional[int] = None
    pending: bool = False
    masked: bool = False


class EventChannelTable:
    """All domains' event channels on one Xen host."""

    def __init__(self, max_channels: int = MAX_EVENT_CHANNELS):
        self.max_channels = max_channels
        self._channels: Dict[Tuple[int, int], EventChannel] = {}
        self._next_port: Dict[int, int] = {}

    def _alloc_port(self, domid: int) -> int:
        port = self._next_port.get(domid, 1)
        if port >= self.max_channels:
            raise HypervisorError(
                f"domain {domid}: event-channel ports exhausted"
            )
        self._next_port[domid] = port + 1
        return port

    def alloc_unbound(self, domid: int, remote_domid: int) -> EventChannel:
        """EVTCHNOP_alloc_unbound: a port awaiting a remote bind."""
        port = self._alloc_port(domid)
        channel = EventChannel(port=port, domid=domid,
                               kind=ChannelKind.UNBOUND,
                               remote_domid=remote_domid)
        self._channels[(domid, port)] = channel
        return channel

    def bind_interdomain(self, domid: int, remote_domid: int,
                         remote_port: int) -> EventChannel:
        """EVTCHNOP_bind_interdomain: connect to a remote unbound port."""
        remote = self.get(remote_domid, remote_port)
        if remote.kind is not ChannelKind.UNBOUND:
            raise HypervisorError(
                f"remote port {remote_port} of domain {remote_domid} "
                f"is {remote.kind.value}, not unbound"
            )
        if remote.remote_domid != domid:
            raise HypervisorError(
                f"remote port {remote_port} reserved for domain "
                f"{remote.remote_domid}, not {domid}"
            )
        port = self._alloc_port(domid)
        local = EventChannel(port=port, domid=domid,
                             kind=ChannelKind.INTERDOMAIN,
                             remote_domid=remote_domid,
                             remote_port=remote_port)
        self._channels[(domid, port)] = local
        remote.kind = ChannelKind.INTERDOMAIN
        remote.remote_port = port
        return local

    def bind_virq(self, domid: int, virq: int) -> EventChannel:
        """EVTCHNOP_bind_virq: timer/debug virtual interrupts."""
        for channel in self.channels_of(domid):
            if channel.kind is ChannelKind.VIRQ and channel.virq == virq:
                raise HypervisorError(
                    f"domain {domid} already bound VIRQ {virq}"
                )
        port = self._alloc_port(domid)
        channel = EventChannel(port=port, domid=domid,
                               kind=ChannelKind.VIRQ, virq=virq)
        self._channels[(domid, port)] = channel
        return channel

    def send(self, domid: int, port: int) -> None:
        """EVTCHNOP_send: raise the event on the peer end."""
        channel = self.get(domid, port)
        if channel.kind is not ChannelKind.INTERDOMAIN:
            raise HypervisorError(
                f"port {port} of domain {domid} is not interdomain"
            )
        peer = self.get(channel.remote_domid, channel.remote_port)
        if not peer.masked:
            peer.pending = True

    def get(self, domid: int, port: int) -> EventChannel:
        try:
            return self._channels[(domid, port)]
        except KeyError:
            raise HypervisorError(
                f"domain {domid} has no event channel on port {port}"
            ) from None

    def close(self, domid: int, port: int) -> None:
        channel = self.get(domid, port)
        if channel.kind is ChannelKind.INTERDOMAIN and \
                channel.remote_port is not None:
            peer = self._channels.get(
                (channel.remote_domid, channel.remote_port)
            )
            if peer is not None:
                peer.kind = ChannelKind.UNBOUND
                peer.remote_port = None
        del self._channels[(domid, port)]

    def close_domain(self, domid: int) -> int:
        """Close every channel of a dying/transplanting domain."""
        ports = [p for (d, p) in self._channels if d == domid]
        for port in ports:
            self.close(domid, port)
        self._next_port.pop(domid, None)
        return len(ports)

    def channels_of(self, domid: int) -> List[EventChannel]:
        return [c for (d, _), c in sorted(self._channels.items())
                if d == domid]

    def total(self) -> int:
        return len(self._channels)


@dataclass
class GrantEntry:
    """One grant-table slot: a page shared with another domain."""

    ref: int
    gfn: int
    granted_to: int
    writable: bool
    in_use: bool = False  # mapped by the grantee


class GrantTable:
    """One domain's grant table."""

    def __init__(self, domid: int, entries: int = GRANT_TABLE_ENTRIES):
        self.domid = domid
        self.capacity = entries
        self._entries: Dict[int, GrantEntry] = {}
        self._next_ref = 0

    def grant(self, gfn: int, granted_to: int,
              writable: bool = True) -> GrantEntry:
        if len(self._entries) >= self.capacity:
            raise HypervisorError(
                f"domain {self.domid}: grant table full"
            )
        ref = self._next_ref
        self._next_ref += 1
        entry = GrantEntry(ref=ref, gfn=gfn, granted_to=granted_to,
                           writable=writable)
        self._entries[ref] = entry
        return entry

    def map(self, ref: int, mapper_domid: int) -> GrantEntry:
        entry = self._get(ref)
        if entry.granted_to != mapper_domid:
            raise HypervisorError(
                f"grant {ref} of domain {self.domid} is for domain "
                f"{entry.granted_to}, not {mapper_domid}"
            )
        entry.in_use = True
        return entry

    def unmap(self, ref: int) -> None:
        self._get(ref).in_use = False

    def revoke(self, ref: int) -> None:
        entry = self._get(ref)
        if entry.in_use:
            raise HypervisorError(
                f"grant {ref} of domain {self.domid} is still mapped"
            )
        del self._entries[ref]

    def revoke_all(self) -> int:
        """Teardown before transplant: every grant must be unmapped first."""
        still_mapped = [e.ref for e in self._entries.values() if e.in_use]
        if still_mapped:
            raise HypervisorError(
                f"domain {self.domid}: grants still mapped: {still_mapped}"
            )
        count = len(self._entries)
        self._entries.clear()
        return count

    def force_unmap_all(self) -> None:
        """Device quiesce path: the backend unmaps everything it held."""
        for entry in self._entries.values():
            entry.in_use = False

    def _get(self, ref: int) -> GrantEntry:
        try:
            return self._entries[ref]
        except KeyError:
            raise HypervisorError(
                f"domain {self.domid} has no grant {ref}"
            ) from None

    def active(self) -> List[GrantEntry]:
        return [e for e in self._entries.values() if e.in_use]

    def __len__(self) -> int:
        return len(self._entries)
