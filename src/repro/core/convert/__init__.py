"""Hypervisor <-> UISR converters and compatibility fixups.

Each direction is an independent module so a hypervisor expert can own just
their pair (the paper's division of labour, §3.1):

* :mod:`xen_to_uisr` / :mod:`uisr_to_xen` — written against the Xen
  toolstack's HVM-context entry points.
* :mod:`kvm_to_uisr` / :mod:`uisr_to_kvm` — written against kvmtool and the
  KVM ioctl surface.
* :mod:`compat` — the cross-hypervisor fixups (IOAPIC 48->24 pins, etc.).
"""

from repro.core.convert.xen_to_uisr import to_uisr_xen
from repro.core.convert.uisr_to_xen import from_uisr_xen
from repro.core.convert.kvm_to_uisr import to_uisr_kvm
from repro.core.convert.uisr_to_kvm import from_uisr_kvm
from repro.core.convert.compat import (
    ioapic_shrink_to,
    ioapic_grow_to,
    apply_platform_fixups,
)

__all__ = [
    "to_uisr_xen",
    "from_uisr_xen",
    "to_uisr_kvm",
    "from_uisr_kvm",
    "ioapic_shrink_to",
    "ioapic_grow_to",
    "apply_platform_fixups",
]
