"""Architectural vCPU state.

This is the hypervisor-*independent* architectural content (x86-64 general
registers, segment registers, control registers, MSRs, FPU/XSAVE area).
Each hypervisor packages it differently — Xen in HVM save records, KVM in
``KVM_GET_REGS``/``KVM_GET_SREGS``/``KVM_GET_MSRS`` structs — and UISR is the
neutral middle ground.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, Tuple

GP_REGISTERS = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
    "rip", "rflags",
)

SEGMENT_REGISTERS = ("cs", "ds", "es", "fs", "gs", "ss", "tr", "ldtr")

CONTROL_REGISTERS = ("cr0", "cr2", "cr3", "cr4", "cr8", "efer")

# Architectural MSRs every hypervisor must carry across.  The first block is
# the classic syscall/segment set; the rest approximates the register file a
# real save/restore moves (SYSENTER, TSC machinery, PMU counters, x2APIC
# shadow, spec-ctrl), matching the paper's ~5 KB-per-vCPU UISR footprint.
COMMON_MSRS = (
    0xC0000080,  # IA32_EFER
    0xC0000081,  # STAR
    0xC0000082,  # LSTAR
    0xC0000083,  # CSTAR
    0xC0000084,  # FMASK
    0xC0000100,  # FS_BASE
    0xC0000101,  # GS_BASE
    0xC0000102,  # KERNEL_GS_BASE
    0xC0000103,  # TSC_AUX
    0x00000010,  # TSC
    0x0000003A,  # FEATURE_CONTROL
    0x00000048,  # SPEC_CTRL
    0x0000008B,  # MICROCODE_REV
    0x000000E7,  # MPERF
    0x000000E8,  # APERF
    0x00000174,  # SYSENTER_CS
    0x00000175,  # SYSENTER_ESP
    0x00000176,  # SYSENTER_EIP
    0x000001A0,  # MISC_ENABLE
    0x000001D9,  # DEBUGCTL
    0x00000277,  # PAT
    0x000006E0,  # TSC_DEADLINE
    0x00000D90,  # BNDCFGS
    0x00000DA0,  # XSS
) + tuple(0x00000309 + i for i in range(8)) \
  + tuple(0x000004C1 + i for i in range(8)) \
  + tuple(0x00000680 + i for i in range(16))  # LBR from-stack


@dataclass(frozen=True)
class SegmentDescriptor:
    """A segment register's hidden-part cache (base/limit/selector/attrs)."""

    selector: int
    base: int
    limit: int
    attributes: int

    def as_tuple(self) -> Tuple[int, int, int, int]:
        return (self.selector, self.base, self.limit, self.attributes)


@dataclass
class VCPUState:
    """Full architectural state of one virtual CPU."""

    index: int
    gp: Dict[str, int] = field(default_factory=dict)
    segments: Dict[str, SegmentDescriptor] = field(default_factory=dict)
    control: Dict[str, int] = field(default_factory=dict)
    msrs: Dict[int, int] = field(default_factory=dict)
    fpu: Tuple[int, ...] = ()
    # XSAVE feature blocks live in PlatformState.xsave (one per vCPU); only
    # the XCR0 control value is architectural per-vCPU state here.
    xcr0: int = 1
    apic_id: int = 0

    def copy(self) -> "VCPUState":
        return VCPUState(
            index=self.index,
            gp=dict(self.gp),
            segments=dict(self.segments),
            control=dict(self.control),
            msrs=dict(self.msrs),
            fpu=tuple(self.fpu),
            xcr0=self.xcr0,
            apic_id=self.apic_id,
        )

    def architectural_view(self) -> Tuple:
        """A canonical, hashable projection used to compare states for
        equality across format conversions."""
        return (
            self.index,
            tuple(sorted(self.gp.items())),
            tuple(sorted((n, s.as_tuple()) for n, s in self.segments.items())),
            tuple(sorted(self.control.items())),
            tuple(sorted(self.msrs.items())),
            self.fpu,
            self.xcr0,
            self.apic_id,
        )


def make_boot_vcpu(index: int, seed: int = 0) -> VCPUState:
    """Create a plausible running-guest vCPU state.

    Values are deterministic in ``(index, seed)`` so tests and benchmarks are
    reproducible.
    """
    rng = random.Random((seed << 16) ^ index)
    gp = {reg: rng.getrandbits(64) for reg in GP_REGISTERS}
    gp["rflags"] = 0x2 | (gp["rflags"] & 0xCD5)  # keep reserved bit 1 set
    segments = {
        name: SegmentDescriptor(
            selector=(i + 1) << 3,
            base=0 if name in ("cs", "ss") else rng.getrandbits(32),
            limit=0xFFFFFFFF,
            attributes=0xA09B if name == "cs" else 0xC093,
        )
        for i, name in enumerate(SEGMENT_REGISTERS)
    }
    control = {
        "cr0": 0x80050033,
        "cr2": rng.getrandbits(48),
        "cr3": rng.getrandbits(40) & ~0xFFF,
        "cr4": 0x3606E0,
        "cr8": 0,
        "efer": 0xD01,
    }
    msrs = {msr: rng.getrandbits(64) for msr in COMMON_MSRS}
    # 512-byte FXSAVE area + 512 bytes of XMM spill, as 8-byte words.
    fpu = tuple(rng.getrandbits(32) for _ in range(128))
    return VCPUState(
        index=index,
        gp=gp,
        segments=segments,
        control=control,
        msrs=msrs,
        fpu=fpu,
        xcr0=0x7,
        apic_id=index,
    )
