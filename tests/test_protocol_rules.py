"""Tests for the whole-program protocol verifier.

Covers the CFG/dataflow engine, the three protocol rule families
(sync-protocol + sync-lock-order, state-machine-conformance,
frame-protocol-symmetry), stable finding fingerprints, the baseline
workflow, and the parse cache.  Each rule gets a seeded-violation
fixture asserting the exact finding and a clean twin asserting silence;
a mutation test flips one transition in a copy of the real controller
source and requires the conformance rule to catch exactly it.
"""

import ast
import json
import os
import textwrap

import pytest

import repro
from repro.analysis import (
    Project,
    load_baseline,
    partition,
    render_baseline,
    render_json,
    render_sarif,
    run_analysis,
    write_baseline,
)
from repro.analysis.baseline import BaselineError
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import solve_forward
from repro.cli import main as cli_main

REPRO_ROOT = os.path.dirname(os.path.abspath(repro.__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(REPRO_ROOT))


def analyze(sources, rules=None):
    return run_analysis(Project.from_sources(sources), rule_names=rules)


def src(text):
    """Dedent a fixture and drop the leading blank line, so the first
    source line is line 1 and asserted line numbers stay readable."""
    return textwrap.dedent(text).lstrip("\n")


def _func(source):
    return ast.parse(src(source)).body[0]


# -- CFG / dataflow engine ----------------------------------------------------


class TestCFGDataflow:
    def test_linear_function_reaches_exit(self):
        cfg = build_cfg(_func("""
            def f():
                x = 1
                return x
        """))
        solution = solve_forward(cfg, frozenset({"seed"}), lambda n, f: f)
        assert solution.reachable(cfg.exit)
        assert solution.in_fact(cfg.exit) == frozenset({"seed"})

    def test_exception_edge_carries_pre_statement_fact(self):
        # The raising statement's own effects must not appear on the
        # exception path: the exception edge propagates the IN fact.
        cfg = build_cfg(_func("""
            def f():
                risky()
        """))

        def transfer(node, fact):
            if node.kind == "stmt":
                return fact | {"after-call"}
            return fact

        solution = solve_forward(cfg, frozenset(), transfer)
        assert solution.reachable(cfg.raise_exit)
        assert "after-call" not in solution.in_fact(cfg.raise_exit)
        assert "after-call" in solution.in_fact(cfg.exit)

    def test_return_routes_through_finally(self):
        cfg = build_cfg(_func("""
            def f():
                try:
                    return 1
                finally:
                    cleanup()
        """))
        seen = []

        def transfer(node, fact):
            if node.kind == "stmt":
                seen.append(node.line)
                return fact | {"cleaned"}
            return fact

        solution = solve_forward(cfg, frozenset(), transfer)
        assert solution.reachable(cfg.exit)
        assert "cleaned" in solution.in_fact(cfg.exit)

    def test_branch_facts_join_at_merge(self):
        cfg = build_cfg(_func("""
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
        """))

        def transfer(node, fact):
            if node.kind == "stmt" and node.line in (3, 5):
                return fact | {node.line}
            return fact

        solution = solve_forward(cfg, frozenset(), transfer)
        assert {3, 5} <= set(solution.in_fact(cfg.exit))


# -- sync-protocol ------------------------------------------------------------


LEAK = {
    "fleet/worker.py": src("""
        class Worker:
            def run(self):
                gate = self._lock.acquire()
                yield gate
                self._work()
                self._lock.release()
    """)
}

LEAK_FIXED = {
    "fleet/worker.py": src("""
        class Worker:
            def run(self):
                gate = self._lock.acquire()
                try:
                    yield gate
                    self._work()
                finally:
                    self._lock.release()
    """)
}


class TestSyncProtocol:
    def test_exception_path_leak_is_flagged(self):
        findings, _ = analyze(LEAK, rules=["sync-protocol"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "fleet/worker.py"
        assert finding.line == 3
        assert finding.symbol == "Worker.run"
        assert "'self._lock' acquired here may still be held" in \
            finding.message
        assert "unwinds on an exception" in finding.message

    def test_try_finally_release_is_clean(self):
        findings, _ = analyze(LEAK_FIXED, rules=["sync-protocol"])
        assert findings == []

    def test_held_context_manager_is_clean(self):
        findings, _ = analyze({
            "fleet/worker.py": src("""
                class Worker:
                    def run(self):
                        with self._lock.held() as gate:
                            yield gate
                            self._work()
            """)
        }, rules=["sync-protocol"])
        assert findings == []

    def test_double_release_is_flagged(self):
        findings, _ = analyze({
            "fleet/worker.py": src("""
                class Worker:
                    def run(self):
                        yield self._lock.acquire()
                        self._lock.release()
                        self._lock.release()
            """)
        }, rules=["sync-protocol"])
        assert len(findings) == 1
        assert findings[0].line == 5
        assert "no path holds it" in findings[0].message

    def test_double_acquire_is_flagged(self):
        findings, _ = analyze({
            "fleet/worker.py": src("""
                class Worker:
                    def run(self):
                        yield self._lock.acquire()
                        yield self._lock.acquire()
                        self._lock.release()
            """)
        }, rules=["sync-protocol"])
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "may already be held" in findings[0].message

    def test_per_key_map_locks_are_not_double_acquire(self):
        # Different subscripts share one widened resource
        # (self._vm_locks[*]); acquiring two map entries is legitimate,
        # so the double-acquire check skips subscripted keys, and one
        # release clears the widened hold.
        findings, _ = analyze({
            "fleet/worker.py": src("""
                class Worker:
                    def run(self, a, b):
                        yield self._vm_locks[a].acquire()
                        yield self._vm_locks[b].acquire()
                        self._vm_locks[a].release()
            """)
        }, rules=["sync-protocol"])
        assert findings == []

    def test_yield_in_no_yield_region_is_flagged(self):
        findings, _ = analyze({
            "fleet/worker.py": src("""
                class Worker:
                    def run(self):
                        self._lock.acquire()  # repro-sync: no-yield
                        try:
                            yield 1.0
                        finally:
                            self._lock.release()
            """)
        }, rules=["sync-protocol"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.line == 5
        assert "yield while holding 'self._lock'" in finding.message
        assert "marked no-yield" in finding.message

    def test_held_outside_with_is_flagged(self):
        findings, _ = analyze({
            "fleet/worker.py": src("""
                class Worker:
                    def run(self):
                        hold = self._lock.held()
                        hold.__enter__()
            """)
        }, rules=["sync-protocol"])
        assert len(findings) == 1
        assert findings[0].line == 3
        assert "must be the context manager" in findings[0].message

    def test_suppression_directive_silences(self):
        source = LEAK["fleet/worker.py"].replace(
            "gate = self._lock.acquire()",
            "gate = self._lock.acquire()  # repro-lint: disable=sync-protocol")
        findings, suppressed = analyze({"fleet/worker.py": source},
                                       rules=["sync-protocol"])
        assert findings == []
        assert suppressed == 1

    def test_simsync_itself_is_exempt(self):
        findings, _ = analyze({
            "fleet/simsync.py": LEAK["fleet/worker.py"],
        }, rules=["sync-protocol"])
        assert findings == []


# -- sync-lock-order ----------------------------------------------------------


CYCLE = {
    "fleet/controller.py": src("""
        class Controller:
            def first(self):
                with self._alpha.held() as a:
                    yield a
                    with self._beta.held() as b:
                        yield b

            def second(self):
                with self._beta.held() as b:
                    yield b
                    with self._alpha.held() as a:
                        yield a
    """)
}


class TestSyncLockOrder:
    def test_opposite_nesting_orders_are_a_cycle(self):
        findings, _ = analyze(CYCLE, rules=["sync-lock-order"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.symbol == "Controller"
        assert "lock-order cycle between {self._alpha, self._beta}" in \
            finding.message

    def test_consistent_order_is_clean(self):
        consistent = src("""
            class Controller:
                def first(self):
                    with self._alpha.held() as a:
                        yield a
                        with self._beta.held() as b:
                            yield b

                def second(self):
                    with self._alpha.held() as a:
                        yield a
                        with self._beta.held() as b:
                            yield b
        """)
        findings, _ = analyze({"fleet/controller.py": consistent},
                              rules=["sync-lock-order"])
        assert findings == []

    def test_cross_method_acquire_while_held_is_an_edge(self):
        findings, _ = analyze({
            "fleet/controller.py": src("""
                class Controller:
                    def outer(self):
                        with self._alpha.held() as a:
                            yield a
                            yield from self._nested()

                    def _nested(self):
                        with self._beta.held() as b:
                            yield b
                            with self._alpha.held() as a:
                                yield a
            """)
        }, rules=["sync-lock-order"])
        # outer: alpha -> beta (transitively through _nested), and
        # _nested itself: beta -> alpha — a cross-method cycle.
        assert len(findings) == 1
        assert "lock-order cycle" in findings[0].message

    def test_rollback_shape_has_no_false_cycle(self):
        # Regression: exception-path facts must not flow through a with
        # block's normal exit into the loop back-edge.  The merged-exit
        # CFG reported a spurious ledger -> vm-lock edge here.
        findings, _ = analyze({
            "fleet/controller.py": src("""
                class Controller:
                    def roll_back(self, names):
                        for name in names:
                            with self._vm_locks[name].held() as gate:
                                yield gate
                                yield self._ledger.reserve(name)
                                with self._link.held() as link:
                                    yield link
                                    self._stream(name)
                                self._commit(name)

                    def _commit(self, name):
                        self._ledger.release(name)
            """)
        }, rules=["sync-lock-order"])
        assert findings == []


# -- state-machine-conformance ------------------------------------------------


_STATE_TEMPLATE = src("""
    from enum import Enum
    from typing import Dict, FrozenSet


    class HostState(Enum):
        PENDING = "pending"
        RUNNING = "running"
        FAILED = "failed"
        DONE = "done"

        @property
        def terminal(self) -> bool:
            return self in @TERMINAL@


    LEGAL_TRANSITIONS: Dict[HostState, FrozenSet[HostState]] = {
    @RELATION@
    }


    class HostRecord:
        state: HostState = HostState.PENDING
""")


def _state_decl(relation, terminal="(HostState.DONE,)"):
    return _STATE_TEMPLATE.replace("@TERMINAL@", terminal) \
        .replace("@RELATION@", relation.rstrip("\n"))


GOOD_RELATION = """\
    HostState.PENDING: frozenset({HostState.RUNNING}),
    HostState.RUNNING: frozenset({HostState.DONE, HostState.FAILED}),
    HostState.FAILED: frozenset({HostState.RUNNING}),
    HostState.DONE: frozenset(),
"""


class TestStateMachineDeclaration:
    def test_well_formed_relation_is_clean(self):
        findings, _ = analyze({
            "fleet/state.py": _state_decl(GOOD_RELATION),
        }, rules=["state-machine-conformance"])
        assert findings == []

    def test_missing_relation_entry_is_flagged(self):
        relation = "\n".join(
            line for line in GOOD_RELATION.splitlines()
            if "FAILED:" not in line)
        findings, _ = analyze({
            "fleet/state.py": _state_decl(relation),
        }, rules=["state-machine-conformance"])
        assert len(findings) == 1
        assert "HostState.FAILED has no entry in LEGAL_TRANSITIONS" in \
            findings[0].message

    def test_terminal_with_outgoing_edges_is_flagged(self):
        findings, _ = analyze({
            "fleet/state.py": _state_decl(
                GOOD_RELATION,
                terminal="(HostState.DONE, HostState.FAILED)"),
        }, rules=["state-machine-conformance"])
        assert len(findings) == 1
        assert "HostState.FAILED is declared terminal but has outgoing " \
            "transitions" in findings[0].message

    def test_absorbing_state_missing_from_terminal_property(self):
        relation = GOOD_RELATION.replace(
            "HostState.FAILED: frozenset({HostState.RUNNING}),",
            "HostState.FAILED: frozenset(),")
        findings, _ = analyze({
            "fleet/state.py": _state_decl(relation),
        }, rules=["state-machine-conformance"])
        assert len(findings) == 1
        assert "the terminal property does not include it" in \
            findings[0].message

    def test_unreachable_state_is_flagged(self):
        source = _state_decl(GOOD_RELATION).replace(
            'DONE = "done"',
            'DONE = "done"\n    ORPHAN = "orphan"').replace(
            "HostState.DONE: frozenset(),",
            "HostState.DONE: frozenset(),\n"
            "    HostState.ORPHAN: frozenset({HostState.DONE}),")
        findings, _ = analyze({"fleet/state.py": source},
                              rules=["state-machine-conformance"])
        assert len(findings) == 1
        assert "HostState.ORPHAN is unreachable from the initial state " \
            "HostState.PENDING" in findings[0].message

    def test_livelock_pocket_is_flagged(self):
        # FAILED <-> RUNNING with no path to DONE left.
        relation = GOOD_RELATION.replace(
            "frozenset({HostState.DONE, HostState.FAILED})",
            "frozenset({HostState.FAILED})")
        findings, _ = analyze({
            "fleet/state.py": _state_decl(relation),
        }, rules=["state-machine-conformance"])
        messages = [f.message for f in findings]
        assert any("cannot reach any terminal state" in m for m in messages)


class TestStateMachineConformance:
    DECL = {"fleet/state.py": _state_decl(GOOD_RELATION)}

    def test_legal_transition_chain_is_clean(self):
        findings, _ = analyze({
            **self.DECL,
            "fleet/controller.py": src("""
                class Controller:
                    def run(self, record):
                        record.transition(HostState.RUNNING)
                        yield 1.0
                        if record.ok:
                            record.transition(HostState.DONE)
                        else:
                            record.transition(HostState.FAILED)
            """),
        }, rules=["state-machine-conformance"])
        assert findings == []

    def test_undeclared_transition_is_flagged(self):
        findings, _ = analyze({
            **self.DECL,
            "fleet/controller.py": src("""
                class Controller:
                    def run(self, record):
                        record.transition(HostState.DONE)
            """),
        }, rules=["state-machine-conformance"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.symbol == "Controller.run"
        assert "undeclared transition to HostState.DONE" in finding.message
        assert "{PENDING}" in finding.message

    def test_transition_to_unknown_state_is_flagged(self):
        findings, _ = analyze({
            **self.DECL,
            "fleet/controller.py": src("""
                class Controller:
                    def run(self, record):
                        record.transition(HostState.EXPLODED)
            """),
        }, rules=["state-machine-conformance"])
        assert len(findings) == 1
        assert "unknown state HostState.EXPLODED" in findings[0].message

    def test_state_threads_through_helper_calls(self):
        # run -> RUNNING, then the helper's transitions are judged from
        # RUNNING (legal), and the caller continues from the helper's
        # exit states — DONE from FAILED would be illegal and is flagged.
        findings, _ = analyze({
            **self.DECL,
            "fleet/controller.py": src("""
                class Controller:
                    def run(self, record):
                        record.transition(HostState.RUNNING)
                        yield from self._fail(record)
                        record.transition(HostState.DONE)

                    def _fail(self, record):
                        record.transition(HostState.FAILED)
                        yield 1.0
            """),
        }, rules=["state-machine-conformance"])
        assert len(findings) == 1
        assert "undeclared transition to HostState.DONE" in \
            findings[0].message
        assert "{FAILED}" in findings[0].message

    def test_spawned_generator_does_not_pollute_caller(self):
        # _host() is handed to a process driver, not iterated inline: the
        # caller's state set must stay {PENDING} after the spawn, so the
        # second spawn in the loop body is still judged from PENDING.
        findings, _ = analyze({
            **self.DECL,
            "fleet/controller.py": src("""
                class Controller:
                    def run(self, records):
                        for record in records:
                            self._drive(self._host(record))

                    def _host(self, record):
                        record.transition(HostState.RUNNING)
                        yield 1.0
                        record.transition(HostState.DONE)
            """),
        }, rules=["state-machine-conformance"])
        assert findings == []


class TestControllerMutation:
    """Flip one transition in a copy of the real controller source: the
    conformance rule must catch exactly that edge, and nothing else."""

    def _sources(self):
        sources = {}
        for rel in ("fleet/state.py", "fleet/controller.py",
                    "fleet/failures.py"):
            full = os.path.join(REPRO_ROOT, rel.replace("/", os.sep))
            with open(full, "r", encoding="utf-8") as handle:
                sources[rel] = handle.read()
        return sources

    def test_pristine_controller_is_clean(self):
        findings, _ = analyze(self._sources(),
                              rules=["state-machine-conformance"])
        assert findings == []

    def test_flipped_transition_is_caught_exactly_once(self):
        sources = self._sources()
        assert "HostState.EVACUATING" in sources["fleet/controller.py"]
        sources["fleet/controller.py"] = \
            sources["fleet/controller.py"].replace(
                "HostState.EVACUATING", "HostState.VERIFYING", 1)
        findings, _ = analyze(sources, rules=["state-machine-conformance"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "state-machine-conformance"
        assert finding.path == "fleet/controller.py"
        assert "undeclared transition to HostState.VERIFYING" in \
            finding.message
        # The fingerprint is line-independent and therefore stable.
        assert finding.fingerprint() == finding.fingerprint()
        assert len(finding.fingerprint()) == 16


# -- journal-hygiene ----------------------------------------------------------


class TestJournalHygiene:
    VIOLATION = {
        "fleet/controller.py": src("""
            class Host:
                def demote(self, now):
                    self.record.state = "failed"
                    self.journal.transition(now, self.name,
                                            "running", "failed")
        """)
    }

    CLEAN_TWIN = {
        "fleet/controller.py": src("""
            class Host:
                def demote(self, now):
                    self.journal.transition(now, self.name,
                                            "running", "failed")
                    self.record.state = "failed"
        """)
    }

    def test_mutation_before_append_is_flagged(self):
        findings, _ = analyze(self.VIOLATION, rules=["journal-hygiene"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "journal-hygiene"
        assert finding.path == "fleet/controller.py"
        assert finding.line == 3
        assert finding.symbol == "Host.demote"
        assert "append first" in finding.message

    def test_append_then_mutate_is_clean(self):
        findings, _ = analyze(self.CLEAN_TWIN, rules=["journal-hygiene"])
        assert findings == []

    def test_mutation_in_append_failure_handler_is_flagged(self):
        # The exception edge out of the append carries the unjournaled
        # fact: if transition() raised, nothing became durable, so the
        # handler's mutation still runs ahead of the log.
        findings, _ = analyze({
            "fleet/controller.py": src("""
                class Host:
                    def demote(self, now):
                        try:
                            self.journal.transition(now, self.name,
                                                    "running", "failed")
                        except OSError:
                            self.record.state = "failed"
            """)
        }, rules=["journal-hygiene"])
        assert len(findings) == 1
        assert findings[0].line == 7

    def test_one_unjournaled_branch_is_enough(self):
        findings, _ = analyze({
            "fleet/controller.py": src("""
                class Host:
                    def demote(self, now, urgent):
                        if urgent:
                            self.journal.transition(now, self.name,
                                                    "running", "failed")
                        self.record.state = "failed"
            """)
        }, rules=["journal-hygiene"])
        assert len(findings) == 1
        assert "on some path" in findings[0].message

    def test_modules_outside_the_journal_scope_are_exempt(self):
        sources = {"core/widget.py": self.VIOLATION["fleet/controller.py"]}
        findings, _ = analyze(sources, rules=["journal-hygiene"])
        assert findings == []

    def test_mutation_without_any_append_is_not_a_composite(self):
        # A plain state machine that never journals is out of the rule's
        # jurisdiction — only mixed append+mutate functions are held to
        # write-ahead ordering.
        findings, _ = analyze({
            "fleet/machine.py": src("""
                class Host:
                    def demote(self):
                        self.record.state = "failed"
            """)
        }, rules=["journal-hygiene"])
        assert findings == []

    def test_shipped_fleet_and_journal_modules_are_clean(self):
        project = Project.from_directory(REPRO_ROOT)
        findings, _ = run_analysis(project, rule_names=["journal-hygiene"])
        assert [f.message for f in findings] == []


# -- frame-protocol-symmetry --------------------------------------------------


class TestFrameSymmetry:
    def test_emitted_but_never_consumed_is_flagged(self):
        findings, _ = analyze({
            "core/chan.py": src("""
                PING_FRAME = 1
                PONG_FRAME = 2


                def send(writer, payload):
                    writer.frame(PING_FRAME, payload)
                    writer.frame(PONG_FRAME, payload)


                def recv(stream):
                    reader = FrameReader(stream)
                    for frame_type, body in reader:
                        if frame_type == PING_FRAME:
                            yield body
            """),
        }, rules=["frame-protocol-symmetry"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.symbol == "PONG_FRAME"
        assert "emitted here but no reader branch" in finding.message

    def test_dead_reader_branch_is_flagged(self):
        findings, _ = analyze({
            "core/chan.py": src("""
                PING_FRAME = 1
                PONG_FRAME = 2


                def send(writer, payload):
                    writer.frame(PING_FRAME, payload)


                def recv(stream):
                    reader = FrameReader(stream)
                    for frame_type, body in reader:
                        if frame_type == PING_FRAME:
                            yield body
                        elif frame_type == PONG_FRAME:
                            yield body
            """),
        }, rules=["frame-protocol-symmetry"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.symbol == "PONG_FRAME"
        assert "but no writer in this module emits it" in finding.message

    def test_balanced_channel_is_clean(self):
        findings, _ = analyze({
            "core/chan.py": src("""
                PING_FRAME = 1


                def send(writer, payload):
                    writer.frame(PING_FRAME, payload)


                def recv(stream):
                    reader = FrameReader(stream)
                    for frame_type, body in reader:
                        if frame_type == PING_FRAME:
                            yield body
            """),
        }, rules=["frame-protocol-symmetry"])
        assert findings == []

    def test_enum_constructor_consumes_every_member(self):
        findings, _ = analyze({
            "core/chan.py": src("""
                from enum import IntEnum


                class Tag(IntEnum):
                    HELLO = 1
                    DATA = 2
                    BYE = 3


                def send(writer):
                    writer.frame(Tag.HELLO, b"")
                    writer.frame(Tag.DATA, b"")
                    writer.frame(Tag.BYE, b"")


                def recv(stream):
                    reader = FrameReader(stream)
                    for frame_type, body in reader:
                        yield Tag(frame_type), body
            """),
        }, rules=["frame-protocol-symmetry"])
        assert findings == []

    def test_end_marker_is_exempt(self):
        findings, _ = analyze({
            "core/chan.py": src("""
                END_FRAME = 0
                DATA_FRAME = 1


                def send(writer):
                    writer.frame(DATA_FRAME, b"x")
                    writer.frame(END_FRAME, b"")


                def recv(stream):
                    for frame_type, body in decode_frame(stream):
                        if frame_type == DATA_FRAME:
                            yield body
            """),
        }, rules=["frame-protocol-symmetry"])
        assert findings == []

    def test_codec_layer_is_exempt(self):
        findings, _ = analyze({
            "io/chan.py": src("""
                PING_FRAME = 1


                def send(writer, payload):
                    writer.frame(PING_FRAME, payload)
            """),
        }, rules=["frame-protocol-symmetry"])
        assert findings == []


# -- stable fingerprints and deterministic reports ----------------------------


class TestFindingIdentity:
    def test_fingerprint_survives_line_shifts(self):
        first, _ = analyze(LEAK, rules=["sync-protocol"])
        shifted = {"fleet/worker.py":
                   "# a new leading comment\n\n" + LEAK["fleet/worker.py"]}
        second, _ = analyze(shifted, rules=["sync-protocol"])
        assert len(first) == len(second) == 1
        assert first[0].line != second[0].line
        assert first[0].fingerprint() == second[0].fingerprint()

    def test_fingerprints_distinguish_rules_and_paths(self):
        finding = analyze(LEAK, rules=["sync-protocol"])[0][0]
        moved = {"fleet/other.py": LEAK["fleet/worker.py"]}
        other = analyze(moved, rules=["sync-protocol"])[0][0]
        assert finding.fingerprint() != other.fingerprint()

    def test_json_report_is_byte_deterministic(self):
        runs = [analyze(LEAK, rules=["sync-protocol"]) for _ in range(2)]
        rendered = [render_json(findings, suppressed)
                    for findings, suppressed in runs]
        assert rendered[0] == rendered[1]
        payload = json.loads(rendered[0])
        assert payload["findings"][0]["id"] == \
            runs[0][0][0].fingerprint()

    def test_sarif_report_is_byte_deterministic(self):
        runs = [analyze(LEAK, rules=["sync-protocol"]) for _ in range(2)]
        rendered = [render_sarif(findings, suppressed)
                    for findings, suppressed in runs]
        assert rendered[0] == rendered[1]
        document = json.loads(rendered[0])
        assert document["version"] == "2.1.0"
        result = document["runs"][0]["results"][0]
        assert result["partialFingerprints"]["reproLint/v1"] == \
            runs[0][0][0].fingerprint()


# -- baseline workflow --------------------------------------------------------


class TestBaseline:
    def test_committed_baseline_is_the_canonical_empty_one(self):
        path = os.path.join(REPO_ROOT, "lint-baseline.json")
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == render_baseline([])

    def test_round_trip_partitions_known_findings(self, tmp_path):
        findings, _ = analyze(LEAK, rules=["sync-protocol"])
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), findings)
        ids = load_baseline(str(baseline))
        new, baselined = partition(findings, ids)
        assert new == []
        assert baselined == findings
        fresh, _ = analyze({"fleet/fresh.py": LEAK["fleet/worker.py"]},
                           rules=["sync-protocol"])
        new, baselined = partition(findings + fresh, ids)
        assert new == fresh
        assert baselined == findings

    def test_render_is_deterministic(self):
        findings, _ = analyze(LEAK, rules=["sync-protocol"])
        assert render_baseline(findings) == render_baseline(findings)
        assert render_baseline(findings).endswith("\n")

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "findings": []}')
        with pytest.raises(BaselineError):
            load_baseline(str(bad))
        bad.write_text("not json at all")
        with pytest.raises(BaselineError):
            load_baseline(str(bad))
        with pytest.raises(BaselineError):
            load_baseline(str(tmp_path / "missing.json"))

    def test_cli_baseline_workflow(self, tmp_path, capsys):
        tree = tmp_path / "tree" / "core"
        tree.mkdir(parents=True)
        (tree / "x.py").write_text("import time\ntime.sleep(1)\n")
        root = str(tmp_path / "tree")
        baseline = str(tmp_path / "baseline.json")

        assert cli_main(["lint", "--strict", root]) == 1
        capsys.readouterr()
        assert cli_main(["lint", "--write-baseline", baseline, root]) == 0
        capsys.readouterr()
        # Accepted debt no longer fails --strict, and is reported as such.
        assert cli_main(["lint", "--strict", "--baseline", baseline,
                         root]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out
        # A new violation still fails.
        (tree / "y.py").write_text("import time\ntime.sleep(2)\n")
        assert cli_main(["lint", "--strict", "--baseline", baseline,
                         root]) == 1

    def test_cli_rejects_malformed_baseline(self, tmp_path, capsys):
        tree = tmp_path / "core"
        tree.mkdir()
        (tree / "x.py").write_text("X = 1\n")
        bad = tmp_path / "baseline.json"
        bad.write_text("[]")
        assert cli_main(["lint", "--baseline", str(bad),
                         str(tmp_path)]) == 2

    def test_cli_format_sarif(self, tmp_path, capsys):
        tree = tmp_path / "core"
        tree.mkdir()
        (tree / "x.py").write_text("import time\ntime.sleep(1)\n")
        assert cli_main(["lint", "--format", "sarif", str(tmp_path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"][0]["ruleId"] == \
            "sim-clock-hygiene"


# -- parse cache --------------------------------------------------------------


class TestParseCache:
    def test_repeated_directory_loads_parse_each_file_once(
            self, tmp_path, monkeypatch):
        from repro.analysis import project as project_mod

        (tmp_path / "a.py").write_text("X = 1\n")
        (tmp_path / "b.py").write_text("Y = 2\n")
        project_mod.clear_parse_cache()
        calls = []
        real_parse = project_mod.ast.parse

        def counting_parse(source, **kwargs):
            calls.append(kwargs.get("filename"))
            return real_parse(source, **kwargs)

        monkeypatch.setattr(project_mod.ast, "parse", counting_parse)
        try:
            first = Project.from_directory(str(tmp_path))
            second = Project.from_directory(str(tmp_path))
            assert len(calls) == 2
            assert first.get("a.py") is second.get("a.py")

            # A changed mtime invalidates exactly that entry.
            stat = os.stat(tmp_path / "a.py")
            os.utime(tmp_path / "a.py",
                     ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
            third = Project.from_directory(str(tmp_path))
            assert len(calls) == 3
            assert third.get("b.py") is second.get("b.py")
        finally:
            project_mod.clear_parse_cache()

    def test_in_memory_sources_bypass_the_cache(self):
        from repro.analysis import project as project_mod

        project_mod.clear_parse_cache()
        Project.from_sources({"core/x.py": "X = 1\n"})
        assert project_mod._PARSE_CACHE == {}
