"""The HyperTP façade — one framework unifying both transplant approaches.

``HyperTP`` is what an orchestrator (and the examples) talk to.  Its host
operation mirrors the paper's OpenStack integration (§4.5.2): VMs that do
not tolerate InPlaceTP's downtime are live-migrated away through UISR
proxies first, then the host micro-reboots into the target hypervisor with
the remaining VMs carried through PRAM.

Since the staged-pipeline refactor, HyperTP is a thin composer: the
mechanism objects (:class:`InPlaceTP`, :class:`MigrationTP`) simulate
execution, and :meth:`HyperTP.upgrade_host` composes their shared stage
protocol (:mod:`repro.core.pipeline`) into a per-host plan — the same
:class:`~repro.core.pipeline.StagePlan` floats the cluster executor and
fleet control plane run on.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import TransplantError
from repro.hw.machine import CLUSTER_NODE_SPEC, Machine, MachineSpec
from repro.hw.network import Fabric
from repro.hypervisors.base import HypervisorKind
from repro.obs import NULL_TRACER
from repro.sim.clock import SimClock
from repro.core.inplace import InPlaceReport, InPlaceTP
from repro.core.migration import MigrationReport, MigrationTP
from repro.core.optimizations import DEFAULT_OPTIMIZATIONS, OptimizationConfig
from repro.core.pipeline import (
    EvacuationSpec,
    HostUpgradePlan,
    TransplantPipelines,
    VerifySpec,
)
from repro.core.timings import DEFAULT_COST_MODEL, CostModel
from repro.core.uisr.registry import ConverterRegistry, default_registry


@dataclass
class TransplantReport:
    """Outcome of transplanting one host."""

    machine: str
    source: str
    target: str
    migrated: List[MigrationReport] = field(default_factory=list)
    inplace: Optional[InPlaceReport] = None
    total_s: float = 0.0

    @property
    def migrated_count(self) -> int:
        return len(self.migrated)

    @property
    def inplace_count(self) -> int:
        return self.inplace.vm_count if self.inplace else 0

    @property
    def worst_downtime_s(self) -> float:
        downtimes = [r.downtime_s for r in self.migrated]
        if self.inplace:
            downtimes.append(self.inplace.downtime_s)
        return max(downtimes, default=0.0)


class HyperTP:
    """Framework entry point: per-VM migration, per-host in-place, or both."""

    def __init__(self, registry: Optional[ConverterRegistry] = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 optimizations: OptimizationConfig = DEFAULT_OPTIMIZATIONS,
                 tracer=NULL_TRACER):
        self.registry = registry or default_registry()
        self.cost = cost_model
        self.opts = optimizations
        self.tracer = tracer

    # -- the two mechanisms --------------------------------------------------

    def inplace(self, machine: Machine, target_kind: HypervisorKind,
                clock: Optional[SimClock] = None) -> InPlaceReport:
        """InPlaceTP: micro-reboot ``machine`` into ``target_kind``."""
        transplant = InPlaceTP(
            machine, target_kind, registry=self.registry,
            cost_model=self.cost, optimizations=self.opts,
            tracer=self.tracer,
        )
        return transplant.run(clock or SimClock())

    def migrate(self, fabric: Fabric, source: Machine, destination: Machine,
                domain, clock: Optional[SimClock] = None,
                dirty_rate_bytes_s: float = 1 << 20) -> MigrationReport:
        """MigrationTP: move one VM to a host running a different hypervisor."""
        migrator = MigrationTP(
            fabric, source, destination, registry=self.registry,
            cost_model=self.cost, tracer=self.tracer,
        )
        return migrator.migrate(domain, clock or SimClock(),
                                dirty_rate_bytes_s=dirty_rate_bytes_s)

    # -- combined host operation --------------------------------------------------

    def transplant_host(self, machine: Machine, target_kind: HypervisorKind,
                        fabric: Optional[Fabric] = None,
                        spare: Optional[Machine] = None,
                        clock: Optional[SimClock] = None) -> TransplantReport:
        """Upgrade a whole host, combining both mechanisms.

        VMs whose config rejects InPlaceTP downtime are migrated to
        ``spare`` (which must already run ``target_kind``); the rest ride
        the micro-reboot.  With no incompatible VMs, no spare is needed —
        the scalability advantage of InPlaceTP (§5.4).
        """
        clock = clock or SimClock()
        source = machine.hypervisor
        if source is None:
            raise TransplantError(f"{machine.name} has no hypervisor")
        report = TransplantReport(
            machine=machine.name,
            source=source.kind.value,
            target=target_kind.value,
        )
        start = clock.now

        incompatible = [
            d for d in sorted(source.domains.values(), key=lambda d: d.domid)
            if not d.vm.config.inplace_compatible
        ]
        if incompatible:
            if fabric is None or spare is None:
                raise TransplantError(
                    f"{machine.name}: {len(incompatible)} VMs need migration "
                    f"but no spare host/fabric was provided"
                )
            if spare.hypervisor is None or spare.hypervisor.kind is not target_kind:
                raise TransplantError(
                    f"spare host {spare.name} must run {target_kind.value}"
                )
            migrator = MigrationTP(fabric, machine, spare,
                                   registry=self.registry,
                                   cost_model=self.cost,
                                   tracer=self.tracer)
            for domain in incompatible:
                report.migrated.append(migrator.migrate(domain, clock))

        report.inplace = self.inplace(machine, target_kind, clock)
        report.total_s = clock.now - start
        return report

    # -- staged planning -----------------------------------------------------

    def upgrade_host(self, host: str, target_kind: HypervisorKind, *,
                     vm_count: int, total_memory_bytes: int,
                     evacuations: Sequence[EvacuationSpec] = (),
                     machine: Optional[Machine] = None,
                     node_spec: MachineSpec = CLUSTER_NODE_SPEC,
                     link_rate: Optional[float] = None,
                     verify: Optional[VerifySpec] = None) -> HostUpgradePlan:
        """Compose the staged plan for upgrading one whole host (§4.5.2).

        ``evacuations`` are the VMs that cannot ride the micro-reboot;
        ``vm_count``/``total_memory_bytes`` describe the riders.  The
        returned :class:`HostUpgradePlan` carries one MigrationTP
        :class:`~repro.core.pipeline.StagePlan` per evacuee plus the
        host's InPlaceTP plan — the exact floats the cluster executor
        and the fleet control plane charge for the same actions, which
        is what the fleet/core parity test pins.
        """
        pipelines = TransplantPipelines(
            machine=machine, node_spec=node_spec, link_rate=link_rate,
            cost=self.cost, verify=verify,
        )
        migration = pipelines.migration(target_kind)
        evacuation_plans = tuple(
            migration.plan_vm(spec.vm_name, spec.memory_bytes,
                              spec.dirty_rate_bytes_s, spec.vcpus)
            for spec in evacuations
        )
        inplace_plan = pipelines.inplace(target_kind).plan_host(
            host, vm_count, total_memory_bytes)
        return HostUpgradePlan(
            host=host, target=target_kind.value,
            evacuations=evacuation_plans, inplace=inplace_plan,
        )
