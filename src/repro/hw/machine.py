"""Machine models matching the paper's testbed (Table 3).

* **M1** — Intel i5-8400H, 4 cores / 8 threads @ 2.5 GHz, 16 GB RAM, 1 Gbps.
* **M2** — 2x Xeon E5-2650L v4, 14 cores / 28 threads @ 1.7 GHz, 64 GB RAM,
  1 Gbps.
* **Cluster node** — 2x Xeon E5-2630 v3, 96 GB RAM, 10 Gbps (§5.1).

A :class:`Machine` owns physical memory and a NIC, and is where a hypervisor
is installed.  Two host CPUs are reserved for the administration OS (dom0 /
host Linux) as in §5.1.
"""

from dataclasses import dataclass
from typing import Optional

from repro.errors import HardwareError
from repro.hw.memory import PhysicalMemory
from repro.hw.nic import NIC
from repro.sim.resources import CPUPool, gigabits

GIB = 1024 ** 3


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a physical machine."""

    name: str
    cores: int
    threads: int
    frequency_ghz: float
    ram_bytes: int
    nic_gbps: float
    nic_init_s: float
    # Relative per-byte / per-record host work speed; M2's lower clock makes
    # host-side state processing slower per thread (visible in Fig. 6).
    cpu_speed_factor: float = 1.0
    # Kernel boot-time scale: a 2-socket server initializes more devices and
    # cores than a desktop, so its (micro-)reboot is slower (Fig. 6 vs 7d-f).
    boot_factor: float = 1.0
    # PRAM construction is memory-bandwidth bound rather than clock bound;
    # servers with more channels offset their lower clocks.
    pram_factor: float = 1.0
    reserved_admin_cpus: int = 2

    def __post_init__(self) -> None:
        if self.cores < 1 or self.threads < self.cores:
            raise HardwareError(f"bad core/thread counts in spec {self.name}")
        if self.ram_bytes <= 0:
            raise HardwareError(f"bad RAM size in spec {self.name}")

    @property
    def worker_threads(self) -> int:
        """Threads usable for transplant work after the admin reservation."""
        return max(1, self.threads - self.reserved_admin_cpus)


# The paper's machines.  ``nic_init_s`` reproduces the measured link
# re-establishment waits: 6.6 s on M1's desktop NIC, 2.3 s on M2's server NIC
# (§5.2.1).  ``cpu_speed_factor`` scales single-thread host work by clock
# ratio (2.5 GHz vs 1.7 GHz).
M1_SPEC = MachineSpec(
    name="M1",
    cores=4,
    threads=8,
    frequency_ghz=2.5,
    ram_bytes=16 * GIB,
    nic_gbps=1.0,
    nic_init_s=6.6,
    cpu_speed_factor=1.0,
    boot_factor=1.0,
    pram_factor=1.0,
)

M2_SPEC = MachineSpec(
    name="M2",
    cores=28,
    threads=28,
    frequency_ghz=1.7,
    ram_bytes=64 * GIB,
    nic_gbps=1.0,
    nic_init_s=2.3,
    cpu_speed_factor=2.5 / 1.7,
    boot_factor=1.35,
    pram_factor=1.1,
)

CLUSTER_NODE_SPEC = MachineSpec(
    name="cluster-node",
    cores=16,
    threads=32,
    frequency_ghz=2.4,
    ram_bytes=96 * GIB,
    nic_gbps=10.0,
    nic_init_s=2.3,
    cpu_speed_factor=1.0,
    boot_factor=1.2,
    pram_factor=1.0,
)


class Machine:
    """A physical machine instance: RAM, NIC, CPU pool, installed hypervisor.

    ``hypervisor`` is set by :meth:`repro.hypervisors.base.Hypervisor.boot`;
    the machine itself stays hypervisor-agnostic.
    """

    _ids = 0

    def __init__(self, spec: MachineSpec, name: Optional[str] = None):
        Machine._ids += 1
        self.machine_id = Machine._ids
        self.spec = spec
        self.name = name or f"{spec.name}-{self.machine_id}"
        self.memory = PhysicalMemory(spec.ram_bytes)
        self.nic = NIC(rate_bytes_per_s=gigabits(spec.nic_gbps), init_s=spec.nic_init_s)
        self.cpu_pool = CPUPool(spec.worker_threads)
        self.hypervisor = None  # type: Optional[object]
        # Staged kexec image (hypervisor kind loaded ahead of time, step 1 of
        # the InPlaceTP workflow, Fig. 3).
        self.staged_kernel = None  # type: Optional[object]

    def stage_kernel(self, kernel) -> None:
        """Load a target hypervisor image into RAM ahead of the micro-reboot."""
        self.staged_kernel = kernel

    def host_work_time(self, single_thread_seconds: float) -> float:
        """Scale nominal single-thread work by this machine's CPU speed."""
        if single_thread_seconds < 0:
            raise HardwareError("work time must be non-negative")
        return single_thread_seconds * self.spec.cpu_speed_factor

    def __repr__(self) -> str:
        hv = type(self.hypervisor).__name__ if self.hypervisor else "none"
        return f"Machine({self.name}, hv={hv})"
