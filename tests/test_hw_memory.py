"""Tests for the physical-memory frame allocator."""

import pytest

from repro.errors import FrameAllocationError, HardwareError
from repro.hw.memory import PAGE_2M, PAGE_4K, PhysicalMemory

MIB = 1024 * 1024


def test_initial_accounting():
    memory = PhysicalMemory(16 * MIB)
    assert memory.total_bytes == 16 * MIB
    assert memory.free_bytes == 16 * MIB
    assert memory.allocated_bytes == 0


def test_bad_sizes_rejected():
    with pytest.raises(HardwareError):
        PhysicalMemory(0)
    with pytest.raises(HardwareError):
        PhysicalMemory(4097)


def test_allocate_4k():
    memory = PhysicalMemory(16 * MIB)
    frame = memory.allocate()
    assert frame.size == PAGE_4K
    assert memory.allocated_bytes == PAGE_4K
    assert memory.is_allocated(frame.mfn)


def test_allocate_2m_is_aligned():
    memory = PhysicalMemory(16 * MIB)
    memory.allocate()  # misalign the free cursor
    frame = memory.allocate(size=PAGE_2M)
    assert frame.mfn % (PAGE_2M // PAGE_4K) == 0


def test_allocate_unsupported_size_rejected():
    memory = PhysicalMemory(16 * MIB)
    with pytest.raises(FrameAllocationError):
        memory.allocate(size=8192)


def test_exhaustion_raises():
    memory = PhysicalMemory(2 * PAGE_4K)
    memory.allocate()
    memory.allocate()
    with pytest.raises(FrameAllocationError):
        memory.allocate()


def test_allocate_many_rolls_back_on_failure():
    memory = PhysicalMemory(4 * PAGE_4K)
    with pytest.raises(FrameAllocationError):
        memory.allocate_many(5)
    assert memory.allocated_bytes == 0


def test_free_returns_space():
    memory = PhysicalMemory(2 * PAGE_4K)
    frame = memory.allocate()
    memory.allocate()
    memory.free(frame.mfn)
    replacement = memory.allocate()
    assert replacement.mfn == frame.mfn  # coalesced + first fit


def test_free_unknown_rejected():
    memory = PhysicalMemory(16 * MIB)
    with pytest.raises(FrameAllocationError):
        memory.free(999)


def test_double_free_rejected():
    memory = PhysicalMemory(16 * MIB)
    frame = memory.allocate()
    memory.free(frame.mfn)
    with pytest.raises(FrameAllocationError):
        memory.free(frame.mfn)


def test_pinned_frame_cannot_be_freed():
    memory = PhysicalMemory(16 * MIB)
    frame = memory.allocate()
    memory.pin(frame.mfn)
    with pytest.raises(FrameAllocationError):
        memory.free(frame.mfn)
    memory.unpin(frame.mfn)
    memory.free(frame.mfn)


def test_reset_except_pinned_preserves_pins():
    memory = PhysicalMemory(16 * MIB)
    doomed = memory.allocate()
    survivor = memory.allocate(digest=77)
    memory.pin(survivor.mfn)
    memory.reset_except_pinned()
    assert not memory.is_allocated(doomed.mfn)
    assert memory.is_allocated(survivor.mfn)
    assert memory.read(survivor.mfn) == 77


def test_reset_except_pinned_frees_everything_else():
    memory = PhysicalMemory(16 * MIB)
    for _ in range(10):
        memory.allocate()
    keep = memory.allocate()
    memory.pin(keep.mfn)
    memory.reset_except_pinned()
    assert memory.allocated_bytes == PAGE_4K


def test_allocator_does_not_reuse_pinned_after_reset():
    memory = PhysicalMemory(8 * PAGE_4K)
    keep = memory.allocate()
    memory.pin(keep.mfn)
    memory.reset_except_pinned()
    mfns = {memory.allocate().mfn for _ in range(7)}
    assert keep.mfn not in mfns


def test_write_read_digest():
    memory = PhysicalMemory(16 * MIB)
    frame = memory.allocate()
    memory.write(frame.mfn, 0xDEADBEEF)
    assert memory.read(frame.mfn) == 0xDEADBEEF


def test_digest_of_is_order_sensitive():
    memory = PhysicalMemory(16 * MIB)
    a = memory.allocate(digest=1)
    b = memory.allocate(digest=2)
    assert memory.digest_of([a.mfn, b.mfn]) != memory.digest_of([b.mfn, a.mfn])


def test_mixed_sizes_coexist():
    memory = PhysicalMemory(16 * MIB)
    small = memory.allocate()
    big = memory.allocate(size=PAGE_2M)
    assert memory.allocated_bytes == PAGE_4K + PAGE_2M
    memory.free(big.mfn)
    memory.free(small.mfn)
    assert memory.free_bytes == memory.total_bytes


def test_free_list_stays_sorted_and_coalesced():
    # Fragmentation regression: the allocator promises a sorted, fully
    # coalesced free list after any interleaving of allocs and frees —
    # the bisect insert with neighbor-only merge must uphold it.
    memory = PhysicalMemory(64 * MIB)
    frames = [memory.allocate() for _ in range(128)]
    for frame in frames[::3] + frames[1::3] + frames[2::3]:
        memory.free(frame.mfn)
        regions = memory._free
        assert all(regions[i].start + regions[i].count < regions[i + 1].start
                   for i in range(len(regions) - 1)), "unsorted or adjacent"
    assert len(memory._free) == 1
    assert memory._free[0].count == memory.total_base_frames


def test_interleaved_free_merges_both_neighbors():
    memory = PhysicalMemory(8 * PAGE_4K)
    a, b, c = (memory.allocate() for _ in range(3))
    memory.free(a.mfn)
    memory.free(c.mfn)
    assert len(memory._free) == 2  # [a] and [c..end]
    memory.free(b.mfn)  # bridges both neighbors into one region
    assert len(memory._free) == 1
    assert memory.free_bytes == memory.total_bytes


def test_allocated_bytes_counter_tracks_churn():
    memory = PhysicalMemory(64 * MIB)
    live = []
    for round_index in range(4):
        live.extend(memory.allocate() for _ in range(16))
        live.append(memory.allocate(size=PAGE_2M))
        for frame in live[::2]:
            memory.free(frame.mfn)
        live = live[1::2]
        expected = sum(f.size for f in memory.allocated_frames())
        assert memory.allocated_bytes == expected


def test_allocated_bytes_after_reset_except_pinned():
    memory = PhysicalMemory(16 * MIB)
    for _ in range(8):
        memory.allocate()
    keep = memory.allocate(size=PAGE_2M)
    memory.pin(keep.mfn)
    memory.reset_except_pinned()
    assert memory.allocated_bytes == PAGE_2M
    assert memory.free_bytes == memory.total_bytes - PAGE_2M
