"""Memory-separation classifier (Fig. 2).

Classifies every byte a virtualized host holds into the four categories the
paper defines, and derives from that classification the *action* HyperTP
must take on each during a transplant:

==================  =========================  ==========================
Category            Contents                   Transplant action
==================  =========================  ==========================
Guest State         guest address spaces       keep in place / copy as-is
VM_i State          NPTs, vCPU contexts,       translate through UISR
                    platform device state
VM Management       scheduler queues etc.      rebuild from VM_i states
HV State            hypervisor heap/text       reinitialise (reboot) or
                                               already present (migration)
==================  =========================  ==========================
"""

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.hypervisors.base import Hypervisor, MemoryReport


class MemoryCategory(enum.Enum):
    GUEST_STATE = "guest-state"
    VMI_STATE = "vmi-state"
    MANAGEMENT_STATE = "vm-management-state"
    HV_STATE = "hv-state"


class TransplantAction(enum.Enum):
    KEEP_IN_PLACE = "keep-in-place"
    TRANSLATE = "translate"
    REBUILD = "rebuild"
    REINITIALIZE = "reinitialize"


ACTION_FOR_CATEGORY = {
    MemoryCategory.GUEST_STATE: TransplantAction.KEEP_IN_PLACE,
    MemoryCategory.VMI_STATE: TransplantAction.TRANSLATE,
    MemoryCategory.MANAGEMENT_STATE: TransplantAction.REBUILD,
    MemoryCategory.HV_STATE: TransplantAction.REINITIALIZE,
}


@dataclass
class SeparationBreakdown:
    """Byte counts per category plus derived ratios."""

    bytes_by_category: Dict[MemoryCategory, int]

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())

    def fraction(self, category: MemoryCategory) -> float:
        total = self.total_bytes
        return self.bytes_by_category[category] / total if total else 0.0

    @property
    def translated_bytes(self) -> int:
        """Bytes HyperTP must actually translate — only VM_i State."""
        return self.bytes_by_category[MemoryCategory.VMI_STATE]

    @property
    def untouched_bytes(self) -> int:
        """Bytes left exactly in place (the dominant share)."""
        return self.bytes_by_category[MemoryCategory.GUEST_STATE]

    def action_plan(self) -> Dict[MemoryCategory, TransplantAction]:
        return dict(ACTION_FOR_CATEGORY)


def classify(hypervisor: Hypervisor) -> SeparationBreakdown:
    """Classify a live hypervisor's resident memory (Fig. 2)."""
    report: MemoryReport = hypervisor.memory_report()
    return SeparationBreakdown({
        MemoryCategory.GUEST_STATE: report.guest_state,
        MemoryCategory.VMI_STATE: report.vmi_state,
        MemoryCategory.MANAGEMENT_STATE: report.management_state,
        MemoryCategory.HV_STATE: report.hv_state,
    })


def transplant_work_summary(hypervisor: Hypervisor) -> List[str]:
    """Human-readable per-category plan for a host (used by the examples)."""
    breakdown = classify(hypervisor)
    lines = []
    for category in MemoryCategory:
        nbytes = breakdown.bytes_by_category[category]
        action = ACTION_FOR_CATEGORY[category]
        lines.append(
            f"{category.value:>22}: {nbytes / (1 << 20):10.2f} MiB -> "
            f"{action.value}"
        )
    return lines
