"""``repro.io`` — the one streaming codec layer for VM-state movement.

Every channel that moves VM state (the MigrationTP proxy wire, the PRAM
encoding, UISR documents, cluster plan blobs) shares this layer:

* :mod:`frames` — self-describing CRC32-checked frames with a streaming
  :class:`FrameWriter`/:class:`FrameReader` API, plus the low-level
  :class:`Packer`/:class:`Unpacker` pair and the per-channel
  :class:`StreamMeter` (bytes-in / bytes-out / dedup-hits);
* :mod:`pages` — the shared page-record batch encoder with run-length
  coalescing and cross-batch digest dedup.

See ``docs/state-io.md`` for the byte formats.
"""

from repro.io.frames import (
    END_FRAME,
    FRAME_MAGIC,
    FRAME_OVERHEAD,
    FRAME_VERSION,
    FrameReader,
    FrameWriter,
    Packer,
    StreamMeter,
    Unpacker,
    decode_frame,
    encode_frame,
    read_stream_frame,
)
from repro.io.pages import (
    DedupStats,
    PageStreamDecoder,
    PageStreamEncoder,
    decode_entry_records,
    encode_entry_records,
)

__all__ = [
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "FRAME_OVERHEAD",
    "END_FRAME",
    "encode_frame",
    "decode_frame",
    "read_stream_frame",
    "FrameWriter",
    "FrameReader",
    "Packer",
    "Unpacker",
    "StreamMeter",
    "DedupStats",
    "PageStreamEncoder",
    "PageStreamDecoder",
    "encode_entry_records",
    "decode_entry_records",
]
