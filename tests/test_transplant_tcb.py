"""Tests for the HyperTP façade, TCB accounting and device-model planning."""

import pytest

from repro.errors import TransplantError
from repro.guest.drivers import EmulatedDriver, NetworkDriver, PassthroughDriver
from repro.guest.vm import VMConfig
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.tcb import (
    HYPERTP_COMPONENTS,
    account,
    attack_surface_properties,
)
from repro.core.transplant import HyperTP
from repro.devices.model import (
    STRATEGY_PASSTHROUGH,
    STRATEGY_TRANSLATE,
    STRATEGY_UNPLUG_RESCAN,
    plan_device_transplant,
    transplant_strategy_for,
)

GIB = 1024 ** 3


class TestHyperTPFacade:
    def test_inplace_path(self, xen_host):
        report = HyperTP().inplace(xen_host, HypervisorKind.KVM, SimClock())
        assert report.target == "kvm"
        assert xen_host.hypervisor.kind is HypervisorKind.KVM

    def test_migrate_path(self, xen_host_factory, kvm_host_factory, fabric):
        source = xen_host_factory(name="fsrc")
        destination = kvm_host_factory(name="fdst")
        fabric.connect(source, destination)
        domain = next(iter(source.hypervisor.domains.values()))
        report = HyperTP().migrate(fabric, source, destination, domain,
                                   SimClock())
        assert report.heterogeneous

    def test_transplant_host_all_compatible_needs_no_spare(
            self, xen_host_factory):
        machine = xen_host_factory(vm_count=3)
        report = HyperTP().transplant_host(machine, HypervisorKind.KVM)
        assert report.migrated_count == 0
        assert report.inplace_count == 3

    def test_transplant_host_mixed(self, xen_host_factory, kvm_host_factory,
                                   fabric):
        machine = xen_host_factory(vm_count=2)
        xen = machine.hypervisor
        xen.create_vm(VMConfig("fragile", vcpus=1, memory_bytes=GIB,
                               inplace_compatible=False))
        spare = kvm_host_factory(name="spare")
        fabric.connect(machine, spare)
        report = HyperTP().transplant_host(
            machine, HypervisorKind.KVM, fabric=fabric, spare=spare,
        )
        assert report.migrated_count == 1
        assert report.inplace_count == 2
        assert report.migrated[0].vm_name == "fragile"
        assert len(spare.hypervisor.domains) == 1

    def test_incompatible_without_spare_fails(self, xen_host_factory):
        machine = xen_host_factory(vm_count=0)
        machine.hypervisor.create_vm(VMConfig(
            "fragile", vcpus=1, memory_bytes=GIB, inplace_compatible=False,
        ))
        with pytest.raises(TransplantError):
            HyperTP().transplant_host(machine, HypervisorKind.KVM)

    def test_spare_must_run_target(self, xen_host_factory, fabric):
        machine = xen_host_factory(vm_count=0)
        machine.hypervisor.create_vm(VMConfig(
            "fragile", vcpus=1, memory_bytes=GIB, inplace_compatible=False,
        ))
        wrong_spare = xen_host_factory(name="wrong", vm_count=0)
        fabric.connect(machine, wrong_spare)
        with pytest.raises(TransplantError):
            HyperTP().transplant_host(machine, HypervisorKind.KVM,
                                      fabric=fabric, spare=wrong_spare)

    def test_worst_downtime_accounting(self, xen_host_factory):
        machine = xen_host_factory(vm_count=2)
        report = HyperTP().transplant_host(machine, HypervisorKind.KVM)
        assert report.worst_downtime_s == report.inplace.downtime_s


class TestTCBAccounting:
    def test_totals_match_paper(self):
        report = account()
        assert report.total_kloc == pytest.approx(14.6, abs=0.01)
        assert report.tcb_kloc == pytest.approx(8.5, abs=0.01)

    def test_userspace_share_near_90_percent(self):
        # §4.4: nearly 90 % of the TCB contribution sits in user space.
        report = account()
        assert 0.7 <= report.userspace_share <= 0.95

    def test_relative_increase_is_tiny(self):
        report = account()
        assert report.relative_tcb_increase < 0.01  # vs millions of LOC

    def test_attack_surface_claims(self):
        props = attack_surface_properties()
        assert props["activated_only_during_transplant"]
        assert not props["processes_vm_inputs"]
        assert props["isolated_between_vms"]

    def test_component_inventory_has_4_entries(self):
        assert len(HYPERTP_COMPONENTS) == 4


class TestDevicePlanning:
    def test_strategy_mapping(self):
        assert transplant_strategy_for(PassthroughDriver("p"))[0] == \
            STRATEGY_PASSTHROUGH
        assert transplant_strategy_for(NetworkDriver("n"))[0] == \
            STRATEGY_UNPLUG_RESCAN
        assert transplant_strategy_for(EmulatedDriver("e"))[0] == \
            STRATEGY_TRANSLATE

    def test_passthrough_payload_is_empty(self):
        # Pass-through driver state lives inside Guest State.
        _, payload = transplant_strategy_for(PassthroughDriver("p"))
        assert payload == b""

    def test_emulated_payload_carries_state(self):
        _, payload = transplant_strategy_for(EmulatedDriver("e",
                                                            vmm_state_bytes=512))
        assert len(payload) > 0

    def test_plan_notifies_and_quiesces(self):
        drivers = [PassthroughDriver("p"), NetworkDriver("n")]
        plan = plan_device_transplant(drivers)
        assert all(d.notified for d in drivers)
        assert drivers[0].state.value == "paused"
        assert drivers[1].state.value == "unplugged"
        assert plan.prepare_seconds > 0
        assert len(plan.restore_actions) == 2
