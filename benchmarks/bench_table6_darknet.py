"""Table 6 — Darknet MNIST-training iteration times.

Paper: default 2.044 s; Xen->Xen migration stretches the worst iteration to
2.672 s; InPlaceTP to 4.970 s (the paused iteration absorbs the downtime);
MigrationTP to 2.244 s.
"""

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import make_host_pair, make_xen_host
from repro.core.migration import LiveMigration, MigrationTP
from repro.core.transplant import HyperTP
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.workloads import DarknetWorkload, timeline_for_inplace, timeline_for_migration
from repro.workloads.base import HostTimeline

ITERATIONS = 100
TRIGGER_T = 100.0
TRAINING_DIRTY_RATE = 20 << 20
# Dirty-tracking drag during pre-copy: Xen's shadow-based logging steals
# more guest cycles than the MigrationTP path's (Table 6's 2.672 vs 2.244).
XEN_PRECOPY_FACTOR = 0.765
TP_PRECOPY_FACTOR = 0.91


def run():
    workload = DarknetWorkload()
    xen_only = HostTimeline(switches=[(0.0, HypervisorKind.XEN)])
    default = workload.train(ITERATIONS, xen_only, step_s=0.02)

    machine = make_xen_host(M1_SPEC, vm_count=1, vcpus=2, memory_gib=8.0)
    inplace_report = HyperTP().inplace(machine, HypervisorKind.KVM,
                                       SimClock())
    inplace = workload.train(
        ITERATIONS,
        timeline_for_inplace(inplace_report, TRIGGER_T, HypervisorKind.XEN,
                             HypervisorKind.KVM),
        step_s=0.02,
    )

    source, destination, fabric = make_host_pair(
        M1_SPEC, HypervisorKind.XEN, vcpus=2, memory_gib=8.0,
    )
    domain = next(iter(source.hypervisor.domains.values()))
    xen_migration_report = LiveMigration(fabric, source, destination).migrate(
        domain, dirty_rate_bytes_s=TRAINING_DIRTY_RATE,
    )
    xen_migration = workload.train(
        ITERATIONS,
        timeline_for_migration(xen_migration_report, TRIGGER_T,
                               HypervisorKind.XEN, HypervisorKind.XEN,
                               precopy_throughput_factor=XEN_PRECOPY_FACTOR),
        step_s=0.02,
    )

    source, destination, fabric = make_host_pair(
        M1_SPEC, HypervisorKind.KVM, vcpus=2, memory_gib=8.0,
    )
    domain = next(iter(source.hypervisor.domains.values()))
    tp_report = MigrationTP(fabric, source, destination).migrate(
        domain, dirty_rate_bytes_s=TRAINING_DIRTY_RATE,
    )
    migration_tp = workload.train(
        ITERATIONS,
        timeline_for_migration(tp_report, TRIGGER_T, HypervisorKind.XEN,
                               HypervisorKind.KVM,
                               precopy_throughput_factor=TP_PRECOPY_FACTOR),
        step_s=0.02,
    )

    return [
        ["Default", default.mean_s, default.longest_s, 2.044],
        ["Xen migration", xen_migration.mean_s, xen_migration.longest_s,
         2.672],
        ["InPlaceTP", inplace.mean_s, inplace.longest_s, 4.970],
        ["MigrationTP", migration_tp.mean_s, migration_tp.longest_s, 2.244],
    ]


HEADERS = ["condition", "mean iter (s)", "longest iter (s)",
           "paper longest (s)"]


def test_table6_darknet(benchmark):
    rows = benchmark(run)
    print_experiment("Table 6", "Darknet training iteration times",
                     format_table(HEADERS, rows))


if __name__ == "__main__":
    print_experiment("Table 6", "Darknet training iteration times",
                     format_table(HEADERS, run()))
