"""Extension — the repertoire's micro-reboot cost per target.

Extends Fig. 6/10 across the whole 3-member pool: for each transplant
direction, the reboot time and resulting downtime on M1 (single 1 vCPU /
1 GB VM).  The ordering NOVA < KVM << Xen quantifies the structural rule
of thumb: prefer transplanting *toward* the hypervisor with the shortest
boot path, and reserve the expensive direction for the transplant back.
"""

import itertools

from repro.bench.report import format_table, print_experiment
from repro.guest.devices import make_default_platform
from repro.guest.vm import VMConfig
from repro.hw.machine import M1_SPEC, Machine
from repro.hypervisors import make_hypervisor
from repro.hypervisors.base import HypervisorKind
from repro.hypervisors.kvm.formats import KVM_IOAPIC_PINS
from repro.hypervisors.nova.formats import NOVA_IOAPIC_PINS
from repro.guest.devices import XEN_IOAPIC_PINS
from repro.sim.clock import SimClock
from repro.core.transplant import HyperTP

GIB = 1024 ** 3
PINS = {
    HypervisorKind.XEN: XEN_IOAPIC_PINS,
    HypervisorKind.KVM: KVM_IOAPIC_PINS,
    HypervisorKind.NOVA: NOVA_IOAPIC_PINS,
}


def host_running(kind):
    machine = Machine(M1_SPEC)
    hypervisor = make_hypervisor(kind)
    hypervisor.boot(machine)
    domain = hypervisor.create_vm(VMConfig("vm0", vcpus=1,
                                           memory_bytes=GIB))
    domain.vm.platform = make_default_platform(1, ioapic_pins=PINS[kind])
    return machine


def run():
    rows = []
    for source, target in itertools.permutations(HypervisorKind, 2):
        machine = host_running(source)
        report = HyperTP().inplace(machine, target, SimClock())
        rows.append([
            f"{source.value} -> {target.value}",
            report.reboot_s,
            report.downtime_s,
            report.total_s,
        ])
    rows.sort(key=lambda r: r[2])
    return rows


HEADERS = ["direction", "reboot (s)", "downtime (s)", "total (s)"]


def test_repertoire_boot(benchmark):
    rows = benchmark(run)
    print_experiment("Extension",
                     "micro-reboot cost per transplant direction (M1)",
                     format_table(HEADERS, rows))


if __name__ == "__main__":
    print_experiment("Extension",
                     "micro-reboot cost per transplant direction (M1)",
                     format_table(HEADERS, run()))
