"""BtrPlace-style reconfiguration planner.

Reproduces the paper's §5.4 methodology: divide the cluster into groups,
sequentially put each group offline (BtrPlace's ``offline`` constraint), and
record the migration plans.  VMs on an offlined host must be placed on live
hosts; InPlaceTP-compatible VMs are exempt — they ride the host's
micro-reboot instead of migrating.

Placement follows BtrPlace's default load-balancing behaviour: evacuated
VMs spread across the least-loaded live nodes (upgraded or not), which is
why VMs can migrate more than once during a campaign — the source of the
154 > 100 migration count at 0 % compatibility.
"""

from typing import List

from repro.errors import PlanningError
from repro.cluster.model import Cluster
from repro.cluster.plan import (
    GroupPlan,
    InPlaceAction,
    MigrationAction,
    ReconfigurationPlan,
)


class BtrPlacePlanner:
    """Plans a rolling-upgrade campaign over a cluster."""

    def __init__(self, cluster: Cluster, group_size: int = 2, rides=None):
        if group_size < 1:
            raise PlanningError(f"group size must be >= 1, got {group_size}")
        self.cluster = cluster
        self.group_size = group_size
        # Predicate deciding which VMs ride the micro-reboot instead of
        # migrating.  The default is the paper's §4.5.2 split (evacuate
        # exactly the InPlaceTP-incompatible VMs); a MechanismPolicy
        # passes its own per-VM verdict here.
        self.rides = rides if rides is not None else (
            lambda vm: vm.inplace_compatible)
        self._rr_cursor = 0  # spread placement rotates over live nodes
        # The node set is fixed for the life of a plan; sorting once keeps
        # destination picks O(live) instead of O(n log n) per migration,
        # which matters at fleet scale (thousands of hosts).
        self._sorted_names = sorted(self.cluster.nodes)

    def _offline_groups(self) -> List[List[str]]:
        names = self._sorted_names
        return [names[i:i + self.group_size]
                for i in range(0, len(names), self.group_size)]

    def plan(self, apply: bool = True) -> ReconfigurationPlan:
        """Produce (and by default apply placement changes for) the campaign.

        ``apply=True`` mutates the cluster placement group by group so later
        groups see earlier evacuees — required for realistic re-migration
        counts.  Use ``apply=False`` for a single-group dry run.
        """
        plan = ReconfigurationPlan()
        for index, group in enumerate(self._offline_groups()):
            group_plan = GroupPlan(group_index=index, nodes=list(group))
            for node_name in group:
                node = self.cluster.nodes[node_name]
                staying = []
                for vm in list(self.cluster.vms_on(node_name)):
                    if self.rides(vm):
                        staying.append(vm)
                        continue
                    dest = self._pick_destination(group, vm.name)
                    group_plan.migrations.append(MigrationAction(
                        vm_name=vm.name,
                        source=node_name,
                        destination=dest,
                        memory_bytes=vm.memory_bytes,
                        workload=vm.workload,
                    ))
                    if apply:
                        self.cluster.move_vm(vm.name, dest)
                group_plan.upgrades.append(InPlaceAction(
                    node_name=node_name,
                    vm_count=len(staying),
                    total_memory_bytes=sum(v.memory_bytes for v in staying),
                ))
                if apply:
                    self.cluster.mark_upgraded(node_name, "kvm")
            plan.groups.append(group_plan)
        return plan

    def _pick_destination(self, offline_group: List[str],
                          vm_name: str) -> str:
        """Spread placement: rotate over all live nodes with capacity.

        BtrPlace balances each reconfiguration step in isolation, without
        knowledge of *future* offline groups, so evacuees land on
        not-yet-upgraded hosts too and may migrate again later — the reason
        the paper's 100-VM cluster needs 154 migrations at 0 % compatibility.
        """
        offline = set(offline_group)
        live = [name for name in self._sorted_names if name not in offline]
        if not live:
            raise PlanningError("no live nodes to receive evacuated VMs")
        for _ in range(len(live)):
            candidate = live[self._rr_cursor % len(live)]
            self._rr_cursor += 1
            if self.cluster.nodes[candidate].free_slots > 0:
                return candidate
        raise PlanningError(
            f"no destination with capacity for {vm_name} while "
            f"{offline_group} is offline"
        )
