"""Guest-side device drivers and their transplant cooperation protocol.

Section 4.2.3 distinguishes two device classes:

* **Pass-through** — the physical device survives transplantation; the guest
  driver is asked to *pause* (quiesce) so the device+driver pair reaches a
  consistent state stored inside Guest State, then to *resume* afterwards.
* **Emulated** — the emulation software changes with the hypervisor; its
  state is copied and translated, or — for network devices — the guest is
  asked to *unplug* the device before transplant and *rescan* afterwards,
  which does not break established TCP connections.

Guests are notified ahead of time, mirroring Azure's Scheduled Events API.
"""

import enum
from typing import Optional

from repro.errors import TransplantError


class DriverState(enum.Enum):
    ACTIVE = "active"
    PAUSED = "paused"
    UNPLUGGED = "unplugged"


class GuestDriver:
    """Base guest driver: notify / pause / resume protocol."""

    #: seconds of guest-side work to quiesce this driver class
    pause_cost_s = 0.002
    resume_cost_s = 0.002

    def __init__(self, name: str):
        self.name = name
        self.state = DriverState.ACTIVE
        self.notified = False

    def notify_maintenance(self) -> None:
        """Scheduled-events style advance notice of the transplant."""
        self.notified = True

    def pause(self) -> float:
        if self.state is not DriverState.ACTIVE:
            raise TransplantError(f"driver {self.name} not active: {self.state}")
        self.state = DriverState.PAUSED
        return self.pause_cost_s

    def resume(self) -> float:
        if self.state is not DriverState.PAUSED:
            raise TransplantError(f"driver {self.name} not paused: {self.state}")
        self.state = DriverState.ACTIVE
        return self.resume_cost_s


class PassthroughDriver(GuestDriver):
    """Driver for a pass-through device.

    The driver's state lives in Guest State and is preserved untouched across
    the transplant; only pause/resume notifications are needed.  A VM with a
    pass-through device cannot be live-migrated (§4.2.3), which the migration
    code enforces via :attr:`migratable`.
    """

    migratable = False
    pause_cost_s = 0.004
    resume_cost_s = 0.003


class EmulatedDriver(GuestDriver):
    """Driver for an emulated device whose VMM-side state is translated."""

    migratable = True

    def __init__(self, name: str, vmm_state_bytes: int = 4096):
        super().__init__(name)
        self.vmm_state_bytes = vmm_state_bytes


class NetworkDriver(EmulatedDriver):
    """Emulated NIC handled with the unplug/rescan strategy.

    TCP connections survive the brief unplug because the guest keeps socket
    state; only the interface disappears and reappears.  The *flavor* is
    the paravirtual transport the interface rides (xen-netfront on Xen,
    virtio-net on KVM): across a heterogeneous transplant the rescan
    installs the target's native transport — the guest's multi-driver
    kernel binds whichever device reappears.
    """

    unplug_cost_s = 0.010
    rescan_cost_s = 0.050

    def __init__(self, name: str = "net0", flavor: str = "xen-netfront"):
        super().__init__(name, vmm_state_bytes=8192)
        self.tcp_connections_alive = True
        self.flavor = flavor

    def unplug(self) -> float:
        if self.state is not DriverState.ACTIVE:
            raise TransplantError(f"driver {self.name} not active: {self.state}")
        self.state = DriverState.UNPLUGGED
        # Sockets stay open inside the guest.
        self.tcp_connections_alive = True
        return self.unplug_cost_s

    def rescan(self, flavor: Optional[str] = None) -> float:
        if self.state is not DriverState.UNPLUGGED:
            raise TransplantError(f"driver {self.name} not unplugged: {self.state}")
        self.state = DriverState.ACTIVE
        if flavor is not None:
            self.flavor = flavor
        return self.rescan_cost_s
