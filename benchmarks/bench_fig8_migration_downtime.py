"""Fig. 8 — downtime in MigrationTP (Xen->KVM) vs the Xen->Xen baseline.

Sweeps vCPUs, memory size and concurrent VM count.  Shapes to hold:
MigrationTP downtime is milliseconds and flat; Xen's grows with vCPUs and,
with many concurrent VMs, spreads widely because the receive side
serializes activations (the paper's box plots).
"""

import statistics

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import migration_sweep
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind

VCPUS = [1, 2, 4, 6, 8, 10]
MEMORY = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
VM_COUNTS = [2, 4, 6, 8, 10, 12]


def run():
    xen = migration_sweep(M1_SPEC, HypervisorKind.XEN, VCPUS, MEMORY,
                          VM_COUNTS)
    hypertp = migration_sweep(M1_SPEC, HypervisorKind.KVM, VCPUS, MEMORY,
                              VM_COUNTS)
    rows = []
    for axis, points in (("vcpus", VCPUS), ("memory_gib", MEMORY),
                         ("vm_count", VM_COUNTS)):
        for point, xen_reports, tp_reports in zip(points, xen[axis],
                                                  hypertp[axis]):
            xen_ms = [r.downtime_s * 1000 for r in xen_reports]
            tp_ms = [r.downtime_s * 1000 for r in tp_reports]
            rows.append([
                axis, point,
                statistics.median(xen_ms), max(xen_ms),
                statistics.median(tp_ms), max(tp_ms),
            ])
    return rows


HEADERS = ["sweep", "x", "Xen med (ms)", "Xen max (ms)",
           "HyperTP med (ms)", "HyperTP max (ms)"]


def test_fig8_migration_downtime(benchmark):
    rows = benchmark(run)
    print_experiment("Fig. 8", "migration downtime: Xen vs MigrationTP",
                     format_table(HEADERS, rows))


if __name__ == "__main__":
    print_experiment("Fig. 8", "migration downtime: Xen vs MigrationTP",
                     format_table(HEADERS, run()))
