"""Cluster-scale orchestration (§5.4).

* :mod:`model` — nodes, placements and workload mixes for the 10x10 testbed.
* :mod:`btrplace` — a BtrPlace-style reconfiguration planner: offline-group
  constraints produce migration plans.
* :mod:`plan` — plan data structures (actions, ordering).
* :mod:`executor` — executes plans on the simulated cluster, timing them.
* :mod:`upgrade` — whole-cluster upgrade campaigns mixing InPlaceTP and
  MigrationTP, reproducing Fig. 13.
"""

from repro.cluster.model import Cluster, ClusterNode, ClusterVM, WorkloadKind
from repro.cluster.btrplace import BtrPlacePlanner
from repro.cluster.plan import MigrationAction, InPlaceAction, ReconfigurationPlan
from repro.cluster.executor import PlanExecutor, ExecutionResult
from repro.cluster.upgrade import UpgradeCampaign, CampaignResult
from repro.cluster.serialize import (
    decode_plan,
    encode_plan,
    export_plan,
    import_plan,
    summarize_plan,
)

__all__ = [
    "export_plan",
    "import_plan",
    "encode_plan",
    "decode_plan",
    "summarize_plan",
    "Cluster",
    "ClusterNode",
    "ClusterVM",
    "WorkloadKind",
    "BtrPlacePlanner",
    "MigrationAction",
    "InPlaceAction",
    "ReconfigurationPlan",
    "PlanExecutor",
    "ExecutionResult",
    "UpgradeCampaign",
    "CampaignResult",
]
