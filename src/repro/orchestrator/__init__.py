"""OpenStack-style orchestration layer (§4.5).

The paper argues HyperTP does not burden sysadmins because clouds drive
hypervisors through generic libraries (libvirt) and an orchestrator (Nova),
never vendor tools directly.  This package implements that integration:

* :mod:`libvirt` — a libvirt-like façade over both hypervisors (the G2 path).
* :mod:`compute_driver` — Nova's ComputeDriver interface extended with the
  HyperTP operations (guest state save, kernel load+exec, state restore).
* :mod:`nova` — the compute manager with the new ``host_live_upgrade`` API
  and its database of host/hypervisor assignments.
* :mod:`scheduler_filters` — HyperTP-aware placement filters.
* :mod:`api` — the "one-click" datacenter-wide transplant entry point.
"""

from repro.orchestrator.libvirt import LibvirtConnection
from repro.orchestrator.compute_driver import ComputeDriver, LibvirtComputeDriver
from repro.orchestrator.nova import NovaCompute, HostRecord
from repro.orchestrator.scheduler_filters import (
    InPlaceCompatibilityFilter,
    TransplantConsolidationWeigher,
)
from repro.orchestrator.api import DatacenterAPI, FleetUpgradeReport
from repro.orchestrator.policy import Mechanism, TransplantPolicy
from repro.orchestrator.scheduled_events import (
    AZURE_MAINTENANCE_BOUND_S,
    EventType,
    MaintenanceEvent,
    ScheduledEventsService,
)

__all__ = [
    "LibvirtConnection",
    "ComputeDriver",
    "LibvirtComputeDriver",
    "NovaCompute",
    "HostRecord",
    "InPlaceCompatibilityFilter",
    "TransplantConsolidationWeigher",
    "DatacenterAPI",
    "FleetUpgradeReport",
    "Mechanism",
    "TransplantPolicy",
    "AZURE_MAINTENANCE_BOUND_S",
    "EventType",
    "MaintenanceEvent",
    "ScheduledEventsService",
]
