"""Fig. 6 — InPlaceTP time breakdown, Xen->KVM, single 1 vCPU / 1 GB VM.

Paper anchors: M1 total 2.15 s (PRAM 0.45 / Translation 0.08 / Reboot 1.52 /
Restoration 0.12), downtime 1.7 s, +6.6 s network; M2 total 3.56 s,
downtime 3.01 s, +2.3 s network.
"""

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import inplace_breakdown
from repro.hw.machine import M1_SPEC, M2_SPEC
from repro.hypervisors.base import HypervisorKind

PAPER = {
    "M1": {"PRAM": 0.45, "Translation": 0.08, "Reboot": 1.52,
           "Restoration": 0.12, "Network": 6.6, "downtime": 1.7},
    "M2": {"PRAM": 0.5, "Translation": 0.24, "Reboot": 2.40,
           "Restoration": 0.34, "Network": 2.3, "downtime": 3.01},
}


def run():
    rows = []
    for spec in (M1_SPEC, M2_SPEC):
        report = inplace_breakdown(spec, HypervisorKind.KVM)
        paper = PAPER[spec.name]
        for phase, measured in report.phase_breakdown.items():
            rows.append([spec.name, phase, measured, paper[phase]])
        rows.append([spec.name, "downtime", report.downtime_s,
                     paper["downtime"]])
    return rows


def test_fig6_inplace_breakdown(benchmark):
    rows = benchmark(run)
    print_experiment(
        "Fig. 6", "InPlaceTP time breakdown Xen->KVM (1 vCPU, 1 GB)",
        format_table(["machine", "phase", "measured (s)", "paper (s)"], rows),
    )


if __name__ == "__main__":
    print_experiment(
        "Fig. 6", "InPlaceTP time breakdown Xen->KVM (1 vCPU, 1 GB)",
        format_table(["machine", "phase", "measured (s)", "paper (s)"], run()),
    )
