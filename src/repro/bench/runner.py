"""Shared experiment-construction helpers for the benchmark harness.

The per-figure benchmark files all need the same moves: build a host with N
VMs on a given machine spec, run an InPlaceTP or a migration, sweep a
parameter.  Centralizing them keeps each bench file a readable description
of its experiment.
"""

from typing import Dict, List, Optional, Tuple

from repro.guest.devices import KVM_IOAPIC_PINS, make_default_platform
from repro.guest.vm import VMConfig
from repro.hw.machine import (
    CLUSTER_NODE_SPEC,
    M1_SPEC,
    M2_SPEC,
    Machine,
    MachineSpec,
)
from repro.hw.network import Fabric
from repro.hypervisors import KVMHypervisor, XenHypervisor
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.inplace import InPlaceReport
from repro.core.migration import LiveMigration, MigrationReport, MigrationTP, migrate_group
from repro.core.optimizations import OptimizationConfig
from repro.core.transplant import HyperTP

GIB = 1024 ** 3


def make_xen_host(spec: MachineSpec, vm_count: int = 1, vcpus: int = 1,
                  memory_gib: float = 1.0, name: Optional[str] = None,
                  seed: int = 0) -> Machine:
    """A machine running Xen with ``vm_count`` identical HVM guests."""
    machine = Machine(spec, name=name)
    xen = XenHypervisor()
    xen.boot(machine)
    for i in range(vm_count):
        xen.create_vm(VMConfig(
            name=f"{machine.name}-vm{i}",
            vcpus=vcpus,
            memory_bytes=int(memory_gib * GIB),
            seed=seed + i,
        ))
    return machine


def make_kvm_host(spec: MachineSpec, vm_count: int = 0, vcpus: int = 1,
                  memory_gib: float = 1.0, name: Optional[str] = None,
                  seed: int = 0) -> Machine:
    """A machine running KVM, optionally with guests (24-pin IOAPICs)."""
    machine = Machine(spec, name=name)
    kvm = KVMHypervisor()
    kvm.boot(machine)
    for i in range(vm_count):
        domain = kvm.create_vm(VMConfig(
            name=f"{machine.name}-vm{i}",
            vcpus=vcpus,
            memory_bytes=int(memory_gib * GIB),
            seed=seed + i,
        ))
        domain.vm.platform = make_default_platform(
            vcpus, ioapic_pins=KVM_IOAPIC_PINS, seed=seed + i,
        )
    return machine


def make_host_pair(spec: MachineSpec, dest_kind: HypervisorKind,
                   vm_count: int = 1, vcpus: int = 1,
                   memory_gib: float = 1.0) -> Tuple[Machine, Machine, Fabric]:
    """A Xen source and a (Xen or KVM) destination joined by a fabric."""
    source = make_xen_host(spec, vm_count=vm_count, vcpus=vcpus,
                           memory_gib=memory_gib, name="bench-src")
    if dest_kind is HypervisorKind.KVM:
        destination = make_kvm_host(spec, name="bench-dst")
    else:
        destination = Machine(spec, name="bench-dst")
        XenHypervisor().boot(destination)
    fabric = Fabric()
    fabric.connect(source, destination)
    return source, destination, fabric


def inplace_breakdown(spec: MachineSpec, target: HypervisorKind,
                      vm_count: int = 1, vcpus: int = 1,
                      memory_gib: float = 1.0,
                      optimizations: Optional[OptimizationConfig] = None
                      ) -> InPlaceReport:
    """One InPlaceTP run; returns the per-phase report (Fig. 6/7/10)."""
    if target is HypervisorKind.KVM:
        machine = make_xen_host(spec, vm_count=vm_count, vcpus=vcpus,
                                memory_gib=memory_gib)
    else:
        machine = make_kvm_host(spec, vm_count=vm_count, vcpus=vcpus,
                                memory_gib=memory_gib)
    hypertp = HyperTP() if optimizations is None else HyperTP(
        optimizations=optimizations
    )
    return hypertp.inplace(machine, target, SimClock())


def inplace_sweep(spec: MachineSpec, target: HypervisorKind,
                  vcpu_points: List[int], memory_points: List[float],
                  vm_count_points: List[int]) -> Dict[str, List[InPlaceReport]]:
    """The three Fig. 7/10 sweeps for one machine spec."""
    return {
        "vcpus": [
            inplace_breakdown(spec, target, vcpus=v) for v in vcpu_points
        ],
        "memory_gib": [
            inplace_breakdown(spec, target, memory_gib=m)
            for m in memory_points
        ],
        "vm_count": [
            inplace_breakdown(spec, target, vm_count=n)
            for n in vm_count_points
        ],
    }


def migration_sweep(spec: MachineSpec, dest_kind: HypervisorKind,
                    vcpu_points: List[int], memory_points: List[float],
                    vm_count_points: List[int],
                    dirty_rate_bytes_s: float = 1 << 20
                    ) -> Dict[str, List[List[MigrationReport]]]:
    """The Fig. 8/9 sweeps: each point returns the group's reports."""
    results: Dict[str, List[List[MigrationReport]]] = {
        "vcpus": [], "memory_gib": [], "vm_count": [],
    }
    for vcpus in vcpu_points:
        results["vcpus"].append(
            _migrate_once(spec, dest_kind, 1, vcpus, 1.0, dirty_rate_bytes_s)
        )
    for memory in memory_points:
        results["memory_gib"].append(
            _migrate_once(spec, dest_kind, 1, 1, memory, dirty_rate_bytes_s)
        )
    for count in vm_count_points:
        results["vm_count"].append(
            _migrate_once(spec, dest_kind, count, 1, 1.0, dirty_rate_bytes_s)
        )
    return results


def _migrate_once(spec: MachineSpec, dest_kind: HypervisorKind,
                  vm_count: int, vcpus: int, memory_gib: float,
                  dirty_rate_bytes_s: float) -> List[MigrationReport]:
    source, destination, fabric = make_host_pair(
        spec, dest_kind, vm_count=vm_count, vcpus=vcpus,
        memory_gib=memory_gib,
    )
    domains = sorted(source.hypervisor.domains.values(), key=lambda d: d.domid)
    if dest_kind is HypervisorKind.KVM:
        migrator = MigrationTP(fabric, source, destination)
    else:
        migrator = LiveMigration(fabric, source, destination)
    return migrate_group(migrator, domains,
                         dirty_rate_bytes_s=dirty_rate_bytes_s)


# -- worker-pool cell entrypoints ---------------------------------------------
#
# Module-level, plain-data-in / plain-data-out functions that the figure
# benchmarks map over :class:`repro.par.ParallelRunner`.  Each cell is one
# independent sweep axis (or sweep point) built entirely from its payload —
# a worker constructs its own machines, clocks and hypervisors from the
# named spec, and returns rows of plain numbers, never report objects.

SPEC_BY_NAME = {"M1": M1_SPEC, "M2": M2_SPEC, "cluster": CLUSTER_NODE_SPEC}


def _named_spec(name: str) -> MachineSpec:
    try:
        return SPEC_BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown machine spec {name!r}; "
                         f"pick from {sorted(SPEC_BY_NAME)}")


def inplace_axis_cell(payload: Dict) -> List[List]:
    """One Fig. 7/10 sweep axis on one machine.

    Payload: ``{"spec": "M1", "target": "kvm", "axis": "vcpus",
    "points": [...]}``.  Returns table rows
    ``[axis, point, pram_s, translation_s, reboot_s, restoration_s,
    downtime_s]``.
    """
    spec = _named_spec(payload["spec"])
    target = HypervisorKind(payload["target"])
    axis = payload["axis"]
    kwargs_of = {"vcpus": "vcpus", "memory_gib": "memory_gib",
                 "vm_count": "vm_count"}
    if axis not in kwargs_of:
        raise ValueError(f"unknown inplace sweep axis {axis!r}")
    rows = []
    for point in payload["points"]:
        report = inplace_breakdown(spec, target, **{kwargs_of[axis]: point})
        rows.append([axis, point, report.pram_s, report.translation_s,
                     report.reboot_s, report.restoration_s,
                     report.downtime_s])
    return rows


def migration_axis_cell(payload: Dict) -> List[Dict]:
    """One Fig. 8/9 sweep axis, both destinations per point.

    Payload: ``{"spec": "M1", "axis": "memory_gib", "points": [...],
    "dests": ["xen", "kvm"], "dirty_rate_bytes_s": ...}``.  Returns one
    dict per point mapping each destination to its group's total times.
    """
    spec = _named_spec(payload["spec"])
    axis = payload["axis"]
    dests = [HypervisorKind(d) for d in payload.get("dests", ["xen", "kvm"])]
    dirty = payload.get("dirty_rate_bytes_s", 1 << 20)
    shapes = {
        "vcpus": lambda p: (1, p, 1.0),
        "memory_gib": lambda p: (1, 1, p),
        "vm_count": lambda p: (p, 1, 1.0),
    }
    if axis not in shapes:
        raise ValueError(f"unknown migration sweep axis {axis!r}")
    results = []
    for point in payload["points"]:
        vm_count, vcpus, memory_gib = shapes[axis](point)
        entry: Dict[str, object] = {"axis": axis, "point": point}
        for dest in dests:
            reports = _migrate_once(spec, dest, vm_count, vcpus,
                                    memory_gib, dirty)
            entry[dest.value] = [r.total_s for r in reports]
        results.append(entry)
    return results


def cluster_fraction_cell(payload: Dict) -> Dict:
    """One Fig. 13 sweep point: a cluster upgrade at one InPlaceTP share.

    Payload: ``{"fraction": 0.2, "hosts": 10, "vms_per_host": 10}``.
    Time *gains* are relative to the all-migration baseline, so the
    parent recomputes them across cells; the cell returns absolutes only.
    """
    from repro.cluster.upgrade import UpgradeCampaign

    campaign = UpgradeCampaign(
        hosts=payload.get("hosts", 10),
        vms_per_host=payload.get("vms_per_host", 10),
    )
    result = campaign.sweep([payload["fraction"]])[0]
    return {
        "fraction": result.inplace_fraction,
        "migration_count": result.migration_count,
        "total_s": result.total_s,
        "total_minutes": result.total_minutes,
    }
