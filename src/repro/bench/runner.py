"""Shared experiment-construction helpers for the benchmark harness.

The per-figure benchmark files all need the same moves: build a host with N
VMs on a given machine spec, run an InPlaceTP or a migration, sweep a
parameter.  Centralizing them keeps each bench file a readable description
of its experiment.
"""

from typing import Dict, List, Optional, Tuple

from repro.guest.devices import KVM_IOAPIC_PINS, make_default_platform
from repro.guest.vm import VMConfig
from repro.hw.machine import Machine, MachineSpec
from repro.hw.network import Fabric
from repro.hypervisors import KVMHypervisor, XenHypervisor
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.inplace import InPlaceReport
from repro.core.migration import LiveMigration, MigrationReport, MigrationTP, migrate_group
from repro.core.optimizations import OptimizationConfig
from repro.core.transplant import HyperTP

GIB = 1024 ** 3


def make_xen_host(spec: MachineSpec, vm_count: int = 1, vcpus: int = 1,
                  memory_gib: float = 1.0, name: Optional[str] = None,
                  seed: int = 0) -> Machine:
    """A machine running Xen with ``vm_count`` identical HVM guests."""
    machine = Machine(spec, name=name)
    xen = XenHypervisor()
    xen.boot(machine)
    for i in range(vm_count):
        xen.create_vm(VMConfig(
            name=f"{machine.name}-vm{i}",
            vcpus=vcpus,
            memory_bytes=int(memory_gib * GIB),
            seed=seed + i,
        ))
    return machine


def make_kvm_host(spec: MachineSpec, vm_count: int = 0, vcpus: int = 1,
                  memory_gib: float = 1.0, name: Optional[str] = None,
                  seed: int = 0) -> Machine:
    """A machine running KVM, optionally with guests (24-pin IOAPICs)."""
    machine = Machine(spec, name=name)
    kvm = KVMHypervisor()
    kvm.boot(machine)
    for i in range(vm_count):
        domain = kvm.create_vm(VMConfig(
            name=f"{machine.name}-vm{i}",
            vcpus=vcpus,
            memory_bytes=int(memory_gib * GIB),
            seed=seed + i,
        ))
        domain.vm.platform = make_default_platform(
            vcpus, ioapic_pins=KVM_IOAPIC_PINS, seed=seed + i,
        )
    return machine


def make_host_pair(spec: MachineSpec, dest_kind: HypervisorKind,
                   vm_count: int = 1, vcpus: int = 1,
                   memory_gib: float = 1.0) -> Tuple[Machine, Machine, Fabric]:
    """A Xen source and a (Xen or KVM) destination joined by a fabric."""
    source = make_xen_host(spec, vm_count=vm_count, vcpus=vcpus,
                           memory_gib=memory_gib, name="bench-src")
    if dest_kind is HypervisorKind.KVM:
        destination = make_kvm_host(spec, name="bench-dst")
    else:
        destination = Machine(spec, name="bench-dst")
        XenHypervisor().boot(destination)
    fabric = Fabric()
    fabric.connect(source, destination)
    return source, destination, fabric


def inplace_breakdown(spec: MachineSpec, target: HypervisorKind,
                      vm_count: int = 1, vcpus: int = 1,
                      memory_gib: float = 1.0,
                      optimizations: Optional[OptimizationConfig] = None
                      ) -> InPlaceReport:
    """One InPlaceTP run; returns the per-phase report (Fig. 6/7/10)."""
    if target is HypervisorKind.KVM:
        machine = make_xen_host(spec, vm_count=vm_count, vcpus=vcpus,
                                memory_gib=memory_gib)
    else:
        machine = make_kvm_host(spec, vm_count=vm_count, vcpus=vcpus,
                                memory_gib=memory_gib)
    hypertp = HyperTP() if optimizations is None else HyperTP(
        optimizations=optimizations
    )
    return hypertp.inplace(machine, target, SimClock())


def inplace_sweep(spec: MachineSpec, target: HypervisorKind,
                  vcpu_points: List[int], memory_points: List[float],
                  vm_count_points: List[int]) -> Dict[str, List[InPlaceReport]]:
    """The three Fig. 7/10 sweeps for one machine spec."""
    return {
        "vcpus": [
            inplace_breakdown(spec, target, vcpus=v) for v in vcpu_points
        ],
        "memory_gib": [
            inplace_breakdown(spec, target, memory_gib=m)
            for m in memory_points
        ],
        "vm_count": [
            inplace_breakdown(spec, target, vm_count=n)
            for n in vm_count_points
        ],
    }


def migration_sweep(spec: MachineSpec, dest_kind: HypervisorKind,
                    vcpu_points: List[int], memory_points: List[float],
                    vm_count_points: List[int],
                    dirty_rate_bytes_s: float = 1 << 20
                    ) -> Dict[str, List[List[MigrationReport]]]:
    """The Fig. 8/9 sweeps: each point returns the group's reports."""
    results: Dict[str, List[List[MigrationReport]]] = {
        "vcpus": [], "memory_gib": [], "vm_count": [],
    }
    for vcpus in vcpu_points:
        results["vcpus"].append(
            _migrate_once(spec, dest_kind, 1, vcpus, 1.0, dirty_rate_bytes_s)
        )
    for memory in memory_points:
        results["memory_gib"].append(
            _migrate_once(spec, dest_kind, 1, 1, memory, dirty_rate_bytes_s)
        )
    for count in vm_count_points:
        results["vm_count"].append(
            _migrate_once(spec, dest_kind, count, 1, 1.0, dirty_rate_bytes_s)
        )
    return results


def _migrate_once(spec: MachineSpec, dest_kind: HypervisorKind,
                  vm_count: int, vcpus: int, memory_gib: float,
                  dirty_rate_bytes_s: float) -> List[MigrationReport]:
    source, destination, fabric = make_host_pair(
        spec, dest_kind, vm_count=vm_count, vcpus=vcpus,
        memory_gib=memory_gib,
    )
    domains = sorted(source.hypervisor.domains.values(), key=lambda d: d.domid)
    if dest_kind is HypervisorKind.KVM:
        migrator = MigrationTP(fabric, source, destination)
    else:
        migrator = LiveMigration(fabric, source, destination)
    return migrate_group(migrator, domains,
                         dirty_rate_bytes_s=dirty_rate_bytes_s)
