"""Run every example script end to end and check its key claims.

The examples are the quickstart documentation; if one rots, a user's first
contact with the library breaks.  Each runs as a subprocess (fresh
interpreter, like a user would) and must exit 0 printing its headline
result.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=180,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "guests bit-identical: True" in out
        assert "keep-in-place" in out  # memory-separation summary
        assert "paper: ~7.8 s" in out

    def test_emergency_cve_response(self):
        out = run_example("emergency_cve_response.py")
        assert "transplant to 'kvm'" in out
        assert "Hosts upgraded: 3" in out
        assert "transplanted back to Xen" in out

    def test_cluster_rolling_upgrade(self):
        out = run_example("cluster_rolling_upgrade.py")
        assert "migrations" in out
        assert "gain" in out
        # Full compatibility eliminates migrations entirely.
        assert "0 migrations" in out or "  0 migrations" in out

    def test_workload_impact_study(self):
        out = run_example("workload_impact_study.py")
        assert "Redis QPS through InPlaceTP" in out
        assert "MySQL through MigrationTP" in out
        assert "+252" in out or "252 %" in out or "latency" in out

    def test_policy_driven_upgrade(self):
        out = run_example("policy_driven_upgrade.py")
        assert "migration" in out
        assert "pinned" in out
        assert "host now runs : kvm" in out

    def test_vulnerability_audit(self):
        out = run_example("vulnerability_audit.py")
        assert "Loaded 292 CVE records" in out
        assert "mean=71d" in out
        assert "transplant to kvm: 17 times" in out

    def test_fleet_emergency_response(self):
        out = run_example("fleet_emergency_response.py")
        assert "transplant xen -> kvm" in out
        assert "remediated hosts         100           100" in out
        assert "not the 7 days a patch would take" in out

    def test_every_example_is_tested(self):
        scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        tested = {
            "quickstart.py", "emergency_cve_response.py",
            "cluster_rolling_upgrade.py", "workload_impact_study.py",
            "policy_driven_upgrade.py", "vulnerability_audit.py",
            "fleet_emergency_response.py",
        }
        assert scripts == tested, f"untested examples: {scripts - tested}"
