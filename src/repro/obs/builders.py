"""Span-timeline builders for report and transition-log objects.

Builders turn finished result objects — an :class:`InPlaceReport`, a
:class:`MigrationReport`, a fleet transition log — into :class:`Trace`
objects after the fact.  They complement the live :class:`Tracer` spans:
builders reconstruct a timeline from a report's numbers (useful when the
run was not traced), live spans record it as it happens.
"""

from typing import Dict, List, Optional, Tuple

from repro.obs.trace import Span, Trace


def trace_inplace(report, start_s: float = 0.0) -> Trace:
    """Build the span timeline of one InPlaceTP run from its report.

    Matches the run's phase ordering: PRAM (pre-pause), then the downtime
    window (Translation -> Reboot -> Restoration), with the NIC re-init
    overlapping restoration on its own track.
    """
    trace = Trace()
    t = start_s
    trace.add(Span("PRAM", "prepare", t, t + report.pram_s,
                   track=report.machine))
    t += report.pram_s
    pause_start = t
    trace.add(Span("Translation", "downtime", t, t + report.translation_s,
                   track=report.machine))
    t += report.translation_s
    trace.add(Span("Reboot", "downtime", t, t + report.reboot_s,
                   track=report.machine,
                   args={"target": report.target}))
    t += report.reboot_s
    trace.add(Span("NIC re-init", "network", t, t + report.network_s,
                   track=f"{report.machine}/nic"))
    trace.add(Span("Restoration", "downtime", t, t + report.restoration_s,
                   track=report.machine))
    t += report.restoration_s
    trace.add(Span("VMs paused", "guest", pause_start, t,
                   track=f"{report.machine}/guests",
                   args={"vm_count": report.vm_count}))
    return trace


def trace_migration(report, start_s: float = 0.0) -> Trace:
    """Build the span timeline of one migration from its report."""
    trace = Trace()
    t = start_s
    for round_ in report.rounds:
        trace.add(Span(f"pre-copy round {round_.index}", "precopy",
                       t, t + round_.duration_s,
                       track=report.vm_name,
                       args={"bytes": round_.bytes_sent}))
        t += round_.duration_s
    trace.add(Span("stop-and-copy", "downtime", t, t + report.downtime_s,
                   track=report.vm_name,
                   args={"destination": report.destination}))
    return trace


def trace_sentinel(cve_states, campaigns, *, end_s: float) -> Trace:
    """Build the response-plane timeline of one sentinel run.

    ``cve_states`` are objects with ``cve_id``, ``disclosed_at_s``,
    ``remediated_at_s``, ``closed_at_s``, ``severity`` and ``remediation``
    attributes (the shape of :class:`repro.sentinel.responder.CVEState`),
    in sorted-id order; ``campaigns`` have ``index``, ``kind``,
    ``source``, ``target``, ``launched_at_s``, ``completed_at_s`` and
    ``preempted_at_s`` (:class:`repro.sentinel.responder.CampaignRecord`).
    One track per CVE carries its open-exposure window; one track per
    campaign carries its execution span, all under a run envelope on the
    ``sentinel`` track.
    """
    trace = Trace()
    trace.add(Span("feed replay", "sentinel", 0.0, end_s, track="sentinel"))
    for state in cve_states:
        until = state.remediated_at_s
        if until is None:
            until = state.closed_at_s if state.closed_at_s is not None \
                else end_s
        trace.add(Span(
            state.cve_id, "cve-window", state.disclosed_at_s, until,
            track=f"cve/{state.cve_id}",
            args={"severity": state.severity,
                  "remediation": state.remediation},
        ))
    for campaign in campaigns:
        if campaign.launched_at_s is None:
            continue
        finished = campaign.completed_at_s
        if finished is None:
            finished = campaign.preempted_at_s \
                if campaign.preempted_at_s is not None else end_s
        args = {"source": campaign.source, "target": campaign.target}
        if campaign.preempted_at_s is not None:
            args["preempted"] = True
        trace.add(Span(
            f"{campaign.kind} {campaign.source}->{campaign.target}",
            "campaign", campaign.launched_at_s, finished,
            track=f"sentinel/campaign {campaign.index}",
            args=args,
        ))
    return trace


def trace_fleet(transitions, *, host_waves: Optional[Dict[str, int]] = None,
                start_s: float = 0.0, end_s: Optional[float] = None,
                campaign: str = "campaign") -> Trace:
    """Build one campaign timeline from a fleet transition log.

    ``transitions`` is an ordered sequence of objects with ``time_s``,
    ``host``, ``source`` and ``target`` attributes (``target.terminal``
    marks the end of a host's lifecycle) — the shape of
    :class:`repro.fleet.state.Transition`.  The result has one track per
    host carrying its state spans, each nested (by time containment)
    inside a per-host wave span, plus a ``fleet`` track with the campaign
    span and per-wave envelope spans.
    """
    trace = Trace()
    host_waves = host_waves or {}
    last: Dict[str, Tuple[float, object]] = {}
    lifetimes: Dict[str, List[float]] = {}
    for t in transitions:
        lifetimes.setdefault(t.host, [t.time_s, t.time_s])[1] = t.time_s
        prior = last.get(t.host)
        if prior is not None:
            since, state = prior
            trace.add(Span(state.value, "host-state", since, t.time_s,
                           track=t.host))
        reason = getattr(t, "reason", "")
        last[t.host] = (t.time_s, t.target)
        if t.target.terminal:
            trace.add(Span(t.target.value, "host-state", t.time_s, t.time_s,
                           track=t.host,
                           args={"reason": reason} if reason else None))
            del last[t.host]

    # Per-host wave envelopes: the state spans nest inside them.
    wave_windows: Dict[int, List[float]] = {}
    for host, (first, final) in sorted(lifetimes.items()):
        wave = host_waves.get(host)
        label = campaign if wave is None else f"wave {wave}"
        trace.add(Span(label, "wave", first, final, track=host,
                       args=None if wave is None else {"wave": wave}))
        if wave is not None:
            window = wave_windows.setdefault(wave, [first, final])
            window[0] = min(window[0], first)
            window[1] = max(window[1], final)

    # The fleet track: one campaign span over everything, one per wave.
    finished = end_s
    if finished is None:
        finished = max((w[1] for w in lifetimes.values()), default=start_s)
    trace.add(Span(campaign, "campaign", start_s, finished, track="fleet",
                   args={"hosts": len(lifetimes)}))
    for wave, (first, final) in sorted(wave_windows.items()):
        trace.add(Span(f"wave {wave}", "wave", first, final,
                       track=f"fleet/wave {wave}"))
    return trace
