"""Simulated hardware substrate.

Models the physical machines of the paper's testbed (Table 3): machine specs,
physical RAM with a frame allocator, NICs with initialization latency, and a
bandwidth-limited network fabric connecting machines.
"""

from repro.hw.machine import (
    Machine,
    MachineSpec,
    M1_SPEC,
    M2_SPEC,
    CLUSTER_NODE_SPEC,
)
from repro.hw.memory import Frame, PhysicalMemory, PAGE_4K, PAGE_2M
from repro.hw.nic import NIC
from repro.hw.network import Fabric, Link

__all__ = [
    "Machine",
    "MachineSpec",
    "M1_SPEC",
    "M2_SPEC",
    "CLUSTER_NODE_SPEC",
    "Frame",
    "PhysicalMemory",
    "PAGE_4K",
    "PAGE_2M",
    "NIC",
    "Fabric",
    "Link",
]
