"""Unified observability layer: tracing and metrics for every subsystem.

The paper's claims are all *windows measured on a timeline* — Fig. 6 phase
breakdowns, Fig. 11/12 workload dips, the fleet disclosure->remediated
window — so the reproduction gets one first-class observability layer:

* :mod:`trace` — the :class:`Span`/:class:`Trace` data model and the
  Perfetto/Chrome trace-event exporter (stable integer pids/tids,
  ``process_name``/``thread_name`` metadata, deterministic bytes);
* :mod:`tracer` — the sim-clock-sourced :class:`Tracer` with a
  context-manager/decorator span API, and the zero-cost
  :data:`NULL_TRACER` every instrumented component defaults to;
* :mod:`metrics` — :class:`Counter`/:class:`Gauge`/:class:`Histogram`
  instruments in a :class:`MetricsRegistry` with deterministic sorted-key
  JSON snapshots;
* :mod:`builders` — span-timeline builders for finished reports
  (:func:`trace_inplace`, :func:`trace_migration`) and fleet transition
  logs (:func:`trace_fleet`).

``repro.obs`` is the only module allowed to format trace timestamps — a
``repro lint`` rule (``trace-format-hygiene``) enforces it, alongside
``span-hygiene`` (spans may only be opened via ``with``, so every opened
span closes).
"""

from repro.obs.builders import (
    trace_fleet,
    trace_inplace,
    trace_migration,
    trace_sentinel,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Span, Trace
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, traced

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "traced",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "trace_inplace",
    "trace_migration",
    "trace_fleet",
    "trace_sentinel",
]
