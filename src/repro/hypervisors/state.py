"""Low-level binary packing helpers shared by both hypervisors' formats.

Both Xen and KVM serialize VM state to bytes, but with different layouts;
these helpers keep the encoders small while staying byte-exact (so sizes
reported in Fig. 14 are measured, and malformed blobs fail loudly).
"""

import struct
from typing import Iterable, List, Tuple

from repro.errors import StateFormatError


class Packer:
    """Append-only binary writer."""

    def __init__(self):
        self._parts: List[bytes] = []

    def u8(self, value: int) -> "Packer":
        return self._pack("<B", value)

    def u16(self, value: int) -> "Packer":
        return self._pack("<H", value)

    def u32(self, value: int) -> "Packer":
        return self._pack("<I", value)

    def u64(self, value: int) -> "Packer":
        return self._pack("<Q", value)

    def i64(self, value: int) -> "Packer":
        return self._pack("<q", value)

    def raw(self, data: bytes) -> "Packer":
        self._parts.append(bytes(data))
        return self

    def u64_seq(self, values: Iterable[int]) -> "Packer":
        values = list(values)
        self.u32(len(values))
        for value in values:
            self.u64(value)
        return self

    def _pack(self, fmt: str, value: int) -> "Packer":
        try:
            self._parts.append(struct.pack(fmt, value))
        except struct.error as exc:
            raise StateFormatError(f"cannot pack {value!r} as {fmt}: {exc}") from exc
        return self

    def bytes(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(p) for p in self._parts)


class Unpacker:
    """Sequential binary reader with bounds checking."""

    def __init__(self, data: bytes):
        self._data = data
        self._offset = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def u8(self) -> int:
        return self._unpack("<B", 1)

    def u16(self) -> int:
        return self._unpack("<H", 2)

    def u32(self) -> int:
        return self._unpack("<I", 4)

    def u64(self) -> int:
        return self._unpack("<Q", 8)

    def i64(self) -> int:
        return self._unpack("<q", 8)

    def raw(self, length: int) -> bytes:
        if length < 0 or self.remaining < length:
            raise StateFormatError(
                f"truncated blob: want {length} bytes, have {self.remaining}"
            )
        chunk = self._data[self._offset:self._offset + length]
        self._offset += length
        return chunk

    def u64_seq(self) -> Tuple[int, ...]:
        count = self.u32()
        return tuple(self.u64() for _ in range(count))

    def expect_end(self) -> None:
        if self.remaining:
            raise StateFormatError(f"{self.remaining} trailing bytes in blob")

    def _unpack(self, fmt: str, size: int):
        if self.remaining < size:
            raise StateFormatError(
                f"truncated blob: want {size} bytes, have {self.remaining}"
            )
        (value,) = struct.unpack_from(fmt, self._data, self._offset)
        self._offset += size
        return value
