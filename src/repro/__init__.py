"""HyperTP reproduction — mitigating vulnerability windows with hypervisor
transplant (EuroSys 2021).

The public API re-exports the pieces a downstream user needs:

* build simulated hosts (:mod:`repro.hw`, :mod:`repro.hypervisors`) and VMs
  (:mod:`repro.guest`);
* transplant them with :class:`HyperTP` (InPlaceTP / MigrationTP);
* reason about vulnerabilities with :mod:`repro.vulndb`;
* orchestrate fleets with :mod:`repro.orchestrator` and clusters with
  :mod:`repro.cluster`;
* run fleet-scale emergency-response campaigns — and measure the fleet's
  vulnerability window — with :mod:`repro.fleet`;
* replay the paper's workloads with :mod:`repro.workloads`.

Quickstart::

    from repro import (HyperTP, HypervisorKind, Machine, M1_SPEC,
                       VMConfig, XenHypervisor, SimClock)

    machine = Machine(M1_SPEC)
    xen = XenHypervisor()
    xen.boot(machine)
    xen.create_vm(VMConfig("vm0", vcpus=1))
    report = HyperTP().inplace(machine, HypervisorKind.KVM, SimClock())
    print(report.downtime_s)  # ~1.7 s on M1, as in the paper
"""

from repro.errors import (
    ReproError,
    TransplantError,
    MigrationError,
    NoSafeHypervisorError,
)
from repro.sim import SimClock, Engine
from repro.hw import Machine, MachineSpec, M1_SPEC, M2_SPEC, CLUSTER_NODE_SPEC, Fabric
from repro.guest import VMConfig, VirtualMachine, VMState
from repro.hypervisors import (
    Hypervisor,
    HypervisorKind,
    XenHypervisor,
    KVMHypervisor,
    make_hypervisor,
)
from repro.core import (
    HyperTP,
    TransplantReport,
    InPlaceTP,
    InPlaceReport,
    MigrationTP,
    LiveMigration,
    MigrationReport,
    OptimizationConfig,
    CostModel,
    DEFAULT_COST_MODEL,
)
from repro.vulndb import (
    load_default_database,
    TransplantAdvisor,
    TransplantAdvice,
    Severity,
)
from repro.orchestrator import NovaCompute, DatacenterAPI
from repro.cluster import UpgradeCampaign
from repro.fleet import (
    FleetConfig,
    FleetController,
    FleetMetrics,
    FailureInjector,
    RetryPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "TransplantError",
    "MigrationError",
    "NoSafeHypervisorError",
    "SimClock",
    "Engine",
    "Machine",
    "MachineSpec",
    "M1_SPEC",
    "M2_SPEC",
    "CLUSTER_NODE_SPEC",
    "Fabric",
    "VMConfig",
    "VirtualMachine",
    "VMState",
    "Hypervisor",
    "HypervisorKind",
    "XenHypervisor",
    "KVMHypervisor",
    "make_hypervisor",
    "HyperTP",
    "TransplantReport",
    "InPlaceTP",
    "InPlaceReport",
    "MigrationTP",
    "LiveMigration",
    "MigrationReport",
    "OptimizationConfig",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "load_default_database",
    "TransplantAdvisor",
    "TransplantAdvice",
    "Severity",
    "NovaCompute",
    "DatacenterAPI",
    "UpgradeCampaign",
    "FleetConfig",
    "FleetController",
    "FleetMetrics",
    "FailureInjector",
    "RetryPolicy",
    "__version__",
]
