#!/usr/bin/env python3
"""Fleet-scale emergency response: measure the vulnerability window.

A critical Xen flaw drops across a 100-host fleet.  The fleet controller
shards the hosts into waves with the BtrPlace-style planner, drives each
host through its transplant state machine under a concurrency cap, and —
because real campaigns are messy — survives injected kexec hangs, migration
stalls and UISR verify mismatches with bounded retries, rolling back the
hosts that exhaust their budget.

The deliverable is the number the paper's Section 2 motivates: the
disclosure->remediated window, per host and as fleet percentiles.
"""

from repro import (
    FailureInjector,
    FleetConfig,
    FleetController,
    RetryPolicy,
    load_default_database,
)

TRIGGER = "CVE-2016-6258"  # real Xen PV flaw; the patch took 7 days


def run_campaign(fail_rate):
    config = FleetConfig(
        hosts=100, vms_per_host=10, inplace_fraction=0.8,
        group_size=20, seed=7, concurrency=8, trigger_cve=TRIGGER,
    )
    controller = FleetController(
        config,
        injector=FailureInjector(fail_rate, seed=config.seed),
        retry=RetryPolicy(max_retries=3, backoff_base_s=5.0),
    )
    return controller.run()


def main():
    db = load_default_database()
    record = db.get(TRIGGER)
    print(f"{TRIGGER} disclosed ({record.severity.value}): "
          f"{record.description}")
    print("Traditional response: wait ~7 days for the patch, then roll it "
          "out.\nHyperTP response: transplant the fleet off Xen now.\n")

    ideal = run_campaign(fail_rate=0.0)
    messy = run_campaign(fail_rate=0.05)

    print(f"Campaign: {ideal.hosts} hosts / {ideal.vms} VMs, "
          f"{ideal.waves} waves, transplant "
          f"{ideal.source_hypervisor} -> {ideal.target_hypervisor}\n")

    print(f"{'':24}{'ideal':>12}{'5% failures':>14}")
    for key in ("p50", "p95", "p99", "max"):
        a = ideal.window_percentiles_s[key]
        b = messy.window_percentiles_s[key]
        print(f"  window {key:>4}{a:>14.1f} s{b:>12.1f} s")
    print(f"  remediated hosts{ideal.done_hosts:>12}{messy.done_hosts:>14}")
    print(f"  rolled back     {ideal.rolled_back_hosts:>12}"
          f"{messy.rolled_back_hosts:>14}")
    print(f"  retries         {ideal.retries_total:>12}"
          f"{messy.retries_total:>14}")

    stretch = (messy.fleet_window_s / ideal.fleet_window_s - 1.0) * 100
    print(f"\nFailures stretch the fleet window by {stretch:.0f}% — still "
          f"simulated {messy.fleet_window_s / 60:.0f} minutes, not the "
          f"7 days a patch would take.")


if __name__ == "__main__":
    main()
