"""libxenctrl/libxl-style toolstack surface.

The paper's prototype lives mostly in user space, reusing Xen's existing
save/load entry points (``xc_domain_hvm_getcontext`` / ``setcontext``) rather
than patching the hypervisor (§4.1, §4.2.1).  This module exposes those entry
points over our simulated Xen, so the HyperTP core interacts with Xen the
same way the real prototype does.
"""

from typing import List

from repro.errors import HypervisorError
from repro.hypervisors.base import Domain
from repro.hypervisors.xen import formats


class XenToolstack:
    """Control interface bound to one :class:`XenHypervisor` instance."""

    def __init__(self, hypervisor):
        self._hv = hypervisor

    # -- domain enumeration ---------------------------------------------------

    def list_domains(self) -> List[Domain]:
        """All guest domains (dom0 excluded; it is not a guest)."""
        return sorted(self._hv.domains.values(), key=lambda d: d.domid)

    def domain_by_name(self, name: str) -> Domain:
        for domain in self._hv.domains.values():
            if domain.vm.name == name:
                return domain
        raise HypervisorError(f"no Xen domain named {name!r}")

    # -- HVM context (platform state) -------------------------------------------

    def xc_domain_hvm_getcontext(self, domid: int) -> bytes:
        """Serialize the domain's platform state (Xen native format)."""
        domain = self._hv._domain(domid)
        return self._hv.save_platform_state(domain)

    def xc_domain_hvm_setcontext(self, domid: int, blob: bytes) -> None:
        """Load platform state from a Xen-native blob into the domain."""
        domain = self._hv._domain(domid)
        self._hv.load_platform_state(domain, blob)

    # -- lifecycle helpers used by HyperTP ----------------------------------------

    def pause(self, domid: int, now: float) -> None:
        self._hv.pause_domain(domid, now)

    def unpause(self, domid: int, now: float) -> None:
        self._hv.resume_domain(domid, now)

    def decode_context(self, blob: bytes):
        """Parse a Xen HVM context blob (for proxies and tests)."""
        return formats.decode_hvm_context(blob)
