"""NOVA snapshot format.

NOVA externalizes a guest's state as a *snapshot*: a header followed by
tagged sections, one per capability-space object — ``utcb.<n>`` for each
vCPU's user thread control block (registers, segments, control registers,
MSRs, FPU, XCR0 in one fixed-order struct), ``lapic.<n>`` per vCPU, and
single ``ioapic`` / ``pit`` / ``mtrr`` / ``xsave.<n>`` sections.  Sections
are keyed by ASCII tags, unlike Xen's numeric typecodes and KVM's ioctl
names — a genuinely third wire shape for the converters to bridge.
"""

from typing import Dict, List, Tuple

from repro.errors import StateFormatError
from repro.guest.devices import (
    IOAPICPin,
    IOAPICState,
    LAPICState,
    MTRRState,
    PITState,
    PlatformState,
    XSAVEState,
)
from repro.guest.vcpu import SegmentDescriptor, VCPUState
from repro.hypervisors.state import Packer, Unpacker

NOVA_MAGIC = 0x4E4F5641  # "NOVA"
NOVA_VERSION = 1
NOVA_IOAPIC_PINS = 32

_GP_ORDER = (
    "rip", "rflags", "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)  # NOVA leads with rip/rflags (exit-frame order), unlike KVM
_SEG_ORDER = ("es", "cs", "ss", "ds", "fs", "gs", "ldtr", "tr")
_CR_ORDER = ("cr0", "cr2", "cr3", "cr4", "cr8", "efer")


def _pack_sections(sections: List[Tuple[str, bytes]]) -> bytes:
    packer = Packer()
    packer.u32(NOVA_MAGIC).u32(NOVA_VERSION).u32(len(sections))
    for tag, payload in sections:
        encoded = tag.encode("ascii")
        packer.u8(len(encoded)).raw(encoded)
        packer.u32(len(payload)).raw(payload)
    return packer.bytes()


def _unpack_sections(blob: bytes) -> Dict[str, bytes]:
    unpacker = Unpacker(blob)
    magic = unpacker.u32()
    if magic != NOVA_MAGIC:
        raise StateFormatError(f"bad NOVA snapshot magic {magic:#x}")
    version = unpacker.u32()
    if version != NOVA_VERSION:
        raise StateFormatError(f"unsupported NOVA snapshot version {version}")
    sections: Dict[str, bytes] = {}
    for _ in range(unpacker.u32()):
        tag = unpacker.raw(unpacker.u8()).decode("ascii")
        if tag in sections:
            raise StateFormatError(f"duplicate snapshot section {tag!r}")
        sections[tag] = unpacker.raw(unpacker.u32())
    unpacker.expect_end()
    return sections


def _encode_utcb(vcpu: VCPUState) -> bytes:
    packer = Packer()
    for name in _GP_ORDER:
        packer.u64(vcpu.gp[name])
    for name in _SEG_ORDER:
        seg = vcpu.segments[name]
        packer.u16(seg.selector).u16(seg.attributes)
        packer.u32(seg.limit).u64(seg.base)
    for name in _CR_ORDER:
        packer.u64(vcpu.control.get(name, 0))
    packer.u64(vcpu.xcr0)
    packer.u32(len(vcpu.msrs))
    for msr in sorted(vcpu.msrs):
        packer.u32(msr).u64(vcpu.msrs[msr])
    packer.u64_seq(vcpu.fpu)
    return packer.bytes()


def _decode_utcb(index: int, payload: bytes) -> VCPUState:
    unpacker = Unpacker(payload)
    gp = {name: unpacker.u64() for name in _GP_ORDER}
    segments = {}
    for name in _SEG_ORDER:
        selector = unpacker.u16()
        attributes = unpacker.u16()
        limit = unpacker.u32()
        base = unpacker.u64()
        segments[name] = SegmentDescriptor(
            selector=selector, base=base, limit=limit, attributes=attributes,
        )
    control = {name: unpacker.u64() for name in _CR_ORDER}
    xcr0 = unpacker.u64()
    msrs = {}
    for _ in range(unpacker.u32()):
        msr = unpacker.u32()
        msrs[msr] = unpacker.u64()
    fpu = unpacker.u64_seq()
    unpacker.expect_end()
    return VCPUState(index=index, gp=gp, segments=segments, control=control,
                     msrs=msrs, fpu=fpu, xcr0=xcr0)


def _encode_lapic(lapic: LAPICState) -> bytes:
    packer = Packer()
    packer.u32(lapic.apic_id).u64(lapic.apic_base_msr)
    packer.u32(lapic.task_priority).u32(lapic.spurious_vector)
    packer.u32(lapic.lvt_timer).u32(lapic.lvt_lint0).u32(lapic.lvt_lint1)
    packer.u32(lapic.timer_initial_count).u32(lapic.timer_divide)
    packer.u64_seq(lapic.isr)
    packer.u64_seq(lapic.irr)
    return packer.bytes()


def _decode_lapic(payload: bytes) -> LAPICState:
    unpacker = Unpacker(payload)
    lapic = LAPICState(
        apic_id=unpacker.u32(),
        apic_base_msr=unpacker.u64(),
        task_priority=unpacker.u32(),
        spurious_vector=unpacker.u32(),
        lvt_timer=unpacker.u32(),
        lvt_lint0=unpacker.u32(),
        lvt_lint1=unpacker.u32(),
        timer_initial_count=unpacker.u32(),
        timer_divide=unpacker.u32(),
        isr=unpacker.u64_seq(),
        irr=unpacker.u64_seq(),
    )
    unpacker.expect_end()
    return lapic


def encode_snapshot(vcpus: List[VCPUState], platform: PlatformState) -> bytes:
    """Serialize full platform state as a NOVA snapshot."""
    if len(platform.lapics) != len(vcpus) or len(platform.xsave) != len(vcpus):
        raise StateFormatError("platform per-vCPU state count mismatch")
    if len(platform.ioapic.pins) != NOVA_IOAPIC_PINS:
        raise StateFormatError(
            f"NOVA snapshot requires a {NOVA_IOAPIC_PINS}-pin IOAPIC "
            f"(apply the compat fixup first)"
        )
    sections: List[Tuple[str, bytes]] = []
    for vcpu in vcpus:
        sections.append((f"utcb.{vcpu.index}", _encode_utcb(vcpu)))
    for i, lapic in enumerate(platform.lapics):
        sections.append((f"lapic.{i}", _encode_lapic(lapic)))

    ioapic = Packer()
    ioapic.u32(platform.ioapic.ioapic_id)
    for pin in platform.ioapic.pins:
        ioapic.u8(pin.vector)
        flags = (1 if pin.masked else 0) | ((1 if pin.trigger_level else 0) << 1)
        ioapic.u8(flags)
        ioapic.u8(pin.dest_apic)
    sections.append(("ioapic", ioapic.bytes()))

    pit = Packer()
    for count in platform.pit.channel_counts:
        pit.u32(count)
    for mode in platform.pit.channel_modes:
        pit.u8(mode)
    pit.u8(1 if platform.pit.speaker_enabled else 0)
    sections.append(("pit", pit.bytes()))

    mtrr = Packer()
    mtrr.u32(platform.mtrr.default_type)
    mtrr.u64_seq(platform.mtrr.fixed)
    mtrr.u32(len(platform.mtrr.variable))
    for base, mask in platform.mtrr.variable:
        mtrr.u64(base).u64(mask)
    sections.append(("mtrr", mtrr.bytes()))

    for i, xsave in enumerate(platform.xsave):
        xs = Packer()
        xs.u64(xsave.xstate_bv).u64(xsave.xcomp_bv)
        xs.u64_seq(xsave.blocks)
        sections.append((f"xsave.{i}", xs.bytes()))

    return _pack_sections(sections)


def decode_snapshot(blob: bytes) -> Tuple[List[VCPUState], PlatformState]:
    """Parse a NOVA snapshot back into vCPU + platform state."""
    sections = _unpack_sections(blob)
    vcpu_indices = sorted(
        int(tag.split(".")[1]) for tag in sections if tag.startswith("utcb.")
    )
    if vcpu_indices != list(range(len(vcpu_indices))) or not vcpu_indices:
        raise StateFormatError(f"bad vCPU section set: {vcpu_indices}")

    vcpus = [_decode_utcb(i, sections[f"utcb.{i}"]) for i in vcpu_indices]
    lapics = [_decode_lapic(sections[f"lapic.{i}"]) for i in vcpu_indices]
    for vcpu, lapic in zip(vcpus, lapics):
        vcpu.apic_id = lapic.apic_id

    body = Unpacker(sections["ioapic"])
    ioapic_id = body.u32()
    pins = []
    for _ in range(NOVA_IOAPIC_PINS):
        vector = body.u8()
        flags = body.u8()
        dest = body.u8()
        pins.append(IOAPICPin(
            vector=vector, masked=bool(flags & 1),
            trigger_level=bool(flags & 2), dest_apic=dest,
        ))
    body.expect_end()

    body = Unpacker(sections["pit"])
    counts = tuple(body.u32() for _ in range(3))
    modes = tuple(body.u8() for _ in range(3))
    speaker = bool(body.u8())
    body.expect_end()

    body = Unpacker(sections["mtrr"])
    default_type = body.u32()
    fixed = body.u64_seq()
    variable = tuple((body.u64(), body.u64()) for _ in range(body.u32()))
    body.expect_end()

    xsave = []
    for i in vcpu_indices:
        body = Unpacker(sections[f"xsave.{i}"])
        xsave.append(XSAVEState(
            xstate_bv=body.u64(), xcomp_bv=body.u64(),
            blocks=body.u64_seq(),
        ))
        body.expect_end()

    platform = PlatformState(
        lapics=lapics,
        ioapic=IOAPICState(pins=pins, ioapic_id=ioapic_id),
        pit=PITState(channel_counts=counts, channel_modes=modes,
                     speaker_enabled=speaker),
        mtrr=MTRRState(default_type=default_type, fixed=fixed,
                       variable=variable),
        xsave=xsave,
    )
    return vcpus, platform
