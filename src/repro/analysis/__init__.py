"""Static-analysis pass for UISR translation safety and sim-layer hygiene.

HyperTP's correctness rests on invariants the type system cannot express:
every UISR field a ``to_uisr_*`` converter emits must be consumed by the
matching ``from_uisr_*`` converter, every byte a :class:`Packer` writes must
be read back by the mirror :class:`Unpacker` at the same width (§3.1 of the
paper — translation must be lossless), every ``HypervisorKind`` needs a
registered converter pair, simulated components must never read the wall
clock, and nothing on the transplant path may silently swallow
``StateFormatError``.  This package turns those invariants into lint-time
checks: ``repro lint`` parses the tree with :mod:`ast`, runs every
registered rule and reports findings (see ``docs/static-analysis.md``).
"""

from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    partition,
    render_baseline,
    write_baseline,
)
from repro.analysis.cfg import CFG, CFGNode, build_cfg
from repro.analysis.dataflow import Solution, solve_forward
from repro.analysis.engine import Rule, all_rules, register_rule, run_analysis
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceModule
from repro.analysis.report import render_json, render_sarif, render_text

# Importing the rules package registers the built-in rules.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "BaselineError",
    "CFG",
    "CFGNode",
    "Finding",
    "Project",
    "Rule",
    "Severity",
    "Solution",
    "SourceModule",
    "all_rules",
    "build_cfg",
    "load_baseline",
    "partition",
    "register_rule",
    "render_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "run_analysis",
    "solve_forward",
    "write_baseline",
]
