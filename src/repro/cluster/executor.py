"""Plan executor: times a reconfiguration plan on the simulated cluster.

Execution semantics follow the paper's setup:

* migrations within a group run back-to-back over the shared 10 Gbps fabric
  (BtrPlace emits ordered actions; Xen's receive side serializes anyway);
* the group's host micro-reboots run in parallel once its evacuations are
  done (independent machines);
* groups execute sequentially — that is what "sequentially putting each
  group offline" means.

Per-action costs come from the staged transplant pipeline
(:mod:`repro.core.pipeline`): the executor holds one
:class:`~repro.core.pipeline.TransplantPipelines` bundle and asks it for
a :class:`~repro.core.pipeline.StagePlan` per action, so the Fig. 13
campaign, the fleet control plane and ``HyperTP.upgrade_host`` all time
the exact same actions with the exact same floats.
"""

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.cluster.plan import InPlaceAction, MigrationAction, ReconfigurationPlan
from repro.hw.machine import CLUSTER_NODE_SPEC, MachineSpec
from repro.obs import NULL_TRACER, Span
from repro.core.pipeline import StagePlan, TransplantPipelines, fabric_link_rate
from repro.core.timings import DEFAULT_COST_MODEL, CostModel
from repro.hypervisors.base import HypervisorKind


def cluster_link_rate(node_spec: MachineSpec = CLUSTER_NODE_SPEC) -> float:
    """Effective bytes/s of the shared migration fabric for ``node_spec``."""
    return fabric_link_rate(node_spec)


@dataclass
class ExecutionResult:
    """Timing outcome of one plan."""

    total_s: float
    migration_s: float
    upgrade_s: float
    migration_count: int
    upgrade_count: int
    per_group_s: List[float] = field(default_factory=list)
    # (vm_name, seconds) per action — a VM can migrate more than once.
    per_migration_s: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def total_minutes(self) -> float:
        return self.total_s / 60.0


class PlanExecutor:
    """Times a :class:`ReconfigurationPlan` against the staged pipeline."""

    def __init__(self, node_spec: MachineSpec = CLUSTER_NODE_SPEC,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 target_kind: HypervisorKind = HypervisorKind.KVM,
                 tracer=NULL_TRACER):
        self.node_spec = node_spec
        self.cost = cost_model
        self.target_kind = target_kind
        self.tracer = tracer
        self.pipelines = TransplantPipelines(
            node_spec=node_spec, cost=cost_model)
        self._link_rate = self.pipelines.link_rate

    # -- per-action stage plans ----------------------------------------------

    def migration_plan(self, action: MigrationAction) -> StagePlan:
        """MigrationTP stage plan for one evacuation over the fabric."""
        return self.pipelines.migration(self.target_kind).plan_vm(
            action.vm_name, action.memory_bytes,
            action.workload.dirty_rate_bytes_s,
        )

    def upgrade_plan(self, action: InPlaceAction) -> StagePlan:
        """InPlaceTP stage plan for one host carrying ``vm_count`` VMs."""
        return self.pipelines.inplace(self.target_kind).plan_host(
            action.node_name, action.vm_count, action.total_memory_bytes,
        )

    def migration_time_s(self, action: MigrationAction) -> float:
        return self.migration_plan(action).total_s

    def upgrade_time_s(self, action: InPlaceAction) -> float:
        return self.upgrade_plan(action).total_s

    # -- whole plan -----------------------------------------------------------

    def execute(self, plan: ReconfigurationPlan) -> ExecutionResult:
        migration_s = 0.0
        upgrade_s = 0.0
        per_group = []
        per_migration: List[Tuple[str, float]] = []
        traced = self.tracer.enabled
        now = 0.0
        for index, group in enumerate(plan.groups):
            group_start = now
            group_migration = 0.0
            for action in group.migrations:
                stage_plan = self.migration_plan(action)
                t = stage_plan.total_s
                per_migration.append((action.vm_name, t))
                if traced:
                    self.tracer.add(Span(
                        f"evacuate {action.vm_name}", "migration",
                        now, now + t, track="cluster/migrations",
                        args={"vm": action.vm_name},
                    ))
                    self.tracer.extend(stage_plan.spans(
                        now, track=f"cluster/migrations/{action.vm_name}"))
                now += t
                group_migration += t
            # Hosts in a group reboot in parallel.
            group_upgrade = max(
                (self.upgrade_time_s(a) for a in group.upgrades), default=0.0
            )
            if traced:
                for action in group.upgrades:
                    stage_plan = self.upgrade_plan(action)
                    t = stage_plan.total_s
                    self.tracer.add(Span(
                        f"upgrade {action.node_name}", "upgrade",
                        now, now + t, track="cluster/upgrades",
                        args={"vm_count": action.vm_count},
                    ))
                    self.tracer.extend(stage_plan.spans(
                        now, track=f"cluster/upgrades/{action.node_name}"))
            now += group_upgrade
            if traced:
                self.tracer.add(Span(
                    f"group {index}", "plan",
                    group_start, now, track="cluster",
                    args={"migrations": len(group.migrations),
                          "upgrades": len(group.upgrades)},
                ))
            migration_s += group_migration
            upgrade_s += group_upgrade
            per_group.append(group_migration + group_upgrade)
        return ExecutionResult(
            total_s=migration_s + upgrade_s,
            migration_s=migration_s,
            upgrade_s=upgrade_s,
            migration_count=plan.migration_count,
            upgrade_count=plan.upgrade_count,
            per_group_s=per_group,
            per_migration_s=per_migration,
        )
