"""Span data model and the Perfetto/Chrome trace-event exporter.

A :class:`Span` is one named interval on the simulated timeline; a
:class:`Trace` is an ordered collection of spans with an exporter to the
Chrome trace-event JSON format (loadable in ``chrome://tracing`` and
``ui.perfetto.dev``).

Track naming convention: ``"node03"`` puts a span on host ``node03``'s main
track; ``"node03/nic"`` puts it on a sub-track (a separate *thread* of the
same *process* in trace-viewer terms).  The exporter assigns stable integer
``pid``/``tid`` values per track — sorted track names get ascending ids, so
the same spans always serialize to the same bytes — and emits
``process_name``/``thread_name`` metadata events so viewers label the
timeline rows.  The trace-event spec requires integer ids; string ``tid``
values break ``trace_processor`` and the catapult tooling.
"""

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class Span:
    """One named interval on the simulated timeline."""

    name: str
    category: str
    start_s: float
    end_s: float
    track: str = "host"
    args: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ReproError(
                f"span {self.name!r} ends before it starts "
                f"({self.end_s} < {self.start_s})"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def process(self) -> str:
        """The track's top-level group (the part before the first ``/``)."""
        return self.track.split("/", 1)[0]


class Trace:
    """An ordered collection of spans with an exporter."""

    def __init__(self):
        self.spans: List[Span] = []

    def add(self, span: Span) -> None:
        self.spans.append(span)

    def extend(self, spans) -> None:
        for span in spans:
            self.add(span)

    def __iter__(self):
        return iter(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

    def total_span(self) -> float:
        if not self.spans:
            return 0.0
        return (max(s.end_s for s in self.spans)
                - min(s.start_s for s in self.spans))

    def tracks(self) -> List[str]:
        """Distinct track names, sorted (the exporter's id order)."""
        return sorted({span.track for span in self.spans})

    def track_ids(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Stable integer ids: ``(pid_of_process, tid_of_track)``.

        Processes (top-level track groups) and tracks are numbered from 1
        in sorted-name order, so identical span sets always map to
        identical ids regardless of insertion order.
        """
        tracks = self.tracks()
        processes = sorted({t.split("/", 1)[0] for t in tracks})
        pid_of = {name: index + 1 for index, name in enumerate(processes)}
        tid_of = {name: index + 1 for index, name in enumerate(tracks)}
        return pid_of, tid_of

    def to_chrome_trace(self) -> str:
        """Export as Chrome trace-event JSON (complete 'X' events, µs).

        Metadata (``"ph": "M"``) events naming every process and thread
        come first, then the spans sorted by start time.  Output is
        deterministic: same spans, same bytes.
        """
        pid_of, tid_of = self.track_ids()
        events: List[Dict[str, object]] = []
        for process, pid in sorted(pid_of.items()):
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            })
        for track, tid in sorted(tid_of.items()):
            process, _, sub = track.partition("/")
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid_of[process],
                "tid": tid,
                "args": {"name": sub or process},
            })
        ordered = sorted(
            self.spans,
            key=lambda s: (s.start_s, tid_of[s.track], -s.end_s, s.name),
        )
        for span in ordered:
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.start_s * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": pid_of[span.process],
                "tid": tid_of[span.track],
                "args": span.args or {},
            })
        return json.dumps({"traceEvents": events,
                           "displayTimeUnit": "ms"}, indent=2, sort_keys=True)
