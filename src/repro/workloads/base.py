"""Workload base classes and the host timeline they observe."""

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.hypervisors.base import HypervisorKind
from repro.obs.metrics import MetricsRegistry

#: fixed histogram bounds for workload sample values (qps / iops / Mbit/s):
#: roughly logarithmic from 1 to 1M, shared by every workload so snapshots
#: from different runs are structurally comparable.
SAMPLE_BUCKETS: Tuple[float, ...] = (
    1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0,
    50000.0, 100000.0, 500000.0, 1000000.0,
)


@dataclass
class HostTimeline:
    """What happened to the VM's host, on the simulated clock.

    * ``switches`` — (time, hypervisor kind) changes; the first entry is the
      initial hypervisor at its start time.
    * ``paused`` — closed intervals during which the VM was suspended.
    * ``degraded`` — (start, end, throughput_factor) intervals, e.g. the
      pre-copy phase of a migration.
    * ``network_down`` — intervals without connectivity (NIC re-init after a
      micro-reboot); network-dependent workloads serve nothing here.
    """

    switches: List[Tuple[float, HypervisorKind]] = field(default_factory=list)
    paused: List[Tuple[float, float]] = field(default_factory=list)
    degraded: List[Tuple[float, float, float]] = field(default_factory=list)
    network_down: List[Tuple[float, float]] = field(default_factory=list)

    def hypervisor_at(self, t: float) -> HypervisorKind:
        if not self.switches:
            raise ReproError("timeline has no hypervisor entries")
        current = self.switches[0][1]
        for when, kind in self.switches:
            if when <= t:
                current = kind
            else:
                break
        return current

    def is_paused(self, t: float) -> bool:
        return any(a <= t < b for a, b in self.paused)

    def is_network_down(self, t: float) -> bool:
        return any(a <= t < b for a, b in self.network_down)

    def degradation_factor(self, t: float) -> float:
        for a, b, factor in self.degraded:
            if a <= t < b:
                return factor
        return 1.0

    def paused_seconds_in(self, start: float, end: float) -> float:
        total = 0.0
        for a, b in self.paused:
            total += max(0.0, min(b, end) - max(a, start))
        return total


@dataclass
class MetricSeries:
    """A sampled time series (what the paper's figures plot)."""

    name: str
    unit: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, t: float, value: float) -> None:
        self.times.append(t)
        self.values.append(value)

    def mean(self) -> float:
        if not self.values:
            raise ReproError(f"series {self.name} is empty")
        return sum(self.values) / len(self.values)

    def mean_between(self, start: float, end: float) -> float:
        window = [v for t, v in zip(self.times, self.values)
                  if start <= t < end]
        if not window:
            raise ReproError(
                f"series {self.name}: no samples in [{start}, {end})"
            )
        return sum(window) / len(window)

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile (e.g. ``0.99`` for p99)."""
        if not self.values:
            raise ReproError(f"series {self.name} is empty")
        if not 0.0 <= fraction <= 1.0:
            raise ReproError(f"percentile fraction out of range: {fraction}")
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1,
                   max(0, int(round(fraction * len(ordered))) - 1))
        return ordered[rank]

    def zero_span(self) -> Tuple[Optional[float], Optional[float]]:
        """First and last time the series reads (near) zero, if any."""
        zeros = [t for t, v in zip(self.times, self.values) if v <= 1e-9]
        if not zeros:
            return (None, None)
        return (zeros[0], zeros[-1])

    def report_into(self, registry: MetricsRegistry,
                    prefix: str = "workload") -> MetricsRegistry:
        """Publish the series into a metrics registry.

        A sample-count counter, a mean gauge, and a fixed-bucket histogram
        of the sample values (``SAMPLE_BUCKETS``) — observed in time order,
        so the snapshot is deterministic per seed.
        """
        slug = "".join(c if c.isalnum() else "_" for c in self.name.lower())
        base = f"{prefix}_{slug}"
        registry.counter(
            f"{base}_samples_total", f"samples taken of {self.name}",
        ).inc(len(self.values))
        if self.values:
            registry.gauge(
                f"{base}_mean", f"mean {self.name} ({self.unit})",
            ).set(self.mean())
        histogram = registry.histogram(
            base, f"{self.name} sample values ({self.unit})",
            buckets=SAMPLE_BUCKETS,
        )
        for value in self.values:
            histogram.observe(value)
        return registry


class Workload:
    """Base class: sample a metric over a timeline at 1 Hz."""

    #: metric name/unit, overridden by subclasses
    metric_name = "metric"
    metric_unit = ""
    #: does the workload need the network to make progress?
    network_dependent = False

    def __init__(self, seed: int = 0, noise: float = 0.02):
        self._rng = random.Random(seed)
        self.noise = noise

    def baseline(self, kind: HypervisorKind) -> float:
        """Steady-state metric value on one hypervisor."""
        raise NotImplementedError

    def sample(self, t: float, timeline: HostTimeline) -> float:
        if timeline.is_paused(t):
            return 0.0
        if self.network_dependent and timeline.is_network_down(t):
            return 0.0
        base = self.baseline(timeline.hypervisor_at(t))
        base *= timeline.degradation_factor(t)
        jitter = 1.0 + self._rng.uniform(-self.noise, self.noise)
        return max(0.0, base * jitter)

    def run(self, duration_s: float, timeline: HostTimeline,
            sample_interval_s: float = 1.0,
            registry: Optional[MetricsRegistry] = None) -> MetricSeries:
        series = MetricSeries(name=self.metric_name, unit=self.metric_unit)
        t = 0.0
        while t < duration_s:
            series.append(t, self.sample(t, timeline))
            t += sample_interval_s
        if registry is not None:
            series.report_into(registry)
        return series
