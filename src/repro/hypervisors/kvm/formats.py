"""KVM ioctl-style state structs.

Where Xen hands out one typed-record blob per domain, KVM exposes VM state
through many small per-vCPU and per-VM ioctls, each returning a fixed-shape
struct.  We model a KVM state bundle as a mapping from ioctl name to bytes:

* per-vCPU: ``KVM_GET_REGS``, ``KVM_GET_SREGS``, ``KVM_GET_MSRS``,
  ``KVM_GET_LAPIC``, ``KVM_GET_XSAVE``, ``KVM_GET_XCRS``, ``KVM_GET_FPU``
* per-VM: ``KVM_GET_IRQCHIP`` (24-pin IOAPIC), ``KVM_GET_PIT2``

Two structural differences from Xen that the UISR converters must bridge
(Table 2): KVM folds MTRRs and the APIC-base into the MSR list rather than
dedicated records, and its IOAPIC has 24 pins versus Xen's 48.

As with the Xen module, byte layouts are this library's own; the *shape* of
the interface is what reproduces the heterogeneity.
"""

from typing import Dict, List, Tuple

from repro.errors import StateFormatError
from repro.guest.devices import (
    IOAPICPin,
    IOAPICState,
    KVM_IOAPIC_PINS,
    LAPICState,
    MTRRState,
    PITState,
    PlatformState,
    XSAVEState,
)
from repro.guest.vcpu import SegmentDescriptor, VCPUState
from repro.hypervisors.state import Packer, Unpacker

# MSR indices KVM uses to carry state that Xen keeps in dedicated records.
MSR_APIC_BASE = 0x0000001B
MSR_MTRR_DEF_TYPE = 0x000002FF
MSR_MTRR_FIX_BASE = 0x00000250
MSR_MTRR_PHYS_BASE0 = 0x00000200

_GP_ORDER = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
    "rip", "rflags",
)
_SEG_ORDER = ("cs", "ds", "es", "fs", "gs", "ss", "tr", "ldtr")
_CR_ORDER = ("cr0", "cr2", "cr3", "cr4", "cr8", "efer")

KVMStateBundle = Dict[str, bytes]


# -- per-ioctl encoders ------------------------------------------------------

def encode_regs(vcpu: VCPUState) -> bytes:
    """KVM_GET_REGS: fixed-order GP register file."""
    packer = Packer()
    for name in _GP_ORDER:
        try:
            packer.u64(vcpu.gp[name])
        except KeyError:
            raise StateFormatError(f"vCPU {vcpu.index} missing GP reg {name}")
    return packer.bytes()


def decode_regs(blob: bytes) -> Dict[str, int]:
    unpacker = Unpacker(blob)
    gp = {name: unpacker.u64() for name in _GP_ORDER}
    unpacker.expect_end()
    return gp


def encode_sregs(vcpu: VCPUState) -> bytes:
    """KVM_GET_SREGS: segments + control registers, fixed order."""
    packer = Packer()
    for name in _SEG_ORDER:
        seg = vcpu.segments.get(name)
        if seg is None:
            raise StateFormatError(f"vCPU {vcpu.index} missing segment {name}")
        packer.u16(seg.selector).u64(seg.base).u32(seg.limit).u16(seg.attributes)
    for name in _CR_ORDER:
        packer.u64(vcpu.control.get(name, 0))
    return packer.bytes()


def decode_sregs(blob: bytes) -> Tuple[Dict[str, SegmentDescriptor], Dict[str, int]]:
    unpacker = Unpacker(blob)
    segments = {}
    for name in _SEG_ORDER:
        segments[name] = SegmentDescriptor(
            selector=unpacker.u16(),
            base=unpacker.u64(),
            limit=unpacker.u32(),
            attributes=unpacker.u16(),
        )
    control = {name: unpacker.u64() for name in _CR_ORDER}
    unpacker.expect_end()
    return segments, control


def encode_msrs(vcpu: VCPUState, lapic: LAPICState, mtrr: MTRRState) -> bytes:
    """KVM_GET_MSRS: architectural MSRs + APIC base + MTRRs folded in."""
    entries: List[Tuple[int, int]] = sorted(vcpu.msrs.items())
    entries.append((MSR_APIC_BASE, lapic.apic_base_msr))
    entries.append((MSR_MTRR_DEF_TYPE, mtrr.default_type))
    for i, value in enumerate(mtrr.fixed):
        entries.append((MSR_MTRR_FIX_BASE + i, value))
    for i, (base, mask) in enumerate(mtrr.variable):
        entries.append((MSR_MTRR_PHYS_BASE0 + 2 * i, base))
        entries.append((MSR_MTRR_PHYS_BASE0 + 2 * i + 1, mask))
    packer = Packer()
    packer.u32(len(entries))
    for index, value in entries:
        packer.u32(index).u64(value)
    return packer.bytes()


def decode_msrs(blob: bytes) -> Dict[int, int]:
    unpacker = Unpacker(blob)
    count = unpacker.u32()
    msrs = {}
    for _ in range(count):
        index = unpacker.u32()
        msrs[index] = unpacker.u64()
    unpacker.expect_end()
    return msrs


def split_msrs(msrs: Dict[int, int]) -> Tuple[Dict[int, int], int, MTRRState]:
    """Split a KVM MSR list into (architectural MSRs, apic_base, MTRR)."""
    arch = dict(msrs)
    apic_base = arch.pop(MSR_APIC_BASE, 0xFEE00900)
    default_type = arch.pop(MSR_MTRR_DEF_TYPE, 6)
    fixed = []
    i = 0
    while MSR_MTRR_FIX_BASE + i in arch:
        fixed.append(arch.pop(MSR_MTRR_FIX_BASE + i))
        i += 1
    variable = []
    i = 0
    while (MSR_MTRR_PHYS_BASE0 + 2 * i in arch
           and MSR_MTRR_PHYS_BASE0 + 2 * i + 1 in arch):
        base = arch.pop(MSR_MTRR_PHYS_BASE0 + 2 * i)
        mask = arch.pop(MSR_MTRR_PHYS_BASE0 + 2 * i + 1)
        variable.append((base, mask))
        i += 1
    mtrr = MTRRState(default_type=default_type, fixed=tuple(fixed),
                     variable=tuple(variable))
    return arch, apic_base, mtrr


def encode_lapic(lapic: LAPICState) -> bytes:
    """KVM_GET_LAPIC: the APIC register page (base MSR travels via MSRs)."""
    packer = Packer()
    packer.u32(lapic.apic_id)
    packer.u32(lapic.task_priority)
    packer.u32(lapic.spurious_vector)
    packer.u32(lapic.lvt_timer).u32(lapic.lvt_lint0).u32(lapic.lvt_lint1)
    packer.u32(lapic.timer_initial_count).u32(lapic.timer_divide)
    packer.u64_seq(lapic.isr)
    packer.u64_seq(lapic.irr)
    return packer.bytes()


def decode_lapic(blob: bytes, apic_base_msr: int) -> LAPICState:
    unpacker = Unpacker(blob)
    lapic = LAPICState(
        apic_id=unpacker.u32(),
        apic_base_msr=apic_base_msr,
        task_priority=unpacker.u32(),
        spurious_vector=unpacker.u32(),
        lvt_timer=unpacker.u32(),
        lvt_lint0=unpacker.u32(),
        lvt_lint1=unpacker.u32(),
        timer_initial_count=unpacker.u32(),
        timer_divide=unpacker.u32(),
        isr=unpacker.u64_seq(),
        irr=unpacker.u64_seq(),
    )
    unpacker.expect_end()
    return lapic


def encode_fpu(vcpu: VCPUState) -> bytes:
    """KVM_GET_FPU: legacy x87/SSE area."""
    return Packer().u64_seq(vcpu.fpu).bytes()


def decode_fpu(blob: bytes) -> Tuple[int, ...]:
    unpacker = Unpacker(blob)
    fpu = unpacker.u64_seq()
    unpacker.expect_end()
    return fpu


def encode_xsave(xsave: XSAVEState) -> bytes:
    """KVM_GET_XSAVE."""
    packer = Packer()
    packer.u64(xsave.xstate_bv).u64(xsave.xcomp_bv)
    packer.u64_seq(xsave.blocks)
    return packer.bytes()


def decode_xsave(blob: bytes) -> XSAVEState:
    unpacker = Unpacker(blob)
    xsave = XSAVEState(
        xstate_bv=unpacker.u64(),
        xcomp_bv=unpacker.u64(),
        blocks=unpacker.u64_seq(),
    )
    unpacker.expect_end()
    return xsave


def encode_xcrs(vcpu: VCPUState) -> bytes:
    """KVM_GET_XCRS: extended control registers (just XCR0 here)."""
    return Packer().u32(1).u32(0).u64(vcpu.xcr0).bytes()


def decode_xcrs(blob: bytes) -> int:
    unpacker = Unpacker(blob)
    count = unpacker.u32()
    if count != 1:
        raise StateFormatError(f"expected exactly 1 XCR, got {count}")
    index = unpacker.u32()
    if index != 0:
        raise StateFormatError(f"expected XCR0, got XCR{index}")
    value = unpacker.u64()
    unpacker.expect_end()
    return value


def encode_irqchip(ioapic: IOAPICState) -> bytes:
    """KVM_GET_IRQCHIP: the 24-pin IOAPIC redirection table."""
    if len(ioapic.pins) != KVM_IOAPIC_PINS:
        raise StateFormatError(
            f"KVM IOAPIC must have {KVM_IOAPIC_PINS} pins, "
            f"got {len(ioapic.pins)}"
        )
    packer = Packer()
    packer.u32(ioapic.ioapic_id)
    for pin in ioapic.pins:
        packer.u8(pin.vector)
        packer.u8(1 if pin.masked else 0)
        packer.u8(1 if pin.trigger_level else 0)
        packer.u8(pin.dest_apic)
    return packer.bytes()


def decode_irqchip(blob: bytes) -> IOAPICState:
    unpacker = Unpacker(blob)
    ioapic_id = unpacker.u32()
    pins = [
        IOAPICPin(
            vector=unpacker.u8(),
            masked=bool(unpacker.u8()),
            trigger_level=bool(unpacker.u8()),
            dest_apic=unpacker.u8(),
        )
        for _ in range(KVM_IOAPIC_PINS)
    ]
    unpacker.expect_end()
    return IOAPICState(pins=pins, ioapic_id=ioapic_id)


def encode_pit2(pit: PITState) -> bytes:
    """KVM_GET_PIT2."""
    packer = Packer()
    for count, mode in zip(pit.channel_counts, pit.channel_modes):
        packer.u32(count).u8(mode)
    packer.u8(1 if pit.speaker_enabled else 0)
    return packer.bytes()


def decode_pit2(blob: bytes) -> PITState:
    unpacker = Unpacker(blob)
    counts = []
    modes = []
    for _ in range(3):
        counts.append(unpacker.u32())
        modes.append(unpacker.u8())
    speaker = bool(unpacker.u8())
    unpacker.expect_end()
    return PITState(channel_counts=tuple(counts), channel_modes=tuple(modes),
                    speaker_enabled=speaker)


# -- whole-bundle API -----------------------------------------------------------

def encode_bundle(vcpus: List[VCPUState], platform: PlatformState) -> KVMStateBundle:
    """Serialize full platform state as a KVM ioctl bundle."""
    if len(platform.lapics) != len(vcpus) or len(platform.xsave) != len(vcpus):
        raise StateFormatError("platform per-vCPU state count mismatch")
    if len(platform.ioapic.pins) != KVM_IOAPIC_PINS:
        raise StateFormatError(
            "KVM bundle requires a 24-pin IOAPIC (apply the compat fixup first)"
        )
    bundle: KVMStateBundle = {}
    for vcpu, lapic, xsave in zip(vcpus, platform.lapics, platform.xsave):
        i = vcpu.index
        bundle[f"KVM_GET_REGS:{i}"] = encode_regs(vcpu)
        bundle[f"KVM_GET_SREGS:{i}"] = encode_sregs(vcpu)
        bundle[f"KVM_GET_MSRS:{i}"] = encode_msrs(vcpu, lapic, platform.mtrr)
        bundle[f"KVM_GET_LAPIC:{i}"] = encode_lapic(lapic)
        bundle[f"KVM_GET_FPU:{i}"] = encode_fpu(vcpu)
        bundle[f"KVM_GET_XSAVE:{i}"] = encode_xsave(xsave)
        bundle[f"KVM_GET_XCRS:{i}"] = encode_xcrs(vcpu)
    bundle["KVM_GET_IRQCHIP"] = encode_irqchip(platform.ioapic)
    bundle["KVM_GET_PIT2"] = encode_pit2(platform.pit)
    return bundle


def decode_bundle(bundle: KVMStateBundle) -> Tuple[List[VCPUState], PlatformState]:
    """Parse a KVM ioctl bundle back into vCPU + platform state."""
    indices = sorted(
        int(key.split(":")[1]) for key in bundle if key.startswith("KVM_GET_REGS:")
    )
    if indices != list(range(len(indices))) or not indices:
        raise StateFormatError(f"non-contiguous or empty vCPU set: {indices}")

    vcpus: List[VCPUState] = []
    lapics: List[LAPICState] = []
    xsaves: List[XSAVEState] = []
    mtrr = MTRRState()
    for i in indices:
        gp = decode_regs(bundle[f"KVM_GET_REGS:{i}"])
        segments, control = decode_sregs(bundle[f"KVM_GET_SREGS:{i}"])
        raw_msrs = decode_msrs(bundle[f"KVM_GET_MSRS:{i}"])
        arch_msrs, apic_base, mtrr = split_msrs(raw_msrs)
        lapic = decode_lapic(bundle[f"KVM_GET_LAPIC:{i}"], apic_base)
        fpu = decode_fpu(bundle[f"KVM_GET_FPU:{i}"])
        xsave = decode_xsave(bundle[f"KVM_GET_XSAVE:{i}"])
        xcr0 = decode_xcrs(bundle[f"KVM_GET_XCRS:{i}"])
        vcpus.append(VCPUState(
            index=i, gp=gp, segments=segments, control=control,
            msrs=arch_msrs, fpu=fpu, xcr0=xcr0, apic_id=lapic.apic_id,
        ))
        lapics.append(lapic)
        xsaves.append(xsave)

    platform = PlatformState(
        lapics=lapics,
        ioapic=decode_irqchip(bundle["KVM_GET_IRQCHIP"]),
        pit=decode_pit2(bundle["KVM_GET_PIT2"]),
        mtrr=mtrr,
        xsave=xsaves,
    )
    return vcpus, platform


def bundle_size(bundle: KVMStateBundle) -> int:
    """Total serialized size of a bundle in bytes (Fig. 14 accounting)."""
    return sum(len(blob) for blob in bundle.values())


def pack_bundle(bundle: KVMStateBundle) -> bytes:
    """Flatten a bundle to one blob (what a domain stores / a wire carries)."""
    packer = Packer()
    packer.u32(len(bundle))
    for key in sorted(bundle):
        encoded_key = key.encode()
        packer.u16(len(encoded_key)).raw(encoded_key)
        packer.u32(len(bundle[key])).raw(bundle[key])
    return packer.bytes()


def unpack_bundle(blob: bytes) -> KVMStateBundle:
    unpacker = Unpacker(blob)
    count = unpacker.u32()
    bundle: KVMStateBundle = {}
    for _ in range(count):
        key = unpacker.raw(unpacker.u16()).decode()
        bundle[key] = unpacker.raw(unpacker.u32())
    unpacker.expect_end()
    return bundle
