"""Plan executor: times a reconfiguration plan on the simulated cluster.

Execution semantics follow the paper's setup:

* migrations within a group run back-to-back over the shared 10 Gbps fabric
  (BtrPlace emits ordered actions; Xen's receive side serializes anyway);
* the group's host micro-reboots run in parallel once its evacuations are
  done (independent machines);
* groups execute sequentially — that is what "sequentially putting each
  group offline" means.

The per-action costs are exposed as module-level functions
(:func:`migration_action_time_s`, :func:`inplace_action_time_s`) so other
consumers — notably the :mod:`repro.fleet` control plane — time the exact
same actions with the exact same model the Fig. 13 campaign uses.
"""

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.cluster.plan import InPlaceAction, MigrationAction, ReconfigurationPlan
from repro.hw.machine import CLUSTER_NODE_SPEC, Machine, MachineSpec
from repro.hw.memory import PAGE_2M
from repro.obs import NULL_TRACER, Span
from repro.sim.resources import effective_tcp_rate, gigabits
from repro.core.timings import DEFAULT_COST_MODEL, CostModel
from repro.core.migration import plan_precopy
from repro.hypervisors.base import HypervisorKind


def cluster_link_rate(node_spec: MachineSpec = CLUSTER_NODE_SPEC) -> float:
    """Effective bytes/s of the shared migration fabric for ``node_spec``."""
    return effective_tcp_rate(gigabits(node_spec.nic_gbps))


def migration_action_time_s(action: MigrationAction, link_rate: float,
                            cost: CostModel = DEFAULT_COST_MODEL,
                            target_kind: HypervisorKind = HypervisorKind.KVM,
                            ) -> float:
    """Wall time of one evacuation migration over a ``link_rate`` fabric.

    Pre-copy rounds follow the migration cost model; the stop-and-copy
    downtime depends on the destination hypervisor's activation cost.
    """
    rounds = plan_precopy(
        action.memory_bytes, link_rate,
        action.workload.dirty_rate_bytes_s, cost,
    )
    precopy = cost.migration_setup_s + sum(r.duration_s for r in rounds)
    residual = rounds[-1].dirty_after_bytes
    downtime = (residual / link_rate
                + cost.stopcopy_overhead_s(target_kind, 1))
    return precopy + downtime


def inplace_action_time_s(action: InPlaceAction, machine: Machine,
                          cost: CostModel = DEFAULT_COST_MODEL,
                          target_kind: HypervisorKind = HypervisorKind.KVM,
                          ) -> float:
    """InPlaceTP wall time for one host carrying ``action.vm_count`` VMs."""
    entries_per_vm = (
        cost.entries_for(
            action.total_memory_bytes // max(1, action.vm_count), PAGE_2M,
            huge_pages=True,
        )
        if action.vm_count else 0
    )
    entry_counts = [entries_per_vm] * action.vm_count
    vm_shapes = [(1, entries_per_vm)] * action.vm_count
    pram = cost.pram_phase_s(machine, entry_counts) if action.vm_count else 0.0
    translation = cost.translate_phase_s(machine, vm_shapes)
    reboot = cost.reboot_phase_s(machine, target_kind, sum(entry_counts))
    restoration = cost.restore_phase_s(machine, vm_shapes)
    return pram + translation + reboot + restoration


@dataclass
class ExecutionResult:
    """Timing outcome of one plan."""

    total_s: float
    migration_s: float
    upgrade_s: float
    migration_count: int
    upgrade_count: int
    per_group_s: List[float] = field(default_factory=list)
    # (vm_name, seconds) per action — a VM can migrate more than once.
    per_migration_s: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def total_minutes(self) -> float:
        return self.total_s / 60.0


class PlanExecutor:
    """Times a :class:`ReconfigurationPlan` against the cost model."""

    def __init__(self, node_spec: MachineSpec = CLUSTER_NODE_SPEC,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 target_kind: HypervisorKind = HypervisorKind.KVM,
                 tracer=NULL_TRACER):
        self.node_spec = node_spec
        self.cost = cost_model
        self.target_kind = target_kind
        self.tracer = tracer
        self._link_rate = cluster_link_rate(node_spec)
        # A representative machine instance for host-side cost lookups.
        self._reference_machine = Machine(node_spec, name="cluster-reference")

    # -- per-action costs ----------------------------------------------------

    def migration_time_s(self, action: MigrationAction) -> float:
        return migration_action_time_s(
            action, self._link_rate, self.cost, self.target_kind,
        )

    def upgrade_time_s(self, action: InPlaceAction) -> float:
        """InPlaceTP wall time for one host carrying ``vm_count`` VMs."""
        return inplace_action_time_s(
            action, self._reference_machine, self.cost, self.target_kind,
        )

    # -- whole plan -----------------------------------------------------------

    def execute(self, plan: ReconfigurationPlan) -> ExecutionResult:
        migration_s = 0.0
        upgrade_s = 0.0
        per_group = []
        per_migration: List[Tuple[str, float]] = []
        traced = self.tracer.enabled
        now = 0.0
        for index, group in enumerate(plan.groups):
            group_start = now
            group_migration = 0.0
            for action in group.migrations:
                t = self.migration_time_s(action)
                per_migration.append((action.vm_name, t))
                if traced:
                    self.tracer.add(Span(
                        f"evacuate {action.vm_name}", "migration",
                        now, now + t, track="cluster/migrations",
                        args={"vm": action.vm_name},
                    ))
                now += t
                group_migration += t
            # Hosts in a group reboot in parallel.
            group_upgrade = max(
                (self.upgrade_time_s(a) for a in group.upgrades), default=0.0
            )
            if traced:
                for action in group.upgrades:
                    t = self.upgrade_time_s(action)
                    self.tracer.add(Span(
                        f"upgrade {action.node_name}", "upgrade",
                        now, now + t, track="cluster/upgrades",
                        args={"vm_count": action.vm_count},
                    ))
            now += group_upgrade
            if traced:
                self.tracer.add(Span(
                    f"group {index}", "plan",
                    group_start, now, track="cluster",
                    args={"migrations": len(group.migrations),
                          "upgrades": len(group.upgrades)},
                ))
            migration_s += group_migration
            upgrade_s += group_upgrade
            per_group.append(group_migration + group_upgrade)
        return ExecutionResult(
            total_s=migration_s + upgrade_s,
            migration_s=migration_s,
            upgrade_s=upgrade_s,
            migration_count=plan.migration_count,
            upgrade_count=plan.upgrade_count,
            per_group_s=per_group,
            per_migration_s=per_migration,
        )
