"""Vulnerability database and transplant decision support (§2).

* :mod:`cve` — CVE records and CVSS v2 scoring/severity bands.
* :mod:`data` — the embedded Xen/KVM 2013-2019 dataset whose per-year counts
  match the paper's Table 1.
* :mod:`analysis` — Table 1 aggregation and the §2.1 category breakdowns.
* :mod:`timeline` — vulnerability-window modelling (§2.2).
* :mod:`advisor` — "is there a safe hypervisor to transplant to?" logic.
"""

from repro.vulndb.cve import CVERecord, Severity, severity_for_score
from repro.vulndb.data import VulnerabilityDatabase, load_default_database
from repro.vulndb.analysis import yearly_counts, category_breakdown
from repro.vulndb.timeline import VulnerabilityWindow, window_statistics
from repro.vulndb.advisor import TransplantAdvisor, TransplantAdvice
from repro.vulndb.feed import export_feed, import_feed, merge_feeds

__all__ = [
    "export_feed",
    "import_feed",
    "merge_feeds",
    "CVERecord",
    "Severity",
    "severity_for_score",
    "VulnerabilityDatabase",
    "load_default_database",
    "yearly_counts",
    "category_breakdown",
    "VulnerabilityWindow",
    "window_statistics",
    "TransplantAdvisor",
    "TransplantAdvice",
]
