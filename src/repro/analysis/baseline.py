"""Finding baselines: accept today's debt, fail only on *new* findings.

A baseline file is committed JSON listing the stable fingerprints (see
:meth:`~repro.analysis.findings.Finding.fingerprint`) of known findings::

    {"version": 1, "findings": [{"id": ..., "rule": ..., "path": ...,
                                 "symbol": ..., "message": ...}, ...]}

CI runs ``repro lint --baseline lint-baseline.json --strict``: findings
whose fingerprint appears in the baseline are reported separately and do
not fail the build; anything new does.  ``--write-baseline`` regenerates
the file (sorted by id, trailing newline) so it is byte-deterministic and
diffs cleanly.
"""

import json
from typing import FrozenSet, List, Tuple

from repro.errors import ReproError
from repro.analysis.findings import Finding

BASELINE_VERSION = 1


class BaselineError(ReproError):
    """Raised for an unreadable or malformed baseline file."""


def render_baseline(findings: List[Finding]) -> str:
    """The canonical baseline text for ``findings`` (deterministic)."""
    entries = sorted(
        (
            {
                "id": finding.fingerprint(),
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "message": finding.message,
            }
            for finding in findings
        ),
        key=lambda entry: (entry["id"], entry["path"], entry["message"]),
    )
    return json.dumps(
        {"version": BASELINE_VERSION, "findings": entries},
        indent=2, sort_keys=True,
    ) + "\n"


def write_baseline(path: str, findings: List[Finding]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_baseline(findings))


def load_baseline(path: str) -> FrozenSet[str]:
    """The set of baselined finding IDs in ``path``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}") from exc
    except ValueError as exc:
        raise BaselineError(
            f"baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION \
            or not isinstance(payload.get("findings"), list):
        raise BaselineError(
            f"baseline {path!r} is not a version-{BASELINE_VERSION} "
            f"baseline document"
        )
    ids = set()
    for entry in payload["findings"]:
        if not isinstance(entry, dict) or "id" not in entry:
            raise BaselineError(
                f"baseline {path!r} has an entry without an id")
        ids.add(str(entry["id"]))
    return frozenset(ids)


def partition(findings: List[Finding],
              baseline_ids: FrozenSet[str]
              ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (new, baselined) by fingerprint."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        if finding.fingerprint() in baseline_ids:
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
