"""Discrete-event simulation engine.

All time in the reproduction is simulated: transplants, migrations, reboots
and workloads advance a shared :class:`SimClock` through an event queue.

Public surface:

* :class:`SimClock` — monotonically-advancing simulated time.
* :class:`Engine` — event loop scheduling callbacks and generator processes.
* :class:`Process` — handle to a running generator process.
* :class:`CPUPool` — models a machine's cores for parallel work estimation.
* :class:`BandwidthLink` — models a shared network link.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Engine, Event, Process
from repro.sim.resources import BandwidthLink, CPUPool

__all__ = [
    "SimClock",
    "Engine",
    "Event",
    "Process",
    "CPUPool",
    "BandwidthLink",
]
