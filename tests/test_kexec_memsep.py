"""Tests for the micro-reboot and the memory-separation classifier."""

import pytest

from repro.errors import KexecError
from repro.hypervisors import KVMHypervisor
from repro.hypervisors.base import HypervisorKind
from repro.core.kexec import KexecImage, load_kexec_image, micro_reboot
from repro.core.memsep import (
    ACTION_FOR_CATEGORY,
    MemoryCategory,
    TransplantAction,
    classify,
    transplant_work_summary,
)

GIB = 1024 ** 3


class TestKexec:
    def test_image_cmdline_carries_pram_pointer(self):
        image = KexecImage(kind=HypervisorKind.KVM, cmdline_pram_pointer=0x1234)
        assert "pram=0x1234" in image.cmdline

    def test_load_stages_on_machine(self, m1):
        image = load_kexec_image(m1, HypervisorKind.KVM)
        assert m1.staged_kernel is image

    def test_reboot_without_staged_kernel_fails(self, xen_host):
        with pytest.raises(KexecError):
            micro_reboot(xen_host, KVMHypervisor(), pram_pointer=None)

    def test_reboot_with_wrong_kind_fails(self, xen_host):
        load_kexec_image(xen_host, HypervisorKind.XEN)
        with pytest.raises(KexecError):
            micro_reboot(xen_host, KVMHypervisor(), pram_pointer=None)

    def test_reboot_swaps_hypervisor(self, xen_host):
        old = xen_host.hypervisor
        # Pin the guest so its memory survives (the PRAM contract).
        for domain in old.domains.values():
            domain.vm.image.pin_all()
        load_kexec_image(xen_host, HypervisorKind.KVM)
        kvm = KVMHypervisor()
        micro_reboot(xen_host, kvm, pram_pointer=0x1000)
        assert xen_host.hypervisor is kvm
        assert not old.booted
        assert xen_host.staged_kernel is None

    def test_reboot_resets_nic(self, xen_host):
        for domain in xen_host.hypervisor.domains.values():
            domain.vm.image.pin_all()
        load_kexec_image(xen_host, HypervisorKind.KVM)
        micro_reboot(xen_host, KVMHypervisor(), pram_pointer=None)
        assert not xen_host.nic.link_up

    def test_unpinned_memory_is_reclaimed(self, xen_host):
        guest_vm = next(iter(xen_host.hypervisor.domains.values())).vm
        load_kexec_image(xen_host, HypervisorKind.KVM)
        # Deliberately do NOT pin: the guest's frames are reclaimed, which
        # is exactly the catastrophe PRAM registration prevents.
        micro_reboot(xen_host, KVMHypervisor(), pram_pointer=None)
        assert xen_host.memory.allocated_bytes == 0

    def test_pinned_guest_survives_bit_identical(self, xen_host):
        vm = next(iter(xen_host.hypervisor.domains.values())).vm
        digest = vm.image.content_digest()
        vm.image.pin_all()
        load_kexec_image(xen_host, HypervisorKind.KVM)
        micro_reboot(xen_host, KVMHypervisor(), pram_pointer=None)
        assert vm.image.content_digest() == digest


class TestMemorySeparation:
    def test_categories_partition_memory(self, xen_host):
        breakdown = classify(xen_host.hypervisor)
        assert set(breakdown.bytes_by_category) == set(MemoryCategory)
        assert breakdown.total_bytes == sum(
            breakdown.bytes_by_category.values()
        )

    def test_guest_state_dominates(self, xen_host):
        # §3.2: Guest State is the largest share by far.
        breakdown = classify(xen_host.hypervisor)
        assert breakdown.fraction(MemoryCategory.GUEST_STATE) > 0.5
        assert breakdown.untouched_bytes == GIB

    def test_only_vmi_state_is_translated(self, xen_host):
        breakdown = classify(xen_host.hypervisor)
        plan = breakdown.action_plan()
        translated = [c for c, a in plan.items()
                      if a is TransplantAction.TRANSLATE]
        assert translated == [MemoryCategory.VMI_STATE]
        assert breakdown.translated_bytes == breakdown.bytes_by_category[
            MemoryCategory.VMI_STATE
        ]

    def test_action_mapping_matches_fig2(self):
        assert ACTION_FOR_CATEGORY[MemoryCategory.GUEST_STATE] is \
            TransplantAction.KEEP_IN_PLACE
        assert ACTION_FOR_CATEGORY[MemoryCategory.MANAGEMENT_STATE] is \
            TransplantAction.REBUILD
        assert ACTION_FOR_CATEGORY[MemoryCategory.HV_STATE] is \
            TransplantAction.REINITIALIZE

    def test_vmi_state_grows_with_vms(self, xen_host_factory):
        one = classify(xen_host_factory(vm_count=1).hypervisor)
        four = classify(xen_host_factory(vm_count=4).hypervisor)
        assert (four.bytes_by_category[MemoryCategory.VMI_STATE]
                > one.bytes_by_category[MemoryCategory.VMI_STATE])

    def test_summary_lines(self, xen_host):
        lines = transplant_work_summary(xen_host.hypervisor)
        assert len(lines) == 4
        assert any("keep-in-place" in line for line in lines)

    def test_xen_vs_kvm_vmi_state_differs(self, xen_host_factory,
                                          kvm_host_factory):
        # Different NPT policies => different VM_i State footprints for the
        # same guest: the reason translation (not copying) is needed.
        xen = classify(xen_host_factory(vm_count=1).hypervisor)
        kvm = classify(kvm_host_factory(vm_count=1).hypervisor)
        assert (xen.bytes_by_category[MemoryCategory.VMI_STATE]
                != kvm.bytes_by_category[MemoryCategory.VMI_STATE])
