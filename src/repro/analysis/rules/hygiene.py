"""Sim-layer hygiene rules.

``sim-clock-hygiene``: the simulated layers (``sim/``, ``core/``,
``hypervisors/``, ``fleet/``) must take all time from
:class:`~repro.sim.clock.SimClock`.
A stray ``time.time()`` or ``datetime.now()`` makes experiment results
depend on the host's wall clock — irreproducible and wrong under the
discrete-event engine.

``exception-hygiene``: nothing may swallow the state-format exceptions
(``StateFormatError``/``UISRError``) or blanket ``Exception`` with a bare
``pass`` — on the transplant path that converts loud corruption into a
silently-wrong guest, the exact failure mode ReHype-style studies show
state-recovery code is prone to.
"""

import ast
from typing import Dict, Iterable, Set

from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule, dotted_name

#: layers that must run on simulated time (path prefixes); par/ is in
#: scope with one audited exception, the repro.par.realtime boundary
#: (pool deadlines and respawn backoff are real infrastructure)
CLOCK_SCOPE = ("sim/", "core/", "hypervisors/", "fleet/", "obs/", "io/",
               "par/", "sentinel/")

#: fully-qualified callables that read the wall clock or block on it
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.sleep",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})
STATE_EXCEPTIONS = frozenset({"StateFormatError", "UISRError"})


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully-qualified dotted name, for imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                aliases[name.asname or name.name] = (
                    f"{node.module}.{name.name}"
                )
    return aliases


@register_rule
class SimClockHygieneRule(Rule):
    name = "sim-clock-hygiene"
    description = (
        "sim/, core/, hypervisors/ and fleet/ must use SimClock, never "
        "time.time()/time.sleep()/datetime.now()"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not module.path.startswith(CLOCK_SCOPE):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterable[Finding]:
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            head, _, tail = dotted.partition(".")
            resolved = aliases.get(head)
            if resolved is not None:
                dotted = resolved + ("." + tail if tail else "")
            if dotted in WALL_CLOCK_CALLS:
                yield self.finding(
                    module.path, node.lineno,
                    f"{dotted}() bypasses the simulated clock; take time "
                    f"from SimClock so results stay reproducible",
                )


@register_rule
class ExceptionHygieneRule(Rule):
    name = "exception-hygiene"
    description = (
        "no bare except, and no swallowing Exception/StateFormatError/"
        "UISRError with a pass-only handler"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ExceptHandler):
                    yield from self._check_handler(module, node)

    def _check_handler(self, module: SourceModule,
                       handler: ast.ExceptHandler) -> Iterable[Finding]:
        if handler.type is None:
            yield self.finding(
                module.path, handler.lineno,
                "bare 'except:' catches everything including "
                "KeyboardInterrupt; name the exception types",
            )
            return
        caught = self._caught_names(handler.type)
        if not self._swallows(handler):
            return
        dangerous = caught & (BROAD_EXCEPTIONS | STATE_EXCEPTIONS)
        if dangerous:
            names = ", ".join(sorted(dangerous))
            yield self.finding(
                module.path, handler.lineno,
                f"'except {names}: pass' swallows the error; on the "
                f"transplant path this turns loud state corruption into a "
                f"silently-wrong guest",
            )

    @staticmethod
    def _caught_names(node: ast.expr) -> Set[str]:
        names: Set[str] = set()
        exprs = node.elts if isinstance(node, ast.Tuple) else [node]
        for expr in exprs:
            if isinstance(expr, ast.Name):
                names.add(expr.id)
            elif isinstance(expr, ast.Attribute):
                names.add(expr.attr)
        return names

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        """A handler swallows when its body has no effect at all."""
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass):
                continue
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)):
                continue  # docstring or bare ...
            return False
        return True
