"""Tests for machine specs, NICs and the network fabric."""

import pytest

from repro.errors import HardwareError
from repro.hw.machine import CLUSTER_NODE_SPEC, M1_SPEC, M2_SPEC, Machine, MachineSpec
from repro.hw.nic import NIC


class TestSpecs:
    def test_m1_matches_table3(self):
        assert M1_SPEC.cores == 4
        assert M1_SPEC.threads == 8
        assert M1_SPEC.ram_bytes == 16 * 1024 ** 3
        assert M1_SPEC.nic_gbps == 1.0

    def test_m2_matches_table3(self):
        assert M2_SPEC.cores == 28
        assert M2_SPEC.ram_bytes == 64 * 1024 ** 3

    def test_cluster_node_has_10gbps(self):
        assert CLUSTER_NODE_SPEC.nic_gbps == 10.0
        assert CLUSTER_NODE_SPEC.ram_bytes == 96 * 1024 ** 3

    def test_admin_cpu_reservation(self):
        # §5.1: 2 CPUs reserved for the administration OS.
        assert M1_SPEC.worker_threads == 6
        assert M2_SPEC.worker_threads == 26

    def test_invalid_spec_rejected(self):
        with pytest.raises(HardwareError):
            MachineSpec(name="bad", cores=0, threads=0, frequency_ghz=1.0,
                        ram_bytes=1024 ** 3, nic_gbps=1.0, nic_init_s=1.0)


class TestMachine:
    def test_machine_owns_memory_and_nic(self, m1):
        assert m1.memory.total_bytes == M1_SPEC.ram_bytes
        assert m1.nic.link_up

    def test_names_are_unique(self):
        a = Machine(M1_SPEC)
        b = Machine(M1_SPEC)
        assert a.name != b.name

    def test_host_work_time_scales_by_speed_factor(self):
        m2 = Machine(M2_SPEC)
        assert m2.host_work_time(1.0) == pytest.approx(2.5 / 1.7)

    def test_host_work_time_rejects_negative(self, m1):
        with pytest.raises(HardwareError):
            m1.host_work_time(-1.0)

    def test_stage_kernel(self, m1):
        m1.stage_kernel("image")
        assert m1.staged_kernel == "image"


class TestNIC:
    def test_reset_takes_link_down(self):
        nic = NIC(rate_bytes_per_s=1e9, init_s=2.0)
        assert nic.reset() == 2.0
        assert not nic.link_up
        nic.bring_up()
        assert nic.link_up

    def test_invalid_rates_rejected(self):
        with pytest.raises(HardwareError):
            NIC(rate_bytes_per_s=0, init_s=1.0)
        with pytest.raises(HardwareError):
            NIC(rate_bytes_per_s=1e9, init_s=-1.0)


class TestFabric:
    def test_connect_and_lookup(self, fabric):
        a, b = Machine(M1_SPEC), Machine(M1_SPEC)
        fabric.connect(a, b)
        assert fabric.connected(a, b)
        assert fabric.connected(b, a)
        link = fabric.link_between(b, a)
        assert set(link.endpoints()) == {a.name, b.name}

    def test_missing_link_raises(self, fabric):
        a, b = Machine(M1_SPEC), Machine(M1_SPEC)
        with pytest.raises(HardwareError):
            fabric.link_between(a, b)

    def test_self_link_rejected(self, fabric):
        a = Machine(M1_SPEC)
        with pytest.raises(HardwareError):
            fabric.connect(a, a)

    def test_link_rate_bound_by_slower_nic(self, fabric):
        a = Machine(M1_SPEC)  # 1 Gbps
        b = Machine(CLUSTER_NODE_SPEC)  # 10 Gbps
        link = fabric.connect(a, b)
        one_gig_effective = 0.93 * 1e9 / 8
        assert link.pipe.bytes_per_second == pytest.approx(one_gig_effective)

    def test_full_mesh(self, fabric):
        machines = [Machine(M1_SPEC) for _ in range(4)]
        fabric.full_mesh(machines)
        for i, a in enumerate(machines):
            for b in machines[i + 1:]:
                assert fabric.connected(a, b)

    def test_transfer_time_uses_contention(self, fabric):
        a, b = Machine(M1_SPEC), Machine(M1_SPEC)
        link = fabric.connect(a, b)
        solo = link.transfer_time(1e9, concurrent=1)
        shared = link.transfer_time(1e9, concurrent=4)
        assert shared == pytest.approx(4 * solo, rel=0.01)
