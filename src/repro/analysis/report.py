"""Finding reporters: human text and machine JSON.

The JSON shape is stable for CI consumption: ``{"findings": [...],
"suppressed": N, "clean": bool}`` with one object per finding as produced
by :meth:`Finding.to_dict`.
"""

import json
from typing import List

from repro.analysis.findings import Finding


def render_text(findings: List[Finding], suppressed: int = 0) -> str:
    lines = [finding.format() for finding in findings]
    summary = (f"{len(findings)} finding(s)"
               if findings else "no findings")
    if suppressed:
        summary += f" ({suppressed} suppressed in source)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: List[Finding], suppressed: int = 0) -> str:
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "suppressed": suppressed,
            "clean": not findings,
        },
        indent=2,
    )
