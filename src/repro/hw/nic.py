"""Network interface card model.

The only NIC behaviour the paper's evaluation depends on is (a) its line
rate, which bounds migration throughput, and (b) its (re)initialization
latency after a micro-reboot — the ``Network`` bar in Fig. 6 (6.6 s on M1,
2.3 s on M2), which is reported separately from downtime because
network-independent workloads do not observe it.
"""

from repro.errors import HardwareError


class NIC:
    """A NIC with a line rate and a driver-initialization delay."""

    def __init__(self, rate_bytes_per_s: float, init_s: float):
        if rate_bytes_per_s <= 0:
            raise HardwareError("NIC rate must be positive")
        if init_s < 0:
            raise HardwareError("NIC init time must be non-negative")
        self.rate_bytes_per_s = float(rate_bytes_per_s)
        self.init_s = float(init_s)
        self.link_up = True

    def reset(self) -> float:
        """Take the link down (micro-reboot); returns re-init duration."""
        self.link_up = False
        return self.init_s

    def bring_up(self) -> None:
        self.link_up = True

    def __repr__(self) -> str:
        state = "up" if self.link_up else "down"
        return f"NIC({self.rate_bytes_per_s / 1e6:.0f} MB/s, {state})"
