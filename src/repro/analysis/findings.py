"""Finding and severity model, plus the inline suppression directive.

A finding pins one rule violation to a file and line.  Findings are plain
data so reporters (text, JSON) and tests can consume them without touching
the rules that produced them.

Suppression: a true-but-accepted finding is silenced in the source itself
with a ``# repro-lint: disable=<rule>[,<rule>]`` comment on the flagged
line or on the line directly above it.  Trailing prose after the rule list
is encouraged — a suppression without a reason is a smell.
"""

import hashlib
import re
from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, List, Optional

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-]+)")

SUPPRESS_ALL = "all"


class Severity(Enum):
    """How bad a finding is; strict mode fails on any of them."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    #: the enclosing function/class name, when the rule knows it
    symbol: str = ""

    def fingerprint(self) -> str:
        """A stable finding ID for baselines and SARIF.

        Hashes rule, path, symbol and message — but *not* the line
        number, so unrelated edits that shift code do not churn IDs.
        """
        blob = "\x1f".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.fingerprint(),
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }

    def format(self) -> str:
        where = f"{self.path}:{self.line}"
        symbol = f" [{self.symbol}]" if self.symbol else ""
        return (f"{where}: {self.severity.value}: {self.rule}{symbol}: "
                f"{self.message}")


def suppressed_rules(line_text: str) -> Optional[FrozenSet[str]]:
    """Rule names a source line suppresses, or ``None`` if it has no
    directive.  ``disable=all`` suppresses every rule."""
    match = _DIRECTIVE.search(line_text)
    if match is None:
        return None
    names = {name.strip() for name in match.group(1).split(",")}
    return frozenset(name for name in names if name)


def is_suppressed(finding: Finding, lines: List[str]) -> bool:
    """True if the flagged line (or the line above it) disables the rule."""
    for lineno in (finding.line, finding.line - 1):
        if 1 <= lineno <= len(lines):
            rules = suppressed_rules(lines[lineno - 1])
            if rules is not None and (finding.rule in rules
                                      or SUPPRESS_ALL in rules):
                return True
    return False
