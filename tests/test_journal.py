"""Tests for repro.journal — the campaign write-ahead log.

The acceptance bar (mirrored by the CI smoke job): kill-and-resume at
*every* journal record index of a seeded campaign yields a final metrics
JSON and Perfetto trace byte-identical to the uninterrupted run, and the
resumed journal file itself converges to the uninterrupted journal's
bytes.
"""

import json

import pytest

from repro.errors import JournalCrash, JournalDivergence, JournalError
from repro.fleet import (
    FailureInjector,
    FleetConfig,
    FleetController,
    RetryPolicy,
)
from repro.io.frames import decode_frame, encode_frame
from repro.journal import (
    BARRIER_KINDS,
    CAMPAIGN_META_FRAME,
    CHECKPOINT_FRAME,
    COMMIT_FRAME,
    HOST_TRANSITION_FRAME,
    WAVE_BARRIER_FRAME,
    CampaignJournal,
    campaign_meta,
    decode_record,
    dump_records,
    read_journal,
    recover,
    scan_journal,
)
from repro.journal import (
    decode_barrier,
    decode_checkpoint,
    decode_commit,
    decode_transition,
    encode_barrier,
    encode_checkpoint,
    encode_commit,
    encode_meta,
    encode_transition,
)

#: the ISSUE's acceptance campaign: 10 hosts, 1% injected failures
CAMPAIGN = dict(hosts=10, vms_per_host=10, inplace_fraction=0.8,
                group_size=2, seed=42, concurrency=8)
FAIL_RATE = 0.01


def campaign_parts(**overrides):
    settings = dict(CAMPAIGN)
    settings.update(overrides)
    config = FleetConfig(**settings)
    injector = FailureInjector(FAIL_RATE, seed=config.seed)
    retry = RetryPolicy(max_retries=3, backoff_base_s=5.0)
    return config, injector, retry


def controller_for(journal=None, tracer=None, **overrides):
    config, injector, retry = campaign_parts(**overrides)
    kwargs = {"injector": injector, "retry": retry, "journal": journal}
    if tracer is not None:
        kwargs["tracer"] = tracer
    return FleetController(config, **kwargs)


def journaled_reference(path):
    """One uninterrupted journaled run: (doc, chrome trace, file bytes)."""
    from repro.obs import Tracer

    tracer = Tracer()
    journal = CampaignJournal.create(
        str(path), campaign_meta(*campaign_parts()))
    doc = controller_for(journal=journal, tracer=tracer).run().to_json()
    return doc, tracer.trace.to_chrome_trace(), path.read_bytes(), journal


def record_offsets(data):
    """Byte offset of each frame boundary (start of each record)."""
    offsets = []
    offset = 0
    while offset < len(data):
        offsets.append(offset)
        _, _, consumed = decode_frame(data, offset)
        offset += consumed
    offsets.append(offset)
    return offsets


# -- record codecs -------------------------------------------------------------

class TestRecordCodecs:
    def test_transition_round_trip(self):
        payload = encode_transition(7, 12.5, "node3", "migrating",
                                    "verifying", "retry 2")
        assert decode_transition(payload) == {
            "seq": 7, "time_s": 12.5, "host": "node3",
            "source": "migrating", "target": "verifying",
            "reason": "retry 2",
        }

    def test_transition_packer_reuse_is_byte_identical(self):
        from repro.io.frames import Packer

        packer = Packer()
        packer.u32(99)  # stale state the reuse path must clear
        reused = encode_transition(1, 0.0, "h", "a", "b", "", into=packer)
        fresh = encode_transition(1, 0.0, "h", "a", "b", "")
        assert reused == fresh

    def test_barrier_round_trip(self):
        for kind in BARRIER_KINDS:
            payload = encode_barrier(3, 60.0, 1, kind)
            assert decode_barrier(payload)["kind"] == kind

    def test_barrier_rejects_unknown_kind(self):
        with pytest.raises(JournalError, match="wave-barrier kind"):
            encode_barrier(3, 60.0, 1, "flag-day")

    def test_checkpoint_round_trip(self):
        digest = bytes(range(32))
        payload = encode_checkpoint(9, 120.0, digest, 4, 17)
        record = decode_checkpoint(payload)
        assert record["digest"] == digest.hex()
        assert record["done_hosts"] == 4
        assert record["migrations_executed"] == 17

    def test_checkpoint_rejects_short_digest(self):
        with pytest.raises(JournalError, match="32 bytes"):
            encode_checkpoint(9, 120.0, b"short", 4, 17)

    def test_commit_round_trip(self):
        digest = bytes(32)
        record = decode_commit(encode_commit(40, 900.5, digest))
        assert record == {"seq": 40, "completed_at_s": 900.5,
                          "digest": digest.hex()}

    def test_decode_record_rejects_unknown_type(self):
        with pytest.raises(JournalError, match="unknown journal frame"):
            decode_record(0x7F, b"")

    def test_meta_rejects_wrong_format(self):
        with pytest.raises(JournalError, match="not a campaign journal"):
            decode_record(CAMPAIGN_META_FRAME,
                          json.dumps({"format": "tarball"}).encode())

    def test_meta_round_trips_the_campaign_shape(self):
        meta = campaign_meta(*campaign_parts())
        assert decode_record(CAMPAIGN_META_FRAME, encode_meta(meta)) == meta


# -- the acceptance loop: kill and resume at every record ----------------------

class TestCrashResumeEveryRecord:
    def test_resume_at_every_record_is_byte_identical(self, tmp_path):
        from repro.obs import Tracer

        ref_doc, ref_trace, ref_bytes, ref_journal = journaled_reference(
            tmp_path / "ref.journal")
        total = ref_journal.records_appended
        assert total > 40  # the campaign must be big enough to mean anything

        for crash_at in range(1, total + 1):
            path = tmp_path / f"crash{crash_at}.journal"
            # crash_after counts records reaching the file *including*
            # CAMPAIGN_META, so crash_at=1 fires inside create() itself.
            with pytest.raises(JournalCrash):
                journal = CampaignJournal.create(
                    str(path), campaign_meta(*campaign_parts()),
                    crash_after=crash_at)
                controller_for(journal=journal).run()

            # the file holds exactly the records the crash let through
            assert len(read_journal(str(path)).records) == crash_at

            tracer = Tracer()
            controller, resumed = recover(str(path), tracer=tracer)
            doc = controller.run().to_json()
            assert doc == ref_doc, f"metrics diverged at crash {crash_at}"
            assert tracer.trace.to_chrome_trace() == ref_trace, \
                f"trace diverged at crash {crash_at}"
            assert path.read_bytes() == ref_bytes, \
                f"journal file diverged at crash {crash_at}"
            assert resumed.records_replayed == crash_at - 1

    def test_journal_never_perturbs_the_campaign(self, tmp_path):
        plain = controller_for().run().to_json()
        journal = CampaignJournal.create(
            str(tmp_path / "c.journal"), campaign_meta(*campaign_parts()))
        journaled = controller_for(journal=journal).run().to_json()
        assert journaled == plain

    def test_group_commit_bytes_match_eager_appends(self, tmp_path):
        # crash_after (never reached) forces the per-record append path;
        # the bulk group-commit path must produce the very same file.
        eager = tmp_path / "eager.journal"
        journal = CampaignJournal.create(
            str(eager), campaign_meta(*campaign_parts()),
            crash_after=10 ** 9)
        controller_for(journal=journal).run()
        _, _, bulk_bytes, _ = journaled_reference(tmp_path / "bulk.journal")
        assert eager.read_bytes() == bulk_bytes

    def test_resuming_a_committed_journal_is_idempotent(self, tmp_path):
        ref_doc, _, ref_bytes, _ = journaled_reference(
            tmp_path / "done.journal")
        controller, journal = recover(str(tmp_path / "done.journal"))
        assert journal.is_resume
        doc = controller.run().to_json()
        assert doc == ref_doc
        assert (tmp_path / "done.journal").read_bytes() == ref_bytes


# -- torn writes and truncation ------------------------------------------------

class TestTornWritePolicy:
    def crashed_journal(self, tmp_path, crash_at=30):
        path = tmp_path / "crashed.journal"
        with pytest.raises(JournalCrash):
            journal = CampaignJournal.create(
                str(path), campaign_meta(*campaign_parts()),
                crash_after=crash_at)
            controller_for(journal=journal).run()
        return path

    def test_scan_at_every_record_boundary(self, tmp_path):
        _, _, ref_bytes, ref_journal = journaled_reference(
            tmp_path / "ref.journal")
        offsets = record_offsets(ref_bytes)
        # offsets[k] starts record k; the last boundary ends the END frame
        for k in range(1, len(offsets) - 1):
            scan = scan_journal(ref_bytes[:offsets[k]])
            assert len(scan.records) == k
            assert scan.torn_bytes == 0
            assert not scan.complete
        full = scan_journal(ref_bytes)
        assert full.complete and full.committed
        assert len(full.records) == ref_journal.records_appended

    def test_scan_mid_record_truncation_reports_torn_tail(self, tmp_path):
        _, _, ref_bytes, _ = journaled_reference(tmp_path / "ref.journal")
        offsets = record_offsets(ref_bytes)
        for k in (1, 5, 20):
            cut = offsets[k] + (offsets[k + 1] - offsets[k]) // 2
            scan = scan_journal(ref_bytes[:cut])
            assert len(scan.records) == k
            assert scan.torn_bytes == cut - offsets[k]
            assert scan.torn_error

    def test_resume_truncates_the_torn_tail_and_completes(self, tmp_path):
        ref_doc, _, ref_bytes, _ = journaled_reference(
            tmp_path / "ref.journal")
        path = self.crashed_journal(tmp_path)
        valid = path.read_bytes()
        # tear the last record: append half of a transition frame
        torn = encode_frame(HOST_TRANSITION_FRAME,
                            encode_transition(999, 1.0, "nodeX", "a", "b", ""))
        path.write_bytes(valid + torn[:len(torn) // 2])

        controller, journal = recover(str(path))
        assert journal.torn_bytes == len(torn) // 2
        assert journal.torn_error
        # the discard is durable before any new append
        assert path.read_bytes()[:len(valid)] == valid
        assert controller.run().to_json() == ref_doc
        assert path.read_bytes() == ref_bytes

    def test_garbage_tail_is_torn_not_fatal(self, tmp_path):
        path = self.crashed_journal(tmp_path)
        valid = path.read_bytes()
        path.write_bytes(valid + b"\xde\xad\xbe\xef")
        _, journal = recover(str(path))
        assert journal.torn_bytes == 4

    def test_frame_reader_rejects_what_scan_resumes(self, tmp_path):
        # Two policies over the same endless (crashed) bytes: the strict
        # stream reader treats a missing END as truncation, while the
        # journal scan treats the same bytes as a resumable valid prefix.
        from repro.errors import StateFormatError
        from repro.io.frames import FrameReader

        path = self.crashed_journal(tmp_path)
        data = path.read_bytes()
        reader = FrameReader(data)
        for _ in range(len(scan_journal(data).records)):
            assert reader.read() is not None
        with pytest.raises(StateFormatError, match="missing END"):
            reader.read()

    def test_bytes_after_end_are_corruption_not_torn(self, tmp_path):
        _, _, ref_bytes, _ = journaled_reference(tmp_path / "ref.journal")
        with pytest.raises(JournalError, match="after the END frame"):
            scan_journal(ref_bytes + b"\x00")

    def test_empty_journal_cannot_recover(self, tmp_path):
        path = tmp_path / "empty.journal"
        path.write_bytes(b"")
        with pytest.raises(JournalError, match="empty journal"):
            CampaignJournal.resume(str(path))

    def test_first_record_must_be_meta(self, tmp_path):
        path = tmp_path / "notmeta.journal"
        path.write_bytes(encode_frame(
            WAVE_BARRIER_FRAME, encode_barrier(1, 0.0, 0, "release")))
        with pytest.raises(JournalError, match="not CAMPAIGN_META"):
            CampaignJournal.resume(str(path))


# -- replay verification fails closed ------------------------------------------

class TestReplayVerification:
    def test_tampered_record_raises_divergence(self, tmp_path):
        path = tmp_path / "tampered.journal"
        with pytest.raises(JournalCrash):
            journal = CampaignJournal.create(
                str(path), campaign_meta(*campaign_parts()),
                crash_after=30)
            controller_for(journal=journal).run()

        # re-frame one transition with a doctored reason: the CRC is
        # valid, so only byte-verified replay can catch it
        data = path.read_bytes()
        out, offset, tampered = [], 0, False
        while offset < len(data):
            frame_type, payload, consumed = decode_frame(data, offset)
            offset += consumed
            if not tampered and frame_type == HOST_TRANSITION_FRAME:
                record = decode_transition(payload)
                record["reason"] = "not what happened"
                payload = encode_transition(**record)
                tampered = True
            out.append(encode_frame(frame_type, payload))
        assert tampered
        path.write_bytes(b"".join(out))

        controller, _ = recover(str(path))
        with pytest.raises(JournalDivergence, match="replay diverged"):
            controller.run()

    def test_divergence_message_names_both_records(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = CampaignJournal.create(
            str(path), campaign_meta(*campaign_parts()))
        journal.transition(1.0, "node0", "pending", "draining")
        journal.close()

        _, journal = recover(str(path))
        with pytest.raises(JournalDivergence) as err:
            journal.transition(1.0, "node0", "pending", "migrating")
        assert "draining" in str(err.value)
        assert "migrating" in str(err.value)


# -- journal object behaviour --------------------------------------------------

class TestJournalLifecycle:
    def meta(self):
        return campaign_meta(*campaign_parts())

    def test_closed_journal_rejects_records(self, tmp_path):
        journal = CampaignJournal.create(
            str(tmp_path / "j.journal"), self.meta())
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.transition(0.0, "node0", "pending", "draining")

    def test_committed_journal_rejects_appends(self, tmp_path):
        _, _, _, journal = journaled_reference(tmp_path / "j.journal")
        controller, journal = recover(str(tmp_path / "j.journal"))
        controller.run()
        with pytest.raises(JournalError, match="closed|committed"):
            journal.wave_barrier(0.0, 0, "release")

    def test_records_total_spans_resume(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = CampaignJournal.create(str(path), self.meta())
        journal.transition(1.0, "node0", "pending", "draining")
        journal.close()
        assert journal.records_total == 2  # META + one transition

        resumed = CampaignJournal.resume(str(path))
        assert resumed.records_total == 2
        assert resumed.pending_replay == 1
        assert resumed.replaying
        resumed.transition(1.0, "node0", "pending", "draining")
        assert not resumed.replaying
        resumed.transition(2.0, "node0", "draining", "migrating")
        resumed.close()
        assert resumed.records_total == 3

    def test_pending_transitions_flush_on_close(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = CampaignJournal.create(str(path), self.meta())
        journal.transition(1.0, "node0", "pending", "draining")
        # group commit: the record is queued (and META may still sit in
        # the stdio buffer) — neither is durable yet
        assert len(read_journal(str(path)).records) < 2
        journal.close()
        assert len(read_journal(str(path)).records) == 2

    def test_barrier_is_a_group_commit_point(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = CampaignJournal.create(str(path), self.meta())
        journal.transition(1.0, "node0", "pending", "draining")
        journal.wave_barrier(2.0, 0, "release")
        # both the queued transition and the barrier are durable, in order
        types = [t for t, _ in read_journal(str(path)).records]
        assert types == [CAMPAIGN_META_FRAME, HOST_TRANSITION_FRAME,
                         WAVE_BARRIER_FRAME]
        journal.close()

    def test_dump_records_names_every_type(self, tmp_path):
        _, _, _, journal = journaled_reference(tmp_path / "j.journal")
        records = dump_records(str(tmp_path / "j.journal"))
        kinds = {record["type"] for record in records}
        assert kinds == {"CAMPAIGN_META", "HOST_TRANSITION", "WAVE_BARRIER",
                         "CHECKPOINT", "COMMIT"}
        assert records[0]["type"] == "CAMPAIGN_META"
        assert records[-1]["type"] == "COMMIT"
        seqs = [r["seq"] for r in records[1:]]
        assert seqs == list(range(1, len(records)))

    def test_recovery_spans_cover_the_replay_window(self, tmp_path):
        path = tmp_path / "j.journal"
        with pytest.raises(JournalCrash):
            journal = CampaignJournal.create(
                str(path), campaign_meta(*campaign_parts()),
                crash_after=30)
            controller_for(journal=journal).run()
        controller, journal = recover(str(path))
        assert journal.recovery_spans() == []  # nothing replayed yet
        controller.run()
        (span,) = journal.recovery_spans()
        assert span.track == "journal"
        assert span.args["records_replayed"] == 29
        assert span.start_s <= span.end_s

    def test_journal_metrics_count_appends_and_replays(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        path = tmp_path / "j.journal"
        registry = MetricsRegistry()
        with pytest.raises(JournalCrash):
            journal = CampaignJournal.create(
                str(path), campaign_meta(*campaign_parts()),
                crash_after=30, registry=registry)
            controller_for(journal=journal).run()
        metrics = registry.snapshot()["metrics"]
        assert metrics["journal_records_total"]["value"] == 30

        recovered = MetricsRegistry()
        controller, journal = recover(str(path),
                                      journal_registry=recovered)
        controller.run()
        metrics = recovered.snapshot()["metrics"]
        assert metrics["journal_replayed_records_total"]["value"] == 29
        assert metrics["journal_torn_bytes_total"]["value"] == 0


# -- CLI surface ---------------------------------------------------------------

class TestJournalCli:
    def fleet(self, *extra):
        from repro.cli import main
        return main(["fleet", "--hosts", "4", "--vms-per-host", "4",
                     "--group-size", "2", "--fail-rate", "0.01",
                     "--seed", "7", *extra])

    def test_journal_flag_writes_a_committed_journal(self, tmp_path,
                                                     capsys):
        journal = tmp_path / "c.journal"
        assert self.fleet("--journal", str(journal)) == 0
        assert read_journal(str(journal)).committed

    def test_crash_exit_code_and_resume(self, tmp_path, capsys):
        journal = tmp_path / "c.journal"
        ref = tmp_path / "ref.json"
        out = tmp_path / "resumed.json"
        assert self.fleet("--journal", str(tmp_path / "ref.journal"),
                          "--json", str(ref)) == 0
        assert self.fleet("--journal", str(journal),
                          "--crash-after", "20") == 3
        assert self.fleet("--resume", str(journal),
                          "--json", str(out)) == 0
        assert out.read_bytes() == ref.read_bytes()
        err = capsys.readouterr().err
        assert "resuming" in err

    def test_flag_validation(self, tmp_path, capsys):
        journal = str(tmp_path / "c.journal")
        assert self.fleet("--journal", journal, "--resume", journal) == 2
        assert self.fleet("--crash-after", "5") == 2
        assert self.fleet("--journal", journal, "--workers", "2") == 2

    def test_resume_missing_journal_fails_cleanly(self, tmp_path, capsys):
        assert self.fleet("--resume", str(tmp_path / "nope.journal")) == 2
