"""Tests for the unified observability layer (``repro.obs``)."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    trace_fleet,
    traced,
)
from repro.sim.clock import SimClock


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t


# -- live tracer --------------------------------------------------------------

class TestTracer:
    def test_span_records_clock_window(self):
        clock = FakeClock()
        tracer = Tracer(now=clock.now)
        with tracer.span("phase", "cat", track="h1", args={"k": 2}):
            clock.t = 3.5
        (span,) = tracer.trace.spans
        assert span.name == "phase"
        assert span.start_s == 0.0 and span.end_s == 3.5
        assert span.track == "h1" and span.args == {"k": 2}

    def test_span_closes_on_exception(self):
        clock = FakeClock()
        tracer = Tracer(now=clock.now)
        with pytest.raises(ValueError):
            with tracer.span("phase", "cat"):
                clock.t = 1.0
                raise ValueError("boom")
        assert tracer.open_spans == []
        assert tracer.trace.spans[0].end_s == 1.0

    def test_span_works_across_generator_yields(self):
        clock = FakeClock()
        tracer = Tracer(now=clock.now)

        def phases():
            with tracer.span("slow", "cat"):
                yield 2.0
            yield 1.0

        gen = phases()
        next(gen)          # span opened at t=0, generator parked
        clock.t = 2.0      # the "engine" advances time
        next(gen)          # resume: with block exits, span closes at t=2
        (span,) = tracer.trace.spans
        assert span.start_s == 0.0 and span.end_s == 2.0

    def test_bind_clock_switches_time_source(self):
        tracer = Tracer()
        clock = SimClock(10.0)
        tracer.bind_clock(lambda: clock.now)
        with tracer.span("x", "c"):
            clock.advance(5.0)
        (span,) = tracer.trace.spans
        assert span.start_s == 10.0 and span.end_s == 15.0

    def test_export_refuses_open_spans(self):
        tracer = Tracer()
        cm = tracer.span("dangling", "cat", track="h1")
        cm.__enter__()
        with pytest.raises(ObservabilityError, match="dangling"):
            tracer.to_chrome_trace()
        cm.__exit__(None, None, None)
        json.loads(tracer.to_chrome_trace())  # now exports fine

    def test_nested_spans(self):
        clock = FakeClock()
        tracer = Tracer(now=clock.now)
        with tracer.span("outer", "c"):
            clock.t = 1.0
            with tracer.span("inner", "c"):
                clock.t = 2.0
            assert len(tracer.open_spans) == 1
            clock.t = 3.0
        names = {s.name: s for s in tracer.trace.spans}
        assert names["inner"].start_s == 1.0 and names["inner"].end_s == 2.0
        assert names["outer"].start_s == 0.0 and names["outer"].end_s == 3.0

    def test_add_precomputed_span(self):
        tracer = Tracer()
        tracer.add(Span("pre", "c", 1.0, 2.0))
        tracer.extend([Span("a", "c", 0.0, 1.0), Span("b", "c", 2.0, 3.0)])
        assert len(tracer.trace) == 3


class TestNullTracer:
    def test_is_disabled_and_free(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        # The no-op context manager is shared, not rebuilt per call.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        with NULL_TRACER.span("x", "c", track="t"):
            pass
        NULL_TRACER.add(Span("x", "c", 0.0, 1.0))
        NULL_TRACER.extend([])
        NULL_TRACER.bind_clock(lambda: 0.0)
        assert NULL_TRACER.open_spans == []


class TestTracedDecorator:
    def test_wraps_method_in_span(self):
        clock = FakeClock()

        class Widget:
            def __init__(self, tracer):
                self.tracer = tracer

            @traced(category="work")
            def crunch(self, amount):
                clock.t += amount
                return amount * 2

        tracer = Tracer(now=clock.now)
        widget = Widget(tracer)
        assert widget.crunch(3.0) == 6.0
        (span,) = tracer.trace.spans
        assert span.name == "crunch" and span.duration_s == 3.0

    def test_object_without_tracer_attribute_is_fine(self):
        class Bare:
            @traced()
            def act(self):
                return "ok"

        assert Bare().act() == "ok"


# -- metrics ------------------------------------------------------------------

class TestCounter:
    def test_monotonic(self):
        c = Counter("jobs_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ObservabilityError):
            c.inc(-1)

    def test_bad_names_rejected(self):
        for bad in ("", "Has-Hyphen", "9starts_with_digit", "spa ce"):
            with pytest.raises(ObservabilityError):
                Counter(bad)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("hosts_in_flight")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0


class TestHistogram:
    def test_le_bucket_semantics(self):
        h = Histogram("lat", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 3.0, 10.0, 99.0):
            h.observe(v)
        counts = dict()
        for bound, count in h.bucket_counts():
            counts[bound] = count
        # A value equal to a bound lands in that bound's bucket (le).
        assert counts[1.0] == 2    # 0.5 and 1.0
        assert counts[5.0] == 1    # 3.0
        assert counts[10.0] == 1   # 10.0
        assert counts[None] == 1   # 99.0 overflows
        assert h.count == 5
        assert h.sum == pytest.approx(113.5)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=())
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=(5.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))

    def test_default_buckets_ascend(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestMetricsRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total")
        again = registry.counter("a_total")
        assert first is again
        assert len(registry) == 1 and "a_total" in registry

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError, match="counter"):
            registry.gauge("x")

    def test_histogram_bucket_clash_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ObservabilityError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_snapshot_is_deterministic_and_sorted(self):
        def build(order):
            registry = MetricsRegistry()
            for name in order:
                registry.counter(name).inc()
            registry.histogram("h", buckets=(1.0,)).observe(0.5)
            return registry.to_json()

        a = build(["b_total", "a_total"])
        b = build(["a_total", "b_total"])
        assert a == b
        document = json.loads(a)
        assert document["format"] == "hypertp-metrics"
        names = list(document["metrics"])
        assert names == sorted(names)
        buckets = document["metrics"]["h"]["buckets"]
        assert buckets == [{"le": 1.0, "count": 1}, {"le": None, "count": 0}]


# -- fleet builder ------------------------------------------------------------

class _State:
    def __init__(self, value, terminal=False):
        self.value = value
        self.terminal = terminal


class _Transition:
    def __init__(self, time_s, host, source, target, reason=""):
        self.time_s = time_s
        self.host = host
        self.source = source
        self.target = target
        self.reason = reason


PENDING = _State("pending")
EVAC = _State("evacuating")
DONE = _State("done", terminal=True)


class TestTraceFleet:
    def transitions(self):
        return [
            _Transition(0.0, "h1", PENDING, EVAC),
            _Transition(0.0, "h2", PENDING, EVAC),
            _Transition(4.0, "h1", EVAC, DONE),
            _Transition(6.0, "h2", EVAC, DONE, reason="slow"),
        ]

    def test_state_spans_between_transitions(self):
        trace = trace_fleet(self.transitions())
        evac = [s for s in trace.spans if s.name == "evacuating"]
        assert {(s.track, s.start_s, s.end_s) for s in evac} == {
            ("h1", 0.0, 4.0), ("h2", 0.0, 6.0),
        }
        done = [s for s in trace.spans if s.name == "done"]
        assert all(s.duration_s == 0.0 for s in done)
        assert next(s for s in done if s.track == "h2").args == {
            "reason": "slow",
        }

    def test_wave_envelopes_nest_host_spans(self):
        trace = trace_fleet(self.transitions(),
                            host_waves={"h1": 0, "h2": 1})
        h1_wave = next(s for s in trace.spans
                       if s.track == "h1" and s.name == "wave 0")
        assert h1_wave.start_s == 0.0 and h1_wave.end_s == 4.0
        fleet_waves = {s.track for s in trace.spans
                       if s.track.startswith("fleet/")}
        assert fleet_waves == {"fleet/wave 0", "fleet/wave 1"}

    def test_campaign_span_covers_everything(self):
        trace = trace_fleet(self.transitions(), start_s=0.0, end_s=6.0,
                            campaign="campaign CVE-X")
        campaign = next(s for s in trace.spans if s.track == "fleet")
        assert campaign.name == "campaign CVE-X"
        assert campaign.start_s == 0.0 and campaign.end_s == 6.0
        assert campaign.args == {"hosts": 2}


# -- instrumented components --------------------------------------------------

class TestInPlaceTracing:
    def run_traced(self):
        from repro.bench.runner import make_xen_host
        from repro.core.transplant import HyperTP

        tracer = Tracer()
        machine = make_xen_host(M1_SPEC, vm_count=2)
        report = HyperTP(tracer=tracer).inplace(
            machine, HypervisorKind.KVM, SimClock(),
        )
        return tracer, report

    def test_live_spans_match_report(self):
        tracer, report = self.run_traced()
        by_name = {s.name: s for s in tracer.trace.spans}
        assert by_name["PRAM"].duration_s == pytest.approx(report.pram_s)
        assert by_name["Translation"].duration_s == pytest.approx(
            report.translation_s
        )
        assert by_name["Reboot"].duration_s == pytest.approx(report.reboot_s)
        assert by_name["Restoration"].duration_s == pytest.approx(
            report.restoration_s
        )
        assert by_name["VMs paused"].duration_s == pytest.approx(
            report.downtime_s
        )
        assert tracer.open_spans == []
        json.loads(tracer.to_chrome_trace())

    def test_untraced_run_is_identical(self):
        from repro.bench.runner import make_xen_host
        from repro.core.transplant import HyperTP

        machine = make_xen_host(M1_SPEC, vm_count=2)
        plain = HyperTP().inplace(machine, HypervisorKind.KVM, SimClock())
        _, traced_report = self.run_traced()
        assert plain.total_s == traced_report.total_s
        assert plain.downtime_s == traced_report.downtime_s


class TestMigrationTracing:
    def test_spans_match_report(self):
        from repro.bench.runner import make_host_pair
        from repro.core.migration import MigrationTP

        tracer = Tracer()
        source, destination, fabric = make_host_pair(
            M1_SPEC, HypervisorKind.KVM,
        )
        domain = next(iter(source.hypervisor.domains.values()))
        report = MigrationTP(fabric, source, destination,
                             tracer=tracer).migrate(
            domain, dirty_rate_bytes_s=48 << 20,
        )
        rounds = [s for s in tracer.trace.spans if s.category == "precopy"]
        assert len(rounds) == report.round_count
        stop = next(s for s in tracer.trace.spans
                    if s.name == "stop-and-copy")
        assert stop.duration_s == pytest.approx(report.downtime_s)
        outer = next(s for s in tracer.trace.spans
                     if s.category == "migration")
        assert outer.duration_s == pytest.approx(report.total_s)
        json.loads(tracer.to_chrome_trace())


class TestExecutorTracing:
    def test_group_spans_sum_to_result(self):
        from repro.cluster.btrplace import BtrPlacePlanner
        from repro.cluster.executor import PlanExecutor
        from repro.cluster.model import build_paper_cluster

        cluster = build_paper_cluster(hosts=4, vms_per_host=4, seed=3)
        plan = BtrPlacePlanner(cluster, group_size=2).plan()
        tracer = Tracer()
        result = PlanExecutor(tracer=tracer).execute(plan)
        groups = [s for s in tracer.trace.spans if s.category == "plan"]
        assert len(groups) == len(result.per_group_s)
        for span, expected in zip(groups, result.per_group_s):
            assert span.duration_s == pytest.approx(expected)
        assert groups[-1].end_s == pytest.approx(result.total_s)
        migrations = [s for s in tracer.trace.spans
                      if s.category == "migration"]
        assert len(migrations) == result.migration_count

    def test_untraced_result_identical(self):
        from repro.cluster.btrplace import BtrPlacePlanner
        from repro.cluster.executor import PlanExecutor
        from repro.cluster.model import build_paper_cluster

        def run(tracer):
            cluster = build_paper_cluster(hosts=4, vms_per_host=4, seed=3)
            plan = BtrPlacePlanner(cluster, group_size=2).plan()
            kwargs = {} if tracer is None else {"tracer": tracer}
            return PlanExecutor(**kwargs).execute(plan)

        assert run(None).total_s == run(Tracer()).total_s


class TestWorkloadMetrics:
    def test_series_reports_into_registry(self):
        from repro.workloads.base import HostTimeline
        from repro.workloads.redis import RedisWorkload

        timeline = HostTimeline(switches=[(0.0, HypervisorKind.XEN)],
                                paused=[(10.0, 12.0)])
        registry = MetricsRegistry()
        series = RedisWorkload(seed=1).run(30.0, timeline, registry=registry)
        counter = registry.get("workload_redis_qps_samples_total")
        assert counter.value == len(series.values)
        histogram = registry.get("workload_redis_qps")
        assert histogram.count == len(series.values)
        assert registry.get("workload_redis_qps_mean").value == (
            pytest.approx(series.mean())
        )

    def test_snapshot_deterministic_per_seed(self):
        from repro.workloads.base import HostTimeline
        from repro.workloads.mysql import MySQLWorkload

        def snapshot():
            timeline = HostTimeline(switches=[(0.0, HypervisorKind.XEN)])
            registry = MetricsRegistry()
            MySQLWorkload(seed=7).run(20.0, timeline, registry=registry)
            return registry.to_json()

        assert snapshot() == snapshot()


class TestOrchestratorTracing:
    def test_respond_to_cve_spans(self, xen_host_factory):
        from repro.orchestrator.api import DatacenterAPI
        from repro.orchestrator.nova import NovaCompute
        from repro.vulndb import TransplantAdvisor, load_default_database

        tracer = Tracer()
        nova = NovaCompute()
        for index in range(2):
            nova.register_host(xen_host_factory(name=f"host{index}",
                                                vm_count=1))
        api = DatacenterAPI(
            nova, TransplantAdvisor(load_default_database()),
            tracer=tracer,
        )
        report = api.respond_to_cve("CVE-2016-6258")
        assert report.hosts_upgraded == 2
        outer = next(s for s in tracer.trace.spans
                     if s.name.startswith("respond_to_cve"))
        per_host = [s for s in tracer.trace.spans
                    if s.name.startswith("host_live_upgrade")]
        assert len(per_host) == 2
        assert outer.duration_s == pytest.approx(report.total_s)
        for span in per_host:
            assert outer.start_s <= span.start_s <= span.end_s <= outer.end_s
