"""Tests for the discrete-event engine and generator processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_events_run_in_time_order():
    engine = Engine()
    order = []
    engine.call_at(2.0, lambda: order.append("b"))
    engine.call_at(1.0, lambda: order.append("a"))
    engine.call_at(3.0, lambda: order.append("c"))
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 3.0


def test_equal_timestamps_fifo():
    engine = Engine()
    order = []
    for tag in ("first", "second", "third"):
        engine.call_at(1.0, lambda t=tag: order.append(t))
    engine.run()
    assert order == ["first", "second", "third"]


def test_call_after_is_relative():
    engine = Engine()
    seen = []
    engine.call_after(1.0, lambda: engine.call_after(1.5, lambda: seen.append(engine.now)))
    engine.run()
    assert seen == [2.5]


def test_scheduling_in_the_past_rejected():
    engine = Engine()
    engine.call_at(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.call_at(4.0, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().call_after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.call_at(1.0, lambda: fired.append(1))
    event.cancel()
    engine.run()
    assert fired == []


def test_run_until_stops_early():
    engine = Engine()
    fired = []
    engine.call_at(1.0, lambda: fired.append(1))
    engine.call_at(10.0, lambda: fired.append(10))
    engine.run(until=5.0)
    assert fired == [1]
    assert engine.now == 5.0


def test_process_sleeps_through_yields():
    engine = Engine()
    timestamps = []

    def proc():
        timestamps.append(engine.now)
        yield 2.0
        timestamps.append(engine.now)
        yield 3.0
        timestamps.append(engine.now)

    engine.spawn(proc())
    engine.run()
    assert timestamps == [0.0, 2.0, 5.0]


def test_process_return_value():
    engine = Engine()

    def proc():
        yield 1.0
        return 42

    assert engine.run_process(proc()) == 42


def test_process_invalid_yield_raises():
    engine = Engine()

    def proc():
        yield -5.0

    with pytest.raises(SimulationError):
        engine.run_process(proc())


def test_process_exception_propagates():
    engine = Engine()

    def proc():
        yield 1.0
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        engine.run_process(proc())


def test_run_all_waits_for_every_process():
    engine = Engine()

    def proc(duration, value):
        yield duration
        return value

    p1 = engine.spawn(proc(1.0, "fast"))
    p2 = engine.spawn(proc(5.0, "slow"))
    assert engine.run_all([p1, p2]) == ("fast", "slow")
    assert engine.now == 5.0


def test_on_done_callback_fires():
    engine = Engine()
    done = []

    def proc():
        yield 1.0

    process = engine.spawn(proc())
    process.on_done(lambda: done.append(engine.now))
    engine.run()
    assert done == [1.0]


def test_spawn_at_delays_start():
    engine = Engine()
    started = []

    def proc():
        started.append(engine.now)
        yield 0.0

    engine.spawn_at(4.0, proc())
    engine.run()
    assert started == [4.0]
