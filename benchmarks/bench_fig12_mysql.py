"""Fig. 12 — MySQL latency and QPS through InPlaceTP and MigrationTP.

Shapes to hold: InPlaceTP interrupts service for ~9 s; during MigrationTP's
~76 s pre-copy, latency rises ~252 % and throughput drops ~68 %, recovering
fully after the switch.
"""

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import make_host_pair, make_xen_host
from repro.core.migration import MigrationTP
from repro.core.transplant import HyperTP
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.workloads import (
    MySQLWorkload,
    timeline_for_inplace,
    timeline_for_migration,
)
from repro.workloads.mysql import MIGRATION_QPS_FACTOR

TRIGGER_T = 46.0
MYSQL_DIRTY_RATE = 10 << 20


def summarize():
    # InPlaceTP panel.
    machine = make_xen_host(M1_SPEC, vm_count=1, vcpus=2, memory_gib=8.0)
    inplace_report = HyperTP().inplace(machine, HypervisorKind.KVM,
                                       SimClock())
    inplace_timeline = timeline_for_inplace(
        inplace_report, TRIGGER_T, HypervisorKind.XEN, HypervisorKind.KVM,
    )
    workload = MySQLWorkload()
    inplace_qps = workload.run(180.0, inplace_timeline)
    z0, z1 = inplace_qps.zero_span()

    # MigrationTP panel.
    source, destination, fabric = make_host_pair(
        M1_SPEC, HypervisorKind.KVM, vcpus=2, memory_gib=8.0,
    )
    domain = next(iter(source.hypervisor.domains.values()))
    migration_report = MigrationTP(fabric, source, destination).migrate(
        domain, dirty_rate_bytes_s=MYSQL_DIRTY_RATE,
    )
    migration_timeline = timeline_for_migration(
        migration_report, TRIGGER_T, HypervisorKind.XEN, HypervisorKind.KVM,
        precopy_throughput_factor=MIGRATION_QPS_FACTOR,
    )
    qps = workload.run(220.0, migration_timeline)
    latency = workload.run_latency(220.0, migration_timeline)

    base_qps = qps.mean_between(0, TRIGGER_T - 5)
    base_latency = latency.mean_between(0, TRIGGER_T - 5)
    mid0 = TRIGGER_T + 5
    mid1 = TRIGGER_T + migration_report.precopy_s - 5
    copy_qps = qps.mean_between(mid0, mid1)
    copy_latency = latency.mean_between(mid0, mid1)

    rows = [
        ["InPlaceTP interruption (s)", z1 - z0 + 1.0, "~9"],
        ["Migration pre-copy span (s)", migration_report.precopy_s, "~76"],
        ["QPS drop during copy (%)", 100 * (1 - copy_qps / base_qps), "68"],
        ["Latency rise during copy (%)",
         100 * (copy_latency / base_latency - 1), "252"],
        ["QPS recovered after (K)", qps.mean_between(mid1 + 10, 220) / 1000,
         "back to baseline"],
    ]
    return rows


def test_fig12_mysql(benchmark):
    rows = benchmark(summarize)
    print_experiment("Fig. 12", "MySQL through InPlaceTP and MigrationTP",
                     format_table(["metric", "measured", "paper"], rows))


if __name__ == "__main__":
    print_experiment("Fig. 12", "MySQL through InPlaceTP and MigrationTP",
                     format_table(["metric", "measured", "paper"],
                                  summarize()))
