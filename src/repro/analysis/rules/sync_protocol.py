"""Sync-primitive protocol rules over :mod:`repro.fleet.simsync` users.

``sync-protocol`` proves, per function, that every explicit
``FifoSemaphore.acquire()`` reaches a ``release()`` on *all* paths —
including exception edges — that nothing releases a permit it cannot
hold, that ``held()`` scopes are actually ``with`` scopes, and that no
path suspends (``yield``) inside a region the source marks yield-unsafe
with a ``# repro-sync: no-yield`` directive on the acquire line.

``sync-lock-order`` builds the static lock-order graph over each fleet
controller class: an edge ``A -> B`` whenever some path acquires ``B``
(directly or via a ``self._helper()`` call) while holding ``A``.  A cycle
in that graph is a deadlock candidate under the FIFO semantics — two
hosts can each hold one leg and queue on the other forever.

Both rules run the forward may-analysis from
:mod:`repro.analysis.dataflow` over per-function CFGs.  Semaphore
primitives themselves (``acquire``/``release``/``held``/``reserve``) are
trusted not to raise, so the acquire statement itself does not sprout a
spurious exception edge; everything else follows the default may-raise
model.
"""

import ast
import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.cfg import (
    CFGNode, build_cfg, default_may_raise, payload_exprs, walk_runtime,
)
from repro.analysis.dataflow import solve_forward
from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule

#: modules whose functions are held to the sync protocol (path prefixes);
#: simsync.py itself implements the primitives and is exempt.
SYNC_SCOPE = ("fleet/",)
SYNC_EXEMPT = ("fleet/simsync.py",)

#: marks the acquire line of a region that must not suspend.
NO_YIELD_DIRECTIVE = re.compile(r"#\s*repro-sync:\s*no-yield\b")

#: method names that start/end a tracked hold.  ``reserve`` is the slot
#: ledger's acquire verb; its release takes the node argument back.
ACQUIRE_METHODS = frozenset({"acquire", "reserve"})
RELEASE_METHODS = frozenset({"release"})
HOLD_METHOD = "held"


def resource_key(expr: ast.expr) -> Optional[str]:
    """A stable name for the receiver of a sync call.

    ``self._link`` -> ``self._link``; per-key maps are widened so every
    element shares one resource: ``self._vm_locks[name]`` ->
    ``self._vm_locks[*]``.  Dynamic receivers (call results) get ``None``
    and are not tracked.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = resource_key(expr.value)
        return f"{base}.{expr.attr}" if base else None
    if isinstance(expr, ast.Subscript):
        base = resource_key(expr.value)
        return f"{base}[*]" if base else None
    return None


# -- event extraction ---------------------------------------------------------
#
# Events are (kind, resource, line) tuples in evaluation order:
#   ("acquire", key, line)    explicit 0-arg FifoSemaphore.acquire()
#   ("reserve", key, line)    slot-ledger reserve(node) — its release is
#                             cross-function (the commit path frees it),
#                             so only the lock-order rule tracks it
#   ("cm-acquire", key, line) held() evaluated as a with-item
#   ("release0", key, line)   explicit 0-arg release() (semaphore)
#   ("releaseN", key, line)   release(args...) (ledger-style)
#   ("cm-release", key, line) synthetic, from the with-exit node
#   ("yield", None, line)     generator suspension point
#   ("held-misuse", key, line) held() anywhere except a with-item


def _expr_events(expr: ast.AST, with_item_calls: Set[int]) -> List[Tuple]:
    events: List[Tuple] = []

    def emit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                emit(node.value)
            events.append(("yield", None, node.lineno))
            return
        for child in ast.iter_child_nodes(node):
            emit(child)
        if isinstance(node, ast.Call) and isinstance(node.func,
                                                     ast.Attribute):
            key = resource_key(node.func.value)
            if key is None:
                return
            attr = node.func.attr
            if attr == HOLD_METHOD:
                if id(node) not in with_item_calls:
                    events.append(("held-misuse", key, node.lineno))
            elif attr == "acquire" and not node.args and not node.keywords:
                events.append(("acquire", key, node.lineno))
            elif attr == "reserve":
                events.append(("reserve", key, node.lineno))
            elif attr in RELEASE_METHODS and not node.keywords:
                kind = "release0" if not node.args else "releaseN"
                events.append((kind, key, node.lineno))

    emit(expr)
    return events


def node_events(node: CFGNode) -> List[Tuple]:
    """The sync events a CFG node performs, in evaluation order."""
    if node.kind == "with-exit":
        events: List[Tuple] = []
        for item in reversed(node.payload or []):
            key = _held_item_key(item)
            if key is not None:
                events.append(("cm-release", key, node.line))
        return events
    if node.kind == "with-enter":
        events = []
        held_calls = {id(item.context_expr) for item in (node.payload or [])
                      if _held_item_key(item) is not None}
        for item in node.payload or []:
            key = _held_item_key(item)
            if key is not None:
                # The receiver expression may itself contain events.
                events.extend(
                    _expr_events(item.context_expr.func.value, held_calls))
                events.append(("cm-acquire", key, item.context_expr.lineno))
            else:
                events.extend(_expr_events(item.context_expr, held_calls))
        return events
    events = []
    for expr in payload_exprs(node.payload):
        events.extend(_expr_events(expr, set()))
    return events


def _held_item_key(item: ast.withitem) -> Optional[str]:
    expr = item.context_expr
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == HOLD_METHOD):
        return resource_key(expr.func.value)
    return None


def _is_pure_sync_payload(payload) -> bool:
    """True when every call in the payload is a trusted sync primitive."""
    saw_call = False
    for expr in payload_exprs(payload):
        for sub in walk_runtime(expr):
            if isinstance(sub, (ast.Raise, ast.Assert)):
                return False
            if isinstance(sub, ast.Call):
                saw_call = True
                if not (isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in (ACQUIRE_METHODS
                                              | RELEASE_METHODS
                                              | {HOLD_METHOD})
                        and resource_key(sub.func.value) is not None):
                    return False
    return saw_call


def _sync_may_raise(payload) -> bool:
    if _is_pure_sync_payload(payload):
        return False
    return default_may_raise(payload)


def _functions(module: SourceModule) -> Iterable[Tuple[str, ast.FunctionDef]]:
    """Every (qualified name, def) in the module, methods included."""

    def walk(node, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield f"{prefix}{child.name}", child
                yield from walk(child, f"{prefix}{child.name}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")

    yield from walk(module.tree, "")


def _no_yield_lines(module: SourceModule) -> Set[int]:
    return {
        index + 1 for index, text in enumerate(module.lines)
        if NO_YIELD_DIRECTIVE.search(text)
    }


# Held fact entries: (resource, acquire_line, no_yield, via_cm)
_Hold = Tuple[str, int, bool, bool]


@register_rule
class SyncProtocolRule(Rule):
    name = "sync-protocol"
    description = (
        "every FifoSemaphore acquire reaches a release on all paths "
        "(exception edges included), no release without a hold, no yield "
        "inside a '# repro-sync: no-yield' region"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not module.path.startswith(SYNC_SCOPE):
                continue
            if module.path in SYNC_EXEMPT:
                continue
            no_yield = _no_yield_lines(module)
            for symbol, func in _functions(module):
                yield from self._check_function(module, symbol, func,
                                                no_yield)

    def _check_function(self, module: SourceModule, symbol: str,
                        func, no_yield: Set[int]) -> Iterable[Finding]:
        if not _mentions_sync(func):
            return
        cfg = build_cfg(func, may_raise=_sync_may_raise)
        events = {node.index: node_events(node) for node in cfg.nodes}
        reported: Set[Tuple] = set()
        findings: List[Finding] = []

        def transfer(node: CFGNode, fact: FrozenSet[_Hold]) -> FrozenSet:
            held = set(fact)
            for kind, key, line in events[node.index]:
                if kind in ("acquire", "cm-acquire"):
                    held.add((key, line, line in no_yield,
                              kind == "cm-acquire"))
                elif kind in ("release0", "cm-release"):
                    held = {h for h in held if h[0] != key}
            return frozenset(held)

        solution = solve_forward(cfg, frozenset(), transfer)

        def report(key: Tuple, finding: Finding) -> None:
            if key not in reported:
                reported.add(key)
                findings.append(finding)

        # One reporting pass with the fixpoint facts.
        for node in cfg.nodes:
            if not solution.reachable(node.index):
                continue
            held = set(solution.in_fact(node.index))
            for kind, key, line in events[node.index]:
                if kind in ("acquire", "cm-acquire"):
                    if ("[" not in key
                            and any(h[0] == key for h in held)):
                        report(
                            ("double-acquire", key, line),
                            self.finding(
                                module.path, line,
                                f"'{key}' may already be held when it is "
                                f"acquired again; a second acquire while "
                                f"holding deadlocks a single-permit "
                                f"semaphore", symbol=symbol))
                    held.add((key, line, line in no_yield,
                              kind == "cm-acquire"))
                elif kind == "release0":
                    if not any(h[0] == key for h in held):
                        report(
                            ("double-release", key, line),
                            self.finding(
                                module.path, line,
                                f"'{key}' is released here but no path "
                                f"holds it — double release or release "
                                f"without acquire", symbol=symbol))
                    held = {h for h in held if h[0] != key}
                elif kind == "cm-release":
                    held = {h for h in held if h[0] != key}
                elif kind == "held-misuse":
                    report(
                        ("held-misuse", key, line),
                        self.finding(
                            module.path, line,
                            f"'{key}.held()' must be the context manager "
                            f"of a 'with' block; calling it anywhere else "
                            f"acquires on __enter__ only", symbol=symbol))
                elif kind == "yield":
                    for res, acq_line, unsafe, _ in sorted(held):
                        if unsafe:
                            report(
                                ("yield-unsafe", res, line),
                                self.finding(
                                    module.path, line,
                                    f"yield while holding '{res}' "
                                    f"(acquired line {acq_line}, marked "
                                    f"no-yield); the region must complete "
                                    f"within one engine event",
                                    symbol=symbol))

        for exit_index, how in ((cfg.exit, "returns"),
                                (cfg.raise_exit, "unwinds on an exception")):
            if not solution.reachable(exit_index):
                continue
            for res, acq_line, _, via_cm in sorted(
                    solution.in_fact(exit_index)):
                if via_cm:
                    continue  # structurally released by the with scope
                report(
                    ("leak", res, acq_line, how),
                    self.finding(
                        module.path, acq_line,
                        f"'{res}' acquired here may still be held when "
                        f"the function {how}; release it on every path "
                        f"or use 'with {res}.held()'", symbol=symbol))

        for finding in sorted(findings,
                              key=lambda f: (f.line, f.message)):
            yield finding


def _mentions_sync(func) -> bool:
    for sub in ast.walk(func):
        if isinstance(sub, ast.Attribute) and sub.attr in (
                ACQUIRE_METHODS | RELEASE_METHODS | {HOLD_METHOD}):
            return True
    return False


# -- lock-order graph ---------------------------------------------------------


@register_rule
class SyncLockOrderRule(Rule):
    name = "sync-lock-order"
    description = (
        "the static lock-order graph over each fleet controller class "
        "must be acyclic; a cycle is a deadlock candidate under FIFO "
        "semaphore semantics"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not module.path.startswith(SYNC_SCOPE):
                continue
            if module.path in SYNC_EXEMPT:
                continue
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(module, node)

    def _check_class(self, module: SourceModule,
                     cls: ast.ClassDef) -> Iterable[Finding]:
        methods: Dict[str, ast.FunctionDef] = {
            stmt.name: stmt for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if not any(_mentions_sync(func) for func in methods.values()):
            return

        acquires = _transitive(methods, _local_acquires)
        releases = _transitive(methods, _local_releases)
        # edge (held, acquired) -> first line where the pair occurs
        edges: Dict[Tuple[str, str], int] = {}

        for name in sorted(methods):
            cfg = build_cfg(methods[name], may_raise=_sync_may_raise)
            events = {n.index: node_events(n) for n in cfg.nodes}
            calls = {n.index: _self_calls(n, methods) for n in cfg.nodes}

            def transfer(node: CFGNode, fact: FrozenSet[str]) -> FrozenSet:
                held = set(fact)
                for kind, key, _line in events[node.index]:
                    if kind in ("acquire", "reserve", "cm-acquire"):
                        held.add(key)
                    elif kind in ("release0", "releaseN", "cm-release"):
                        held.discard(key)
                # A callee may free resources the caller reserved (the
                # commit path returns the slot ledger's reservation).
                for callee, _line in calls[node.index]:
                    held -= releases.get(callee, frozenset())
                return frozenset(held)

            solution = solve_forward(cfg, frozenset(), transfer)
            for node in cfg.nodes:
                if not solution.reachable(node.index):
                    continue
                held = set(solution.in_fact(node.index))
                for kind, key, line in events[node.index]:
                    if kind in ("acquire", "reserve", "cm-acquire"):
                        for prior in held:
                            if prior != key:
                                edges.setdefault((prior, key), line)
                        held.add(key)
                    elif kind in ("release0", "releaseN", "cm-release"):
                        held.discard(key)
                for callee, line in calls[node.index]:
                    for acquired in acquires.get(callee, frozenset()):
                        for prior in held:
                            if prior != acquired:
                                edges.setdefault((prior, acquired), line)

        yield from self._report_cycles(module, cls, edges)

    def _report_cycles(self, module: SourceModule, cls: ast.ClassDef,
                       edges: Dict[Tuple[str, str], int]
                       ) -> Iterable[Finding]:
        graph: Dict[str, Set[str]] = {}
        for held, acquired in edges:
            graph.setdefault(held, set()).add(acquired)
            graph.setdefault(acquired, set())
        for scc in _strongly_connected(graph):
            cyclic = len(scc) > 1 or (len(scc) == 1
                                      and next(iter(scc)) in
                                      graph[next(iter(scc))])
            if not cyclic:
                continue
            members = sorted(scc)
            line = min(line for (held, acquired), line in edges.items()
                       if held in scc and acquired in scc)
            yield self.finding(
                module.path, line,
                f"lock-order cycle between {{{', '.join(members)}}}: "
                f"some path acquires each while holding another — a "
                f"deadlock candidate under FIFO grant order",
                symbol=cls.name)


def _self_calls(node: CFGNode,
                methods: Dict[str, ast.FunctionDef]
                ) -> List[Tuple[str, int]]:
    calls: List[Tuple[str, int]] = []
    for expr in payload_exprs(node.payload):
        for sub in walk_runtime(expr):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == "self"
                    and sub.func.attr in methods):
                calls.append((sub.func.attr, sub.lineno))
    return calls


def _local_acquires(func) -> FrozenSet[str]:
    keys: Set[str] = set()
    for sub in walk_runtime(func):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            key = resource_key(sub.func.value)
            if key is None:
                continue
            if sub.func.attr in ACQUIRE_METHODS or sub.func.attr == HOLD_METHOD:
                keys.add(key)
    return frozenset(keys)


def _local_releases(func) -> FrozenSet[str]:
    keys: Set[str] = set()
    for sub in walk_runtime(func):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            key = resource_key(sub.func.value)
            if key is None:
                continue
            if sub.func.attr in RELEASE_METHODS:
                keys.add(key)
    return frozenset(keys)


def _transitive(methods: Dict[str, ast.FunctionDef], local
                ) -> Dict[str, FrozenSet[str]]:
    """Resources each method may touch, following self-method calls."""
    direct = {name: local(func) for name, func in methods.items()}
    callees: Dict[str, Set[str]] = {}
    for name, func in methods.items():
        called: Set[str] = set()
        for sub in ast.walk(func):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == "self"
                    and sub.func.attr in methods):
                called.add(sub.func.attr)
        callees[name] = called
    result = dict(direct)
    changed = True
    while changed:
        changed = False
        for name in methods:
            merged = set(result[name])
            for callee in callees[name]:
                merged |= result[callee]
            frozen = frozenset(merged)
            if frozen != result[name]:
                result[name] = frozen
                changed = True
    return result


def _strongly_connected(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Tarjan's SCC, iterative, deterministic over sorted nodes."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    sccs: List[Set[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs
