"""Tests for the libvirt façade, Nova manager, filters and one-click API."""

import pytest

from repro.errors import OrchestratorError
from repro.guest.vm import VMConfig
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.vulndb.advisor import TransplantAdvisor
from repro.vulndb.data import load_default_database
from repro.orchestrator.api import DatacenterAPI
from repro.orchestrator.libvirt import LibvirtConnection
from repro.orchestrator.nova import NovaCompute
from repro.orchestrator.scheduler_filters import (
    InPlaceCompatibilityFilter,
    TransplantConsolidationWeigher,
)

GIB = 1024 ** 3


class TestLibvirt:
    def test_uri_reflects_hypervisor(self, xen_host, kvm_host_factory):
        assert LibvirtConnection(xen_host).uri == "xen:///system"
        assert LibvirtConnection(kvm_host_factory()).uri == "qemu:///system"

    def test_machine_without_hypervisor_rejected(self, m1):
        with pytest.raises(OrchestratorError):
            LibvirtConnection(m1)

    def test_domain_lifecycle_via_handle(self, xen_host):
        conn = LibvirtConnection(xen_host)
        handle = conn.lookup("guest0")
        assert handle.is_active()
        handle.suspend(1.0)
        assert not handle.is_active()
        handle.resume(2.0)
        assert handle.is_active()
        info = handle.info()
        assert info["vcpus"] == 1
        assert info["hypervisor"] == "xen:///system"

    def test_define_and_destroy(self, xen_host):
        conn = LibvirtConnection(xen_host)
        conn.define_and_start(VMConfig("new-vm", vcpus=1, memory_bytes=GIB))
        assert "new-vm" in conn.list_domains()
        conn.destroy("new-vm")
        assert "new-vm" not in conn.list_domains()

    def test_lookup_missing_raises(self, xen_host):
        with pytest.raises(OrchestratorError):
            LibvirtConnection(xen_host).lookup("ghost")

    def test_uri_changes_after_transplant(self, xen_host):
        from repro.core.transplant import HyperTP

        conn = LibvirtConnection(xen_host)
        assert conn.uri == "xen:///system"
        HyperTP().inplace(xen_host, HypervisorKind.KVM, SimClock())
        # Same connection object: the admin's view survives the transplant.
        assert conn.uri == "qemu:///system"
        assert conn.lookup("guest0").is_active()


class TestNova:
    def test_register_and_database(self, xen_host_factory):
        nova = NovaCompute()
        machine = xen_host_factory(name="h1")
        nova.register_host(machine)
        assert nova.database["h1"].hypervisor_type == "xen"
        assert nova.hosts_running(HypervisorKind.XEN) == ["h1"]

    def test_double_registration_rejected(self, xen_host_factory):
        nova = NovaCompute()
        machine = xen_host_factory(name="h1")
        nova.register_host(machine)
        with pytest.raises(OrchestratorError):
            nova.register_host(machine)

    def test_host_live_upgrade_updates_database(self, xen_host_factory):
        nova = NovaCompute()
        nova.register_host(xen_host_factory(name="h1", vm_count=2))
        result = nova.host_live_upgrade("h1", HypervisorKind.KVM, SimClock())
        assert nova.database["h1"].hypervisor_type == "kvm"
        assert nova.database["h1"].upgrades == 1
        assert result.inplace is not None
        assert result.inplace.vm_count == 2

    def test_upgrade_to_same_kind_rejected(self, xen_host_factory):
        nova = NovaCompute()
        nova.register_host(xen_host_factory(name="h1"))
        with pytest.raises(OrchestratorError):
            nova.host_live_upgrade("h1", HypervisorKind.XEN, SimClock())

    def test_incompatible_vms_evacuated_first(self, xen_host_factory,
                                              kvm_host_factory, fabric):
        nova = NovaCompute(fabric=fabric)
        source = xen_host_factory(name="h1", vm_count=1)
        source.hypervisor.create_vm(VMConfig(
            "fragile", vcpus=1, memory_bytes=GIB, inplace_compatible=False,
        ))
        spare = kvm_host_factory(name="spare")
        fabric.connect(source, spare)
        nova.register_host(source)
        nova.register_host(spare)
        result = nova.host_live_upgrade(
            "h1", HypervisorKind.KVM, SimClock(), evacuation_host="spare",
        )
        assert len(result.migrated_away) == 1
        assert result.migrated_away[0].vm_name == "fragile"
        assert result.inplace.vm_count == 1

    def test_evacuation_needs_matching_spare(self, xen_host_factory, fabric):
        nova = NovaCompute(fabric=fabric)
        source = xen_host_factory(name="h1", vm_count=0)
        source.hypervisor.create_vm(VMConfig(
            "fragile", vcpus=1, memory_bytes=GIB, inplace_compatible=False,
        ))
        wrong = xen_host_factory(name="wrong", vm_count=0)
        fabric.connect(source, wrong)
        nova.register_host(source)
        nova.register_host(wrong)
        with pytest.raises(OrchestratorError):
            nova.host_live_upgrade("h1", HypervisorKind.KVM, SimClock(),
                                   evacuation_host="wrong")


class TestSchedulerFilters:
    def _nova_with_hosts(self, xen_host_factory):
        nova = NovaCompute()
        compat = xen_host_factory(name="compat-host", vm_count=2,
                                  inplace_compatible=True)
        fragile = xen_host_factory(name="fragile-host", vm_count=2,
                                   inplace_compatible=False)
        empty = xen_host_factory(name="empty-host", vm_count=0)
        for machine in (compat, fragile, empty):
            nova.register_host(machine)
        return nova

    def test_filter_separates_classes(self, xen_host_factory):
        nova = self._nova_with_hosts(xen_host_factory)
        flt = InPlaceCompatibilityFilter(nova)
        candidates = ["compat-host", "fragile-host", "empty-host"]
        compat_vm = VMConfig("x", inplace_compatible=True)
        fragile_vm = VMConfig("y", inplace_compatible=False)
        assert flt.hosts_passing(compat_vm, candidates) == [
            "compat-host", "empty-host",
        ]
        assert flt.hosts_passing(fragile_vm, candidates) == [
            "fragile-host", "empty-host",
        ]

    def test_weigher_prefers_consolidation(self, xen_host_factory):
        nova = self._nova_with_hosts(xen_host_factory)
        weigher = TransplantConsolidationWeigher(nova)
        compat_vm = VMConfig("x", inplace_compatible=True)
        assert weigher.best_host(
            compat_vm, ["compat-host", "empty-host"]
        ) == "compat-host"


class TestDatacenterAPI:
    def _api(self, xen_host_factory, hosts=2, vms=2):
        nova = NovaCompute()
        for i in range(hosts):
            nova.register_host(
                xen_host_factory(name=f"compute-{i}", vm_count=vms)
            )
        advisor = TransplantAdvisor(load_default_database())
        return DatacenterAPI(nova, advisor), nova

    def test_cve_response_upgrades_affected_hosts(self, xen_host_factory):
        api, nova = self._api(xen_host_factory)
        report = api.respond_to_cve("CVE-2016-6258")
        assert report.hosts_upgraded == 2
        assert report.advice.recommended_target == "kvm"
        for record in nova.database.values():
            assert record.hypervisor_type == "kvm"

    def test_unaffected_fleet_untouched(self, kvm_host_factory):
        nova = NovaCompute()
        nova.register_host(kvm_host_factory(name="k-host", vm_count=1))
        api = DatacenterAPI(nova, TransplantAdvisor(load_default_database()))
        report = api.respond_to_cve("CVE-2016-6258")  # Xen-only flaw
        assert report.hosts_upgraded == 0
        assert nova.database["k-host"].hypervisor_type == "kvm"

    def test_disruption_stays_under_azure_bound(self, xen_host_factory):
        # §3: 30 s (Azure's maintenance bound) is the acceptability bar.
        api, _ = self._api(xen_host_factory)
        report = api.respond_to_cve("CVE-2016-6258")
        assert report.worst_vm_disruption_s < 30.0

    def test_revert_after_patch(self, xen_host_factory):
        api, nova = self._api(xen_host_factory, hosts=1)
        api.respond_to_cve("CVE-2016-6258")
        assert nova.database["compute-0"].hypervisor_type == "kvm"
        results = api.revert_after_patch(HypervisorKind.XEN)
        assert set(results) == {"compute-0"}
        assert nova.database["compute-0"].hypervisor_type == "xen"
        assert nova.database["compute-0"].upgrades == 2

    def test_guests_survive_full_round_trip(self, xen_host_factory):
        api, nova = self._api(xen_host_factory, hosts=1, vms=3)
        driver = nova.driver_for("compute-0")
        digests_before = {
            d.vm.name: d.vm.image.content_digest()
            for d in driver.connection.hypervisor.domains.values()
        }
        api.respond_to_cve("CVE-2016-6258")
        api.revert_after_patch(HypervisorKind.XEN)
        digests_after = {
            d.vm.name: d.vm.image.content_digest()
            for d in driver.connection.hypervisor.domains.values()
        }
        assert digests_after == digests_before
