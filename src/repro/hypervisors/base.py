"""Common hypervisor abstractions.

A :class:`Hypervisor` is installed on a :class:`~repro.hw.machine.Machine`,
owns *HV State* (its own heap, per the paper's memory separation) and wraps
each guest VM in a :class:`Domain` that carries the hypervisor-*dependent*
VM_i State: the nested page table and the platform state serialized in the
hypervisor's own byte format.

The memory-separation accounting (``memory_report``) classifies every byte
the hypervisor touches into the four categories of Fig. 2, which the HyperTP
core uses to decide what to translate, rebuild, or leave in place.
"""

import abc
import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import HypervisorError
from repro.guest.vm import VirtualMachine, VMConfig
from repro.hw.machine import Machine


class HypervisorKind(enum.Enum):
    """Identity of a hypervisor implementation.

    XEN and KVM are the paper's pair; NOVA is a third, microhypervisor-style
    member of the repertoire demonstrating that UISR makes adding
    hypervisors cheap (§3.1): one converter pair, no changes elsewhere.
    """

    XEN = "xen"
    KVM = "kvm"
    NOVA = "nova"

    @property
    def display_name(self) -> str:
        return {"xen": "Xen", "kvm": "KVM", "nova": "NOVA"}[self.value]


class HypervisorType(enum.Enum):
    """Type-I runs on bare metal; type-II runs inside a host OS kernel."""

    TYPE_1 = 1
    TYPE_2 = 2


@dataclass
class NestedPageTable:
    """Abstract NPT: maps GFN->MFN plus hypervisor-specific policy bits.

    Each hypervisor subclass builds its own concrete layout; what they share
    is the mapping itself (dictated by hardware) and a size estimate used in
    the memory-separation accounting.
    """

    gfn_to_mfn: Dict[int, int]
    page_size: int
    policy_tag: str  # hypervisor-specific management policy marker
    metadata_bytes: int

    def lookup(self, gfn: int) -> int:
        try:
            return self.gfn_to_mfn[gfn]
        except KeyError:
            raise HypervisorError(f"NPT miss for gfn {gfn}") from None


class Domain:
    """A hypervisor's wrapper around one VM (VM_i State container)."""

    def __init__(self, domid: int, vm: VirtualMachine, npt: NestedPageTable):
        self.domid = domid
        self.vm = vm
        self.npt = npt
        # Serialized platform state in the owner hypervisor's native format;
        # (re)built lazily by the toolstack.
        self.native_state_blob: Optional[bytes] = None
        # (source hypervisor kind value, UISR version) when this domain was
        # restored from a UISR document; None for domains created natively.
        self.provenance: Optional[Tuple[str, int]] = None

    @property
    def name(self) -> str:
        return self.vm.name

    def __repr__(self) -> str:
        return f"Domain(id={self.domid}, vm={self.vm.name})"


@dataclass
class MemoryReport:
    """Bytes in each memory-separation category (Fig. 2)."""

    guest_state: int
    vmi_state: int
    management_state: int
    hv_state: int

    @property
    def total(self) -> int:
        return (
            self.guest_state + self.vmi_state
            + self.management_state + self.hv_state
        )


class Hypervisor(abc.ABC):
    """Abstract hypervisor installed on a machine."""

    kind: HypervisorKind
    hv_type: HypervisorType
    #: bytes of hypervisor heap/text (HV State), reinitialised on micro-reboot
    hv_state_bytes: int = 64 << 20

    def __init__(self):
        self.machine: Optional[Machine] = None
        self.domains: Dict[int, Domain] = {}
        self._next_domid = 1
        self.booted = False

    # -- lifecycle -----------------------------------------------------------

    def boot(self, machine: Machine) -> None:
        """Install this hypervisor on ``machine``."""
        if machine.hypervisor is not None:
            raise HypervisorError(
                f"{machine.name} already runs {machine.hypervisor}"
            )
        self.machine = machine
        machine.hypervisor = self
        self.booted = True

    def shutdown(self) -> None:
        """Tear this hypervisor down (its domains must be gone already)."""
        if self.domains:
            raise HypervisorError("cannot shut down with live domains")
        if self.machine is not None:
            self.machine.hypervisor = None
        self.machine = None
        self.booted = False

    def _require_booted(self) -> None:
        if not self.booted or self.machine is None:
            raise HypervisorError(f"{type(self).__name__} is not booted")

    # -- domains ---------------------------------------------------------------

    def create_vm(self, config: VMConfig) -> Domain:
        """Create and start a fresh VM from ``config``."""
        self._require_booted()
        from repro.guest.image import GuestImage  # local: avoids cycle at import

        image = GuestImage(
            self.machine.memory, config.memory_bytes,
            page_size=config.page_size, seed=config.seed,
        )
        vm = VirtualMachine(config, image)
        return self.adopt_vm(vm)

    def adopt_vm(self, vm: VirtualMachine) -> Domain:
        """Wrap an existing VM (used by restoration paths) in a new domain."""
        self._require_booted()
        domid = self._next_domid
        self._next_domid += 1
        npt = self.build_npt(vm)
        domain = Domain(domid, vm, npt)
        self.domains[domid] = domain
        self._on_domain_added(domain)
        return domain

    def destroy_domain(self, domid: int, release_vm: bool = True) -> None:
        domain = self._domain(domid)
        self._on_domain_removed(domain)
        del self.domains[domid]
        if release_vm:
            domain.vm.destroy()

    def detach_domain(self, domid: int) -> VirtualMachine:
        """Remove a domain but keep the VM alive (transplant hand-off)."""
        domain = self._domain(domid)
        self._on_domain_removed(domain)
        del self.domains[domid]
        return domain.vm

    def _domain(self, domid: int) -> Domain:
        try:
            return self.domains[domid]
        except KeyError:
            raise HypervisorError(f"no domain with id {domid}") from None

    def domain_of(self, vm: VirtualMachine) -> Domain:
        for domain in self.domains.values():
            if domain.vm is vm:
                return domain
        raise HypervisorError(f"VM {vm.name} is not hosted here")

    def pause_domain(self, domid: int, now: float) -> None:
        self._domain(domid).vm.pause(now)

    def resume_domain(self, domid: int, now: float) -> None:
        self._domain(domid).vm.resume(now)

    # -- hypervisor-specific hooks ------------------------------------------

    @abc.abstractmethod
    def build_npt(self, vm: VirtualMachine) -> NestedPageTable:
        """Construct this hypervisor's nested page table for ``vm``."""

    @abc.abstractmethod
    def save_platform_state(self, domain: Domain) -> bytes:
        """Serialize VM_i platform state in the native byte format."""

    @abc.abstractmethod
    def load_platform_state(self, domain: Domain, blob: bytes) -> None:
        """Deserialize native-format platform state into ``domain``'s VM."""

    @abc.abstractmethod
    def scheduler_report(self) -> Dict[str, object]:
        """Describe the VM Management State (scheduler queues etc.)."""

    def _on_domain_added(self, domain: Domain) -> None:
        """Hook: update VM Management State structures."""

    def _on_domain_removed(self, domain: Domain) -> None:
        """Hook: update VM Management State structures."""

    # -- memory separation ------------------------------------------------------

    def memory_report(self) -> MemoryReport:
        """Classify resident bytes into the four categories of Fig. 2."""
        guest = sum(d.vm.image.size_bytes for d in self.domains.values())
        vmi = sum(
            d.npt.metadata_bytes + len(d.native_state_blob or b"")
            + self._vmi_fixed_overhead()
            for d in self.domains.values()
        )
        mgmt = self._management_state_bytes()
        return MemoryReport(
            guest_state=guest,
            vmi_state=vmi,
            management_state=mgmt,
            hv_state=self.hv_state_bytes,
        )

    def _vmi_fixed_overhead(self) -> int:
        """Per-domain bookkeeping not covered by NPT + platform blob."""
        return 16 << 10

    def _management_state_bytes(self) -> int:
        """Scheduler queues and similar rebuild-able structures."""
        return 4096 + 512 * len(self.domains)

    def __repr__(self) -> str:
        where = self.machine.name if self.machine else "unbooted"
        return f"{type(self).__name__}({where}, {len(self.domains)} domains)"
