"""Tests for the guest layer: vCPUs, devices, images, VMs, drivers."""

import random

import pytest

from repro.errors import HardwareError, TransplantError, VMLifecycleError
from repro.guest.devices import (
    KVM_IOAPIC_PINS,
    XEN_IOAPIC_PINS,
    make_default_platform,
)
from repro.guest.drivers import (
    DriverState,
    EmulatedDriver,
    GuestDriver,
    NetworkDriver,
    PassthroughDriver,
)
from repro.guest.image import GuestImage
from repro.guest.vcpu import make_boot_vcpu
from repro.guest.vm import VirtualMachine, VMConfig, VMState
from repro.hw.memory import PAGE_2M, PhysicalMemory

GIB = 1024 ** 3


class TestVCPU:
    def test_deterministic_in_seed(self):
        a = make_boot_vcpu(0, seed=7)
        b = make_boot_vcpu(0, seed=7)
        assert a.architectural_view() == b.architectural_view()

    def test_different_seeds_differ(self):
        assert (make_boot_vcpu(0, seed=1).architectural_view()
                != make_boot_vcpu(0, seed=2).architectural_view())

    def test_copy_is_deep_enough(self):
        vcpu = make_boot_vcpu(0)
        clone = vcpu.copy()
        clone.gp["rax"] = 0
        assert vcpu.gp["rax"] != 0 or vcpu.architectural_view() != clone.architectural_view()

    def test_long_mode_invariants(self):
        vcpu = make_boot_vcpu(3)
        assert vcpu.control["cr0"] & 0x80000001 == 0x80000001  # PG|PE
        assert vcpu.control["efer"] & 0x500  # LME|LMA
        assert vcpu.gp["rflags"] & 0x2  # reserved bit


class TestPlatform:
    def test_xen_platform_has_48_pins(self):
        platform = make_default_platform(2)
        assert platform.ioapic.pin_count == XEN_IOAPIC_PINS

    def test_kvm_platform_has_24_pins(self):
        platform = make_default_platform(2, ioapic_pins=KVM_IOAPIC_PINS)
        assert platform.ioapic.pin_count == KVM_IOAPIC_PINS

    def test_per_vcpu_state_counts(self):
        platform = make_default_platform(4)
        assert len(platform.lapics) == 4
        assert len(platform.xsave) == 4
        assert [l.apic_id for l in platform.lapics] == [0, 1, 2, 3]

    def test_high_pins_are_disconnected(self):
        platform = make_default_platform(1)
        for pin in platform.ioapic.pins[16:]:
            assert pin.masked and pin.vector == 0

    def test_view_is_stable(self):
        a = make_default_platform(2, seed=3)
        b = make_default_platform(2, seed=3)
        assert a.architectural_view() == b.architectural_view()


class TestGuestImage:
    def test_allocates_backing_frames(self):
        memory = PhysicalMemory(2 * GIB)
        image = GuestImage(memory, GIB, page_size=PAGE_2M)
        assert image.page_count == 512
        assert memory.allocated_bytes == GIB

    def test_bad_size_rejected(self):
        memory = PhysicalMemory(GIB)
        with pytest.raises(HardwareError):
            GuestImage(memory, PAGE_2M + 1, page_size=PAGE_2M)

    def test_mappings_cover_every_gfn(self):
        memory = PhysicalMemory(GIB)
        image = GuestImage(memory, 64 * PAGE_2M)
        gfns = [g for g, _ in image.mappings()]
        assert gfns == list(range(64))

    def test_content_digest_changes_on_write(self):
        memory = PhysicalMemory(GIB)
        image = GuestImage(memory, 16 * PAGE_2M)
        before = image.content_digest()
        image.write_page(3, 0x1234)
        assert image.content_digest() != before
        assert image.read_page(3) == 0x1234

    def test_digest_deterministic_in_seed(self):
        m1, m2 = PhysicalMemory(GIB), PhysicalMemory(GIB)
        a = GuestImage(m1, 16 * PAGE_2M, seed=5)
        b = GuestImage(m2, 16 * PAGE_2M, seed=5)
        assert a.content_digest() == b.content_digest()

    def test_dirty_some_mutates_requested_fraction(self):
        memory = PhysicalMemory(GIB)
        image = GuestImage(memory, 100 * PAGE_2M)
        dirtied = image.dirty_some(0.25, random.Random(1))
        assert len(dirtied) == 25

    def test_dirty_fraction_validated(self):
        memory = PhysicalMemory(GIB)
        image = GuestImage(memory, 16 * PAGE_2M)
        with pytest.raises(HardwareError):
            image.dirty_some(1.5, random.Random(1))

    def test_release_frees_frames(self):
        memory = PhysicalMemory(GIB)
        image = GuestImage(memory, 64 * PAGE_2M)
        image.release()
        assert memory.allocated_bytes == 0
        with pytest.raises(VMLifecycleError):
            image.release()

    def test_pin_all_protects_across_reset(self):
        memory = PhysicalMemory(GIB)
        image = GuestImage(memory, 16 * PAGE_2M)
        digest = image.content_digest()
        image.pin_all()
        memory.reset_except_pinned()
        assert image.content_digest() == digest

    def test_adopt_mapping_requires_full_cover(self):
        memory = PhysicalMemory(GIB)
        image = GuestImage(memory, 4 * PAGE_2M)
        with pytest.raises(HardwareError):
            image.adopt_mapping({0: 0, 1: 512})


class TestVMLifecycle:
    def _vm(self, **kwargs):
        memory = PhysicalMemory(2 * GIB)
        config = VMConfig("t", vcpus=1, memory_bytes=GIB, **kwargs)
        return VirtualMachine(config, GuestImage(memory, GIB))

    def test_starts_running(self):
        assert self._vm().state is VMState.RUNNING

    def test_pause_resume_tracks_downtime(self):
        vm = self._vm()
        vm.pause(10.0)
        assert vm.state is VMState.PAUSED
        vm.resume(12.5)
        assert vm.state is VMState.RUNNING
        assert vm.total_downtime_s == pytest.approx(2.5)
        assert vm.pause_intervals == [(10.0, 12.5)]

    def test_suspend_path(self):
        vm = self._vm()
        vm.pause(1.0)
        vm.mark_suspended()
        assert vm.state is VMState.SUSPENDED
        vm.resume(4.0)
        assert vm.total_downtime_s == pytest.approx(3.0)

    def test_illegal_transitions_rejected(self):
        vm = self._vm()
        with pytest.raises(VMLifecycleError):
            vm.resume(1.0)  # not paused
        vm.pause(1.0)
        with pytest.raises(VMLifecycleError):
            vm.pause(2.0)  # already paused

    def test_destroy_releases_image(self):
        vm = self._vm()
        memory = vm.image.memory
        vm.destroy()
        assert vm.state is VMState.DESTROYED
        assert memory.allocated_bytes == 0
        with pytest.raises(VMLifecycleError):
            vm.pause(1.0)

    def test_config_validation(self):
        with pytest.raises(VMLifecycleError):
            VMConfig("bad", vcpus=0)
        with pytest.raises(VMLifecycleError):
            VMConfig("bad", memory_bytes=PAGE_2M + 5)

    def test_vcpu_count_must_match(self):
        memory = PhysicalMemory(2 * GIB)
        config = VMConfig("t", vcpus=2, memory_bytes=GIB)
        with pytest.raises(VMLifecycleError):
            VirtualMachine(config, GuestImage(memory, GIB),
                           vcpu_states=[make_boot_vcpu(0)])


class TestDrivers:
    def test_passthrough_pause_resume(self):
        driver = PassthroughDriver("gpu0")
        assert not driver.migratable
        driver.pause()
        assert driver.state is DriverState.PAUSED
        driver.resume()
        assert driver.state is DriverState.ACTIVE

    def test_double_pause_rejected(self):
        driver = PassthroughDriver("gpu0")
        driver.pause()
        with pytest.raises(TransplantError):
            driver.pause()

    def test_resume_without_pause_rejected(self):
        with pytest.raises(TransplantError):
            GuestDriver("d").resume()

    def test_network_unplug_rescan_keeps_tcp(self):
        nic = NetworkDriver()
        nic.unplug()
        assert nic.state is DriverState.UNPLUGGED
        assert nic.tcp_connections_alive
        nic.rescan()
        assert nic.state is DriverState.ACTIVE

    def test_rescan_requires_unplug(self):
        with pytest.raises(TransplantError):
            NetworkDriver().rescan()

    def test_emulated_is_migratable(self):
        assert EmulatedDriver("blk0").migratable

    def test_notification(self):
        driver = NetworkDriver()
        driver.notify_maintenance()
        assert driver.notified
