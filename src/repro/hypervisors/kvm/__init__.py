"""KVM-like type-II hypervisor substrate.

Components mirror the real stack the paper used (Linux 5.3 + kvm module +
kvmtool):

* :mod:`formats` — per-ioctl state structs (``KVM_GET_REGS``, ``KVM_GET_SREGS``,
  ``KVM_GET_MSRS``, ``KVM_GET_LAPIC``, ``KVM_GET_IRQCHIP``, ``KVM_GET_PIT2``,
  ``KVM_GET_XSAVE``, ``KVM_GET_XCRS``).
* :mod:`npt` — EPT-style MMU with KVM's management policy.
* :mod:`scheduler` — CFS runqueues (vCPUs are host threads).
* :mod:`kvmtool` — the lightweight user-space VMM the paper extended to speak
  UISR.
* :mod:`hypervisor` — host kernel + kvm module.
"""

from repro.hypervisors.kvm.hypervisor import KVMHypervisor
from repro.hypervisors.kvm.kvmtool import KvmtoolVMM

__all__ = ["KVMHypervisor", "KvmtoolVMM"]
