"""The NOVA-like microhypervisor: kernel, NPT policy and scheduler.

A microhypervisor keeps almost everything out of the kernel: per-guest
user-level VMMs own device emulation, and the kernel only multiplexes CPUs
and memory.  Consequences modeled here: the smallest HV State of the three
hypervisors, the fastest boot (one tiny kernel), and a lean NPT with no
extra policy metadata beyond the hardware entries.
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.guest.vm import VirtualMachine
from repro.hw.memory import PAGE_4K
from repro.hypervisors.base import (
    Domain,
    Hypervisor,
    HypervisorKind,
    HypervisorType,
    NestedPageTable,
)
from repro.hypervisors.nova import formats

NOVA_NPT_POLICY = "nova-npt"

# 8 B hardware entry + 4 B capability-range tag per mapping.
_NOVA_BYTES_PER_ENTRY = 12
_NOVA_ROOT_OVERHEAD = PAGE_4K


class NovaNPT(NestedPageTable):
    """NPT with NOVA's capability-range policy."""

    def __init__(self, gfn_to_mfn: Dict[int, int], page_size: int):
        metadata = _NOVA_ROOT_OVERHEAD + _NOVA_BYTES_PER_ENTRY * len(gfn_to_mfn)
        super().__init__(
            gfn_to_mfn=gfn_to_mfn,
            page_size=page_size,
            policy_tag=NOVA_NPT_POLICY,
            metadata_bytes=metadata,
        )


@dataclass
class RRQueueEntry:
    """One scheduling context in the round-robin queue."""

    domid: int
    vcpu_index: int
    priority: int = 1


class PriorityRoundRobin:
    """NOVA's fixed-priority round-robin scheduler (VM Management State)."""

    def __init__(self, cpus: int):
        self.cpus = max(1, cpus)
        self.queues: List[List[RRQueueEntry]] = [[] for _ in range(self.cpus)]
        self._priorities: Dict[int, int] = {}

    def add_domain(self, domid: int, vcpus: int, priority: int = 1) -> None:
        self._priorities[domid] = priority
        for index in range(vcpus):
            queue = self.queues[(domid + 3 * index) % self.cpus]
            queue.append(RRQueueEntry(domid=domid, vcpu_index=index,
                                      priority=priority))

    def remove_domain(self, domid: int) -> None:
        self._priorities.pop(domid, None)
        for i, queue in enumerate(self.queues):
            self.queues[i] = [e for e in queue if e.domid != domid]

    def rebuild(self, domains) -> None:
        priorities = dict(self._priorities)
        self.queues = [[] for _ in range(self.cpus)]
        self._priorities = {}
        for domain in domains:
            self.add_domain(domain.domid, domain.vm.config.vcpus,
                            priority=priorities.get(domain.domid, 1))

    def queued_vcpus(self) -> int:
        return sum(len(q) for q in self.queues)

    def report(self) -> Dict[str, object]:
        return {
            "scheduler": "priority-rr",
            "cpus": self.cpus,
            "queued_vcpus": self.queued_vcpus(),
            "domains": sorted(self._priorities),
        }


class NOVAHypervisor(Hypervisor):
    """Microhypervisor kernel + per-guest user-level VMMs."""

    kind = HypervisorKind.NOVA
    hv_type = HypervisorType.TYPE_1
    # A microhypervisor kernel is tiny; most state lives in per-guest VMMs
    # (accounted as VM_i overhead), so HV State is the smallest of the three.
    hv_state_bytes = 24 << 20

    #: the micro-reboot starts one small kernel (VMMs launch per guest)
    boot_kernel_count = 1

    def __init__(self):
        super().__init__()
        self.scheduler = PriorityRoundRobin(cpus=1)

    def boot(self, machine) -> None:
        super().boot(machine)
        self.scheduler = PriorityRoundRobin(cpus=machine.spec.threads)

    def build_npt(self, vm: VirtualMachine) -> NestedPageTable:
        return NovaNPT(dict(vm.image.mappings()), vm.image.page_size)

    def save_platform_state(self, domain: Domain) -> bytes:
        blob = formats.encode_snapshot(domain.vm.vcpus, domain.vm.platform)
        domain.native_state_blob = blob
        return blob

    def load_platform_state(self, domain: Domain, blob: bytes) -> None:
        vcpus, platform = formats.decode_snapshot(blob)
        domain.vm.vcpus = vcpus
        domain.vm.platform = platform
        domain.native_state_blob = blob

    def _on_domain_added(self, domain: Domain) -> None:
        self.scheduler.add_domain(domain.domid, domain.vm.config.vcpus)

    def _on_domain_removed(self, domain: Domain) -> None:
        self.scheduler.remove_domain(domain.domid)

    def rebuild_management_state(self) -> None:
        self.scheduler.rebuild(self.domains.values())

    def scheduler_report(self) -> Dict[str, object]:
        return self.scheduler.report()

    def _vmi_fixed_overhead(self) -> int:
        # The per-guest user-level VMM working set rides in VM_i State.
        return 48 << 10
