"""The KVM-like type-II hypervisor (host Linux + kvm module + kvmtool).

A single kernel boots on micro-reboot (versus Xen's hypervisor + dom0 pair),
which is the structural reason InPlaceTP *into* KVM is the fast direction
(Fig. 6 vs Fig. 10).  Per-domain user-space VMMs (:class:`KvmtoolVMM`) own the
ioctl traffic.
"""

from typing import Dict

from repro.errors import HypervisorError
from repro.guest.vm import VirtualMachine
from repro.hypervisors.base import (
    Domain,
    Hypervisor,
    HypervisorKind,
    HypervisorType,
    NestedPageTable,
)
from repro.hypervisors.kvm import formats
from repro.hypervisors.kvm.kvmtool import KvmtoolVMM
from repro.hypervisors.kvm.npt import build_ept
from repro.hypervisors.kvm.scheduler import CFSScheduler


class KVMHypervisor(Hypervisor):
    """Linux 5.3 + kvm module, with kvmtool as the per-VM VMM."""

    kind = HypervisorKind.KVM
    hv_type = HypervisorType.TYPE_2
    # Host Linux working set + kvm module (HV State).
    hv_state_bytes = 80 << 20

    #: number of kernels the micro-reboot path must start (just Linux)
    boot_kernel_count = 1

    def __init__(self):
        super().__init__()
        self.scheduler = CFSScheduler(cpus=1)
        self.vmms: Dict[int, KvmtoolVMM] = {}

    # -- lifecycle ---------------------------------------------------------

    def boot(self, machine) -> None:
        super().boot(machine)
        self.scheduler = CFSScheduler(cpus=machine.spec.threads)

    # -- NPT -----------------------------------------------------------------

    def build_npt(self, vm: VirtualMachine) -> NestedPageTable:
        return build_ept(vm)

    # -- platform state (via kvmtool) -----------------------------------------

    def vmm_for(self, domid: int) -> KvmtoolVMM:
        try:
            return self.vmms[domid]
        except KeyError:
            raise HypervisorError(f"no kvmtool VMM for domain {domid}") from None

    def save_platform_state(self, domain: Domain) -> bytes:
        bundle = self.vmm_for(domain.domid).read_state_bundle()
        blob = formats.pack_bundle(bundle)
        domain.native_state_blob = blob
        return blob

    def load_platform_state(self, domain: Domain, blob: bytes) -> None:
        bundle = formats.unpack_bundle(blob)
        self.vmm_for(domain.domid).apply_state_bundle(bundle)

    # -- VM management state ----------------------------------------------------

    def _on_domain_added(self, domain: Domain) -> None:
        self.scheduler.add_domain(domain.domid, domain.vm.config.vcpus)
        self.vmms[domain.domid] = KvmtoolVMM(self, domain)

    def _on_domain_removed(self, domain: Domain) -> None:
        self.scheduler.remove_domain(domain.domid)
        self.vmms.pop(domain.domid, None)

    def rebuild_management_state(self) -> None:
        """Reconstruct CFS runqueues from VM_i states (post-transplant)."""
        self.scheduler.rebuild(self.domains.values())

    def scheduler_report(self) -> Dict[str, object]:
        return self.scheduler.report()
