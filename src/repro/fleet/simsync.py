"""Synchronization primitives for event-driven fleet processes.

:class:`repro.sim.engine.Engine` processes can only ``yield`` sleep
durations; a control plane also needs to *wait for conditions* — a wave
being released, a migration slot freeing up, the shared fabric becoming
idle.  This module adds waitables (:class:`Gate`, :class:`Latch`,
:class:`FifoSemaphore`) and a :class:`FleetProcess` driver whose generators
may yield either a float (sleep) or a waitable (park until signalled).

Everything is built on ``engine.call_after`` — wake-ups are scheduled
events, never polling loops, so a campaign over thousands of hosts stays
O(events log events).  Waiters wake in strict FIFO order at the timestamp
of the signal, which keeps runs deterministic.
"""

from typing import Callable, Deque, Generator, List, Optional
from collections import deque

from repro.errors import FleetError, SimulationError
from repro.sim.engine import Engine


class Waitable:
    """Base class: something a :class:`FleetProcess` can yield on."""

    def subscribe(self, fn: Callable[[], None]) -> None:
        raise NotImplementedError


class Gate(Waitable):
    """A one-shot event: waiters park until :meth:`fire` is called."""

    def __init__(self, engine: Engine):
        self._engine = engine
        self._fired = False
        self._waiters: List[Callable[[], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    def fire(self) -> None:
        if self._fired:
            return
        self._fired = True
        waiters, self._waiters = self._waiters, []
        for fn in waiters:
            self._engine.call_after(0.0, fn)

    def subscribe(self, fn: Callable[[], None]) -> None:
        if self._fired:
            self._engine.call_after(0.0, fn)
        else:
            self._waiters.append(fn)


class Latch(Waitable):
    """A countdown barrier: fires its gate when ``count`` reaches zero."""

    def __init__(self, engine: Engine, count: int):
        if count < 0:
            raise FleetError(f"latch count must be >= 0, got {count}")
        self._gate = Gate(engine)
        self._count = count
        if count == 0:
            self._gate.fire()

    def count_down(self) -> None:
        if self._gate.fired:
            raise FleetError("latch already open")
        self._count -= 1
        if self._count == 0:
            self._gate.fire()

    def subscribe(self, fn: Callable[[], None]) -> None:
        self._gate.subscribe(fn)


class FifoSemaphore:
    """A counting semaphore whose grants are strict FIFO.

    ``acquire()`` returns a :class:`Gate` that fires when the permit is
    granted; ``release()`` hands the permit to the longest waiter.  A
    ``permits`` of ``None`` means unbounded (every acquire granted at once).
    """

    def __init__(self, engine: Engine, permits: Optional[int]):
        if permits is not None and permits < 1:
            raise FleetError(f"semaphore needs >= 1 permit, got {permits}")
        self._engine = engine
        self._capacity = permits
        self._free = permits
        self._queue: Deque[Gate] = deque()

    def acquire(self) -> Gate:
        gate = Gate(self._engine)
        if self._free is None:
            gate.fire()
        elif self._free > 0:
            self._free -= 1
            gate.fire()
        else:
            self._queue.append(gate)
        return gate

    def release(self) -> None:
        if self._free is None:
            return
        if self._queue:
            self._queue.popleft().fire()
        elif self._free >= self._capacity:
            # A double-release would silently raise the admission cap above
            # its configured permit count; fail loudly instead.
            raise FleetError(
                f"semaphore over-released: all {self._capacity} permits "
                f"are already free"
            )
        else:
            self._free += 1

    def held(self) -> "SemaphoreHold":
        """Scope a permit to a ``with`` block.

        ::

            with sem.held() as granted:
                yield granted       # park until the permit is ours
                ...                 # critical section

        The permit is returned (or the pending request withdrawn) when the
        block exits — on normal fall-through, ``return``, and exception
        unwinds alike, which is what makes release-on-exception structural
        rather than a per-call-site obligation.
        """
        return SemaphoreHold(self)

    def _settle(self, gate: Optional[Gate]) -> None:
        """End a ``held()`` region: give the permit back, or withdraw a
        request that was never granted (the process unwound while queued)."""
        if gate is not None and not gate.fired:
            self._queue.remove(gate)
            return
        self.release()


class SemaphoreHold:
    """Context manager tying one semaphore permit to a ``with`` scope."""

    def __init__(self, sem: FifoSemaphore):
        self._sem = sem
        self._gate: Optional[Gate] = None
        self._active = False

    def __enter__(self) -> Gate:
        if self._active:
            raise FleetError("held() scope re-entered")
        self._active = True
        self._gate = self._sem.acquire()
        return self._gate

    def __exit__(self, exc_type, exc, tb) -> bool:
        gate, self._gate = self._gate, None
        self._active = False
        self._sem._settle(gate)
        return False


class FleetProcess:
    """Drives a generator that yields floats (sleep) or waitables (park).

    The fleet analogue of :class:`repro.sim.engine.Process`; the extra
    yield type is what lets host state machines express admission control
    and barriers without busy-waiting.
    """

    def __init__(self, engine: Engine, gen: Generator, name: str = ""):
        self._engine = engine
        self._gen = gen
        self.name = name or repr(gen)
        self.done = False
        self.result = None
        self.error: Optional[BaseException] = None

    def start(self) -> "FleetProcess":
        self._engine.call_after(0.0, self._step)
        return self

    def close(self) -> None:
        """Abandon the process: drop its suspended frame without running it.

        Crash teardown calls this so host generators are closed in a
        deterministic order instead of by the garbage collector, whose
        arbitrary close order of ``yield from`` chains spills
        "generator already executing" noise onto stderr.
        """
        self.done = True
        self._gen.close()

    def _step(self) -> None:
        if self.done:
            return
        try:
            item = next(self._gen)
        except StopIteration as stop:
            self.done = True
            self.result = getattr(stop, "value", None)
            return
        except BaseException as exc:  # surfaced when the engine runs
            self.done = True
            self.error = exc
            raise
        if isinstance(item, Waitable):
            item.subscribe(self._step)
        elif (isinstance(item, (int, float)) and not isinstance(item, bool)
              and item >= 0):
            self._engine.call_after(float(item), self._step)
        else:
            # bool is an int subclass: without the explicit rejection a
            # buggy ``yield done_flag`` becomes a silent 1-second sleep.
            raise SimulationError(
                f"fleet process {self.name!r} yielded {item!r}; expected a "
                f"non-negative delay or a Waitable"
            )
