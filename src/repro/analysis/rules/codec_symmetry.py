"""Codec symmetry: every byte written must be read back at the same width.

For each ``encode_*``/``decode_*`` (and ``_pack_*``/``_unpack_*``) pair in
the byte-format modules, this rule extracts the ordered stream of
:class:`Packer` writes on one side and :class:`Unpacker` reads on the
other, as a small shape language::

    tok   one fixed-width operation (u8/u16/u32/u64/i64/u64_seq/raw)
    rep   a loop or comprehension body, repeated 0..n times
    alt   an if/else (or early-return) branch point

and compares the two shapes structurally.  A ``u32`` written where a
``u64`` is read, a missing field, or swapped order all surface as a shape
mismatch — exactly the corruption class §3.1's lossless-translation claim
rules out, caught before any bytes move.

The extractor follows evaluation order (a call's arguments before the call
itself, a loop's iterable before its body), inlines module-local helpers
that receive the packer/unpacker as an argument, prunes branches that only
raise, and hoists common alt prefixes/suffixes so equivalent control-flow
phrasings compare equal.
"""

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule, top_level_functions

WIDTH_METHODS = frozenset(
    {"u8", "u16", "u32", "u64", "i64", "u64_seq", "raw"}
)
_PACK_CLASS = "Packer"
_UNPACK_CLASS = "Unpacker"

#: modules this rule analyzes (fnmatch patterns over project-relative paths)
SCOPE = ("hypervisors/*/formats.py", "core/uisr/codec.py")

#: encode-prefix -> decode-prefix naming conventions that define a pair
PAIR_PREFIXES = (
    ("encode_", "decode_"),
    ("_encode_", "_decode_"),
    ("pack_", "unpack_"),
    ("_pack_", "_unpack_"),
)

# Shape nodes are nested tuples: ("tok", name) | ("rep", body) |
# ("alt", (branch, ...)) where body/branch are tuples of shape nodes.


def _tok(name: str) -> Tuple[str, str]:
    return ("tok", name)


def _render(shape: Tuple) -> str:
    parts = []
    for node in shape:
        kind = node[0]
        if kind == "tok":
            parts.append(node[1])
        elif kind == "rep":
            parts.append(f"rep[{_render(node[1])}]")
        else:
            branches = " | ".join(_render(branch) for branch in node[1])
            parts.append("alt{" + branches + "}")
    return " ".join(parts)


def _normalize(items: List) -> Tuple:
    """Flatten, drop empties, and hoist common alt prefixes/suffixes."""
    out: List = []
    for node in items:
        kind = node[0]
        if kind == "tok":
            out.append(node)
        elif kind == "rep":
            body = _normalize(list(node[1]))
            if body:
                out.append(("rep", body))
        else:  # alt
            branches = []
            for branch in node[1]:
                normalized = _normalize(list(branch))
                if normalized not in branches:
                    branches.append(normalized)
            if len(branches) == 1:
                out.extend(branches[0])
                continue
            prefix = _common_prefix(branches)
            out.extend(prefix)
            branches = [branch[len(prefix):] for branch in branches]
            suffix = _common_suffix(branches)
            if suffix:
                branches = [branch[:len(branch) - len(suffix)]
                            for branch in branches]
            branches = [branch for branch in branches]
            if any(branches):
                out.append(("alt", tuple(sorted(set(branches)))))
            out.extend(suffix)
    return tuple(out)


def _common_prefix(branches: List[Tuple]) -> Tuple:
    if not branches:
        return ()
    prefix = []
    for position, node in enumerate(branches[0]):
        if all(len(branch) > position and branch[position] == node
               for branch in branches[1:]):
            prefix.append(node)
        else:
            break
    return tuple(prefix)


def _common_suffix(branches: List[Tuple]) -> Tuple:
    reversed_branches = [tuple(reversed(branch)) for branch in branches]
    return tuple(reversed(_common_prefix(reversed_branches)))


def _block_exit(stmts: List[ast.stmt]) -> Optional[str]:
    """'raise'/'return' if the block unconditionally ends that way."""
    if not stmts:
        return None
    last = stmts[-1]
    if isinstance(last, ast.Raise):
        return "raise"
    if isinstance(last, ast.Return):
        return "return"
    return None


class _StreamExtractor:
    """Extracts the pack or unpack token shape of functions in one module."""

    def __init__(self, module: SourceModule, role: str):
        self.module = module
        self.role = role  # "pack" | "unpack"
        self.cls = _PACK_CLASS if role == "pack" else _UNPACK_CLASS
        self.functions = top_level_functions(module.tree)
        self._memo: Dict[str, Tuple] = {}
        self._in_progress: set = set()
        self._tracked: set = set()  # names tracked in the current function

    def shape_of(self, name: str) -> Tuple:
        if name in self._memo:
            return self._memo[name]
        if name in self._in_progress:  # recursion: treat as opaque
            return ()
        self._in_progress.add(name)
        saved = self._tracked
        try:
            func = self.functions[name]
            self._tracked = self._tracked_params(func)
            self._collect_assignments(func)
            body, _ = self._emit_block(func.body)
            shape = _normalize(body)
        finally:
            self._tracked = saved
            self._in_progress.discard(name)
        self._memo[name] = shape
        return shape

    # -- tracking which names hold a Packer/Unpacker -------------------------

    def _tracked_params(self, func: ast.FunctionDef) -> set:
        tracked = set()
        for arg in func.args.args + func.args.kwonlyargs:
            annotation = arg.annotation
            annotated = (isinstance(annotation, ast.Name)
                         and annotation.id == self.cls)
            if annotated or arg.arg in ("packer", "unpacker"):
                tracked.add(arg.arg)
        return tracked

    def _collect_assignments(self, func: ast.FunctionDef) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and self._is_ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._tracked.add(target.id)

    def _is_ctor(self, node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == self.cls)

    def _chain_is_tracked(self, node: ast.expr) -> bool:
        """Is this expression a tracked packer/unpacker (possibly through a
        method chain like ``Packer().u32(x).u64(y)``)?"""
        if isinstance(node, ast.Name):
            return node.id in self._tracked
        if self._is_ctor(node):
            return True
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            return self._chain_is_tracked(node.func.value)
        return False

    # -- statement-level emission --------------------------------------------

    def _emit_block(self, stmts: List[ast.stmt]) -> Tuple[List, bool]:
        """Returns (shape nodes, terminated-by-return)."""
        out: List = []
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, ast.If):
                done = self._emit_if(stmt, stmts[index + 1:], out)
                if done:
                    return out, True
                if _block_exit(stmt.body) == "return" and not stmt.orelse:
                    # _emit_if consumed the rest of the block
                    return out, False
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._emit_expr(stmt.iter, out)
                body, _ = self._emit_block(stmt.body)
                out.append(("rep", _normalize(body)))
            elif isinstance(stmt, ast.While):
                test: List = []
                self._emit_expr(stmt.test, test)
                body, _ = self._emit_block(stmt.body)
                out.append(("rep", _normalize(test + body)))
            elif isinstance(stmt, ast.Try):
                body, terminated = self._emit_block(stmt.body)
                out.extend(body)
                final, _ = self._emit_block(stmt.finalbody)
                out.extend(final)
                if terminated:
                    return out, True
            elif isinstance(stmt, ast.Return):
                self._emit_expr(stmt.value, out)
                return out, True
            elif isinstance(stmt, ast.Raise):
                return out, True
            elif isinstance(stmt, (ast.Assign, ast.AugAssign)):
                self._emit_expr(stmt.value, out)
            elif isinstance(stmt, ast.AnnAssign):
                self._emit_expr(stmt.value, out)
            elif isinstance(stmt, ast.Expr):
                self._emit_expr(stmt.value, out)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._emit_expr(item.context_expr, out)
                body, terminated = self._emit_block(stmt.body)
                out.extend(body)
                if terminated:
                    return out, True
            # Pass/Break/Continue/def/class: no stream contribution
        return out, False

    def _emit_if(self, stmt: ast.If, rest: List[ast.stmt],
                 out: List) -> bool:
        """Emit an if-statement; returns True if the whole block is done
        (every path terminated)."""
        self._emit_expr(stmt.test, out)
        body_exit = _block_exit(stmt.body)
        body, _ = self._emit_block(stmt.body)

        if stmt.orelse:
            else_exit = _block_exit(stmt.orelse)
            orelse, _ = self._emit_block(stmt.orelse)
            if body_exit == "raise":
                out.extend(orelse)
                return else_exit in ("raise", "return")
            if else_exit == "raise":
                out.extend(body)
                return body_exit in ("raise", "return")
            out.append(("alt", (_normalize(body), _normalize(orelse))))
            return (body_exit in ("raise", "return")
                    and else_exit in ("raise", "return"))

        if body_exit == "raise":
            return False  # guard clause: contributes nothing
        if body_exit == "return":
            # The statements after the if form the implicit else branch.
            tail, _ = self._emit_block(rest)
            out.append(("alt", (_normalize(body), _normalize(tail))))
            return False
        out.append(("alt", (_normalize(body), ())))
        return False

    # -- expression-level emission -------------------------------------------

    def _emit_expr(self, node: Optional[ast.expr], out: List) -> None:
        if node is None or isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Call):
            self._emit_call(node, out)
        elif isinstance(node, (ast.ListComp, ast.SetComp,
                               ast.GeneratorExp, ast.DictComp)):
            self._emit_comprehension(node, out)
        elif isinstance(node, ast.IfExp):
            self._emit_expr(node.test, out)
            body: List = []
            self._emit_expr(node.body, body)
            orelse: List = []
            self._emit_expr(node.orelse, orelse)
            out.append(("alt", (_normalize(body), _normalize(orelse))))
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._emit_expr(child, out)

    def _emit_call(self, node: ast.Call, out: List) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # Method call: receiver chain first, then arguments, then the
            # operation itself (matches evaluation order for our codecs).
            self._emit_expr(func.value, out)
            for arg in node.args:
                self._emit_expr(arg, out)
            for keyword in node.keywords:
                self._emit_expr(keyword.value, out)
            if (func.attr in WIDTH_METHODS
                    and self._chain_is_tracked(func.value)):
                out.append(_tok(func.attr))
            return
        if isinstance(func, ast.Name):
            passes_tracked = any(
                isinstance(arg, ast.Name) and arg.id in self._tracked
                for arg in node.args
            )
            for arg in node.args:
                if not (isinstance(arg, ast.Name)
                        and arg.id in self._tracked):
                    self._emit_expr(arg, out)
            for keyword in node.keywords:
                self._emit_expr(keyword.value, out)
            if passes_tracked and func.id in self.functions:
                out.extend(self.shape_of(func.id))
            return
        self._emit_expr(func, out)
        for arg in node.args:
            self._emit_expr(arg, out)
        for keyword in node.keywords:
            self._emit_expr(keyword.value, out)

    def _emit_comprehension(self, node: ast.expr, out: List) -> None:
        generators = node.generators
        self._emit_expr(generators[0].iter, out)
        inner: List = []
        for condition in generators[0].ifs:
            self._emit_expr(condition, inner)
        for generator in generators[1:]:
            self._emit_expr(generator.iter, inner)
            for condition in generator.ifs:
                self._emit_expr(condition, inner)
        if isinstance(node, ast.DictComp):
            self._emit_expr(node.key, inner)
            self._emit_expr(node.value, inner)
        else:
            self._emit_expr(node.elt, inner)
        out.append(("rep", _normalize(inner)))


def _pair_name(name: str) -> Optional[Tuple[str, str]]:
    """(pair key, side) if the function name follows a codec convention."""
    for encode_prefix, decode_prefix in PAIR_PREFIXES:
        if name.startswith(encode_prefix):
            return name[len(encode_prefix):], "pack"
        if name.startswith(decode_prefix):
            return name[len(decode_prefix):], "unpack"
    return None


@register_rule
class CodecSymmetryRule(Rule):
    name = "codec-symmetry"
    description = (
        "Packer writes in each encode_* must mirror the Unpacker reads in "
        "its paired decode_* (same widths, same order)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.matching(*SCOPE):
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterable[Finding]:
        packer = _StreamExtractor(module, "pack")
        unpacker = _StreamExtractor(module, "unpack")
        pairs: Dict[str, Dict[str, ast.FunctionDef]] = {}
        for name, func in top_level_functions(module.tree).items():
            paired = _pair_name(name)
            if paired is not None:
                key, side = paired
                pairs.setdefault(key, {})[side] = func

        for key in sorted(pairs):
            sides = pairs[key]
            pack_fn = sides.get("pack")
            unpack_fn = sides.get("unpack")
            if pack_fn is not None and unpack_fn is None:
                if packer.shape_of(pack_fn.name):
                    yield self.finding(
                        module.path, pack_fn.lineno,
                        f"encoder {pack_fn.name!r} has no matching decoder "
                        f"— bytes written here are never read back",
                        symbol=pack_fn.name,
                    )
                continue
            if unpack_fn is not None and pack_fn is None:
                if unpacker.shape_of(unpack_fn.name):
                    yield self.finding(
                        module.path, unpack_fn.lineno,
                        f"decoder {unpack_fn.name!r} has no matching encoder "
                        f"— it reads bytes nothing writes",
                        symbol=unpack_fn.name,
                    )
                continue
            if pack_fn is None or unpack_fn is None:
                continue
            pack_shape = packer.shape_of(pack_fn.name)
            unpack_shape = unpacker.shape_of(unpack_fn.name)
            if pack_shape != unpack_shape:
                yield self.finding(
                    module.path, unpack_fn.lineno,
                    f"codec pair {pack_fn.name!r} (line {pack_fn.lineno}) / "
                    f"{unpack_fn.name!r} is asymmetric: "
                    f"writes [{_render(pack_shape)}] but reads "
                    f"[{_render(unpack_shape)}]",
                    symbol=unpack_fn.name,
                )
