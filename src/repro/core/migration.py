"""MigrationTP and the homogeneous live-migration baseline (§3.3, §4.3).

Both follow the classic pre-copy algorithm: iterative memory-copy rounds
while the VM runs, then a stop-and-copy of the residual dirty set.  The two
differences MigrationTP introduces are:

* **proxies** on each side translate the VM_i State through UISR on the wire
  (guest pages are never translated — they are hypervisor-independent);
* the destination runs a *different* hypervisor; with kvmtool on the KVM
  side, destination activation is ~27x cheaper than Xen's toolstack path,
  which is why MigrationTP's downtime undercuts Xen->Xen (Table 4).

The Xen baseline also models Xen's *sequential receive side* (the paper's
explanation for the downtime variance when migrating many VMs at once,
Fig. 8/9): concurrent incoming migrations queue for the final activation.
"""

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import MigrationError
from repro.guest.drivers import PassthroughDriver
from repro.guest.image import GuestImage
from repro.guest.vm import VirtualMachine
from repro.hw.machine import Machine
from repro.hw.network import Fabric
from repro.hypervisors.base import Domain, Hypervisor
from repro.obs import NULL_TRACER, Span
from repro.sim.clock import SimClock
from repro.core import wire
from repro.core.timings import DEFAULT_COST_MODEL, CostModel
from repro.core.uisr.codec import encode_uisr
from repro.core.uisr.registry import ConverterRegistry, default_registry


@dataclass
class PreCopyRound:
    """One iteration of the pre-copy loop."""

    index: int
    bytes_sent: int
    duration_s: float
    dirty_after_bytes: int


@dataclass
class MigrationReport:
    """Outcome of migrating one VM."""

    vm_name: str
    source: str
    destination: str
    heterogeneous: bool
    rounds: List[PreCopyRound] = field(default_factory=list)
    precopy_s: float = 0.0
    downtime_s: float = 0.0
    total_s: float = 0.0
    bytes_transferred: int = 0
    #: wire-protocol accounting (metadata stream; page payloads are modeled)
    wire_messages: int = 0
    wire_bytes: int = 0
    pages_resent: int = 0
    #: page-record dedup on the wire (repro.io stream-scoped digest table)
    wire_unique_pages: int = 0
    wire_dedup_hits: int = 0
    wire_dedup_ratio: float = 1.0
    guest_digest_preserved: bool = False

    @property
    def round_count(self) -> int:
        return len(self.rounds)


def plan_precopy(memory_bytes: int, rate_bytes_s: float,
                 dirty_rate_bytes_s: float,
                 cost: CostModel) -> List[PreCopyRound]:
    """Compute the pre-copy rounds for one VM.

    Round 1 ships all memory; round *k* ships what was dirtied during round
    *k-1*.  The loop exits when the residual dirty set falls under the
    stop threshold (it then moves in the stop-and-copy) or when the round
    budget is exhausted (write-heavy guests never converge further).
    """
    if rate_bytes_s <= 0:
        raise MigrationError("migration needs positive link rate")
    rounds: List[PreCopyRound] = []
    to_send = memory_bytes
    threshold = max(1, int(memory_bytes * cost.stop_threshold_fraction))
    for index in range(1, cost.max_precopy_rounds + 1):
        duration = to_send / rate_bytes_s + cost.migration_round_overhead_s
        dirtied = min(memory_bytes, int(dirty_rate_bytes_s * duration))
        rounds.append(PreCopyRound(
            index=index,
            bytes_sent=to_send,
            duration_s=duration,
            dirty_after_bytes=dirtied,
        ))
        to_send = dirtied
        if dirtied <= threshold:
            break
        if dirty_rate_bytes_s >= rate_bytes_s:
            break  # pre-copy cannot converge; cut to stop-and-copy
    return rounds


class _MigrationBase:
    """Shared mechanics: plan rounds, move guest pages, account time."""

    def __init__(self, fabric: Fabric, source: Machine, destination: Machine,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 tracer=NULL_TRACER):
        if source is destination:
            raise MigrationError("source and destination must differ")
        if source.hypervisor is None or destination.hypervisor is None:
            raise MigrationError("both machines need a booted hypervisor")
        self.fabric = fabric
        self.source = source
        self.destination = destination
        self.cost = cost_model
        self.tracer = tracer
        self.link = fabric.link_between(source, destination)

    def _check_migratable(self, vm: VirtualMachine) -> None:
        for driver in vm.devices:
            if isinstance(driver, PassthroughDriver):
                raise MigrationError(
                    f"VM {vm.name}: pass-through device {driver.name} "
                    f"forbids live migration (§4.2.3)"
                )

    def _stream_precopy(self, vm: VirtualMachine,
                        rounds: List[PreCopyRound],
                        stream: "wire.MigrationStream",
                        guest_writes_rng: Optional[random.Random]
                        ) -> List[int]:
        """Run the pre-copy rounds over the wire protocol.

        Dirty logging (Xen's log-dirty mode / ``KVM_GET_DIRTY_LOG``) is
        enabled for the duration: round 1 ships every page; while a round
        is in flight the guest may keep writing (``guest_writes_rng``), and
        each subsequent round re-sends exactly what the dirty log recorded.
        Returns the GFNs still dirty when the VM pauses — the stop-and-copy
        set.
        """
        image = vm.image
        stream.send(wire.Hello(
            vm_name=vm.name,
            source_hypervisor=self.source.hypervisor.kind.value,
            target_hypervisor=self.destination.hypervisor.kind.value,
            vcpus=vm.config.vcpus,
            memory_bytes=image.size_bytes,
            page_size=image.page_size,
        ))
        image.start_dirty_logging()
        all_pages = [(gfn, image.read_page(gfn))
                     for gfn in range(image.page_count)]
        wire.send_pages(stream, 1, all_pages)

        for prior, current in zip(rounds, rounds[1:]):
            self._simulate_guest_writes(vm, prior, guest_writes_rng)
            dirtied = image.read_and_clear_dirty_log()
            wire.send_pages(
                stream, current.index,
                [(gfn, image.read_page(gfn)) for gfn in dirtied],
            )
        self._simulate_guest_writes(vm, rounds[-1], guest_writes_rng)
        residual_gfns = image.read_and_clear_dirty_log()
        image.stop_dirty_logging()
        return residual_gfns

    @staticmethod
    def _simulate_guest_writes(vm: VirtualMachine, round_: PreCopyRound,
                               rng: Optional[random.Random]) -> None:
        """Guest stores issued while ``round_`` was in flight.

        With no rng the guest is idle (the planner still charges transfer
        time for its nominal dirty rate, but no contents change and the
        dirty log stays empty).
        """
        if rng is None:
            return
        image = vm.image
        count = min(image.page_count,
                    round_.dirty_after_bytes // image.page_size)
        for gfn in rng.sample(range(image.page_count), count):
            image.write_page(gfn, rng.getrandbits(63) | 1)

    def _stream_stopcopy(self, vm: VirtualMachine, residual_gfns: List[int],
                         state_blob: bytes,
                         stream: "wire.MigrationStream") -> None:
        """Ship the residual dirty set + VM_i State, then DONE."""
        image = vm.image
        wire.send_pages(
            stream, 0,
            [(gfn, image.read_page(gfn)) for gfn in residual_gfns],
        )
        stream.send(wire.UISRPayload(blob=state_blob))
        stream.send(wire.Done(final_digest=image.content_digest()))

    def _receive_guest(self, vm: VirtualMachine,
                       stream: "wire.MigrationStream") -> GuestImage:
        """Destination proxy: rebuild the guest image from the stream."""
        receiver = wire.StreamReceiver()
        for message in stream.receive_all():
            receiver.feed(message)
        hello = receiver.hello
        if hello is None or hello.vm_name != vm.name:
            raise MigrationError("migration stream does not match the VM")
        dst_image = GuestImage(
            self.destination.memory, hello.memory_bytes,
            page_size=hello.page_size, seed=vm.config.seed,
        )
        for gfn, digest in receiver.page_digests.items():
            dst_image.write_page(gfn, digest)
        receiver.finish(dst_image.content_digest())
        self._received_state_blob = receiver.uisr_blob
        return dst_image

    def _flow_rate(self, concurrent: int) -> float:
        return self.link.pipe.flow_rate(concurrent)

    def _record_spans(self, report: "MigrationReport", start_s: float,
                      pause_s: float, flavor: str) -> None:
        """Record the migration's timeline (precomputed; costs nothing when
        the tracer is the shared no-op)."""
        if not self.tracer.enabled:
            return
        track = report.vm_name
        self.tracer.add(Span(
            f"{flavor} {report.vm_name}", "migration",
            start_s, start_s + report.total_s, track=track,
            args={"source": report.source,
                  "destination": report.destination},
        ))
        t = start_s + self.cost.migration_setup_s
        for round_ in report.rounds:
            self.tracer.add(Span(
                f"pre-copy round {round_.index}", "precopy",
                t, t + round_.duration_s, track=track,
                args={"bytes": round_.bytes_sent},
            ))
            t += round_.duration_s
        self.tracer.add(Span(
            "stop-and-copy", "downtime",
            pause_s, pause_s + report.downtime_s, track=track,
        ))


class LiveMigration(_MigrationBase):
    """Homogeneous live migration (the Xen->Xen baseline of Table 4)."""

    def __init__(self, fabric: Fabric, source: Machine, destination: Machine,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 tracer=NULL_TRACER):
        super().__init__(fabric, source, destination, cost_model,
                         tracer=tracer)
        if source.hypervisor.kind is not destination.hypervisor.kind:
            raise MigrationError(
                "LiveMigration requires homogeneous hypervisors; "
                "use MigrationTP for heterogeneous ones"
            )

    def migrate(self, domain: Domain, clock: Optional[SimClock] = None,
                dirty_rate_bytes_s: float = 1 << 20,
                concurrent: int = 1,
                receive_queue_position: int = 0,
                guest_writes_rng: Optional[random.Random] = None
                ) -> MigrationReport:
        """Migrate one domain; ``receive_queue_position`` models Xen's
        serialized receive side (position 0 = first in the queue).

        Pass ``guest_writes_rng`` to actually mutate guest pages during
        pre-copy (the dirtied pages are re-sent and the destination must
        still match the source's state at pause time).
        """
        clock = clock or SimClock()
        src_hv: Hypervisor = self.source.hypervisor
        dst_hv: Hypervisor = self.destination.hypervisor
        vm = domain.vm
        self._check_migratable(vm)
        start = clock.now

        report = MigrationReport(
            vm_name=vm.name,
            source=f"{self.source.name}/{src_hv.kind.value}",
            destination=f"{self.destination.name}/{dst_hv.kind.value}",
            heterogeneous=False,
        )

        rate = self._flow_rate(concurrent)
        rounds = plan_precopy(vm.image.size_bytes, rate, dirty_rate_bytes_s,
                              self.cost)
        report.rounds = rounds
        report.precopy_s = (self.cost.migration_setup_s
                            + sum(r.duration_s for r in rounds))
        report.bytes_transferred = sum(r.bytes_sent for r in rounds)

        # The pre-copy rounds travel the wire protocol.
        stream = wire.MigrationStream(tracer=self.tracer)
        residual_gfns = self._stream_precopy(vm, rounds, stream,
                                             guest_writes_rng)
        clock.advance(report.precopy_s)

        # Stop-and-copy: pause, ship the residual dirty set + platform
        # state, activate at the destination.  Xen's receive side
        # serializes activations.
        pause_time = clock.now
        vm.pause(pause_time)
        residual = rounds[-1].dirty_after_bytes
        final_copy_s = residual / rate
        activation_s = self.cost.stopcopy_overhead_s(
            dst_hv.kind, vm.config.vcpus
        )
        queue_wait_s = receive_queue_position * activation_s
        report.downtime_s = final_copy_s + activation_s + queue_wait_s
        report.bytes_transferred += residual
        clock.advance(report.downtime_s)

        state_blob = src_hv.save_platform_state(domain)
        self._stream_stopcopy(vm, residual_gfns, state_blob, stream)
        final_digest = vm.image.content_digest()
        report.wire_messages = stream.messages_sent
        report.wire_bytes = stream.bytes_sent
        stats = stream.page_stats
        report.wire_unique_pages = stats.unique_digests
        report.wire_dedup_hits = stats.dedup_hits
        report.wire_dedup_ratio = stats.ratio
        report.pages_resent = sum(
            min(vm.image.page_count, r.dirty_after_bytes // vm.image.page_size)
            for r in rounds[:-1]
        ) + len(residual_gfns)

        # Destination proxy: rebuild the image, load the native state.  A
        # destination-side failure (e.g. out of memory) aborts the
        # migration; the source still owns the VM and simply resumes it.
        try:
            dst_image = self._receive_guest(vm, stream)
        except Exception as exc:
            vm.resume(clock.now)
            raise MigrationError(
                f"VM {vm.name}: destination failed during stop-and-copy; "
                f"resumed on the source: {exc}"
            ) from exc
        src_hv.detach_domain(domain.domid)
        vm.image.release()
        vm.image = dst_image
        new_domain = dst_hv.adopt_vm(vm)
        dst_hv.load_platform_state(new_domain, self._received_state_blob)
        vm.resume(clock.now)

        report.total_s = clock.now - start
        self._record_spans(report, start, pause_time, "live migration")
        report.guest_digest_preserved = (
            vm.image.content_digest() == final_digest
        )
        if not report.guest_digest_preserved:
            raise MigrationError(
                f"VM {vm.name}: guest memory corrupted during migration"
            )
        return report


class MigrationTP(_MigrationBase):
    """Heterogeneous live migration through UISR proxies (§3.3)."""

    def __init__(self, fabric: Fabric, source: Machine, destination: Machine,
                 registry: Optional[ConverterRegistry] = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 tracer=NULL_TRACER):
        super().__init__(fabric, source, destination, cost_model,
                         tracer=tracer)
        if source.hypervisor.kind is destination.hypervisor.kind:
            raise MigrationError(
                "MigrationTP expects heterogeneous hypervisors; "
                "use LiveMigration for the homogeneous case"
            )
        self.registry = registry or default_registry()

    def stage_plan(self, domain: Domain,
                   dirty_rate_bytes_s: float = 1 << 20,
                   concurrent: int = 1) -> "StagePlan":
        """The staged cost breakdown for migrating ``domain``.

        Predicts :meth:`migrate` without executing it: the same
        quiesce/capture/transfer/restore stages the planners charge, plus
        the UISR proxy pair in the translate stage (``charge_proxy`` —
        the mechanism simulation bills it, the Fig. 13-calibrated
        planners do not).
        """
        # Deferred: repro.core.pipeline imports plan_precopy from here.
        from repro.core.pipeline import MigrationPipeline

        pipeline = MigrationPipeline(
            self._flow_rate(concurrent), self.cost,
            self.destination.hypervisor.kind, charge_proxy=True,
        )
        vm = domain.vm
        return pipeline.plan_vm(vm.name, vm.image.size_bytes,
                                dirty_rate_bytes_s, vm.config.vcpus)

    def migrate(self, domain: Domain, clock: Optional[SimClock] = None,
                dirty_rate_bytes_s: float = 1 << 20,
                concurrent: int = 1,
                guest_writes_rng: Optional[random.Random] = None
                ) -> MigrationReport:
        """Migrate one domain across hypervisors."""
        clock = clock or SimClock()
        src_hv: Hypervisor = self.source.hypervisor
        dst_hv: Hypervisor = self.destination.hypervisor
        vm = domain.vm
        self._check_migratable(vm)
        start = clock.now

        report = MigrationReport(
            vm_name=vm.name,
            source=f"{self.source.name}/{src_hv.kind.value}",
            destination=f"{self.destination.name}/{dst_hv.kind.value}",
            heterogeneous=True,
        )

        rate = self._flow_rate(concurrent)
        rounds = plan_precopy(vm.image.size_bytes, rate, dirty_rate_bytes_s,
                              self.cost)
        report.rounds = rounds
        report.precopy_s = (self.cost.migration_setup_s
                            + sum(r.duration_s for r in rounds))
        report.bytes_transferred = sum(r.bytes_sent for r in rounds)

        # The pre-copy rounds travel the wire protocol; guest pages are
        # hypervisor-independent and never translated (§3.3).
        stream = wire.MigrationStream(tracer=self.tracer)
        residual_gfns = self._stream_precopy(vm, rounds, stream,
                                             guest_writes_rng)
        clock.advance(report.precopy_s)

        # Stop-and-copy with proxy translation.  The source proxy builds the
        # UISR; the destination proxy restores into the target's format.  No
        # queueing: kvmtool (and our Xen restore path) activate in parallel.
        pause_time = clock.now
        vm.pause(pause_time)
        residual = rounds[-1].dirty_after_bytes
        final_copy_s = residual / rate
        activation_s = self.cost.stopcopy_overhead_s(
            dst_hv.kind, vm.config.vcpus
        )
        report.downtime_s = (final_copy_s + activation_s
                             + 2 * self.cost.proxy_translate_s)
        report.bytes_transferred += residual
        clock.advance(report.downtime_s)

        # Source proxy: VM_i State -> UISR, encoded onto the wire.
        to_uisr = self.registry.to_uisr(src_hv.kind)
        uisr_state = to_uisr(src_hv, domain, pram_file=None)
        self._stream_stopcopy(vm, residual_gfns, encode_uisr(uisr_state),
                              stream)
        final_digest = vm.image.content_digest()
        report.wire_messages = stream.messages_sent
        report.wire_bytes = stream.bytes_sent
        stats = stream.page_stats
        report.wire_unique_pages = stats.unique_digests
        report.wire_dedup_hits = stats.dedup_hits
        report.wire_dedup_ratio = stats.ratio
        report.pages_resent = sum(
            min(vm.image.page_count, r.dirty_after_bytes // vm.image.page_size)
            for r in rounds[:-1]
        ) + len(residual_gfns)

        # Destination proxy: rebuild the image from the stream, decode the
        # UISR that arrived on the wire, restore into the target's format.
        # Destination-side failures abort: the source resumes the VM.
        from repro.core.uisr.codec import decode_uisr

        try:
            dst_image = self._receive_guest(vm, stream)
            arrived_state = decode_uisr(self._received_state_blob)
        except Exception as exc:
            vm.resume(clock.now)
            raise MigrationError(
                f"VM {vm.name}: destination failed during stop-and-copy; "
                f"resumed on the source: {exc}"
            ) from exc
        src_hv.detach_domain(domain.domid)
        vm.image.release()
        vm.image = dst_image

        from_uisr = self.registry.from_uisr(dst_hv.kind)
        new_domain = dst_hv.adopt_vm(vm)
        from_uisr(dst_hv, new_domain, arrived_state, pram_fs=None)
        vm.resume(clock.now)

        report.total_s = clock.now - start
        self._record_spans(report, start, pause_time, "MigrationTP")
        report.guest_digest_preserved = (
            vm.image.content_digest() == final_digest
        )
        if not report.guest_digest_preserved:
            raise MigrationError(
                f"VM {vm.name}: guest memory corrupted during MigrationTP"
            )
        return report


def migrate_group(migrator, domains: List[Domain],
                  clock: Optional[SimClock] = None,
                  dirty_rate_bytes_s: float = 1 << 20) -> List[MigrationReport]:
    """Migrate several VMs concurrently over one link.

    All flows share the link fairly (pre-copy slows down N-fold).  For the
    Xen baseline, stop-and-copy activations additionally queue at the
    receiver, reproducing Fig. 8's growing downtime variance; MigrationTP
    activates in parallel and keeps downtime flat.
    """
    clock = clock or SimClock()
    reports = []
    concurrent = len(domains)
    for position, domain in enumerate(domains):
        vm_clock = SimClock(clock.now)
        if isinstance(migrator, LiveMigration):
            report = migrator.migrate(
                domain, vm_clock, dirty_rate_bytes_s=dirty_rate_bytes_s,
                concurrent=concurrent, receive_queue_position=position,
            )
        else:
            report = migrator.migrate(
                domain, vm_clock, dirty_rate_bytes_s=dirty_rate_bytes_s,
                concurrent=concurrent,
            )
        reports.append(report)
    if reports:
        clock.advance(max(r.total_s for r in reports))
    return reports
