"""Darknet MNIST-training model (Table 6).

The paper trains for 100 iterations of ~2.044 s each and reports the
average/longest iteration under four conditions: no maintenance, Xen->Xen
migration, InPlaceTP, and MigrationTP.  An iteration's duration stretches
when the VM is paused (InPlaceTP's downtime lands inside one iteration) or
when a migration's dirty-page tracking steals cycles.
"""

from dataclasses import dataclass
from typing import List

from repro.errors import ReproError
from repro.workloads.base import HostTimeline

BASE_ITERATION_S = 2.044


@dataclass
class TrainingRun:
    """Result of one simulated training session."""

    iteration_times: List[float]

    @property
    def mean_s(self) -> float:
        return sum(self.iteration_times) / len(self.iteration_times)

    @property
    def longest_s(self) -> float:
        return max(self.iteration_times)


class DarknetWorkload:
    """Neural-network training: fixed compute per iteration."""

    def __init__(self, iteration_s: float = BASE_ITERATION_S):
        if iteration_s <= 0:
            raise ReproError("iteration time must be positive")
        self.iteration_s = iteration_s

    def train(self, iterations: int, timeline: HostTimeline,
              step_s: float = 0.01) -> TrainingRun:
        """Run ``iterations`` against the timeline.

        Integrates compute progress over small steps: paused time contributes
        nothing; degraded intervals contribute at their throughput factor.
        Training is compute-bound, so network blackouts do not stall it —
        only the pause window does (the paper's InPlaceTP iteration is
        base + downtime, not base + downtime + NIC wait).
        """
        if iterations < 1:
            raise ReproError("need at least one iteration")
        times: List[float] = []
        t = 0.0
        for _ in range(iterations):
            start = t
            work = 0.0
            while work < self.iteration_s:
                if timeline.is_paused(t):
                    t += step_s
                    continue
                factor = timeline.degradation_factor(t)
                work += step_s * factor
                t += step_s
            times.append(t - start)
        return TrainingRun(iteration_times=times)
