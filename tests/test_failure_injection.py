"""Failure-injection tests: aborts, rollbacks and points of no return."""

import pytest

from repro.errors import TransplantError, MigrationError
from repro.guest.drivers import NetworkDriver, PassthroughDriver
from repro.guest.vm import VMState
from repro.hw.machine import Machine, MachineSpec
from repro.hypervisors import KVMHypervisor
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.inplace import InPlaceTP
from repro.core.migration import MigrationTP

GIB = 1024 ** 3


class Bomb(Exception):
    """The injected failure."""


def failing_at(phase_to_fail):
    def hook(phase):
        if phase == phase_to_fail:
            raise Bomb(f"injected at {phase}")
    return hook


ABORTABLE_PHASES = ["stage", "prepare", "pram", "pause", "translate",
                    "store-uisr"]


class TestInPlaceRollback:
    @pytest.mark.parametrize("phase", ABORTABLE_PHASES)
    def test_abort_resumes_vms_on_source(self, xen_host_factory, phase):
        machine = xen_host_factory(vm_count=2)
        vms = [d.vm for d in machine.hypervisor.domains.values()]
        digests = [vm.image.content_digest() for vm in vms]
        transplant = InPlaceTP(machine, HypervisorKind.KVM,
                               failure_hook=failing_at(phase))
        with pytest.raises(TransplantError, match="aborted"):
            transplant.run(SimClock())
        assert transplant.rolled_back
        # Still Xen, VMs running, memory intact, nothing pinned or staged.
        assert machine.hypervisor.kind is HypervisorKind.XEN
        for vm, digest in zip(vms, digests):
            assert vm.state is VMState.RUNNING
            assert vm.image.content_digest() == digest
        assert not machine.memory.pinned_frames()
        assert machine.staged_kernel is None

    @pytest.mark.parametrize("phase", ABORTABLE_PHASES)
    def test_abort_leaves_no_memory_leak(self, xen_host_factory, phase):
        machine = xen_host_factory(vm_count=2)
        before = machine.memory.allocated_bytes
        transplant = InPlaceTP(machine, HypervisorKind.KVM,
                               failure_hook=failing_at(phase))
        with pytest.raises(TransplantError):
            transplant.run(SimClock())
        assert machine.memory.allocated_bytes == before

    def test_abort_restores_devices(self, xen_host_factory):
        machine = xen_host_factory(vm_count=1)
        vm = next(iter(machine.hypervisor.domains.values())).vm
        nic = NetworkDriver("net0")
        gpu = PassthroughDriver("gpu0")
        vm.attach_device(nic)
        vm.attach_device(gpu)
        transplant = InPlaceTP(machine, HypervisorKind.KVM,
                               failure_hook=failing_at("translate"))
        with pytest.raises(TransplantError):
            transplant.run(SimClock())
        assert nic.state.value == "active"
        assert gpu.state.value == "active"

    def test_retry_after_abort_succeeds(self, xen_host_factory):
        machine = xen_host_factory(vm_count=2)
        vms = [d.vm for d in machine.hypervisor.domains.values()]
        digests = [vm.image.content_digest() for vm in vms]
        failing = InPlaceTP(machine, HypervisorKind.KVM,
                            failure_hook=failing_at("pram"))
        with pytest.raises(TransplantError):
            failing.run(SimClock())
        # A clean retry on the same machine works.
        report = InPlaceTP(machine, HypervisorKind.KVM).run(SimClock())
        assert report.guest_digests_preserved
        assert machine.hypervisor.kind is HypervisorKind.KVM
        assert [vm.image.content_digest() for vm in vms] == digests

    def test_failure_after_reboot_is_not_rolled_back(self, xen_host_factory):
        """The micro-reboot is the point of no return: a post-reboot
        failure surfaces as-is and the machine now runs the target."""
        machine = xen_host_factory(vm_count=1)
        transplant = InPlaceTP(machine, HypervisorKind.KVM,
                               failure_hook=failing_at("reboot"))
        with pytest.raises(Bomb):
            transplant.run(SimClock())
        assert not transplant.rolled_back
        assert machine.hypervisor.kind is HypervisorKind.KVM

    def test_hook_sees_phases_in_order(self, xen_host_factory):
        machine = xen_host_factory(vm_count=1)
        seen = []
        InPlaceTP(machine, HypervisorKind.KVM,
                  failure_hook=seen.append).run(SimClock())
        assert seen == ["stage", "prepare", "pram", "pause", "translate",
                        "store-uisr", "reboot", "restore"]
        assert seen[:6] == ABORTABLE_PHASES


class TestMigrationAbort:
    def test_destination_oom_resumes_source(self, xen_host_factory, fabric):
        # Destination machine too small to hold the incoming guest.
        tiny_spec = MachineSpec(
            name="tiny", cores=2, threads=4, frequency_ghz=2.0,
            ram_bytes=512 * 1024 * 1024, nic_gbps=1.0, nic_init_s=1.0,
        )
        source = xen_host_factory(name="oom-src", memory_gib=1.0)
        destination = Machine(tiny_spec, name="oom-dst")
        KVMHypervisor().boot(destination)
        fabric.connect(source, destination)
        domain = next(iter(source.hypervisor.domains.values()))
        vm = domain.vm
        digest = vm.image.content_digest()
        with pytest.raises(MigrationError, match="resumed on the source"):
            MigrationTP(fabric, source, destination).migrate(domain)
        # Source still owns and runs the VM, bit-identical.
        assert vm.state is VMState.RUNNING
        assert domain.domid in source.hypervisor.domains
        assert vm.image.content_digest() == digest
        assert not destination.hypervisor.domains

    def test_retry_to_healthy_destination(self, xen_host_factory,
                                          kvm_host_factory, fabric):
        tiny_spec = MachineSpec(
            name="tiny2", cores=2, threads=4, frequency_ghz=2.0,
            ram_bytes=512 * 1024 * 1024, nic_gbps=1.0, nic_init_s=1.0,
        )
        source = xen_host_factory(name="r-src", memory_gib=1.0)
        bad = Machine(tiny_spec, name="r-bad")
        KVMHypervisor().boot(bad)
        good = kvm_host_factory(name="r-good")
        fabric.connect(source, bad)
        fabric.connect(source, good)
        domain = next(iter(source.hypervisor.domains.values()))
        with pytest.raises(MigrationError):
            MigrationTP(fabric, source, bad).migrate(domain)
        report = MigrationTP(fabric, source, good).migrate(domain)
        assert report.guest_digest_preserved
        assert len(good.hypervisor.domains) == 1
