"""libvirt-like façade (the G2 interaction path of §4.5.1).

One connection object per host exposes the same verbs regardless of whether
Xen or KVM runs underneath — exactly the property that lets HyperTP swap the
hypervisor without sysadmins noticing.  URIs follow libvirt's convention
(``xen:///system``, ``qemu:///system``).
"""

from typing import Dict, List

from repro.errors import OrchestratorError
from repro.guest.vm import VMConfig, VMState
from repro.hw.machine import Machine
from repro.hypervisors.base import Domain, HypervisorKind

_URI_BY_KIND = {
    HypervisorKind.XEN: "xen:///system",
    HypervisorKind.KVM: "qemu:///system",
    HypervisorKind.NOVA: "nova:///system",
}


class LibvirtDomainHandle:
    """A stable per-VM handle that survives hypervisor transplants."""

    def __init__(self, connection: "LibvirtConnection", vm_name: str):
        self._conn = connection
        self.vm_name = vm_name

    def _domain(self) -> Domain:
        return self._conn._domain_by_name(self.vm_name)

    def info(self) -> Dict[str, object]:
        domain = self._domain()
        return {
            "name": self.vm_name,
            "state": domain.vm.state.value,
            "vcpus": domain.vm.config.vcpus,
            "memory_bytes": domain.vm.image.size_bytes,
            "hypervisor": self._conn.uri,
        }

    def suspend(self, now: float = 0.0) -> None:
        self._conn.hypervisor.pause_domain(self._domain().domid, now)

    def resume(self, now: float = 0.0) -> None:
        self._conn.hypervisor.resume_domain(self._domain().domid, now)

    def is_active(self) -> bool:
        return self._domain().vm.state is VMState.RUNNING


class LibvirtConnection:
    """A hypervisor-agnostic control connection to one host."""

    def __init__(self, machine: Machine):
        if machine.hypervisor is None:
            raise OrchestratorError(f"{machine.name}: no hypervisor to connect to")
        self.machine = machine

    @property
    def hypervisor(self):
        hv = self.machine.hypervisor
        if hv is None:
            raise OrchestratorError(
                f"{self.machine.name}: hypervisor connection lost"
            )
        return hv

    @property
    def uri(self) -> str:
        """The libvirt URI — this is how an admin sees the transplant."""
        return _URI_BY_KIND[self.hypervisor.kind]

    # -- domain management ---------------------------------------------------

    def define_and_start(self, config: VMConfig) -> LibvirtDomainHandle:
        self.hypervisor.create_vm(config)
        return LibvirtDomainHandle(self, config.name)

    def lookup(self, vm_name: str) -> LibvirtDomainHandle:
        self._domain_by_name(vm_name)  # existence check
        return LibvirtDomainHandle(self, vm_name)

    def list_domains(self) -> List[str]:
        return sorted(d.vm.name for d in self.hypervisor.domains.values())

    def destroy(self, vm_name: str) -> None:
        domain = self._domain_by_name(vm_name)
        self.hypervisor.destroy_domain(domain.domid)

    def _domain_by_name(self, vm_name: str) -> Domain:
        for domain in self.hypervisor.domains.values():
            if domain.vm.name == vm_name:
                return domain
        raise OrchestratorError(
            f"{self.machine.name}: no domain named {vm_name!r}"
        )
