"""Tests for the InPlaceTP workflow (Fig. 3, Fig. 6/7/10 behaviours)."""

import pytest

from repro.errors import TransplantError
from repro.guest.drivers import NetworkDriver, PassthroughDriver
from repro.hw.machine import M1_SPEC, M2_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.inplace import InPlaceTP
from repro.core.optimizations import OptimizationConfig


def run_inplace(machine, target=HypervisorKind.KVM, **kwargs):
    transplant = InPlaceTP(machine, target, **kwargs)
    return transplant.run(SimClock())


class TestBasics:
    def test_requires_hypervisor(self, m1):
        with pytest.raises(TransplantError):
            InPlaceTP(m1, HypervisorKind.KVM)

    def test_requires_different_target(self, xen_host):
        with pytest.raises(TransplantError):
            InPlaceTP(xen_host, HypervisorKind.XEN)

    def test_machine_runs_target_after(self, xen_host):
        run_inplace(xen_host)
        assert xen_host.hypervisor.kind is HypervisorKind.KVM

    def test_vms_running_after(self, xen_host):
        old_domains = list(xen_host.hypervisor.domains.values())
        run_inplace(xen_host)
        kvm = xen_host.hypervisor
        assert len(kvm.domains) == len(old_domains)
        for domain in kvm.domains.values():
            assert domain.vm.state.value == "running"

    def test_guest_digests_preserved(self, xen_host):
        report = run_inplace(xen_host)
        assert report.guest_digests_preserved

    def test_management_state_rebuilt(self, xen_host_factory):
        machine = xen_host_factory(vm_count=3, vcpus=2)
        run_inplace(machine)
        assert machine.hypervisor.scheduler.queued_vcpus() == 6

    def test_ephemeral_memory_returned(self, xen_host):
        before = xen_host.memory.allocated_bytes
        run_inplace(xen_host)
        # Guest memory survives; UISR + PRAM metadata are freed; the exact
        # total differs only by hypervisor bookkeeping, not by guest pages.
        assert xen_host.memory.allocated_bytes == before
        assert not xen_host.memory.pinned_frames()

    def test_nic_back_up_at_end(self, xen_host):
        run_inplace(xen_host)
        assert xen_host.nic.link_up

    def test_per_vm_downtime_recorded(self, xen_host_factory):
        machine = xen_host_factory(vm_count=2)
        report = run_inplace(machine)
        assert len(report.per_vm_downtime) == 2
        for downtime in report.per_vm_downtime.values():
            assert downtime == pytest.approx(report.downtime_s, rel=0.01)


class TestPaperAnchors:
    """Calibration anchors from Fig. 6 (1 vCPU / 1 GB, Xen->KVM)."""

    def test_m1_breakdown(self, xen_host_factory):
        report = run_inplace(xen_host_factory(spec=M1_SPEC))
        assert report.pram_s == pytest.approx(0.45, abs=0.1)
        assert report.translation_s == pytest.approx(0.08, abs=0.05)
        assert report.reboot_s == pytest.approx(1.52, abs=0.15)
        assert report.restoration_s == pytest.approx(0.12, abs=0.05)
        assert report.downtime_s == pytest.approx(1.7, abs=0.2)

    def test_m2_breakdown(self, xen_host_factory):
        report = run_inplace(xen_host_factory(spec=M2_SPEC))
        assert report.downtime_s == pytest.approx(3.01, abs=0.3)
        assert report.reboot_s == pytest.approx(2.40, abs=0.25)

    def test_reboot_dominates(self, xen_host_factory):
        # §5.2.1: Reboot is ~70 % of the transplantation time.
        report = run_inplace(xen_host_factory(spec=M1_SPEC))
        transplantation = (report.pram_s + report.translation_s
                           + report.reboot_s + report.restoration_s)
        assert report.reboot_s / transplantation > 0.6

    def test_network_reported_separately(self, xen_host_factory):
        report = run_inplace(xen_host_factory(spec=M1_SPEC))
        assert report.network_s == pytest.approx(6.6)
        assert report.downtime_with_network_s > report.downtime_s
        assert report.downtime_with_network_s == pytest.approx(8.2, abs=0.5)

    def test_kvm_to_xen_slower(self, xen_host_factory, kvm_host_factory):
        to_kvm = run_inplace(xen_host_factory(spec=M1_SPEC))
        machine = kvm_host_factory(vm_count=1)
        to_xen = run_inplace(machine, target=HypervisorKind.XEN)
        # Fig. 10: Xen's two-kernel boot dominates; ~7.8 s downtime on M1.
        assert to_xen.downtime_s > 2 * to_kvm.downtime_s
        assert to_xen.downtime_s == pytest.approx(7.8, abs=0.5)

    def test_pram_16kb_for_1gib(self, xen_host_factory):
        report = run_inplace(xen_host_factory())
        assert report.pram_metadata_bytes == 16 * 1024


class TestScalability:
    def test_vcpus_do_not_change_transplant_time(self, xen_host_factory):
        # Fig. 7a: vCPU count has no visible impact.
        small = run_inplace(xen_host_factory(vcpus=1))
        large = run_inplace(xen_host_factory(vcpus=10))
        assert large.downtime_s == pytest.approx(small.downtime_s, rel=0.05)

    def test_memory_grows_reboot_and_pram(self, xen_host_factory):
        # Fig. 7b: PRAM and Reboot grow with guest memory.
        small = run_inplace(xen_host_factory(memory_gib=1.0))
        large = run_inplace(xen_host_factory(memory_gib=12.0))
        assert large.pram_s > small.pram_s
        assert large.reboot_s > small.reboot_s
        assert large.restoration_s == pytest.approx(small.restoration_s,
                                                    abs=0.3)

    def test_downtime_stays_in_paper_range_m1(self, xen_host_factory):
        # §5.2.2: downtime between 1.7 s and 3.6 s on M1 across the sweeps.
        for memory in (1.0, 6.0, 12.0):
            report = run_inplace(xen_host_factory(memory_gib=memory))
            assert 1.4 <= report.downtime_s <= 4.0

    def test_m1_parallelizes_worse_than_m2(self, xen_host_factory):
        # Fig. 7c vs 7f: fewer cores => PRAM time grows faster with VM count.
        m1_1 = run_inplace(xen_host_factory(vm_count=1, spec=M1_SPEC))
        m1_12 = run_inplace(xen_host_factory(vm_count=12, spec=M1_SPEC))
        m2_1 = run_inplace(xen_host_factory(vm_count=1, spec=M2_SPEC))
        m2_12 = run_inplace(xen_host_factory(vm_count=12, spec=M2_SPEC))
        m1_growth = m1_12.pram_s / m1_1.pram_s
        m2_growth = m2_12.pram_s / m2_1.pram_s
        assert m1_growth > m2_growth


class TestDevices:
    def test_network_device_unplug_rescan(self, xen_host):
        vm = next(iter(xen_host.hypervisor.domains.values())).vm
        nic = NetworkDriver("net0")
        vm.attach_device(nic)
        run_inplace(xen_host)
        assert nic.state.value == "active"
        assert nic.tcp_connections_alive

    def test_passthrough_device_pause_resume(self, xen_host):
        vm = next(iter(xen_host.hypervisor.domains.values())).vm
        gpu = PassthroughDriver("gpu0")
        vm.attach_device(gpu)
        run_inplace(xen_host)
        assert gpu.state.value == "active"


class TestOptimizationAblation:
    def test_no_prepare_ahead_moves_pram_into_downtime(self, xen_host_factory):
        default = run_inplace(xen_host_factory())
        ablated = run_inplace(
            xen_host_factory(),
            optimizations=OptimizationConfig(prepare_ahead=False),
        )
        assert ablated.downtime_s == pytest.approx(
            default.downtime_s + ablated.pram_s, rel=0.05
        )

    def test_no_parallel_slower_with_many_vms(self, xen_host_factory):
        default = run_inplace(xen_host_factory(vm_count=6))
        ablated = run_inplace(
            xen_host_factory(vm_count=6),
            optimizations=OptimizationConfig(parallel=False),
        )
        assert ablated.pram_s > default.pram_s

    def test_no_huge_pages_blows_up_metadata(self, xen_host_factory):
        default = run_inplace(xen_host_factory())
        ablated = run_inplace(
            xen_host_factory(),
            optimizations=OptimizationConfig(huge_pages=False),
        )
        assert ablated.pram_metadata_bytes > 100 * default.pram_metadata_bytes
        assert ablated.downtime_s > default.downtime_s

    def test_no_early_restoration_slower(self, xen_host_factory):
        default = run_inplace(xen_host_factory())
        ablated = run_inplace(
            xen_host_factory(),
            optimizations=OptimizationConfig(early_restoration=False),
        )
        assert ablated.restoration_s > default.restoration_s

    def test_all_disabled_is_worst(self, xen_host_factory):
        default = run_inplace(xen_host_factory(vm_count=4))
        ablated = run_inplace(
            xen_host_factory(vm_count=4),
            optimizations=OptimizationConfig.all_disabled(),
        )
        assert ablated.downtime_s > 1.5 * default.downtime_s
        # Even fully de-optimised, guests survive intact.
        assert ablated.guest_digests_preserved
