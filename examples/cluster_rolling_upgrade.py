#!/usr/bin/env python3
"""Cluster-scale rolling upgrade (the §5.4 / Fig. 13 experiment).

Builds the paper's 10-host x 10-VM cluster (30 % streaming, 30 %
CPU+memory, 40 % idle), plans a rolling hypervisor upgrade with the
BtrPlace-style planner while varying the share of InPlaceTP-compatible
VMs, and reports how migration counts and total time fall as more VMs can
ride the micro-reboot.
"""

from repro.cluster import BtrPlacePlanner, PlanExecutor, UpgradeCampaign
from repro.cluster.model import build_paper_cluster


def inspect_one_plan():
    cluster = build_paper_cluster(inplace_fraction=0.5)
    planner = BtrPlacePlanner(cluster, group_size=2)
    plan = planner.plan()
    print("One 50 %-compatible campaign, group by group:")
    for group in plan.groups:
        upgrades = {a.node_name: a.vm_count for a in group.upgrades}
        print(f"  round {group.group_index}: offline {group.nodes}, "
              f"{len(group.migrations)} migrations, "
              f"in-place VMs per host {upgrades}")
    result = PlanExecutor().execute(plan)
    print(f"  => {result.migration_count} migrations "
          f"({result.migration_s / 60:.1f} min) + "
          f"{result.upgrade_count} host reboots "
          f"({result.upgrade_s:.0f} s) = {result.total_minutes:.1f} min\n")


def sweep():
    campaign = UpgradeCampaign()
    fractions = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    results = campaign.sweep(fractions)
    gains = UpgradeCampaign.time_gains(results)
    print("InPlaceTP share -> migrations, total time, gain (Fig. 13):")
    for result, gain in zip(results, gains):
        print(f"  {result.inplace_fraction:>4.0%}: "
              f"{result.migration_count:3d} migrations, "
              f"{result.total_minutes:5.1f} min, gain {gain:4.0%}  "
              f"{'#' * (result.migration_count // 4)}")
    print("\nPaper anchors: 154 migrations at 0 %; 109/-17 % at 20 %; "
          "25 migrations/-80 % at 80 % (3 min 54 s vs up to 19 min).")


def main():
    inspect_one_plan()
    sweep()


if __name__ == "__main__":
    main()
