"""Fig. 11 — Redis QPS through InPlaceTP (left) and MigrationTP (right).

Shapes to hold: InPlaceTP shows a ~9 s service interruption (downtime +
NIC re-init, in parallel) around the trigger, then ~37 % higher QPS on
KVM; MigrationTP shows the classic pre-copy throughput dip for ~78 s and a
negligible pause.
"""

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import make_host_pair, make_xen_host
from repro.core.migration import MigrationTP
from repro.core.transplant import HyperTP
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.workloads import (
    RedisWorkload,
    timeline_for_inplace,
    timeline_for_migration,
)

TRIGGER_T = 50.0
REDIS_DIRTY_RATE = 12 << 20  # an in-memory store keeps pages warm


def run_inplace():
    machine = make_xen_host(M1_SPEC, vm_count=1, vcpus=2, memory_gib=8.0)
    report = HyperTP().inplace(machine, HypervisorKind.KVM, SimClock())
    timeline = timeline_for_inplace(report, TRIGGER_T, HypervisorKind.XEN,
                                    HypervisorKind.KVM)
    series = RedisWorkload().run(200.0, timeline)
    z0, z1 = series.zero_span()
    return series, z0, z1


def run_migration():
    source, destination, fabric = make_host_pair(
        M1_SPEC, HypervisorKind.KVM, vcpus=2, memory_gib=8.0,
    )
    domain = next(iter(source.hypervisor.domains.values()))
    report = MigrationTP(fabric, source, destination).migrate(
        domain, dirty_rate_bytes_s=REDIS_DIRTY_RATE,
    )
    timeline = timeline_for_migration(report, TRIGGER_T, HypervisorKind.XEN,
                                      HypervisorKind.KVM,
                                      precopy_throughput_factor=0.6)
    series = RedisWorkload().run(260.0, timeline)
    return series, report


def summarize():
    inplace_series, z0, z1 = run_inplace()
    migration_series, migration_report = run_migration()
    before = inplace_series.mean_between(0, TRIGGER_T - 5)
    after = inplace_series.mean_between(z1 + 5, 200)
    dip = migration_series.mean_between(
        TRIGGER_T + 5, TRIGGER_T + migration_report.precopy_s - 5,
    )
    rows = [
        ["InPlaceTP interruption (s)", z1 - z0 + 1.0, "~9"],
        ["InPlaceTP QPS before (K)", before / 1000, "~30"],
        ["InPlaceTP QPS after (K)", after / 1000, "~41 (+37%)"],
        ["MigrationTP pre-copy span (s)", migration_report.precopy_s, "~78"],
        ["MigrationTP QPS during copy (K)", dip / 1000, "dip"],
        ["MigrationTP downtime (ms)", migration_report.downtime_s * 1000,
         "negligible"],
    ]
    return rows


def test_fig11_redis(benchmark):
    rows = benchmark(summarize)
    print_experiment("Fig. 11", "Redis through InPlaceTP and MigrationTP",
                     format_table(["metric", "measured", "paper"], rows))


if __name__ == "__main__":
    print_experiment("Fig. 11", "Redis through InPlaceTP and MigrationTP",
                     format_table(["metric", "measured", "paper"],
                                  summarize()))
