"""End-to-end window accounting for a sentinel run.

The fleet layer measures one campaign's disclosure->remediated window;
the sentinel measures the quantity the paper actually argues about
(§2.2, Fig. 1): *per-CVE* end-to-end windows over a whole feed, against
the patch-cycle counterfactual.  For each disclosed flaw the report
records when the fleet stopped being exposed and how — ``transplant``
(a campaign moved every exposed host), ``patch`` (the ordinary cycle got
there first, the Fig. 1a baseline), or ``not-exposed`` — plus the
exposure integral (host-days of open exposure, exact for the inventory's
piecewise-constant accounting).

The document is a deterministic function of ``(config, database)``:
sorted keys, sorted iteration, no wall-clock anywhere — the property the
CLI's rerun/``--workers`` byte-identity contract rests on.
"""

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fleet.metrics import WINDOW_BUCKETS, percentile
from repro.obs.metrics import MetricsRegistry
from repro.sentinel.feedstream import DAY_S
from repro.vulndb.data import VulnerabilityDatabase
from repro.vulndb.timeline import window_statistics

REPORT_FORMAT = "hypertp-sentinel-report"
REPORT_VERSION = 1

#: the fleet's sub-day buckets extended to feed scale: a week, a month,
#: two patch cycles — sentinel windows span both regimes (transplant
#: responses land in hours, patch-cycle fallbacks in months).
SENTINEL_WINDOW_BUCKETS = WINDOW_BUCKETS + (
    7 * DAY_S, 30 * DAY_S, 180 * DAY_S,
)

_PERCENTILES = (("p50", 50.0), ("p95", 95.0), ("p99", 99.0),
                ("max", 100.0))


def _percentiles_days(windows_s: List[float]) -> Dict[str, float]:
    if not windows_s:
        return {}
    return {key: percentile(windows_s, q) / DAY_S
            for key, q in _PERCENTILES}


@dataclass
class SentinelReport:
    """The measured outcome of one feed replay."""

    config: Dict[str, object]
    feed: Dict[str, object]
    cves: List[Dict[str, object]]
    campaigns: List[Dict[str, object]]
    windows: Dict[str, object]
    inventory: Dict[str, object]
    counters: Dict[str, int]
    completed_at_s: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "config": self.config,
            "feed": self.feed,
            "cves": self.cves,
            "campaigns": self.campaigns,
            "windows": self.windows,
            "inventory": self.inventory,
            "counters": dict(sorted(self.counters.items())),
            "completed_at_s": self.completed_at_s,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def report_into(self, registry: MetricsRegistry) -> MetricsRegistry:
        """Publish run counters and the per-CVE window distribution."""
        for name, value in sorted(self.counters.items()):
            registry.counter(
                f"sentinel_{name}_total", f"sentinel {name}",
            ).inc(value)
        registry.gauge(
            "sentinel_exposure_host_days",
            "total open-exposure integral over the run",
        ).set(self.windows["exposure_host_days_total"])
        histogram = registry.histogram(
            "sentinel_cve_window_seconds",
            "per-CVE disclosure -> fleet-no-longer-exposed window",
            buckets=SENTINEL_WINDOW_BUCKETS,
        )
        for cve in self.cves:  # already in sorted-cve order
            if cve["window_days"] is not None:
                histogram.observe(cve["window_days"] * DAY_S)
        return registry


def build_report(*, config, feed_stats: Dict[str, object], states,
                 campaigns, inventory, counters: Dict[str, int],
                 db: VulnerabilityDatabase, completed_at_s: float,
                 registry: Optional[MetricsRegistry] = None,
                 ) -> SentinelReport:
    """Aggregate a finished sentinel run into the report document."""
    cves = []
    for state in states:  # sorted by cve_id by the caller
        window_s = state.window_s
        cves.append({
            "cve_id": state.cve_id,
            "severity": state.severity,
            "affected": state.affected,
            "disclosed_at_s": state.disclosed_at_s,
            "exposed_at_disclosure": state.exposed_at_disclosure,
            "remediation": state.remediation,
            "window_days": (window_s / DAY_S
                            if window_s is not None else None),
            "exposure_host_days": round(
                inventory.exposure_host_days(state.cve_id), 9),
            "closed_at_s": state.closed_at_s,
            "campaigns": list(state.campaigns),
            "residual": state.residual,
        })

    campaign_dicts = [{
        "index": c.index,
        "kind": c.kind,
        "trigger_cve": c.trigger_cve,
        "source": c.source,
        "target": c.target,
        "requested_at_s": c.requested_at_s,
        "launched_at_s": c.launched_at_s,
        "completed_at_s": c.completed_at_s,
        "hosts": c.hosts,
        "hosts_remediated": c.hosts_remediated,
        "hosts_rolled_back": c.hosts_rolled_back,
        "escape_fraction": c.escape_fraction,
        "preempted_at_s": c.preempted_at_s,
        "preempted_by": c.preempted_by,
    } for c in campaigns]

    # The head-to-head §2.2 comparison.  "transplant" windows are the
    # sentinel's measured end-to-end numbers; the patch-cycle windows are
    # the counterfactual for the *same* exposed CVEs had no sentinel run
    # (days-to-patch-release + the datacenter's application lag).
    transplant_windows = [
        s.window_s for s in states
        if s.remediation == "transplant" and s.window_s is not None
    ]
    exposed = [s for s in states if s.exposed_at_disclosure > 0]
    policy = config.policy
    patch_windows = []
    for state in exposed:
        release = db.get(state.cve_id).days_to_patch
        if release is None:
            release = policy.default_days_to_patch
        patch_windows.append(
            (release + policy.patch_application_days) * DAY_S)
    baseline = window_statistics(db)
    exposure_total = sum(
        inventory.exposure_host_days(s.cve_id) for s in states)
    windows = {
        "transplant_count": len(transplant_windows),
        "transplant_percentiles_days": _percentiles_days(
            transplant_windows),
        "patch_cycle_count": len(patch_windows),
        "patch_cycle_percentiles_days": _percentiles_days(patch_windows),
        "exposure_host_days_total": round(exposure_total, 9),
        "dataset_baseline": {
            "count": baseline.count,
            "mean_days": baseline.mean_days,
            "min_days": baseline.min_days,
            "max_days": baseline.max_days,
            "over_60_fraction": baseline.over_60_fraction,
        },
    }

    report = SentinelReport(
        config=config.to_payload(),
        feed=dict(sorted(feed_stats.items())),
        cves=cves,
        campaigns=campaign_dicts,
        windows=windows,
        inventory=inventory.snapshot(),
        counters=counters,
        completed_at_s=completed_at_s,
    )
    if registry is not None:
        report.report_into(registry)
    return report
