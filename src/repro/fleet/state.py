"""Per-host remediation state machines and the fleet-wide transition trace.

Every host in an emergency campaign walks the lifecycle::

    PENDING -> EVACUATING -> TRANSPLANTING -> VERIFYING -> DONE
                   |               |              |
                   +-----------> FAILED <---------+
                                /      \\
                          RETRYING    ROLLED_BACK
                       (re-enter the
                        failed phase)

Transitions are validated — a host can never jump states illegally or move
after reaching a terminal state — and every transition is appended to a
shared :class:`FleetTrace`, which is what the metrics layer and the tests
(concurrency-cap and liveness assertions) replay.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.errors import FleetError


class HostState(enum.Enum):
    """Lifecycle of one host during an emergency transplant campaign."""

    PENDING = "pending"
    EVACUATING = "evacuating"
    TRANSPLANTING = "transplanting"
    VERIFYING = "verifying"
    DONE = "done"
    FAILED = "failed"
    RETRYING = "retrying"
    ROLLED_BACK = "rolled-back"

    @property
    def terminal(self) -> bool:
        return self in (HostState.DONE, HostState.ROLLED_BACK)

    @property
    def active(self) -> bool:
        """States that hold an admission slot (host is being worked on)."""
        return not self.terminal and self is not HostState.PENDING


#: the phases a failure can be injected into (they re-enter on retry)
RETRYABLE_STATES = frozenset({
    HostState.EVACUATING,
    HostState.TRANSPLANTING,
    HostState.VERIFYING,
})

LEGAL_TRANSITIONS: Dict[HostState, FrozenSet[HostState]] = {
    HostState.PENDING: frozenset({
        HostState.EVACUATING, HostState.TRANSPLANTING,
    }),
    HostState.EVACUATING: frozenset({
        HostState.TRANSPLANTING, HostState.FAILED,
    }),
    HostState.TRANSPLANTING: frozenset({
        HostState.VERIFYING, HostState.FAILED,
    }),
    HostState.VERIFYING: frozenset({
        HostState.DONE, HostState.FAILED,
    }),
    HostState.FAILED: frozenset({
        HostState.RETRYING, HostState.ROLLED_BACK,
    }),
    HostState.RETRYING: RETRYABLE_STATES,
    HostState.DONE: frozenset(),
    HostState.ROLLED_BACK: frozenset(),
}


@dataclass(frozen=True)
class Transition:
    """One timestamped state change of one host."""

    time_s: float
    host: str
    source: HostState
    target: HostState
    reason: str = ""


class FleetTrace:
    """Append-only log of every transition in a campaign.

    The controller appends in simulated-event order, so replaying the list
    reconstructs the exact interleaving — the basis for the concurrency-cap
    invariant test and the hosts-remediated-over-time curve.

    With a ``journal`` attached (any object with a ``transition()`` method,
    e.g. :class:`repro.journal.CampaignJournal`), every transition is made
    durable *before* it lands in the in-memory trace — and therefore before
    :meth:`HostRecord.transition` mutates ``state`` — which is the
    write-ahead ordering crash recovery depends on.
    """

    def __init__(self, journal=None):
        self.journal = journal
        self.transitions: List[Transition] = []

    def append(self, transition: Transition) -> None:
        if self.journal is not None:
            self.journal.transition(
                transition.time_s, transition.host,
                transition.source.value, transition.target.value,
                transition.reason,
            )
        self.transitions.append(transition)

    def for_host(self, host: str) -> List[Transition]:
        return [t for t in self.transitions if t.host == host]

    def max_in_flight(self) -> int:
        """Peak number of hosts simultaneously in an active state."""
        in_flight = 0
        peak = 0
        for t in self.transitions:
            if t.source is HostState.PENDING and t.target.active:
                in_flight += 1
                peak = max(peak, in_flight)
            elif t.target.terminal:
                in_flight -= 1
        return peak

    def remediation_curve(self) -> List[List[float]]:
        """``[time, cumulative DONE hosts]`` points, one per completion."""
        done = 0
        curve: List[List[float]] = []
        for t in self.transitions:
            if t.target is HostState.DONE:
                done += 1
                curve.append([t.time_s, float(done)])
        return curve


@dataclass
class HostRecord:
    """Mutable campaign bookkeeping for one host."""

    name: str
    wave: int
    vm_count: int
    planned_migrations: int
    state: HostState = HostState.PENDING
    disclosure_at_s: float = 0.0
    started_at_s: Optional[float] = None
    remediated_at_s: Optional[float] = None
    retries: int = 0
    rollbacks: int = 0
    skipped_migrations: int = 0
    failure_reasons: List[str] = field(default_factory=list)

    def transition(self, target: HostState, now_s: float, trace: FleetTrace,
                   reason: str = "") -> None:
        if target not in LEGAL_TRANSITIONS[self.state]:
            raise FleetError(
                f"host {self.name}: illegal transition "
                f"{self.state.value} -> {target.value}"
            )
        trace.append(Transition(now_s, self.name, self.state, target, reason))
        if self.state is HostState.PENDING:
            self.started_at_s = now_s
        self.state = target
        if target is HostState.DONE:
            self.remediated_at_s = now_s
        if reason:
            self.failure_reasons.append(reason)

    @property
    def window_s(self) -> Optional[float]:
        """Disclosure-to-remediated vulnerability window (DONE hosts only)."""
        if self.remediated_at_s is None:
            return None
        return self.remediated_at_s - self.disclosure_at_s
