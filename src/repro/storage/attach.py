"""Volume attachments and the virtual block device.

A :class:`BlockDriver` is the emulated disk device inside the guest; its
VMM-side state is just the connection descriptor (store name + volume id +
queue state), so across a transplant it follows the §4.2.3 emulated-device
path: the descriptor is translated, the new hypervisor's VMM reconnects,
and I/O resumes against the same remote volume.  Data never moves.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.guest.drivers import EmulatedDriver
from repro.guest.vm import VirtualMachine
from repro.hypervisors.state import Packer, Unpacker
from repro.storage.remote import RemoteBlockStore, StorageError, Volume


class BlockDriver(EmulatedDriver):
    """Virtio-blk-like driver whose backend is a remote volume."""

    def __init__(self, name: str, store: RemoteBlockStore, volume_id: str):
        super().__init__(name, vmm_state_bytes=2048)
        self.store = store
        self.volume_id = volume_id
        self.connected = True
        self.io_count = 0

    def descriptor(self) -> bytes:
        """The VMM-side state that travels through UISR."""
        packer = Packer()
        store = self.store.name.encode()
        volume = self.volume_id.encode()
        packer.u16(len(store)).raw(store)
        packer.u16(len(volume)).raw(volume)
        packer.u32(self.io_count)
        return packer.bytes()

    @staticmethod
    def parse_descriptor(blob: bytes):
        unpacker = Unpacker(blob)
        store = unpacker.raw(unpacker.u16()).decode()
        volume = unpacker.raw(unpacker.u16()).decode()
        io_count = unpacker.u32()
        unpacker.expect_end()
        return store, volume, io_count

    # -- I/O ---------------------------------------------------------------

    def _volume(self) -> Volume:
        if not self.connected:
            raise StorageError(f"driver {self.name}: backend not connected")
        return self.store.volume(self.volume_id)

    def read(self, lba: int) -> int:
        self.io_count += 1
        return self._volume().read_block(lba)

    def write(self, lba: int, digest: int) -> None:
        self.io_count += 1
        self._volume().write_block(lba, digest)

    # -- transplant cooperation ------------------------------------------------

    def disconnect(self) -> None:
        self.connected = False

    def reconnect(self) -> None:
        self.connected = True


@dataclass
class VolumeAttachment:
    """Bookkeeping for one VM <-> volume binding."""

    vm_name: str
    volume_id: str
    device_name: str


class StorageManager:
    """Datacenter-level attach/detach surface (what Nova's cinder-ish side
    would call)."""

    def __init__(self, store: RemoteBlockStore):
        self.store = store
        self._attachments: Dict[str, List[VolumeAttachment]] = {}

    def attach(self, vm: VirtualMachine, volume_id: str,
               device_name: Optional[str] = None) -> BlockDriver:
        """Lease the volume to the VM and plug a block device into it."""
        device_name = device_name or f"vd{chr(ord('a') + len(vm.devices))}"
        self.store.acquire_lease(volume_id, vm.name)
        driver = BlockDriver(device_name, self.store, volume_id)
        vm.attach_device(driver)
        self._attachments.setdefault(vm.name, []).append(VolumeAttachment(
            vm_name=vm.name, volume_id=volume_id, device_name=device_name,
        ))
        return driver

    def detach(self, vm: VirtualMachine, volume_id: str) -> None:
        attachments = self._attachments.get(vm.name, [])
        match = next((a for a in attachments if a.volume_id == volume_id),
                     None)
        if match is None:
            raise StorageError(
                f"{vm.name} has no attachment for volume {volume_id!r}"
            )
        attachments.remove(match)
        vm.devices = [d for d in vm.devices
                      if getattr(d, "volume_id", None) != volume_id]
        self.store.release_lease(volume_id, vm.name)

    def attachments_of(self, vm_name: str) -> List[VolumeAttachment]:
        return list(self._attachments.get(vm_name, []))

    def verify_attachments(self, vm: VirtualMachine) -> bool:
        """Post-transplant check: every attachment's lease and driver are
        consistent (same volume, still leased to this VM)."""
        for attachment in self.attachments_of(vm.name):
            volume = self.store.volume(attachment.volume_id)
            if volume.attached_to != vm.name:
                return False
            drivers = [d for d in vm.devices
                       if getattr(d, "volume_id", None) == attachment.volume_id]
            if len(drivers) != 1:
                return False
        return True
