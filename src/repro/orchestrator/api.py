"""The "one-click" datacenter transplant API (§4.5.2).

``DatacenterAPI`` ties together the vulnerability advisor and the Nova
manager: hand it a CVE id and it (a) asks the advisor whether a transplant
is warranted and to which hypervisor, and (b) rolls the upgrade across every
affected host, producing a fleet-wide report.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.hypervisors.base import HypervisorKind
from repro.obs import NULL_TRACER
from repro.sim.clock import SimClock
from repro.vulndb.advisor import TransplantAdvice, TransplantAdvisor
from repro.orchestrator.nova import HostUpgradeResult, NovaCompute


@dataclass
class FleetUpgradeReport:
    """Outcome of a datacenter-wide emergency transplant."""

    trigger_cve: str
    advice: TransplantAdvice
    per_host: Dict[str, HostUpgradeResult] = field(default_factory=dict)
    total_s: float = 0.0

    @property
    def hosts_upgraded(self) -> int:
        return len(self.per_host)

    @property
    def worst_vm_disruption_s(self) -> float:
        return max(
            (r.vm_disruption_s for r in self.per_host.values()), default=0.0
        )


class DatacenterAPI:
    """Entry point an operator (or a pager automation) calls."""

    def __init__(self, nova: NovaCompute, advisor: TransplantAdvisor,
                 tracer=NULL_TRACER):
        self.nova = nova
        self.advisor = advisor
        self.tracer = tracer

    def respond_to_cve(self, cve_id: str,
                       open_cves: Sequence[str] = (),
                       clock: Optional[SimClock] = None,
                       evacuation_host: Optional[str] = None
                       ) -> FleetUpgradeReport:
        """Mitigate ``cve_id`` across the fleet.

        Every host running an affected hypervisor is live-upgraded to the
        advisor's recommended target.  Hosts already on a safe hypervisor
        are left alone.
        """
        clock = clock or SimClock()
        start = clock.now

        # Ask the advisor once per affected hypervisor kind in the fleet.
        fleet_kinds = {
            record.hypervisor_type for record in self.nova.database.values()
        }
        trigger = self.advisor.db.get(cve_id)
        affected_in_fleet = sorted(
            kind for kind in fleet_kinds if trigger.affects(kind)
        )
        if not affected_in_fleet:
            advice = self.advisor.advise(cve_id, next(iter(fleet_kinds)))
            return FleetUpgradeReport(trigger_cve=cve_id, advice=advice)

        current = affected_in_fleet[0]
        advice = self.advisor.advise_or_raise(cve_id, current,
                                              open_cves=open_cves)
        if not advice.transplant_needed:
            return FleetUpgradeReport(trigger_cve=cve_id, advice=advice)
        target = HypervisorKind(advice.recommended_target)

        report = FleetUpgradeReport(trigger_cve=cve_id, advice=advice)
        self.tracer.bind_clock(lambda: clock.now)
        with self.tracer.span(f"respond_to_cve {cve_id}", "orchestrator",
                              track="orchestrator",
                              args={"target": target.value}):
            for host in sorted(self.nova.database):
                record = self.nova.database[host]
                if not trigger.affects(record.hypervisor_type):
                    continue
                with self.tracer.span(f"host_live_upgrade {host}",
                                      "orchestrator",
                                      track=f"orchestrator/{host}"):
                    report.per_host[host] = self.nova.host_live_upgrade(
                        host, target, clock=clock,
                        evacuation_host=evacuation_host,
                    )
        report.total_s = clock.now - start
        return report

    def revert_after_patch(self, original: HypervisorKind,
                           hosts: Optional[List[str]] = None,
                           clock: Optional[SimClock] = None
                           ) -> Dict[str, HostUpgradeResult]:
        """Transplant hosts back once the original hypervisor is patched.

        The paper's Fig. 1(b): the replacement is temporary; after the
        patch, operators return to their preferred hypervisor.
        """
        clock = clock or SimClock()
        targets = hosts if hosts is not None else sorted(self.nova.database)
        results = {}
        for host in targets:
            record = self.nova.database[host]
            if record.hypervisor_type == original.value:
                continue
            results[host] = self.nova.host_live_upgrade(
                host, original, clock=clock,
            )
        return results
