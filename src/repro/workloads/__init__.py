"""Workload models for the application-impact evaluation (§5.3).

Each workload is a deterministic performance model that *observes* a host
timeline (when was the VM paused, when did the hypervisor change, when was
a migration degrading it, when was the network down) and emits the metric
the paper plots: QPS for Redis, latency+QPS for MySQL, execution time for
SPECrate 2017, iteration time for Darknet.
"""

from repro.workloads.base import HostTimeline, MetricSeries, Workload
from repro.workloads.redis import RedisWorkload
from repro.workloads.mysql import MySQLWorkload
from repro.workloads.speccpu import SPEC_BASELINES, SpecCPUWorkload, spec_degradation
from repro.workloads.darknet import DarknetWorkload
from repro.workloads.streaming import StreamingWorkload, StreamingClientStats
from repro.workloads.fileserver import FileServerWorkload, IOTrace
from repro.workloads.generator import timeline_for_inplace, timeline_for_migration

__all__ = [
    "HostTimeline",
    "MetricSeries",
    "Workload",
    "RedisWorkload",
    "MySQLWorkload",
    "SpecCPUWorkload",
    "SPEC_BASELINES",
    "spec_degradation",
    "DarknetWorkload",
    "StreamingWorkload",
    "StreamingClientStats",
    "FileServerWorkload",
    "IOTrace",
    "timeline_for_inplace",
    "timeline_for_migration",
]
