"""CFS runqueues — KVM's VM Management State.

Under KVM each vCPU is an ordinary host thread scheduled by CFS; the per-CPU
runqueues referencing those threads are *VM Management State* (rebuildable
from the VM_i states, never translated during transplant).
"""

from dataclasses import dataclass, field
from typing import Dict, List

DEFAULT_NICE = 0


@dataclass
class CFSTask:
    """One vCPU thread's runqueue entry."""

    domid: int
    vcpu_index: int
    vruntime: float = 0.0
    nice: int = DEFAULT_NICE


@dataclass
class CFSRunqueue:
    """One host CPU's CFS runqueue (sorted by vruntime on demand)."""

    cpu: int
    tasks: List[CFSTask] = field(default_factory=list)

    def pick_next(self) -> CFSTask:
        return min(self.tasks, key=lambda t: t.vruntime)


class CFSScheduler:
    """CFS runqueues over the host's CPUs."""

    def __init__(self, cpus: int):
        self.cpus = max(1, cpus)
        self.runqueues: List[CFSRunqueue] = [CFSRunqueue(c) for c in range(self.cpus)]
        self._nice: Dict[int, int] = {}

    def add_domain(self, domid: int, vcpus: int, nice: int = DEFAULT_NICE) -> None:
        self._nice[domid] = nice
        for index in range(vcpus):
            queue = self.runqueues[(domid * 7 + index) % self.cpus]
            queue.tasks.append(CFSTask(domid=domid, vcpu_index=index, nice=nice))

    def remove_domain(self, domid: int) -> None:
        self._nice.pop(domid, None)
        for queue in self.runqueues:
            queue.tasks = [t for t in queue.tasks if t.domid != domid]

    def rebuild(self, domains) -> None:
        """Reconstruct all runqueues from the domain list (post-transplant)."""
        nice = dict(self._nice)
        self.runqueues = [CFSRunqueue(c) for c in range(self.cpus)]
        self._nice = {}
        for domain in domains:
            self.add_domain(
                domain.domid,
                domain.vm.config.vcpus,
                nice=nice.get(domain.domid, DEFAULT_NICE),
            )

    def queued_vcpus(self) -> int:
        return sum(len(q.tasks) for q in self.runqueues)

    def report(self) -> Dict[str, object]:
        return {
            "scheduler": "cfs",
            "cpus": self.cpus,
            "queued_vcpus": self.queued_vcpus(),
            "domains": sorted(self._nice),
        }
