"""Tests for guest dirty-page logging and its use in pre-copy."""

import random

import pytest

from repro.errors import HardwareError
from repro.guest.image import GuestImage
from repro.hw.memory import PAGE_2M, PhysicalMemory

GIB = 1024 ** 3


class TestDirtyLog:
    def _image(self):
        memory = PhysicalMemory(GIB)
        return GuestImage(memory, 64 * PAGE_2M)

    def test_disabled_by_default(self):
        image = self._image()
        assert not image.dirty_logging
        image.write_page(3, 1)
        with pytest.raises(HardwareError):
            image.read_and_clear_dirty_log()

    def test_records_writes_while_enabled(self):
        image = self._image()
        image.start_dirty_logging()
        image.write_page(5, 1)
        image.write_page(2, 2)
        image.write_page(5, 3)  # rewrite: still one entry
        assert image.read_and_clear_dirty_log() == [2, 5]

    def test_read_clears(self):
        image = self._image()
        image.start_dirty_logging()
        image.write_page(1, 9)
        assert image.read_and_clear_dirty_log() == [1]
        assert image.read_and_clear_dirty_log() == []

    def test_start_resets_stale_entries(self):
        image = self._image()
        image.start_dirty_logging()
        image.write_page(1, 9)
        image.stop_dirty_logging()
        image.start_dirty_logging()
        assert image.read_and_clear_dirty_log() == []

    def test_writes_before_enable_not_recorded(self):
        image = self._image()
        image.write_page(7, 1)
        image.start_dirty_logging()
        assert image.read_and_clear_dirty_log() == []


class TestDirtyLogDrivesPreCopy:
    def test_resent_pages_equal_logged_writes(self, xen_host_factory,
                                              kvm_host_factory, fabric):
        from repro.core.migration import MigrationTP

        source = xen_host_factory(name="dl-src", memory_gib=1.0)
        destination = kvm_host_factory(name="dl-dst")
        fabric.connect(source, destination)
        domain = next(iter(source.hypervisor.domains.values()))
        report = MigrationTP(fabric, source, destination).migrate(
            domain, dirty_rate_bytes_s=48 << 20,
            guest_writes_rng=random.Random(11),
        )
        assert report.guest_digest_preserved
        # Logging is off again after the migration completes.
        assert not domain.vm.image.dirty_logging

    def test_idle_guest_resends_nothing(self, xen_host_factory,
                                        kvm_host_factory, fabric):
        """With no guest writes, the dirty log stays empty and later rounds
        carry zero pages — only the plan's *time* reflects the nominal
        dirty rate."""
        from repro.core import wire
        from repro.core.migration import MigrationTP

        source = xen_host_factory(name="dl2-src", memory_gib=1.0)
        destination = kvm_host_factory(name="dl2-dst")
        fabric.connect(source, destination)
        domain = next(iter(source.hypervisor.domains.values()))
        migrator = MigrationTP(fabric, source, destination)
        stream = wire.MigrationStream()
        from repro.core.migration import plan_precopy
        from repro.core.timings import DEFAULT_COST_MODEL

        rounds = plan_precopy(1 << 30, migrator._flow_rate(1), 1 << 20,
                              DEFAULT_COST_MODEL)
        residual = migrator._stream_precopy(domain.vm, rounds, stream, None)
        assert residual == []
        messages = list(stream.receive_all())
        page_batches = [m for m in messages if isinstance(m, wire.PageBatch)]
        total_pages = sum(len(b.pages) for b in page_batches)
        assert total_pages == domain.vm.image.page_count  # round 1 only
        domain.vm.image.stop_dirty_logging()
