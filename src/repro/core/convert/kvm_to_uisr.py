"""KVM -> UISR translation (the ``to_uisr_*`` side for KVM).

Collects the domain's state through kvmtool's GET ioctls, decodes the
KVM-native structs (unfolding the MSR-packed MTRRs and APIC base back into
dedicated records) and repackages them as a UISR document.
"""

from typing import Optional

from repro.errors import UISRError
from repro.hypervisors.base import Domain, HypervisorKind
from repro.hypervisors.kvm import formats
from repro.hypervisors.kvm.hypervisor import KVMHypervisor
from repro.core.convert.xen_to_uisr import _device_states, _memory_map_for
from repro.core.uisr.format import (
    UISR_VERSION,
    UISRPlatform,
    UISRVCpu,
    UISRVMState,
)


def to_uisr_kvm(hypervisor: KVMHypervisor, domain: Domain,
                pram_file: Optional[str] = None) -> UISRVMState:
    """Translate a KVM domain's VM_i State into UISR."""
    if hypervisor.kind is not HypervisorKind.KVM:
        raise UISRError(f"to_uisr_kvm called on {hypervisor.kind.value}")
    bundle = hypervisor.vmm_for(domain.domid).read_state_bundle()
    vcpus, platform = formats.decode_bundle(bundle)
    return UISRVMState(
        version=UISR_VERSION,
        vm_name=domain.vm.name,
        vcpu_count=domain.vm.config.vcpus,
        memory_bytes=domain.vm.image.size_bytes,
        source_hypervisor=HypervisorKind.KVM.value,
        vcpus=[UISRVCpu(v) for v in vcpus],
        platform=UISRPlatform(platform),
        memory_map=_memory_map_for(domain, pram_file),
        devices=_device_states(domain),
    )
