"""Tests for the Xen substrate: formats, NPT, scheduler, toolstack."""

import pytest

from repro.errors import HypervisorError, StateFormatError
from repro.guest.devices import XEN_IOAPIC_PINS, make_default_platform
from repro.guest.vcpu import make_boot_vcpu
from repro.guest.vm import VMConfig
from repro.hypervisors import XenHypervisor
from repro.hypervisors.base import HypervisorKind, HypervisorType
from repro.hypervisors.xen import formats
from repro.hypervisors.xen.npt import XEN_NPT_POLICY

GIB = 1024 ** 3


def _state(vcpus=2, seed=0):
    return ([make_boot_vcpu(i, seed=seed) for i in range(vcpus)],
            make_default_platform(vcpus, seed=seed))


class TestHVMContext:
    def test_roundtrip_preserves_architectural_state(self):
        vcpus, platform = _state()
        blob = formats.encode_hvm_context(vcpus, platform)
        decoded_vcpus, decoded_platform = formats.decode_hvm_context(blob)
        assert ([v.architectural_view() for v in decoded_vcpus]
                == [v.architectural_view() for v in vcpus])
        assert decoded_platform.architectural_view() == platform.architectural_view()

    def test_blob_starts_with_header_and_ends_with_end(self):
        vcpus, platform = _state(vcpus=1)
        records = formats._unpack_records(
            formats.encode_hvm_context(vcpus, platform)
        )
        assert records[0].typecode == formats.REC_HEADER
        assert records[-1].typecode == formats.REC_END

    def test_ioapic_carries_48_pins(self):
        vcpus, platform = _state(vcpus=1)
        _, decoded = formats.decode_hvm_context(
            formats.encode_hvm_context(vcpus, platform)
        )
        assert decoded.ioapic.pin_count == XEN_IOAPIC_PINS

    def test_truncated_blob_rejected(self):
        vcpus, platform = _state(vcpus=1)
        blob = formats.encode_hvm_context(vcpus, platform)
        with pytest.raises(StateFormatError):
            formats.decode_hvm_context(blob[:-10])

    def test_missing_end_record_rejected(self):
        vcpus, platform = _state(vcpus=1)
        blob = formats.encode_hvm_context(vcpus, platform)
        # Strip the END record (8-byte header + empty payload).
        with pytest.raises(StateFormatError):
            formats.decode_hvm_context(blob[:-8])

    def test_bad_magic_rejected(self):
        vcpus, platform = _state(vcpus=1)
        blob = bytearray(formats.encode_hvm_context(vcpus, platform))
        blob[8] ^= 0xFF  # corrupt the header payload's magic
        with pytest.raises(StateFormatError):
            formats.decode_hvm_context(bytes(blob))

    def test_vcpu_count_mismatch_rejected(self):
        vcpus, platform = _state(vcpus=2)
        with pytest.raises(StateFormatError):
            formats.encode_hvm_context(vcpus[:1], platform)


class TestXenHypervisor:
    def test_identity(self):
        assert XenHypervisor.kind is HypervisorKind.XEN
        assert XenHypervisor.hv_type is HypervisorType.TYPE_1
        assert XenHypervisor.boot_kernel_count == 2

    def test_boot_installs_on_machine(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        assert m1.hypervisor is xen
        assert xen.dom0_online

    def test_double_boot_rejected(self, m1):
        XenHypervisor().boot(m1)
        with pytest.raises(HypervisorError):
            XenHypervisor().boot(m1)

    def test_create_vm_builds_p2m(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        domain = xen.create_vm(VMConfig("g", vcpus=1, memory_bytes=GIB))
        assert domain.npt.policy_tag == XEN_NPT_POLICY
        assert len(domain.npt.gfn_to_mfn) == 512
        mfn = domain.npt.lookup(5)
        assert domain.npt.reverse_lookup(mfn) == 5

    def test_scheduler_tracks_domains(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        d1 = xen.create_vm(VMConfig("a", vcpus=2, memory_bytes=GIB))
        xen.create_vm(VMConfig("b", vcpus=3, memory_bytes=GIB))
        assert xen.scheduler.queued_vcpus() == 5
        xen.destroy_domain(d1.domid)
        assert xen.scheduler.queued_vcpus() == 3

    def test_rebuild_management_state(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        xen.create_vm(VMConfig("a", vcpus=2, memory_bytes=GIB))
        before = xen.scheduler.queued_vcpus()
        xen.rebuild_management_state()
        assert xen.scheduler.queued_vcpus() == before

    def test_toolstack_get_set_context(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        domain = xen.create_vm(VMConfig("g", vcpus=2, memory_bytes=GIB))
        blob = xen.toolstack.xc_domain_hvm_getcontext(domain.domid)
        original = [v.architectural_view() for v in domain.vm.vcpus]
        domain.vm.vcpus = [make_boot_vcpu(i, seed=99) for i in range(2)]
        xen.toolstack.xc_domain_hvm_setcontext(domain.domid, blob)
        assert [v.architectural_view() for v in domain.vm.vcpus] == original

    def test_toolstack_domain_by_name(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        xen.create_vm(VMConfig("findme", vcpus=1, memory_bytes=GIB))
        assert xen.toolstack.domain_by_name("findme").vm.name == "findme"
        with pytest.raises(HypervisorError):
            xen.toolstack.domain_by_name("ghost")

    def test_memory_report_categories(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        xen.create_vm(VMConfig("g", vcpus=1, memory_bytes=GIB))
        report = xen.memory_report()
        assert report.guest_state == GIB
        assert report.vmi_state > 0
        assert report.management_state > 0
        assert report.hv_state == XenHypervisor.hv_state_bytes

    def test_detach_keeps_vm_alive(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        domain = xen.create_vm(VMConfig("g", vcpus=1, memory_bytes=GIB))
        vm = xen.detach_domain(domain.domid)
        assert vm.name == "g"
        assert not xen.domains
        assert vm.image.size_bytes == GIB  # still allocated

    def test_shutdown_requires_no_domains(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        xen.create_vm(VMConfig("g", vcpus=1, memory_bytes=GIB))
        with pytest.raises(HypervisorError):
            xen.shutdown()
