"""Unified Intermediate State Representation.

UISR is the hypervisor-neutral format through which VM_i State travels
during a transplant (§3.1).  Like XDR for network data, it exists so that a
hypervisor developer only has to implement ``to_uisr_*`` / ``from_uisr_*``
against one format, not against every other hypervisor's internals.
"""

from repro.core.uisr.format import (
    UISRDeviceState,
    UISRMemoryMap,
    UISRMemoryChunk,
    UISRPlatform,
    UISRVCpu,
    UISRVMState,
)
from repro.core.uisr.codec import decode_uisr, encode_uisr, uisr_size
from repro.core.uisr.registry import ConverterRegistry, default_registry

__all__ = [
    "UISRDeviceState",
    "UISRMemoryMap",
    "UISRMemoryChunk",
    "UISRPlatform",
    "UISRVCpu",
    "UISRVMState",
    "encode_uisr",
    "decode_uisr",
    "uisr_size",
    "ConverterRegistry",
    "default_registry",
]
