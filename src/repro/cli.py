"""Command-line interface.

``hypertp`` exposes the library's main entry points for quick exploration:

* ``hypertp inplace``  — run an InPlaceTP on a simulated host, print Fig. 6
  style phase timings.
* ``hypertp migrate``  — run a MigrationTP (or Xen->Xen baseline), print
  Table 4 style numbers.
* ``hypertp advise``   — ask the vulnerability advisor about a CVE.
* ``hypertp vulns``    — print Table 1 from the embedded dataset.
* ``hypertp cluster``  — run the Fig. 13 cluster-upgrade sweep.
* ``hypertp fleet``    — run an emergency-response campaign end to end and
  print the fleet-wide vulnerability-window percentiles.
* ``hypertp trace``    — replay a seeded fleet campaign with tracing on and
  emit the Perfetto/Chrome timeline (byte-identical per seed).
* ``hypertp sentinel`` — replay a vulnerability feed against a simulated
  fleet and respond continuously: gate, score, transplant, return.
* ``hypertp tcb``      — print the §4.4 TCB accounting.
* ``hypertp lint``     — run the static verification pass over the source
  tree (UISR translation safety, codec symmetry, sim-layer hygiene).
"""

import argparse
import sys
from typing import List, Optional

from repro.hw.machine import CLUSTER_NODE_SPEC, M1_SPEC, M2_SPEC
from repro.hypervisors.base import HypervisorKind

_SPECS = {"M1": M1_SPEC, "M2": M2_SPEC, "cluster": CLUSTER_NODE_SPEC}


def _kind(value: str) -> HypervisorKind:
    try:
        return HypervisorKind(value.lower())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"unknown hypervisor {value!r}; pick from "
            f"{[k.value for k in HypervisorKind]}"
        )


def _spec(value: str):
    try:
        return _SPECS[value]
    except KeyError:
        raise argparse.ArgumentTypeError(
            f"unknown machine {value!r}; pick from {sorted(_SPECS)}"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hypertp",
        description="HyperTP (EuroSys 2021) reproduction — simulated "
                    "hypervisor transplant",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inplace = sub.add_parser("inplace", help="run an InPlaceTP")
    inplace.add_argument("--machine", type=_spec, default=M1_SPEC)
    inplace.add_argument("--source", type=_kind,
                         default=HypervisorKind.XEN)
    inplace.add_argument("--target", type=_kind,
                         default=HypervisorKind.KVM)
    inplace.add_argument("--vms", type=int, default=1)
    inplace.add_argument("--vcpus", type=int, default=1)
    inplace.add_argument("--memory-gib", type=float, default=1.0)
    inplace.add_argument("--no-huge-pages", action="store_true")
    inplace.add_argument("--no-parallel", action="store_true")
    inplace.add_argument("--no-prepare-ahead", action="store_true")
    inplace.add_argument("--trace", metavar="FILE",
                         help="write a chrome://tracing JSON timeline")

    migrate = sub.add_parser("migrate", help="run a (heterogeneous) "
                                             "live migration")
    migrate.add_argument("--machine", type=_spec, default=M1_SPEC)
    migrate.add_argument("--dest", type=_kind, default=HypervisorKind.KVM,
                         help="destination hypervisor (xen = homogeneous "
                              "baseline)")
    migrate.add_argument("--vcpus", type=int, default=1)
    migrate.add_argument("--memory-gib", type=float, default=1.0)
    migrate.add_argument("--dirty-mb-s", type=float, default=1.0,
                         help="guest dirty rate during pre-copy (MB/s)")

    advise = sub.add_parser("advise", help="ask the transplant advisor")
    advise.add_argument("cve", help="triggering CVE id")
    advise.add_argument("--current", type=_kind,
                        default=HypervisorKind.XEN)
    advise.add_argument("--pool", default="xen,kvm",
                        help="comma-separated hypervisor repertoire")
    advise.add_argument("--open", dest="open_cves", default="",
                        help="comma-separated other open CVE ids")

    sub.add_parser("vulns", help="print Table 1 from the dataset")

    cluster = sub.add_parser("cluster", help="run the Fig. 13 sweep")
    cluster.add_argument("--fractions", default="0,0.2,0.4,0.6,0.8",
                         help="comma-separated InPlaceTP shares")
    cluster.add_argument("--hosts", type=int, default=10)
    cluster.add_argument("--vms-per-host", type=int, default=10)
    cluster.add_argument("--export-plan", dest="export_plan", metavar="FILE",
                         help="write the reconfiguration plan for "
                              "--export-fraction as a framed binary blob")
    cluster.add_argument("--export-fraction", type=float, default=0.8,
                         help="InPlaceTP fraction of the exported plan")

    fleet = sub.add_parser(
        "fleet",
        help="run a disclosure-to-remediation emergency campaign",
    )
    fleet.add_argument("--hosts", type=int, default=10)
    fleet.add_argument("--vms-per-host", type=int, default=10)
    fleet.add_argument("--inplace-fraction", type=float, default=0.8)
    fleet.add_argument("--group-size", type=int, default=2)
    fleet.add_argument("--seed", type=int, default=42)
    fleet.add_argument("--concurrency", type=int, default=8,
                       help="max hosts in flight at once (0 = unbounded)")
    fleet.add_argument("--mechanism", default="hybrid",
                       choices=("inplace", "migration", "hybrid", "auto"),
                       help="per-host transplant mechanism policy "
                            "(§4.5.2): hybrid evacuates exactly the "
                            "InPlaceTP-incompatible VMs (default)")
    fleet.add_argument("--sequential-groups", action="store_true",
                       help="strict Fig. 13 wave semantics (no overlap)")
    fleet.add_argument("--fail-rate", type=float, default=0.0,
                       help="per-phase failure-injection probability")
    fleet.add_argument("--max-retries", type=int, default=3)
    fleet.add_argument("--cve", default="CVE-2016-6258",
                       help="triggering CVE id")
    fleet.add_argument("--current", type=_kind, default=HypervisorKind.XEN)
    fleet.add_argument("--pool", default="xen,kvm",
                       help="comma-separated hypervisor repertoire")
    fleet.add_argument("--json", dest="json_path", metavar="FILE",
                       help="also write the full metrics document as JSON")
    fleet.add_argument("--trace", dest="trace_path", metavar="FILE",
                       help="also write the campaign's Perfetto/Chrome "
                            "trace JSON")
    fleet.add_argument("--workers", type=int, default=1,
                       help="route the campaign through the repro.par "
                            "worker pool (output is byte-identical to "
                            "--workers 1)")
    fleet.add_argument("--journal", metavar="FILE",
                       help="write-ahead journal every transition and wave "
                            "boundary to FILE for crash recovery (runs "
                            "inline; incompatible with --workers > 1)")
    fleet.add_argument("--resume", metavar="FILE",
                       help="recover a crashed campaign from its journal "
                            "and run it to completion; the campaign shape "
                            "comes from the journal, not the other flags")
    fleet.add_argument("--crash-after", type=int, metavar="N",
                       help="fault injection: kill the controller right "
                            "after the Nth journal record is durable "
                            "(exit code 3; requires --journal/--resume)")

    trace = sub.add_parser(
        "trace",
        help="replay a seeded fleet campaign and emit its Perfetto trace",
    )
    trace.add_argument("--hosts", type=int, default=10)
    trace.add_argument("--vms-per-host", type=int, default=10)
    trace.add_argument("--inplace-fraction", type=float, default=0.8)
    trace.add_argument("--group-size", type=int, default=2)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--concurrency", type=int, default=8,
                       help="max hosts in flight at once (0 = unbounded)")
    trace.add_argument("--sequential-groups", action="store_true")
    trace.add_argument("--fail-rate", type=float, default=0.0,
                       help="per-phase failure-injection probability")
    trace.add_argument("--cve", default="CVE-2016-6258")
    trace.add_argument("--out", metavar="FILE",
                       help="write the trace JSON here instead of stdout")
    trace.add_argument("--metrics", dest="metrics_path", metavar="FILE",
                       help="also write the metrics-registry snapshot JSON")
    trace.add_argument("--workers", type=int, default=1,
                       help="route the replay through the repro.par "
                            "worker pool (output is byte-identical to "
                            "--workers 1)")

    sentinel = sub.add_parser(
        "sentinel",
        help="replay a vulnerability feed against a simulated fleet and "
             "respond with transplant campaigns (the paper's loop, "
             "running continuously)",
    )
    sentinel.add_argument("--hosts", type=int, default=20)
    sentinel.add_argument("--vms-per-host", type=int, default=10)
    sentinel.add_argument("--group-size", type=int, default=2)
    sentinel.add_argument("--seed", type=int, default=42,
                          help="root seed: feed jitter and every "
                               "campaign's sub-seed derive from it")
    sentinel.add_argument("--mechanism", default="hybrid",
                          choices=("inplace", "migration", "hybrid", "auto"))
    sentinel.add_argument("--current", type=_kind,
                          default=HypervisorKind.XEN)
    sentinel.add_argument("--pool", default="xen,kvm",
                          help="comma-separated hypervisor repertoire")
    sentinel.add_argument("--mean-gap-days", type=float, default=7.0,
                          help="mean gap between feed advisories")
    sentinel.add_argument("--limit", type=int, default=None,
                          help="replay only the first N advisories")
    sentinel.add_argument("--batch", type=float, default=0.1,
                          help="batch-disclosure probability")
    sentinel.add_argument("--duplicates", type=float, default=0.05,
                          help="duplicate re-announcement probability")
    sentinel.add_argument("--out-of-order", type=float, default=0.1,
                          help="adjacent-delivery inversion probability")
    sentinel.add_argument("--gate", default="critical",
                          choices=("low", "medium", "critical"),
                          help="minimum severity that triggers a response")
    sentinel.add_argument("--patch-days", type=float, default=2.0,
                          help="patch-application lag after release (days)")
    sentinel.add_argument("--no-return", action="store_true",
                          help="skip return transplants when patches land")
    sentinel.add_argument("--maintenance-every-h", type=float, default=0.0,
                          help="maintenance-window cadence in hours "
                               "(0 = launch any time)")
    sentinel.add_argument("--maintenance-length-h", type=float, default=0.0,
                          help="maintenance-window length in hours")
    sentinel.add_argument("--json", dest="json_path", metavar="FILE",
                          help="also write the full report document as JSON")
    sentinel.add_argument("--trace", dest="trace_path", metavar="FILE",
                          help="also write the response-plane Perfetto/"
                               "Chrome trace JSON")
    sentinel.add_argument("--metrics", dest="metrics_path", metavar="FILE",
                          help="also write the metrics-registry snapshot")
    sentinel.add_argument("--workers", type=int, default=1,
                          help="route the replay through the repro.par "
                               "worker pool (output is byte-identical to "
                               "--workers 1)")
    sentinel.add_argument("--journal-dir", metavar="DIR",
                          help="write-ahead journal every launched campaign "
                               "into DIR (runs inline; incompatible with "
                               "--workers > 1)")

    sub.add_parser("tcb", help="print the §4.4 TCB accounting")

    lint = sub.add_parser("lint", help="run the static verification pass")
    lint.add_argument("paths", nargs="*",
                      help="package directories to analyze (default: the "
                           "installed repro package)")
    lint.add_argument("--strict", action="store_true",
                      help="exit non-zero when any non-baselined finding "
                           "is reported")
    lint.add_argument("--format", dest="format",
                      choices=("text", "json", "sarif"), default=None,
                      help="output format (default: text)")
    lint.add_argument("--json", dest="as_json", action="store_true",
                      help="shorthand for --format json")
    lint.add_argument("--baseline", metavar="FILE",
                      help="accepted-findings file; findings whose stable "
                           "id appears there are reported but never fail "
                           "--strict")
    lint.add_argument("--write-baseline", metavar="FILE",
                      help="write the current findings as a baseline file "
                           "and exit 0")
    lint.add_argument("--rule", action="append", metavar="NAME",
                      help="run only this rule (repeatable)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the registered rules and exit")
    return parser


def cmd_inplace(args) -> int:
    from repro.core.optimizations import OptimizationConfig
    from repro.core.transplant import HyperTP
    from repro.sim.clock import SimClock
    from repro.hypervisors import make_hypervisor
    from repro.hw.machine import Machine
    from repro.guest.vm import VMConfig
    from repro.guest.devices import make_default_platform
    from repro.hypervisors.nova.formats import NOVA_IOAPIC_PINS
    from repro.guest.devices import KVM_IOAPIC_PINS, XEN_IOAPIC_PINS

    if args.source is args.target:
        print("source and target must differ", file=sys.stderr)
        return 2

    pins = {
        HypervisorKind.XEN: XEN_IOAPIC_PINS,
        HypervisorKind.KVM: KVM_IOAPIC_PINS,
        HypervisorKind.NOVA: NOVA_IOAPIC_PINS,
    }[args.source]
    machine = Machine(args.machine)
    hypervisor = make_hypervisor(args.source)
    hypervisor.boot(machine)
    for i in range(args.vms):
        domain = hypervisor.create_vm(VMConfig(
            f"vm{i}", vcpus=args.vcpus,
            memory_bytes=int(args.memory_gib * (1 << 30)), seed=i,
        ))
        domain.vm.platform = make_default_platform(args.vcpus,
                                                   ioapic_pins=pins, seed=i)

    opts = OptimizationConfig(
        prepare_ahead=not args.no_prepare_ahead,
        parallel=not args.no_parallel,
        huge_pages=not args.no_huge_pages,
    )
    report = HyperTP(optimizations=opts).inplace(machine, args.target,
                                                 SimClock())
    print(f"InPlaceTP {report.source}->{report.target} on "
          f"{args.machine.name}: {report.vm_count} VMs x {args.vcpus} vCPU "
          f"x {args.memory_gib:g} GiB")
    for phase, seconds in report.phase_breakdown.items():
        print(f"  {phase:>12}: {seconds:8.3f} s")
    print(f"  {'downtime':>12}: {report.downtime_s:8.3f} s")
    print(f"  {'total':>12}: {report.total_s:8.3f} s")
    print(f"  PRAM metadata {report.pram_metadata_bytes / 1024:.0f} KiB, "
          f"UISR {report.uisr_bytes / 1024:.1f} KiB, guests intact: "
          f"{report.guest_digests_preserved}")
    if args.trace:
        from repro.sim.trace import trace_inplace

        with open(args.trace, "w") as handle:
            handle.write(trace_inplace(report).to_chrome_trace())
        print(f"  trace written to {args.trace} "
              f"(open in chrome://tracing or Perfetto)")
    return 0


def cmd_migrate(args) -> int:
    from repro.bench.runner import make_host_pair
    from repro.core.migration import LiveMigration, MigrationTP

    source, destination, fabric = make_host_pair(
        args.machine, args.dest, vcpus=args.vcpus,
        memory_gib=args.memory_gib,
    )
    domain = next(iter(source.hypervisor.domains.values()))
    if args.dest is HypervisorKind.XEN:
        migrator = LiveMigration(fabric, source, destination)
        flavor = "Xen->Xen baseline"
    else:
        migrator = MigrationTP(fabric, source, destination)
        flavor = f"MigrationTP xen->{args.dest.value}"
    report = migrator.migrate(
        domain, dirty_rate_bytes_s=args.dirty_mb_s * (1 << 20),
    )
    print(f"{flavor}: {args.memory_gib:g} GiB VM, "
          f"{args.dirty_mb_s:g} MB/s dirty rate")
    print(f"  pre-copy rounds : {report.round_count}")
    print(f"  pre-copy time   : {report.precopy_s:.2f} s")
    print(f"  downtime        : {report.downtime_s * 1000:.2f} ms")
    print(f"  total           : {report.total_s:.2f} s")
    print(f"  bytes moved     : {report.bytes_transferred / (1 << 30):.2f} GiB "
          f"({report.wire_messages} wire messages)")
    print(f"  wire dedup      : {report.wire_unique_pages} unique pages, "
          f"{report.wire_dedup_hits} dedup hits, "
          f"ratio {report.wire_dedup_ratio:.2f}")
    print(f"  guest intact    : {report.guest_digest_preserved}")
    return 0


def cmd_advise(args) -> int:
    from repro.vulndb import TransplantAdvisor, load_default_database

    db = load_default_database()
    pool = [p.strip() for p in args.pool.split(",") if p.strip()]
    open_cves = [c.strip() for c in args.open_cves.split(",") if c.strip()]
    advisor = TransplantAdvisor(db, hypervisor_pool=pool)
    advice = advisor.advise(args.cve, args.current.value,
                            open_cves=open_cves)
    record = db.get(args.cve)
    print(f"{args.cve} (CVSS {record.score}, {record.severity.value}, "
          f"affects {sorted(record.affected)}): {record.description}")
    if not advice.transplant_needed:
        print("no transplant needed")
        return 0
    if advice.recommended_target:
        print(f"=> transplant {args.current.value} -> "
              f"{advice.recommended_target}")
        return 0
    print(f"=> NO SAFE TARGET in pool {pool}; rejected: {advice.rejected}")
    return 1


def cmd_vulns(_args) -> int:
    from repro.bench.report import format_table
    from repro.vulndb.analysis import totals, yearly_counts
    from repro.vulndb.data import load_default_database

    db = load_default_database()
    rows = [[r.year, r.xen_critical, r.xen_medium, r.kvm_critical,
             r.kvm_medium, r.common_critical, r.common_medium]
            for r in yearly_counts(db)]
    t = totals(db)
    rows.append(["Total", t.xen_critical, t.xen_medium, t.kvm_critical,
                 t.kvm_medium, t.common_critical, t.common_medium])
    print(format_table(
        ["Year", "Xen crit", "Xen med", "KVM crit", "KVM med",
         "Common crit", "Common med"], rows,
        title="Vulnerabilities per year (Table 1)",
    ))
    return 0


def cmd_cluster(args) -> int:
    from repro.cluster import BtrPlacePlanner, UpgradeCampaign, encode_plan
    from repro.cluster.model import build_paper_cluster

    fractions = [float(f) for f in args.fractions.split(",")]
    campaign = UpgradeCampaign(hosts=args.hosts,
                               vms_per_host=args.vms_per_host)
    results = campaign.sweep(fractions)
    gains = UpgradeCampaign.time_gains(results)
    print(f"Cluster upgrade sweep ({args.hosts} hosts x "
          f"{args.vms_per_host} VMs):")
    for result, gain in zip(results, gains):
        print(f"  {result.inplace_fraction:>5.0%}: "
              f"{result.migration_count:4d} migrations, "
              f"{result.total_minutes:6.1f} min, gain {gain:4.0%}")
    if args.export_plan:
        cluster = build_paper_cluster(
            hosts=args.hosts, vms_per_host=args.vms_per_host,
            inplace_fraction=args.export_fraction, seed=campaign.seed,
        )
        plan = BtrPlacePlanner(cluster,
                               group_size=campaign.group_size).plan(apply=False)
        blob = encode_plan(plan)
        with open(args.export_plan, "wb") as handle:
            handle.write(blob)
        print(f"plan ({args.export_fraction:.0%} in-place) -> "
              f"{args.export_plan} ({len(blob)} bytes)")
    return 0


def _journaled_fleet_result(args, payload):
    """Run a journaled (or resumed) campaign inline.

    The journal object cannot cross the worker-pool pipe, so ``--journal``
    and ``--resume`` bypass :func:`repro.par.run_fleet_campaign`; the
    returned dict mirrors its shape (``document``/``spans``) exactly.
    """
    from repro.fleet import (
        FailureInjector,
        FleetConfig,
        FleetController,
        RetryPolicy,
    )
    from repro.journal import CampaignJournal, campaign_meta, recover
    from repro.obs import NULL_TRACER, Tracer
    from repro.par.shard import spans_to_payload

    tracer = Tracer() if payload.get("trace") else None
    if args.resume:
        controller, journal = recover(
            args.resume,
            tracer=tracer if tracer is not None else NULL_TRACER,
            crash_after=args.crash_after,
        )
        if journal.torn_bytes:
            print(f"fleet: journal had a torn tail — discarded "
                  f"{journal.torn_bytes} trailing byte(s) "
                  f"({journal.torn_error})", file=sys.stderr)
        print(f"fleet: resuming from {args.resume} — verifying "
              f"{journal.pending_replay} journaled record(s)",
              file=sys.stderr)
    else:
        config = FleetConfig(**payload["config"])
        injector = FailureInjector(
            payload.get("fail_rate", 0.0),
            seed=payload.get("injector_seed", config.seed),
        )
        if payload.get("max_retries") is not None:
            retry = RetryPolicy(max_retries=payload["max_retries"])
        else:
            retry = RetryPolicy()
        journal = CampaignJournal.create(
            args.journal, campaign_meta(config, injector, retry),
            crash_after=args.crash_after,
        )
        kwargs = {"injector": injector, "retry": retry, "journal": journal}
        if tracer is not None:
            kwargs["tracer"] = tracer
        controller = FleetController(config, **kwargs)
    metrics = controller.run()
    result = {"document": metrics.to_dict()}
    result["mechanism_mix"] = controller.mechanism_mix()
    if tracer is not None:
        result["spans"] = spans_to_payload(tracer.trace)
    return result


def cmd_fleet(args) -> int:
    import json

    from repro.errors import FleetError, JournalCrash, JournalError, ParError
    from repro.par import merge_traces, run_fleet_campaign
    from repro.vulndb.data import load_default_database

    pool = tuple(p.strip() for p in args.pool.split(",") if p.strip())
    payload = {
        "config": {
            "hosts": args.hosts,
            "vms_per_host": args.vms_per_host,
            "inplace_fraction": args.inplace_fraction,
            "group_size": args.group_size,
            "seed": args.seed,
            "concurrency": args.concurrency if args.concurrency > 0 else None,
            "sequential_groups": args.sequential_groups,
            "mechanism": args.mechanism,
            "trigger_cve": args.cve,
            "current_hypervisor": args.current.value,
            "pool": pool,
        },
        "fail_rate": args.fail_rate,
        "injector_seed": args.seed,
        "max_retries": args.max_retries,
        "trace": bool(args.trace_path),
    }
    journaling = bool(args.journal or args.resume)
    if args.journal and args.resume:
        print("fleet: --journal and --resume are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.crash_after is not None and not journaling:
        print("fleet: --crash-after requires --journal or --resume",
              file=sys.stderr)
        return 2
    if journaling and args.workers > 1:
        print("fleet: a journaled campaign runs inline; drop --workers",
              file=sys.stderr)
        return 2
    try:
        if journaling:
            result = _journaled_fleet_result(args, payload)
        else:
            result = run_fleet_campaign(payload, workers=args.workers)
    except JournalCrash as crash:
        print(f"fleet: {crash}", file=sys.stderr)
        return 3
    except (FleetError, ParError, JournalError) as error:
        print(f"fleet: {error}", file=sys.stderr)
        return 2

    document = result["document"]
    campaign, window = document["campaign"], document["window"]
    robustness = document["robustness"]
    record = load_default_database().get(args.cve)
    print(f"{args.cve} disclosed ({record.severity.value}, affects "
          f"{sorted(record.affected)}): {record.description}")
    print(f"Advisor: transplant {campaign['source_hypervisor']} -> "
          f"{campaign['target_hypervisor']}")
    print(f"Campaign: {campaign['hosts']} hosts / {campaign['vms']} VMs in "
          f"{campaign['waves']} waves, "
          f"concurrency {args.concurrency if args.concurrency > 0 else 'unbounded'}"
          f"{', sequential groups' if args.sequential_groups else ''}"
          f"{f', fail rate {args.fail_rate:.0%}' if args.fail_rate else ''}"
          f"{f', {args.workers} workers' if args.workers > 1 else ''}")
    print(f"  remediated : {robustness['done_hosts']}/{campaign['hosts']} "
          f"hosts ({robustness['rolled_back_hosts']} rolled back)")
    print(f"  migrations : {robustness['migrations_executed']} executed, "
          f"{robustness['migrations_skipped']} skipped")
    mix = result.get("mechanism_mix") or {}
    if mix:
        summary = ", ".join(
            f"{kind} {entry['hosts']} host(s)/{entry['vms']} VM(s)"
            + (f" ({entry['evacuations']} evac)"
               if entry["evacuations"] else "")
            for kind, entry in mix.items()
        )
        # The document, not args: a --resume run takes the journal's
        # configured mechanism, whatever the flag says.
        policy = campaign.get("mechanism", "hybrid")
        print(f"  mechanisms : [{policy}] {summary}")
    print(f"  robustness : {robustness['retries_total']} retries, "
          f"{robustness['rollbacks_total']} rollbacks")
    if window["percentiles_s"]:
        print("  vulnerability window (disclosure -> host remediated):")
        for key in ("p50", "p95", "p99", "max"):
            seconds = window["percentiles_s"][key]
            print(f"    {key:>4}: {seconds:10.1f} s ({seconds / 60:6.1f} min)")
    else:
        print("  no host reached DONE — the fleet stays vulnerable")
    if args.json_path:
        with open(args.json_path, "w") as handle:
            handle.write(json.dumps(document, indent=2, sort_keys=True))
        print(f"  metrics JSON written to {args.json_path}")
    if args.trace_path:
        trace = merge_traces([("fleet", result["spans"])], prefix=False)
        with open(args.trace_path, "w") as handle:
            handle.write(trace.to_chrome_trace())
        print(f"  trace JSON written to {args.trace_path}")
    terminal = {"done", "rolled-back"}
    if not all(h["state"] in terminal for h in document["per_host"]):
        print("ERROR: campaign left hosts in a non-terminal state",
              file=sys.stderr)
        return 1
    return 0


def cmd_trace(args) -> int:
    import json

    from repro.errors import FleetError, ParError
    from repro.par import merge_traces, run_fleet_campaign

    payload = {
        "config": {
            "hosts": args.hosts,
            "vms_per_host": args.vms_per_host,
            "inplace_fraction": args.inplace_fraction,
            "group_size": args.group_size,
            "seed": args.seed,
            "concurrency": args.concurrency if args.concurrency > 0 else None,
            "sequential_groups": args.sequential_groups,
            "trigger_cve": args.cve,
        },
        "fail_rate": args.fail_rate,
        "injector_seed": args.seed,
        "trace": True,
        "metrics": True,
    }
    try:
        result = run_fleet_campaign(payload, workers=args.workers)
    except (FleetError, ParError) as error:
        print(f"trace: {error}", file=sys.stderr)
        return 2

    trace = merge_traces([("fleet", result["spans"])], prefix=False)
    document = trace.to_chrome_trace()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(document)
        print(f"trace written to {args.out} ({len(trace)} spans, "
              f"{len(trace.tracks())} tracks) — open in "
              f"chrome://tracing or ui.perfetto.dev", file=sys.stderr)
    else:
        print(document)
    if args.metrics_path:
        with open(args.metrics_path, "w") as handle:
            handle.write(json.dumps(result["registry"], indent=2,
                                    sort_keys=True))
        print(f"metrics snapshot written to {args.metrics_path}",
              file=sys.stderr)
    return 0


def cmd_sentinel(args) -> int:
    import json
    import os

    from repro.errors import ParError, SentinelError, VulnDBError
    from repro.par import merge_traces, run_sentinel
    from repro.sentinel import (
        DAY_S,
        FeedSchedule,
        PolicyConfig,
        SentinelConfig,
    )

    pool = tuple(p.strip() for p in args.pool.split(",") if p.strip())
    try:
        config = SentinelConfig(
            hosts=args.hosts,
            vms_per_host=args.vms_per_host,
            group_size=args.group_size,
            mechanism=args.mechanism,
            seed=args.seed,
            current_hypervisor=args.current.value,
            pool=pool,
            feed=FeedSchedule(
                seed=args.seed,
                mean_gap_days=args.mean_gap_days,
                batch_probability=args.batch,
                duplicate_probability=args.duplicates,
                out_of_order_probability=args.out_of_order,
                limit=args.limit,
            ),
            policy=PolicyConfig(
                severity_gate=args.gate,
                patch_application_days=args.patch_days,
                return_transplant=not args.no_return,
                maintenance_window_every_s=args.maintenance_every_h * 3600.0,
                maintenance_window_length_s=args.maintenance_length_h
                * 3600.0,
            ),
        )
    except SentinelError as error:
        print(f"sentinel: {error}", file=sys.stderr)
        return 2
    if args.journal_dir and args.workers > 1:
        print("sentinel: journaled campaigns run inline; drop --workers",
              file=sys.stderr)
        return 2
    try:
        if args.journal_dir:
            # Journal handles cannot cross the worker pipe: run inline,
            # returning the same result shape as the pooled path.
            from repro.obs import MetricsRegistry, Tracer
            from repro.par.shard import spans_to_payload
            from repro.sentinel import Sentinel

            os.makedirs(args.journal_dir, exist_ok=True)
            tracer = Tracer() if args.trace_path else None
            registry = MetricsRegistry() if args.metrics_path else None
            kwargs = {"journal_dir": args.journal_dir}
            if tracer is not None:
                kwargs["tracer"] = tracer
            if registry is not None:
                kwargs["registry"] = registry
            report = Sentinel(config, **kwargs).run()
            result = {"document": report.to_dict()}
            if tracer is not None:
                result["spans"] = spans_to_payload(tracer.trace)
            if registry is not None:
                result["registry"] = registry.snapshot()
        else:
            result = run_sentinel({
                "config": config.to_payload(),
                "trace": bool(args.trace_path),
                "metrics": bool(args.metrics_path),
            }, workers=args.workers)
    except (SentinelError, VulnDBError, ParError) as error:
        print(f"sentinel: {error}", file=sys.stderr)
        return 2

    document = result["document"]
    counters, windows = document["counters"], document["windows"]
    years = document["completed_at_s"] / DAY_S / 365.25
    print(f"Sentinel replay: {counters['disclosures']} deliveries "
          f"({counters['duplicates_ignored']} duplicates) over "
          f"{years:.1f} simulated years, fleet of {args.hosts} hosts "
          f"on {args.current.value}, pool {list(pool)}"
          f"{f', {args.workers} workers' if args.workers > 1 else ''}")
    print(f"  responses  : {counters['campaigns_launched']} campaigns, "
          f"{counters['returns_launched']} returns, "
          f"{counters['preemptions']} preempted, "
          f"{counters['residual_unresolved']} residual (no safe target)")
    transplant = windows["transplant_percentiles_days"]
    patch = windows["patch_cycle_percentiles_days"]
    if transplant:
        print(f"  windows    : disclosure -> fleet-no-longer-exposed, "
              f"{windows['transplant_count']} CVEs via transplant vs "
              f"{windows['patch_cycle_count']} patch-cycle baselines")
        for key in ("p50", "p95", "p99", "max"):
            line = f"    {key:>4}: {transplant[key]:8.2f} days (transplant)"
            if patch:
                line += f"  vs {patch[key]:8.2f} days (patch cycle)"
            print(line)
    else:
        print("  windows    : no CVE was remediated by transplant")
    print(f"  exposure   : {windows['exposure_host_days_total']:.1f} "
          f"host-days of open exposure accrued")
    if args.json_path:
        with open(args.json_path, "w") as handle:
            handle.write(json.dumps(document, indent=2, sort_keys=True))
        print(f"  report JSON written to {args.json_path}")
    if args.trace_path:
        trace = merge_traces([("sentinel", result["spans"])], prefix=False)
        with open(args.trace_path, "w") as handle:
            handle.write(trace.to_chrome_trace())
        print(f"  trace JSON written to {args.trace_path}")
    if args.metrics_path:
        with open(args.metrics_path, "w") as handle:
            handle.write(json.dumps(result["registry"], indent=2,
                                    sort_keys=True))
        print(f"  metrics JSON written to {args.metrics_path}")
    if args.journal_dir:
        print(f"  campaign journals written to {args.journal_dir}")
    return 0


def cmd_tcb(_args) -> int:
    from repro.core.tcb import HYPERTP_COMPONENTS, account

    report = account()
    for component in HYPERTP_COMPONENTS:
        where = "kernel" if component.in_kernel else "user"
        tcb = "TCB" if component.in_tcb else "---"
        print(f"  {component.kloc:5.1f} KLOC [{where:>6}] [{tcb}] "
              f"{component.name}")
    print(f"  total {report.total_kloc:.1f} KLOC, TCB {report.tcb_kloc:.1f} "
          f"KLOC ({report.userspace_share:.0%} userspace), relative "
          f"increase {report.relative_tcb_increase:.2%}")
    return 0


def cmd_lint(args) -> int:
    import os

    from repro.analysis import (
        BaselineError,
        Project,
        all_rules,
        load_baseline,
        partition,
        render_json,
        render_sarif,
        render_text,
        run_analysis,
        write_baseline,
    )
    from repro.analysis.engine import AnalysisError

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:24} {rule.description}")
        return 0

    if args.paths:
        roots = args.paths
        for root in roots:
            if not os.path.isdir(root):
                print(f"lint: {root!r} is not a directory", file=sys.stderr)
                return 2
    else:
        import repro

        roots = [os.path.dirname(os.path.abspath(repro.__file__))]

    project = Project.from_directory(roots[0])
    for root in roots[1:]:
        extra = Project.from_directory(root)
        project.modules.extend(extra.modules)
    if not project.modules:
        print(f"lint: no python files under {', '.join(roots)}",
              file=sys.stderr)
        return 2

    try:
        findings, suppressed = run_analysis(project, rule_names=args.rule)
    except AnalysisError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"lint: baseline with {len(findings)} finding(s) written "
              f"to {args.write_baseline}", file=sys.stderr)
        return 0

    baselined = []
    if args.baseline:
        try:
            baseline_ids = load_baseline(args.baseline)
        except BaselineError as error:
            print(f"lint: {error}", file=sys.stderr)
            return 2
        findings, baselined = partition(findings, baseline_ids)

    fmt = args.format or ("json" if args.as_json else "text")
    if fmt == "json":
        print(render_json(findings, suppressed, len(baselined)))
    elif fmt == "sarif":
        print(render_sarif(findings, suppressed, len(baselined)))
    else:
        print(render_text(findings, suppressed, len(baselined)))
    if findings and args.strict:
        return 1
    return 0


_COMMANDS = {
    "inplace": cmd_inplace,
    "migrate": cmd_migrate,
    "advise": cmd_advise,
    "vulns": cmd_vulns,
    "cluster": cmd_cluster,
    "fleet": cmd_fleet,
    "trace": cmd_trace,
    "sentinel": cmd_sentinel,
    "tcb": cmd_tcb,
    "lint": cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
