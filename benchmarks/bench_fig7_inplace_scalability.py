"""Fig. 7 — InPlaceTP Xen->KVM scalability on M1 and M2.

Three sweeps per machine: vCPU count {1..10} (flat), guest memory
{2..12 GB} (PRAM/Reboot grow), VM count {2..12} (M1's 4 cores parallelize
PRAM worse than M2's 28).  Downtime stays within the paper's ranges
(M1: 1.7-3.6 s, M2: 2.94-4.28 s).
"""

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import inplace_sweep
from repro.hw.machine import M1_SPEC, M2_SPEC
from repro.hypervisors.base import HypervisorKind

VCPUS = [1, 2, 4, 6, 8, 10]
MEMORY = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
VM_COUNTS = [2, 4, 6, 8, 10, 12]


def run(spec):
    sweep = inplace_sweep(spec, HypervisorKind.KVM, VCPUS, MEMORY, VM_COUNTS)
    rows = []
    for axis, points in (("vcpus", VCPUS), ("memory_gib", MEMORY),
                         ("vm_count", VM_COUNTS)):
        for point, report in zip(points, sweep[axis]):
            rows.append([
                axis, point, report.pram_s, report.translation_s,
                report.reboot_s, report.restoration_s, report.downtime_s,
            ])
    return rows


HEADERS = ["sweep", "x", "PRAM (s)", "Transl. (s)", "Reboot (s)",
           "Restor. (s)", "downtime (s)"]


def test_fig7_m1(benchmark):
    rows = benchmark(run, M1_SPEC)
    print_experiment("Fig. 7 (M1)", "InPlaceTP Xen->KVM scalability",
                     format_table(HEADERS, rows))


def test_fig7_m2(benchmark):
    rows = benchmark(run, M2_SPEC)
    print_experiment("Fig. 7 (M2)", "InPlaceTP Xen->KVM scalability",
                     format_table(HEADERS, rows))


if __name__ == "__main__":
    for spec in (M1_SPEC, M2_SPEC):
        print_experiment(f"Fig. 7 ({spec.name})",
                         "InPlaceTP Xen->KVM scalability",
                         format_table(HEADERS, run(spec)))
