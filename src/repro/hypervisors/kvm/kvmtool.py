"""kvmtool — the lightweight user-space VMM.

The paper picked kvmtool over QEMU on the KVM side and extended it to
understand UISR (§4.2.1): on restore, the kvmtool process translates each
platform device's UISR state into KVM's internal formats and issues the
corresponding ioctl.  kvmtool's small size is also why MigrationTP's
stop-and-copy downtime (4.96 ms) undercuts Xen's (133 ms, Table 4).

Here the VMM is the object that owns a domain's ioctl traffic: it applies
state bundles ioctl-by-ioctl and maps guest memory into its address space
(``mmap``-style) from a PRAM-provided layout.
"""

from typing import Dict, Optional

from repro.errors import HypervisorError
from repro.hypervisors.base import Domain
from repro.hypervisors.kvm import formats


class KvmtoolVMM:
    """One kvmtool process, bound to one domain on a KVM host."""

    #: single-thread seconds of VMM-side work per ioctl issued
    IOCTL_COST_S = 8e-6

    def __init__(self, hypervisor, domain: Domain):
        self._hv = hypervisor
        self.domain = domain
        self.mapped_guest_base: Optional[int] = None
        self.ioctls_issued = 0

    def mmap_guest_memory(self, gfn_to_mfn: Dict[int, int]) -> None:
        """Map the guest's (preserved) memory into the VMM address space.

        For InPlaceTP Xen→KVM the paper simply mmaps the PRAM-described
        memory and hands the address to KVM (§4.2.2); here we adopt the
        GFN->MFN layout into the guest image and remember the mapping base.
        """
        self.domain.vm.image.adopt_mapping(gfn_to_mfn)
        self.mapped_guest_base = min(gfn_to_mfn.values(), default=0)

    def apply_state_bundle(self, bundle: formats.KVMStateBundle) -> int:
        """Issue one ioctl per bundle entry; returns the ioctl count."""
        vcpus, platform = formats.decode_bundle(bundle)
        vm = self.domain.vm
        if len(vcpus) != vm.config.vcpus:
            raise HypervisorError(
                f"bundle has {len(vcpus)} vCPUs, domain expects "
                f"{vm.config.vcpus}"
            )
        vm.vcpus = vcpus
        vm.platform = platform
        self.ioctls_issued += len(bundle)
        self.domain.native_state_blob = formats.pack_bundle(bundle)
        return len(bundle)

    def read_state_bundle(self) -> formats.KVMStateBundle:
        """Collect the domain's current state via GET ioctls."""
        vm = self.domain.vm
        bundle = formats.encode_bundle(vm.vcpus, vm.platform)
        self.ioctls_issued += len(bundle)
        return bundle

    def restore_work_seconds(self, bundle: formats.KVMStateBundle) -> float:
        """Single-thread host seconds to push a bundle into KVM."""
        return len(bundle) * self.IOCTL_COST_S
