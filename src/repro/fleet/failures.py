"""Failure injection and retry policy for emergency campaigns.

ReHype's lesson (PAPERS.md) is that hypervisor remediation must be treated
as a *recoverable* process: kexec can hang, migrations can stall on a
congested fabric, and a translated UISR can fail its post-reboot integrity
check.  The injector draws those faults from per-host deterministic
substreams — each host's fault sequence depends only on the campaign seed
and the host name, never on event interleaving — so a campaign with
failures is exactly as reproducible as one without.
"""

import enum
import random
from dataclasses import dataclass
from typing import Dict, Mapping, Union

from repro.errors import FleetError


class FailurePhase(enum.Enum):
    """Where a fault can strike, with the operator-visible symptom."""

    EVACUATION = "migration-stall"
    KEXEC = "kexec-hang"
    VERIFY = "uisr-verify-mismatch"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``attempt`` is zero-based: the first retry waits ``backoff_base_s``,
    each further retry multiplies by ``backoff_factor``, capped at
    ``backoff_max_s``.  After ``max_retries`` failed attempts the host
    rolls back instead of retrying again.
    """

    max_retries: int = 3
    backoff_base_s: float = 5.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 300.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise FleetError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise FleetError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise FleetError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        return min(self.backoff_base_s * self.backoff_factor ** attempt,
                   self.backoff_max_s)

    def exhausted(self, attempt: int) -> bool:
        return attempt >= self.max_retries


class HostFaultStream:
    """The deterministic fault sequence of one host."""

    def __init__(self, rates: Mapping[FailurePhase, float], seed: int,
                 host: str):
        self._rates = rates
        # Random.seed(str) hashes via SHA-512 — stable across processes,
        # unlike built-in str hashing.
        self._rng = random.Random(f"fleet:{seed}:{host}")
        #: RNG draws consumed so far — the stream position.  Campaign
        #: checkpoints digest this so a recovered run proves its fault
        #: streams sit exactly where the crashed run left them.
        self.draws = 0

    def strikes(self, phase: FailurePhase) -> bool:
        """Draw whether ``phase`` faults on this attempt."""
        rate = self._rates.get(phase, 0.0)
        if rate <= 0.0:
            return False
        self.draws += 1
        return self._rng.random() < rate


class FailureInjector:
    """Per-phase fault probabilities, with per-host substreams."""

    def __init__(self,
                 rates: Union[float, Mapping[FailurePhase, float]] = 0.0,
                 seed: int = 0):
        if isinstance(rates, (int, float)):
            rates = {phase: float(rates) for phase in FailurePhase}
        for phase, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise FleetError(
                    f"failure rate for {phase.value} out of [0,1]: {rate}"
                )
        self.rates: Dict[FailurePhase, float] = dict(rates)
        self.seed = seed

    @property
    def enabled(self) -> bool:
        return any(rate > 0.0 for rate in self.rates.values())

    def stream_for(self, host: str) -> HostFaultStream:
        return HostFaultStream(self.rates, self.seed, host)
