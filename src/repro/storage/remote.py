"""The remote block store.

Volumes are block arrays addressed by LBA, with per-block digests (the same
content-as-digest convention as guest RAM).  The store lives on the network
side of the fabric: I/O latency/throughput is a function of the link, not
of the host — which is why a transplant leaves disk contents untouched.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ReproError

BLOCK_SIZE = 4096


class StorageError(ReproError):
    """Raised for block-store failures (unknown volume, bad LBA, leases)."""


@dataclass
class Volume:
    """One virtual disk: size, sparse block map, exclusive-attach lease."""

    volume_id: str
    size_bytes: int
    blocks: Dict[int, int] = field(default_factory=dict)
    attached_to: Optional[str] = None  # VM name holding the lease

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % BLOCK_SIZE:
            raise StorageError(
                f"volume {self.volume_id}: size must be a positive multiple "
                f"of {BLOCK_SIZE}"
            )

    @property
    def block_count(self) -> int:
        return self.size_bytes // BLOCK_SIZE

    def _check_lba(self, lba: int) -> None:
        if not 0 <= lba < self.block_count:
            raise StorageError(
                f"volume {self.volume_id}: LBA {lba} out of range "
                f"(0..{self.block_count - 1})"
            )

    def read_block(self, lba: int) -> int:
        self._check_lba(lba)
        return self.blocks.get(lba, 0)

    def write_block(self, lba: int, digest: int) -> None:
        self._check_lba(lba)
        self.blocks[lba] = digest

    def content_digest(self) -> int:
        acc = 0
        for lba in sorted(self.blocks):
            acc = (acc * 1000003 + (lba << 1) + self.blocks[lba]) \
                & 0xFFFFFFFFFFFFFFFF
        return acc


class RemoteBlockStore:
    """A network block store (Ceph/iSCSI-target-like), one per datacenter."""

    def __init__(self, name: str = "blockstore-0"):
        self.name = name
        self._volumes: Dict[str, Volume] = {}

    def create_volume(self, volume_id: str, size_bytes: int) -> Volume:
        if volume_id in self._volumes:
            raise StorageError(f"volume {volume_id!r} already exists")
        volume = Volume(volume_id=volume_id, size_bytes=size_bytes)
        self._volumes[volume_id] = volume
        return volume

    def volume(self, volume_id: str) -> Volume:
        try:
            return self._volumes[volume_id]
        except KeyError:
            raise StorageError(f"unknown volume {volume_id!r}") from None

    def delete_volume(self, volume_id: str) -> None:
        volume = self.volume(volume_id)
        if volume.attached_to is not None:
            raise StorageError(
                f"volume {volume_id!r} is attached to {volume.attached_to}"
            )
        del self._volumes[volume_id]

    # -- leases ---------------------------------------------------------------

    def acquire_lease(self, volume_id: str, vm_name: str) -> None:
        volume = self.volume(volume_id)
        if volume.attached_to is not None and volume.attached_to != vm_name:
            raise StorageError(
                f"volume {volume_id!r} is leased by {volume.attached_to}"
            )
        volume.attached_to = vm_name

    def release_lease(self, volume_id: str, vm_name: str) -> None:
        volume = self.volume(volume_id)
        if volume.attached_to != vm_name:
            raise StorageError(
                f"volume {volume_id!r} is not leased by {vm_name}"
            )
        volume.attached_to = None

    def volumes_of(self, vm_name: str):
        return [v for v in self._volumes.values() if v.attached_to == vm_name]
