"""Fig. 10 — InPlaceTP KVM->Xen scalability.

The reverse direction of Fig. 7.  Shape to hold: Xen boots two kernels
(hypervisor + dom0), so Reboot dominates far more than in Xen->KVM —
~7.6 s vs 1.52 s on M1 and ~17.8 s vs 3.56 s on M2 for a single small VM
— while the paper's 30-second Azure maintenance bound still holds.
"""

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import inplace_sweep
from repro.hw.machine import M1_SPEC, M2_SPEC
from repro.hypervisors.base import HypervisorKind

VCPUS = [1, 2, 4, 6, 8, 10]
MEMORY = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
VM_COUNTS = [2, 4, 6, 8, 10, 12]


def run(spec):
    sweep = inplace_sweep(spec, HypervisorKind.XEN, VCPUS, MEMORY, VM_COUNTS)
    rows = []
    for axis, points in (("vcpus", VCPUS), ("memory_gib", MEMORY),
                         ("vm_count", VM_COUNTS)):
        for point, report in zip(points, sweep[axis]):
            rows.append([axis, point, report.reboot_s, report.downtime_s,
                         report.total_s])
    return rows


HEADERS = ["sweep", "x", "Reboot (s)", "downtime (s)", "total (s)"]


def test_fig10_m1(benchmark):
    rows = benchmark(run, M1_SPEC)
    print_experiment("Fig. 10 (M1)", "InPlaceTP KVM->Xen scalability",
                     format_table(HEADERS, rows))


def test_fig10_m2(benchmark):
    rows = benchmark(run, M2_SPEC)
    print_experiment("Fig. 10 (M2)", "InPlaceTP KVM->Xen scalability",
                     format_table(HEADERS, rows))


if __name__ == "__main__":
    for spec in (M1_SPEC, M2_SPEC):
        print_experiment(f"Fig. 10 ({spec.name})",
                         "InPlaceTP KVM->Xen scalability",
                         format_table(HEADERS, run(spec)))
