"""Fleet-scale emergency-response control plane.

Closes the paper's loop — CVE disclosure to full fleet remediation — and
measures the vulnerability window at datacenter scale:

* :mod:`controller` — the event-driven campaign controller (waves, per-host
  state machines, admission control, shared-fabric contention);
* :mod:`state` — host lifecycle states, legal transitions, and the
  fleet-wide transition trace;
* :mod:`failures` — deterministic per-phase failure injection and the
  bounded exponential-backoff retry policy;
* :mod:`metrics` — per-host and fleet-wide window metrics with JSON export;
* :mod:`simsync` — FIFO synchronization primitives over the sim engine.
"""

from repro.fleet.controller import FleetConfig, FleetController
from repro.fleet.failures import FailureInjector, FailurePhase, RetryPolicy
from repro.fleet.metrics import FleetMetrics, HostOutcome, percentile
from repro.fleet.state import (
    FleetTrace,
    HostRecord,
    HostState,
    Transition,
)

__all__ = [
    "FleetConfig",
    "FleetController",
    "FailureInjector",
    "FailurePhase",
    "RetryPolicy",
    "FleetMetrics",
    "HostOutcome",
    "percentile",
    "FleetTrace",
    "HostRecord",
    "HostState",
    "Transition",
]
