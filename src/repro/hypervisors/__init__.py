"""Simulated hypervisor substrates.

Two heterogeneous hypervisors, mirroring the paper's testbed:

* :mod:`repro.hypervisors.xen` — a type-I hypervisor (hypervisor kernel +
  dom0 administration VM) with HVM-save-record state formats, a p2m nested
  page table, a credit scheduler, and a libxenctrl-style toolstack.
* :mod:`repro.hypervisors.kvm` — a type-II hypervisor (host Linux + kvm
  module + kvmtool VMM) with ioctl-style state structs, an EPT-style MMU and
  CFS runqueues.

Their VM-state byte formats are intentionally different so that the UISR
converters in :mod:`repro.core` do real translation work.
"""

from repro.hypervisors.base import Domain, Hypervisor, HypervisorKind
from repro.hypervisors.xen import XenHypervisor
from repro.hypervisors.kvm import KVMHypervisor
from repro.hypervisors.nova import NOVAHypervisor

HYPERVISOR_CLASSES = {
    HypervisorKind.XEN: XenHypervisor,
    HypervisorKind.KVM: KVMHypervisor,
    HypervisorKind.NOVA: NOVAHypervisor,
}


def make_hypervisor(kind: HypervisorKind) -> Hypervisor:
    """Instantiate an (unbooted) hypervisor of the given kind."""
    return HYPERVISOR_CLASSES[kind]()


__all__ = [
    "Domain",
    "Hypervisor",
    "HypervisorKind",
    "XenHypervisor",
    "KVMHypervisor",
    "NOVAHypervisor",
    "HYPERVISOR_CLASSES",
    "make_hypervisor",
]
