"""InPlaceTP — in-place micro-reboot-based hypervisor transplant (Fig. 3).

Workflow on one machine:

❶ load the target hypervisor's kexec image into RAM (ahead of time);
❷ pause running guests (after pre-pause preparation: device quiescing and
  PRAM construction, which the prepare-ahead optimisation keeps out of the
  downtime);
❸ translate every VM's VM_i State into UISR and store the encoded documents
  in pinned RAM;
❹ micro-reboot into the target hypervisor, passing the PRAM pointer;
❺ the target parses PRAM, restores VM_i States from UISR into its own
  format and rebuilds its VM Management State;
❻ re-links the restored states to new domains;
❼ resumes all guests and frees the ephemeral metadata.

Downtime = Translation + Reboot + Restoration; PRAM construction happens
while guests still run.  The network link needs its own re-initialisation
after reboot, reported separately (network-independent workloads do not
observe it).
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import TransplantError
from repro.hw.machine import Machine
from repro.hw.memory import PAGE_4K
from repro.hypervisors import make_hypervisor
from repro.hypervisors.base import Hypervisor, HypervisorKind
from repro.obs import NULL_TRACER, Span
from repro.sim.clock import SimClock
from repro.core.kexec import load_kexec_image, micro_reboot
from repro.core.optimizations import DEFAULT_OPTIMIZATIONS, OptimizationConfig
from repro.core.pipeline import InPlacePipeline, StagePlan, VerifySpec
from repro.core.pram import PRAMFilesystem
from repro.core.timings import DEFAULT_COST_MODEL, CostModel
from repro.core.uisr.codec import encode_uisr
from repro.core.uisr.registry import ConverterRegistry, default_registry
from repro.devices.model import plan_device_transplant, restore_devices


@dataclass
class InPlaceReport:
    """Timing breakdown and verification results of one InPlaceTP run."""

    machine: str
    source: str
    target: str
    vm_count: int
    pram_s: float = 0.0
    translation_s: float = 0.0
    reboot_s: float = 0.0
    restoration_s: float = 0.0
    network_s: float = 0.0
    #: Translation + Reboot + Restoration (network excluded, §5.2)
    downtime_s: float = 0.0
    downtime_with_network_s: float = 0.0
    total_s: float = 0.0
    pram_metadata_bytes: int = 0
    uisr_bytes: int = 0
    guest_digests_preserved: bool = False
    per_vm_downtime: Dict[str, float] = field(default_factory=dict)

    @property
    def phase_breakdown(self) -> Dict[str, float]:
        return {
            "PRAM": self.pram_s,
            "Translation": self.translation_s,
            "Reboot": self.reboot_s,
            "Restoration": self.restoration_s,
            "Network": self.network_s,
        }


class InPlaceTP:
    """One in-place transplant of a machine to a different hypervisor."""

    #: phase checkpoints, in order; failures up to and including
    #: "store-uisr" roll back cleanly (VMs resume on the source hypervisor),
    #: the micro-reboot is the point of no return.
    PHASES = ("stage", "prepare", "pram", "pause", "translate", "store-uisr",
              "reboot", "restore", "resume")
    _LAST_ABORTABLE = "store-uisr"

    def __init__(self, machine: Machine, target_kind: HypervisorKind,
                 registry: Optional[ConverterRegistry] = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 optimizations: OptimizationConfig = DEFAULT_OPTIMIZATIONS,
                 failure_hook: Optional[Callable[[str], None]] = None,
                 tracer=NULL_TRACER):
        if machine.hypervisor is None:
            raise TransplantError(f"{machine.name} has no hypervisor to replace")
        if machine.hypervisor.kind is target_kind:
            raise TransplantError(
                f"{machine.name} already runs {target_kind.value}; "
                f"transplant requires a different hypervisor"
            )
        self.machine = machine
        self.source: Hypervisor = machine.hypervisor
        self.target_kind = target_kind
        self.registry = registry or default_registry()
        self.cost = cost_model
        self.opts = optimizations
        # Test/chaos hook, invoked at each phase boundary with the phase
        # name; raising from it simulates a failure at that point.
        self.failure_hook = failure_hook
        #: live span recording; NULL_TRACER costs nothing when untraced
        self.tracer = tracer
        self.rolled_back = False

    def _checkpoint(self, phase: str) -> None:
        if self.failure_hook is not None:
            self.failure_hook(phase)

    def stage_plan(self, verify: Optional[VerifySpec] = None) -> StagePlan:
        """The staged cost breakdown for this machine's live population.

        Predicts the run without mutating anything: the same
        quiesce/capture/translate/transfer/restore stages the planners
        charge, derived from the actual domains on the source
        hypervisor.  Assumes prepare-ahead and the cost model's default
        parallelism (the configuration the pipeline layer models).
        """
        domains = sorted(self.source.domains.values(), key=lambda d: d.domid)
        vm_shapes = []
        entry_counts = []
        for domain in domains:
            entries = self.cost.entries_for(
                domain.vm.image.size_bytes, domain.vm.image.page_size,
                self.opts.huge_pages,
            )
            vm_shapes.append((domain.vm.config.vcpus, entries))
            entry_counts.append(entries)
        pipeline = InPlacePipeline(self.machine, self.cost,
                                   self.target_kind, verify=verify)
        return pipeline.plan_shapes(self.machine.name, vm_shapes,
                                    entry_counts)

    # -- the full workflow, phase by phase ---------------------------------

    def run(self, clock: Optional[SimClock] = None) -> InPlaceReport:
        """Execute the transplant, advancing ``clock`` through each phase."""
        clock = clock or SimClock()
        steps = self._steps(lambda: clock.now)
        try:
            while True:
                clock.advance(next(steps))
        except StopIteration as stop:
            return stop.value

    def as_process(self, engine):
        """Run the transplant as a discrete-event process on ``engine``.

        Other processes (workload samplers, monitors) interleave with the
        transplant's phases on the shared simulated timeline.  Returns the
        :class:`~repro.sim.engine.Process`; its ``result`` is the report.
        """
        return engine.spawn(self._steps(lambda: engine.now),
                            name=f"inplace-{self.machine.name}")

    def _steps(self, now):
        """The workflow as a generator: mutate, then yield each duration.

        ``now`` is a zero-argument callable giving the current simulated
        time; the driver (``run`` or an engine) advances time by whatever
        is yielded before resuming the generator.
        """
        report = InPlaceReport(
            machine=self.machine.name,
            source=self.source.kind.value,
            target=self.target_kind.value,
            vm_count=len(self.source.domains),
        )
        self.tracer.bind_clock(now)
        track = self.machine.name
        start = now()

        domains = sorted(self.source.domains.values(), key=lambda d: d.domid)
        vms = [d.vm for d in domains]
        pre_digests = {vm.name: vm.image.content_digest() for vm in vms}

        pram: Optional[PRAMFilesystem] = None
        uisr_frames: List[int] = []
        paused = False
        try:
            # ❶ stage the target kernel (ahead of time; no downtime cost).
            load_kexec_image(self.machine, self.target_kind)
            target = make_hypervisor(self.target_kind)
            self._checkpoint("stage")

            # Pre-pause preparation: guest notification + device quiescing,
            # then PRAM construction.
            device_prepare_s = sum(
                plan_device_transplant(d.vm.devices).prepare_seconds
                for d in domains
            )
            with self.tracer.span("Device prepare", "prepare", track=track):
                yield device_prepare_s
            self._checkpoint("prepare")

            pram = PRAMFilesystem(self.machine.memory)
            entry_counts = []
            for domain in domains:
                image = domain.vm.image
                entry_counts.append(
                    self.cost.entries_for(image.size_bytes, image.page_size,
                                          self.opts.huge_pages)
                )
                pram.add_vm_file(
                    domain.vm.name, image.mappings(),
                    page_size=image.page_size,
                    entry_page_size=None if self.opts.huge_pages else PAGE_4K,
                )
            pram_pointer = pram.seal()
            report.pram_metadata_bytes = pram.metadata_bytes()
            report.pram_s = self.cost.pram_phase_s(
                self.machine, entry_counts, parallel=self.opts.parallel
            )
            if self.opts.prepare_ahead:
                with self.tracer.span("PRAM", "prepare", track=track):
                    yield report.pram_s  # guests still running
            self._checkpoint("pram")

            # ❷ pause all guests.
            pause_time = now()
            for domain in domains:
                self.source.pause_domain(domain.domid, pause_time)
            paused = True
            if not self.opts.prepare_ahead:
                # Ablation: PRAM work lands inside the downtime window.
                with self.tracer.span("PRAM", "downtime", track=track):
                    yield report.pram_s
            self._checkpoint("pause")

            # ❸ translate VM_i State -> UISR, store encoded docs in RAM.
            to_uisr = self.registry.to_uisr(self.source.kind)
            uisr_docs = []
            vm_shapes = []
            for domain in domains:
                state = to_uisr(self.source, domain,
                                pram_file=domain.vm.name)
                uisr_docs.append(state)
                vm_shapes.append((
                    domain.vm.config.vcpus,
                    self.cost.entries_for(domain.vm.image.size_bytes,
                                          domain.vm.image.page_size,
                                          self.opts.huge_pages),
                ))
                domain.vm.mark_suspended()
            self._checkpoint("translate")
            encoded = [encode_uisr(doc) for doc in uisr_docs]
            report.uisr_bytes = sum(len(blob) for blob in encoded)
            uisr_frames = self._store_uisr(encoded)
            report.translation_s = self.cost.translate_phase_s(
                self.machine, vm_shapes, parallel=self.opts.parallel
            )
            with self.tracer.span("Translation", "downtime", track=track):
                yield report.translation_s
            self._checkpoint("store-uisr")
        except Exception as exc:
            self._abort(now(), vms, pram, uisr_frames, paused)
            raise TransplantError(
                f"{self.machine.name}: InPlaceTP aborted before the "
                f"micro-reboot; all VMs resumed on "
                f"{self.source.kind.value}: {exc}"
            ) from exc

        # ❹ micro-reboot into the target hypervisor.
        total_entries = sum(e for _, e in vm_shapes)
        report.reboot_s = self.cost.reboot_phase_s(
            self.machine, self.target_kind, total_entries
        )
        micro_reboot(self.machine, target, pram_pointer)
        with self.tracer.span("Reboot", "downtime", track=track,
                              args={"target": report.target}):
            yield report.reboot_s
        network_ready_at = now() + self.machine.nic.init_s
        report.network_s = self.machine.nic.init_s
        self._checkpoint("reboot")

        # ❺+❻ restore VM_i States from UISR and re-link to new domains.
        from_uisr = self.registry.from_uisr(self.target_kind)
        for vm, state in zip(vms, uisr_docs):
            domain = target.adopt_vm(vm)
            from_uisr(target, domain, state, pram_fs=pram)
            pram.release_guest_pins(vm.name)
        target.rebuild_management_state()
        report.restoration_s = self.cost.restore_phase_s(
            self.machine, vm_shapes, parallel=self.opts.parallel,
            early_restoration=self.opts.early_restoration,
        )
        with self.tracer.span("Restoration", "downtime", track=track):
            yield report.restoration_s
        self._checkpoint("restore")

        # ❼ resume guests, free ephemeral state, bring the link back up.
        resume_time = now()
        for vm in vms:
            restore_devices(vm.devices, target_kind=self.target_kind.value)
            vm.resume(resume_time)
            report.per_vm_downtime[vm.name] = resume_time - pause_time
        self._free_uisr(uisr_frames)
        pram.teardown()
        yield max(0.0, network_ready_at - now())
        self.machine.nic.bring_up()
        if self.tracer.enabled:
            # Closed intervals known only after the fact: the NIC re-init
            # overlapped restoration, the guests-paused window spans the
            # whole downtime.
            self.tracer.add(Span(
                "NIC re-init", "network",
                network_ready_at - report.network_s, network_ready_at,
                track=f"{track}/nic",
            ))
            self.tracer.add(Span(
                "VMs paused", "guest", pause_time, resume_time,
                track=f"{track}/guests",
                args={"vm_count": report.vm_count},
            ))

        report.downtime_s = (
            report.translation_s + report.reboot_s + report.restoration_s
            + (0.0 if self.opts.prepare_ahead else report.pram_s)
        )
        report.downtime_with_network_s = max(
            report.downtime_s,
            report.translation_s + report.reboot_s + report.network_s
            + (0.0 if self.opts.prepare_ahead else report.pram_s),
        )
        report.total_s = now() - start

        post_digests = {vm.name: vm.image.content_digest() for vm in vms}
        report.guest_digests_preserved = post_digests == pre_digests
        if not report.guest_digests_preserved:
            raise TransplantError(
                f"{self.machine.name}: guest memory corrupted during "
                f"InPlaceTP — digests changed"
            )
        return report

    # -- helpers -------------------------------------------------------------

    def _abort(self, resume_time: float, vms,
               pram: Optional[PRAMFilesystem],
               uisr_frames: List[int], paused: bool) -> None:
        """Undo everything reversible and resume VMs on the source.

        Only valid before the micro-reboot: the source hypervisor is still
        running, guest memory untouched, so the transplant simply unwinds
        (free UISR frames, unpin PRAM, un-stage the kernel, resume guests
        and their devices).
        """
        self._free_uisr(uisr_frames)
        if pram is not None and pram.sealed:
            for name in pram.files:
                pram.release_guest_pins(name)
            pram.teardown()
        self.machine.staged_kernel = None
        if paused:
            for vm in vms:
                vm.resume(resume_time)
        for vm in vms:
            for driver in vm.devices:
                if driver.state.value == "paused":
                    driver.resume()
                elif driver.state.value == "unplugged":
                    driver.rescan()
        self.rolled_back = True

    def _store_uisr(self, encoded_docs: List[bytes]) -> List[int]:
        """Pin RAM frames holding the encoded UISR docs across the reboot."""
        mfns = []
        for blob in encoded_docs:
            frames_needed = -(-len(blob) // PAGE_4K)
            for frame in self.machine.memory.allocate_many(frames_needed,
                                                           size=PAGE_4K):
                self.machine.memory.pin(frame.mfn)
                mfns.append(frame.mfn)
        return mfns

    def _free_uisr(self, mfns: List[int]) -> None:
        for mfn in mfns:
            self.machine.memory.unpin(mfn)
            self.machine.memory.free(mfn)
