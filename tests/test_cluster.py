"""Tests for the cluster model, BtrPlace planner, executor and campaigns."""

import pytest

from repro.errors import ClusterError, PlanningError
from repro.cluster.btrplace import BtrPlacePlanner
from repro.cluster.executor import PlanExecutor
from repro.cluster.model import (
    Cluster,
    ClusterNode,
    ClusterVM,
    WorkloadKind,
    build_paper_cluster,
)
from repro.cluster.plan import MigrationAction
from repro.cluster.upgrade import UpgradeCampaign

GIB = 1024 ** 3


class TestClusterModel:
    def test_paper_cluster_shape(self):
        cluster = build_paper_cluster()
        assert len(cluster.nodes) == 10
        assert cluster.total_vms() == 100
        for node in cluster.nodes.values():
            assert len(node.vms) == 10

    def test_workload_mix(self):
        cluster = build_paper_cluster()
        kinds = [vm.workload for vm in cluster.vms.values()]
        assert kinds.count(WorkloadKind.STREAMING) == 30
        assert kinds.count(WorkloadKind.CPU_MEMORY) == 30
        assert kinds.count(WorkloadKind.IDLE) == 40

    def test_inplace_fraction_applied(self):
        cluster = build_paper_cluster(inplace_fraction=0.6)
        compatible = sum(
            1 for vm in cluster.vms.values() if vm.inplace_compatible
        )
        assert compatible == 60

    def test_bad_fraction_rejected(self):
        with pytest.raises(ClusterError):
            build_paper_cluster(inplace_fraction=1.5)

    def test_move_vm_updates_placement(self):
        cluster = build_paper_cluster()
        cluster.move_vm("vm000", "node05")
        assert cluster.vms["vm000"].node == "node05"
        assert "vm000" in cluster.nodes["node05"].vms
        assert "vm000" not in cluster.nodes["node00"].vms

    def test_capacity_enforced(self):
        cluster = Cluster()
        cluster.add_node(ClusterNode("n0", capacity_vms=1))
        cluster.add_vm(ClusterVM("a"), "n0")
        with pytest.raises(ClusterError):
            cluster.add_vm(ClusterVM("b"), "n0")

    def test_duplicate_names_rejected(self):
        cluster = Cluster()
        cluster.add_node(ClusterNode("n0"))
        with pytest.raises(ClusterError):
            cluster.add_node(ClusterNode("n0"))

    def test_dirty_rates_ordered_by_intensity(self):
        assert (WorkloadKind.IDLE.dirty_rate_bytes_s
                < WorkloadKind.CPU_MEMORY.dirty_rate_bytes_s
                < WorkloadKind.STREAMING.dirty_rate_bytes_s)


class TestPlanner:
    def test_zero_compat_needs_re_migrations(self):
        cluster = build_paper_cluster(inplace_fraction=0.0)
        plan = BtrPlacePlanner(cluster).plan()
        # Paper: 154 migrations for 100 VMs (some VMs move twice).
        assert plan.migration_count > 100
        assert 130 <= plan.migration_count <= 190

    def test_80_percent_compat_near_paper(self):
        cluster = build_paper_cluster(inplace_fraction=0.8)
        plan = BtrPlacePlanner(cluster).plan()
        # Paper: 25 migrations.
        assert 20 <= plan.migration_count <= 40

    def test_monotone_in_compatibility(self):
        counts = []
        for fraction in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
            cluster = build_paper_cluster(inplace_fraction=fraction)
            counts.append(BtrPlacePlanner(cluster).plan().migration_count)
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] == 0  # full compatibility: no migration at all

    def test_every_node_upgraded(self):
        cluster = build_paper_cluster()
        plan = BtrPlacePlanner(cluster).plan()
        assert plan.upgrade_count == 10
        assert all(n.upgraded for n in cluster.nodes.values())
        assert all(n.hypervisor == "kvm" for n in cluster.nodes.values())

    def test_offline_constraint_respected(self):
        cluster = build_paper_cluster(inplace_fraction=0.0)
        plan = BtrPlacePlanner(cluster).plan()
        for group in plan.groups:
            for migration in group.migrations:
                assert migration.destination not in group.nodes

    def test_capacity_never_violated(self):
        cluster = build_paper_cluster(inplace_fraction=0.0)
        BtrPlacePlanner(cluster).plan()
        for node in cluster.nodes.values():
            assert len(node.vms) <= node.capacity_vms

    def test_compatible_vms_never_migrate(self):
        cluster = build_paper_cluster(inplace_fraction=0.5)
        plan = BtrPlacePlanner(cluster).plan()
        compatible = {name for name, vm in cluster.vms.items()
                      if vm.inplace_compatible}
        migrated = {m.vm_name for m in plan.migrations()}
        assert not (compatible & migrated)

    def test_group_size_validated(self):
        cluster = build_paper_cluster()
        with pytest.raises(PlanningError):
            BtrPlacePlanner(cluster, group_size=0)


class TestExecutor:
    def test_streaming_migrations_slower_than_idle(self):
        executor = PlanExecutor()
        idle = executor.migration_time_s(MigrationAction(
            "a", "n0", "n1", 4 * GIB, WorkloadKind.IDLE))
        streaming = executor.migration_time_s(MigrationAction(
            "b", "n0", "n1", 4 * GIB, WorkloadKind.STREAMING))
        assert streaming > idle

    def test_upgrade_seconds_scale(self):
        from repro.cluster.plan import InPlaceAction

        executor = PlanExecutor()
        empty = executor.upgrade_time_s(InPlaceAction("n0", 0, 0))
        loaded = executor.upgrade_time_s(InPlaceAction("n0", 10, 40 * GIB))
        assert loaded > empty
        assert loaded < 30  # hosts upgrade in seconds, not minutes

    def test_execution_accounts_all_actions(self):
        cluster = build_paper_cluster(inplace_fraction=0.5)
        plan = BtrPlacePlanner(cluster).plan()
        result = PlanExecutor().execute(plan)
        assert result.migration_count == plan.migration_count
        assert len(result.per_migration_s) == plan.migration_count
        assert result.total_s == pytest.approx(
            result.migration_s + result.upgrade_s
        )


class TestCampaign:
    def test_fig13_shape(self):
        campaign = UpgradeCampaign()
        results = campaign.sweep([0.0, 0.2, 0.4, 0.6, 0.8])
        gains = UpgradeCampaign.time_gains(results)
        counts = [r.migration_count for r in results]
        assert counts == sorted(counts, reverse=True)
        assert gains == sorted(gains)
        # Paper anchors: ~17 % gain at 20 %, ~80 % at 80 %.
        assert gains[1] == pytest.approx(0.17, abs=0.07)
        assert gains[4] == pytest.approx(0.80, abs=0.08)

    def test_80_percent_total_minutes_near_paper(self):
        # Paper: 3 min 54 s at 80 % InPlaceTP share.
        result = UpgradeCampaign().run(0.8)
        assert 2.0 <= result.total_minutes <= 6.0

    def test_all_migration_takes_many_minutes(self):
        result = UpgradeCampaign().run(0.0)
        assert 8.0 <= result.total_minutes <= 20.0
