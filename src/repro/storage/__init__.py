"""Remote block storage (§4.1).

The paper follows common datacenter practice: VM root disks live on
network-based remote storage, so disk state never lives in host RAM and a
transplant only has to re-establish the *attachment*, not move data.  This
package models that: a :class:`RemoteBlockStore` holding volumes, and
:class:`VolumeAttachment` objects binding volumes to VMs through a block
driver that participates in the §4.2.3 device protocol.
"""

from repro.storage.remote import RemoteBlockStore, Volume
from repro.storage.attach import BlockDriver, VolumeAttachment, StorageManager

__all__ = [
    "RemoteBlockStore",
    "Volume",
    "BlockDriver",
    "VolumeAttachment",
    "StorageManager",
]
