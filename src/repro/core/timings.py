"""Calibrated cost model for transplant phases.

Every simulated duration in the evaluation comes from this module.  The
constants are calibrated against the paper's measured anchors (DESIGN.md §5):
for a 1 vCPU / 1 GB VM, InPlaceTP Xen->KVM costs 0.45/0.08/1.52/0.12 s
(PRAM/Translation/Reboot/Restoration) on M1 and 0.5/0.24/2.40/0.34 s on M2;
the KVM->Xen reboot is ~7.6 s on M1 / ~17.8 s on M2 because Xen boots two
kernels; migration of 1 GB over 1 Gbps takes ~9.6 s with a 4.96 ms (kvmtool)
vs 133.59 ms (Xen) stop-and-copy downtime.

Structural drivers, not magic numbers, produce the shapes:

* per-PRAM-entry costs make PRAM/Translation/Reboot grow with guest memory
  and VM count (Fig. 7b/7c);
* parallel makespans over the machine's worker threads make M1 (4 cores)
  degrade faster than M2 (28 cores) as VM count grows (Fig. 7c vs 7f);
* ``boot_kernel_count`` (Xen=2, KVM=1) and per-CPU boot work make the
  KVM->Xen direction slow (Fig. 10);
* sequential early-boot PRAM parsing makes Reboot creep up with total
  entries (Fig. 7b).
"""

from dataclasses import dataclass
from typing import Sequence

from repro.errors import TransplantError
from repro.hw.machine import Machine
from repro.hw.memory import PAGE_4K
from repro.hypervisors.base import HypervisorKind


@dataclass(frozen=True)
class CostModel:
    """Single-thread nominal costs; machine factors scale them."""

    # -- PRAM construction (pre-pause) --
    pram_fixed_per_vm_s: float = 0.30
    pram_per_entry_s: float = 2.0e-4
    pram_finalize_per_vm_s: float = 0.05  # serial tail per VM

    # -- UISR translation (downtime) --
    translate_fixed_per_vm_s: float = 0.040
    translate_per_vcpu_s: float = 0.002
    translate_per_entry_s: float = 2.0e-5
    translate_per_host_gib_s: float = 0.0025  # PRAM finalization scan

    # -- micro-reboot --
    kexec_jump_s: float = 0.020
    kvm_kernel_boot_s: float = 1.26
    kvm_per_cpu_boot_s: float = 0.020
    xen_kernel_boot_s: float = 4.30  # Xen core + dom0 base
    xen_per_cpu_boot_s: float = 0.40
    nova_kernel_boot_s: float = 0.55  # microhypervisor: tiny single kernel
    nova_per_cpu_boot_s: float = 0.012
    pram_parse_per_entry_s: float = 1.6e-4  # sequential, early boot

    # -- UISR restoration (downtime) --
    restore_fixed_per_vm_s: float = 0.050
    restore_per_vcpu_s: float = 0.005
    restore_per_entry_s: float = 4.0e-5
    restore_per_host_gib_s: float = 0.003
    early_restore_saving_s: float = 0.35  # boot-overlap saved per transplant

    # -- migration --
    migration_setup_s: float = 0.45  # connection + negotiation + first scan
    proxy_translate_s: float = 0.0008  # UISR encode/decode of platform state
    migration_round_overhead_s: float = 0.08
    xen_stopcopy_activation_s: float = 0.118
    xen_stopcopy_per_vcpu_s: float = 0.015
    kvmtool_stopcopy_activation_s: float = 0.003
    kvmtool_stopcopy_per_vcpu_s: float = 0.002
    max_precopy_rounds: int = 5
    stop_threshold_fraction: float = 0.002  # dirty share triggering stop

    # -- in-place guest resume --
    resume_per_vm_s: float = 0.004

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @staticmethod
    def entries_for(memory_bytes: int, page_size: int,
                    huge_pages: bool) -> int:
        """PRAM page entries describing one VM (8 B each, §5.5)."""
        effective = page_size if huge_pages else PAGE_4K
        return -(-memory_bytes // effective)

    # -- InPlaceTP phases ----------------------------------------------------

    def pram_vm_task_s(self, machine: Machine, entries: int) -> float:
        per_vm = self.pram_fixed_per_vm_s + self.pram_per_entry_s * entries
        return per_vm * machine.spec.pram_factor

    def pram_phase_s(self, machine: Machine, entry_counts: Sequence[int],
                     parallel: bool = True) -> float:
        """Wall time to build PRAM files for all VMs (before pausing)."""
        tasks = [self.pram_vm_task_s(machine, e) for e in entry_counts]
        if parallel:
            makespan = machine.cpu_pool.parallel_makespan(tasks)
        else:
            makespan = machine.cpu_pool.serial_makespan(tasks)
        finalize = self.pram_finalize_per_vm_s * len(entry_counts)
        return makespan + finalize * machine.spec.pram_factor

    def translate_vm_task_s(self, machine: Machine, vcpus: int,
                            entries: int) -> float:
        work = (
            self.translate_fixed_per_vm_s
            + self.translate_per_vcpu_s * vcpus
            + self.translate_per_entry_s * entries
        )
        return machine.host_work_time(work)

    def translate_phase_s(self, machine: Machine,
                          vm_shapes: Sequence, parallel: bool = True) -> float:
        """Wall time of the UISR-translation step (VMs are paused).

        ``vm_shapes`` is a sequence of (vcpus, entries) pairs.
        """
        tasks = [self.translate_vm_task_s(machine, v, e) for v, e in vm_shapes]
        if parallel:
            makespan = machine.cpu_pool.parallel_makespan(tasks)
        else:
            makespan = machine.cpu_pool.serial_makespan(tasks)
        host_scan = self.translate_per_host_gib_s * (
            machine.spec.ram_bytes / (1 << 30)
        )
        return makespan + host_scan

    def kernel_boot_s(self, machine: Machine, target_kind: HypervisorKind) -> float:
        if target_kind is HypervisorKind.XEN:
            base = self.xen_kernel_boot_s
            per_cpu = self.xen_per_cpu_boot_s
        elif target_kind is HypervisorKind.KVM:
            base = self.kvm_kernel_boot_s
            per_cpu = self.kvm_per_cpu_boot_s
        elif target_kind is HypervisorKind.NOVA:
            base = self.nova_kernel_boot_s
            per_cpu = self.nova_per_cpu_boot_s
        else:
            raise TransplantError(f"no boot model for {target_kind}")
        return (base * machine.spec.boot_factor
                + per_cpu * machine.spec.threads)

    def reboot_phase_s(self, machine: Machine, target_kind: HypervisorKind,
                       total_entries: int) -> float:
        """kexec jump + target kernel(s) boot + sequential PRAM parse."""
        parse = self.pram_parse_per_entry_s * total_entries
        return (self.kexec_jump_s
                + self.kernel_boot_s(machine, target_kind)
                + machine.host_work_time(parse))

    def restore_vm_task_s(self, machine: Machine, vcpus: int,
                          entries: int) -> float:
        work = (
            self.restore_fixed_per_vm_s
            + self.restore_per_vcpu_s * vcpus
            + self.restore_per_entry_s * entries
        )
        return machine.host_work_time(work)

    def restore_phase_s(self, machine: Machine, vm_shapes: Sequence,
                        parallel: bool = True,
                        early_restoration: bool = True) -> float:
        tasks = [self.restore_vm_task_s(machine, v, e) for v, e in vm_shapes]
        if parallel:
            makespan = machine.cpu_pool.parallel_makespan(tasks)
        else:
            makespan = machine.cpu_pool.serial_makespan(tasks)
        host_scan = self.restore_per_host_gib_s * (
            machine.spec.ram_bytes / (1 << 30)
        )
        total = makespan + host_scan
        if not early_restoration:
            # Without the early-restoration optimisation, restoration waits
            # for all host services instead of starting as soon as the KVM
            # prerequisites are up (§4.2.5).
            total += self.early_restore_saving_s
        return total

    # -- migration helpers --------------------------------------------------------

    def stopcopy_overhead_s(self, dest_kind: HypervisorKind,
                            vcpus: int) -> float:
        """Destination-side activation cost during stop-and-copy.

        kvmtool's lightweight activation is the reason MigrationTP's
        downtime undercuts Xen->Xen migration by ~27x (Table 4).
        """
        if dest_kind is HypervisorKind.KVM:
            return (self.kvmtool_stopcopy_activation_s
                    + self.kvmtool_stopcopy_per_vcpu_s * vcpus)
        if dest_kind is HypervisorKind.NOVA:
            # A user-level VMM activates like kvmtool, slightly leaner.
            return (0.8 * self.kvmtool_stopcopy_activation_s
                    + self.kvmtool_stopcopy_per_vcpu_s * vcpus)
        return (self.xen_stopcopy_activation_s
                + self.xen_stopcopy_per_vcpu_s * vcpus)


DEFAULT_COST_MODEL = CostModel()
