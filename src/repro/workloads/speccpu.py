"""SPECrate 2017 model (Table 5).

The per-benchmark native execution times under KVM and Xen are workload
characteristics taken from the paper's Table 5 (they describe the
applications, not HyperTP).  A transplant run is *simulated*: half the work
executes at the source hypervisor's rate, the VM pauses for the transplant
downtime (or is degraded through a pre-copy phase), and the remaining work
finishes at the target's rate plus a small warm-up penalty (cold caches and
TLBs after the switch).

Degradation uses the paper's formula:
``max((T - T_xen)/T_xen, (T - T_kvm)/T_kvm)``.
"""

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ReproError
from repro.hypervisors.base import HypervisorKind

# benchmark -> (KVM seconds, Xen seconds); from Table 5's first two columns.
SPEC_BASELINES: Dict[str, tuple] = {
    "perlbench": (474.31, 477.39),
    "gcc": (345.92, 346.24),
    "bwaves": (943.96, 941.36),
    "mcf": (466.78, 465.83),
    "cactuBSSN": (323.78, 325.74),
    "namd": (308.77, 310.58),
    "parest": (663.50, 666.87),
    "povray": (558.38, 550.73),
    "lbm": (308.55, 306.27),
    "omnetpp": (557.65, 560.94),
    "wrf": (650.81, 686.62),
    "xalancbmk": (496.66, 488.86),
    "x264": (630.68, 634.67),
    "blender": (457.93, 456.97),
    "cam4": (539.63, 569.20),
    "deepsjeng": (456.65, 457.75),
    "imagick": (707.99, 712.16),
    "leela": (738.87, 741.29),
    "nab": (554.47, 570.73),
    "exchange2": (580.84, 578.83),
    "fotonik3d": (405.29, 398.53),
    "roms": (432.87, 442.74),
    "xz": (530.10, 527.98),
}


def _warmup_fraction(benchmark: str, mechanism: str) -> float:
    """Deterministic per-benchmark warm-up penalty in [0.1 %, 3.5 %].

    Cache/TLB refill after the hypervisor switch varies with each
    benchmark's working set; we derive a stable pseudo-random value from the
    benchmark name so runs are reproducible.
    """
    digest = hashlib.sha256(f"{benchmark}:{mechanism}".encode()).digest()
    unit = digest[0] / 255.0
    return 0.001 + unit * 0.034


@dataclass
class SpecRunResult:
    """One benchmark's simulated run through a transplant."""

    benchmark: str
    mechanism: str
    time_s: float
    degradation: float


class SpecCPUWorkload:
    """One SPECrate 2017 application."""

    def __init__(self, benchmark: str):
        if benchmark not in SPEC_BASELINES:
            raise ReproError(f"unknown SPEC benchmark {benchmark!r}")
        self.benchmark = benchmark
        self.kvm_s, self.xen_s = SPEC_BASELINES[benchmark]

    def native_time(self, kind: HypervisorKind) -> float:
        return self.kvm_s if kind is HypervisorKind.KVM else self.xen_s

    def degradation(self, measured_s: float) -> float:
        """The paper's max-relative-degradation formula."""
        return max(
            (measured_s - self.xen_s) / self.xen_s,
            (measured_s - self.kvm_s) / self.kvm_s,
        )

    def run_with_transplant(self, mechanism: str, downtime_s: float,
                            source: HypervisorKind = HypervisorKind.XEN,
                            target: HypervisorKind = HypervisorKind.KVM,
                            degraded_span_s: float = 0.0,
                            degraded_factor: float = 1.0) -> SpecRunResult:
        """Simulate the benchmark with a transplant at mid-execution.

        ``degraded_span_s``/``degraded_factor`` model a migration's pre-copy
        phase (progress continues at a reduced rate); InPlaceTP passes 0.
        """
        src_time = self.native_time(source)
        tgt_time = self.native_time(target)

        # First half of the work at the source's rate.
        elapsed = src_time / 2.0
        # Pre-copy: work continues slower for the degraded span.
        if degraded_span_s > 0:
            if not 0 < degraded_factor <= 1:
                raise ReproError(f"bad degraded factor {degraded_factor}")
            work_done = degraded_span_s * degraded_factor / src_time
            elapsed += degraded_span_s
        else:
            work_done = 0.0
        # Pause.
        elapsed += downtime_s
        # Remaining work at the target's rate, plus post-switch warm-up.
        remaining = 0.5 - work_done
        elapsed += max(0.0, remaining) * tgt_time
        elapsed += _warmup_fraction(self.benchmark, mechanism) * tgt_time / 2.0

        return SpecRunResult(
            benchmark=self.benchmark,
            mechanism=mechanism,
            time_s=elapsed,
            degradation=self.degradation(elapsed),
        )


def spec_degradation(mechanism: str, downtime_s: float,
                     degraded_span_s: float = 0.0,
                     degraded_factor: float = 1.0,
                     benchmarks: Optional[list] = None) -> Dict[str, SpecRunResult]:
    """Run the whole suite; returns per-benchmark results (Table 5)."""
    names = benchmarks or sorted(SPEC_BASELINES)
    return {
        name: SpecCPUWorkload(name).run_with_transplant(
            mechanism, downtime_s,
            degraded_span_s=degraded_span_s,
            degraded_factor=degraded_factor,
        )
        for name in names
    }
