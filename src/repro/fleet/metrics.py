"""Fleet-scale vulnerability-window metrics.

The paper's headline claim (§1, Fig. 13) is about the *vulnerability
window*: disclosure of a critical CVE until the fleet no longer runs the
vulnerable hypervisor.  This module aggregates per-host windows into the
fleet view — percentiles, the hosts-remediated-over-time curve, retry and
rollback counts — and serializes it to a deterministic JSON document
(same seed and config produce byte-identical output).
"""

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import FleetError
from repro.fleet.state import FleetTrace, HostRecord, HostState

METRICS_FORMAT = "hypertp-fleet-metrics"
METRICS_VERSION = 1


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over ``values`` (``q`` in [0, 100])."""
    if not values:
        raise FleetError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise FleetError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without float drift
    return ordered[int(rank) - 1]


@dataclass
class HostOutcome:
    """Terminal result of one host."""

    name: str
    state: str
    wave: int
    vm_count: int
    planned_migrations: int
    window_s: Optional[float]
    retries: int
    rollbacks: int
    skipped_migrations: int
    failure_reasons: List[str] = field(default_factory=list)

    @classmethod
    def from_record(cls, record: HostRecord) -> "HostOutcome":
        return cls(
            name=record.name,
            state=record.state.value,
            wave=record.wave,
            vm_count=record.vm_count,
            planned_migrations=record.planned_migrations,
            window_s=record.window_s,
            retries=record.retries,
            rollbacks=record.rollbacks,
            skipped_migrations=record.skipped_migrations,
            failure_reasons=list(record.failure_reasons),
        )


@dataclass
class FleetMetrics:
    """The measured outcome of one emergency campaign."""

    trigger_cve: str
    source_hypervisor: str
    target_hypervisor: str
    hosts: int
    vms: int
    waves: int
    disclosure_at_s: float
    completed_at_s: float
    per_host: List[HostOutcome]
    remediation_curve: List[List[float]]
    window_percentiles_s: Dict[str, float]
    fleet_window_s: Optional[float]
    done_hosts: int
    rolled_back_hosts: int
    retries_total: int
    rollbacks_total: int
    migrations_executed: int
    migrations_skipped: int

    @property
    def all_terminal(self) -> bool:
        """Liveness: every host reached DONE or ROLLED_BACK."""
        terminal = {HostState.DONE.value, HostState.ROLLED_BACK.value}
        return all(h.state in terminal for h in self.per_host)

    def to_dict(self) -> Dict:
        return {
            "format": METRICS_FORMAT,
            "version": METRICS_VERSION,
            "campaign": {
                "trigger_cve": self.trigger_cve,
                "source_hypervisor": self.source_hypervisor,
                "target_hypervisor": self.target_hypervisor,
                "hosts": self.hosts,
                "vms": self.vms,
                "waves": self.waves,
                "disclosure_at_s": self.disclosure_at_s,
                "completed_at_s": self.completed_at_s,
            },
            "window": {
                "fleet_window_s": self.fleet_window_s,
                "percentiles_s": dict(sorted(
                    self.window_percentiles_s.items()
                )),
                "remediation_curve": self.remediation_curve,
            },
            "robustness": {
                "done_hosts": self.done_hosts,
                "rolled_back_hosts": self.rolled_back_hosts,
                "retries_total": self.retries_total,
                "rollbacks_total": self.rollbacks_total,
                "migrations_executed": self.migrations_executed,
                "migrations_skipped": self.migrations_skipped,
            },
            "per_host": [
                {
                    "name": h.name,
                    "state": h.state,
                    "wave": h.wave,
                    "vm_count": h.vm_count,
                    "planned_migrations": h.planned_migrations,
                    "window_s": h.window_s,
                    "retries": h.retries,
                    "rollbacks": h.rollbacks,
                    "skipped_migrations": h.skipped_migrations,
                    "failure_reasons": h.failure_reasons,
                }
                for h in sorted(self.per_host, key=lambda h: h.name)
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def collect_metrics(records: Sequence[HostRecord], trace: FleetTrace, *,
                    trigger_cve: str, source_hypervisor: str,
                    target_hypervisor: str, waves: int,
                    disclosure_at_s: float, completed_at_s: float,
                    migrations_executed: int) -> FleetMetrics:
    """Aggregate host records and the transition trace into fleet metrics."""
    outcomes = [HostOutcome.from_record(r) for r in records]
    windows = [h.window_s for h in outcomes if h.window_s is not None]
    percentiles = {
        key: percentile(windows, q)
        for key, q in (("p50", 50.0), ("p95", 95.0), ("p99", 99.0),
                       ("max", 100.0))
    } if windows else {}
    return FleetMetrics(
        trigger_cve=trigger_cve,
        source_hypervisor=source_hypervisor,
        target_hypervisor=target_hypervisor,
        hosts=len(outcomes),
        vms=sum(h.vm_count for h in outcomes),
        waves=waves,
        disclosure_at_s=disclosure_at_s,
        completed_at_s=completed_at_s,
        per_host=outcomes,
        remediation_curve=trace.remediation_curve(),
        window_percentiles_s=percentiles,
        fleet_window_s=max(windows) if windows else None,
        done_hosts=sum(1 for h in outcomes
                       if h.state == HostState.DONE.value),
        rolled_back_hosts=sum(1 for h in outcomes
                              if h.state == HostState.ROLLED_BACK.value),
        retries_total=sum(h.retries for h in outcomes),
        rollbacks_total=sum(h.rollbacks for h in outcomes),
        migrations_executed=migrations_executed,
        migrations_skipped=sum(h.skipped_migrations for h in outcomes),
    )
