"""Negative-path and contract tests for the generic hypervisor base."""

import pytest

from repro.errors import HypervisorError
from repro.guest.vm import VMConfig
from repro.hypervisors import (
    HYPERVISOR_CLASSES,
    KVMHypervisor,
    XenHypervisor,
    make_hypervisor,
)
from repro.hypervisors.base import HypervisorKind

GIB = 1024 ** 3


class TestLifecycleContracts:
    def test_unbooted_hypervisor_rejects_operations(self):
        xen = XenHypervisor()
        with pytest.raises(HypervisorError, match="not booted"):
            xen.create_vm(VMConfig("g", memory_bytes=GIB))

    def test_unknown_domain_operations(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        for operation in (xen.destroy_domain, xen.detach_domain):
            with pytest.raises(HypervisorError, match="no domain"):
                operation(99)
        with pytest.raises(HypervisorError):
            xen.pause_domain(99, 0.0)

    def test_domain_of_unknown_vm(self, m1, m2):
        xen = XenHypervisor()
        xen.boot(m1)
        other = KVMHypervisor()
        other.boot(m2)
        foreign = other.create_vm(VMConfig("f", memory_bytes=GIB))
        with pytest.raises(HypervisorError, match="not hosted"):
            xen.domain_of(foreign.vm)

    def test_domids_monotonic_across_destroy(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        first = xen.create_vm(VMConfig("a", memory_bytes=GIB))
        xen.destroy_domain(first.domid)
        second = xen.create_vm(VMConfig("b", memory_bytes=GIB))
        assert second.domid > first.domid

    def test_shutdown_clears_machine_binding(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        xen.shutdown()
        assert m1.hypervisor is None
        assert not xen.booted
        # The machine can host something else now.
        KVMHypervisor().boot(m1)

    def test_destroy_releases_guest_memory(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        domain = xen.create_vm(VMConfig("a", memory_bytes=GIB))
        assert m1.memory.allocated_bytes == GIB
        xen.destroy_domain(domain.domid)
        assert m1.memory.allocated_bytes == 0

    def test_destroy_without_release_keeps_vm(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        domain = xen.create_vm(VMConfig("a", memory_bytes=GIB))
        xen.destroy_domain(domain.domid, release_vm=False)
        assert m1.memory.allocated_bytes == GIB
        assert domain.vm.state.value == "running"


class TestRegistryCompleteness:
    def test_every_kind_has_a_class(self):
        assert set(HYPERVISOR_CLASSES) == set(HypervisorKind)

    def test_make_hypervisor_all_kinds(self):
        for kind in HypervisorKind:
            assert make_hypervisor(kind).kind is kind

    def test_every_kind_has_boot_model(self, m1):
        from repro.core.timings import DEFAULT_COST_MODEL

        for kind in HypervisorKind:
            assert DEFAULT_COST_MODEL.kernel_boot_s(m1, kind) > 0

    def test_every_kind_has_stopcopy_model(self):
        from repro.core.timings import DEFAULT_COST_MODEL

        for kind in HypervisorKind:
            assert DEFAULT_COST_MODEL.stopcopy_overhead_s(kind, 1) > 0

    def test_every_kind_has_libvirt_uri(self, m1):
        from repro.orchestrator.libvirt import _URI_BY_KIND

        assert set(_URI_BY_KIND) == set(HypervisorKind)

    def test_every_kind_has_net_flavor(self):
        from repro.devices.model import NATIVE_NET_FLAVOR

        assert set(NATIVE_NET_FLAVOR) == {k.value for k in HypervisorKind}


class TestMemoryReportContract:
    def test_total_is_sum_of_categories(self, xen_host):
        report = xen_host.hypervisor.memory_report()
        assert report.total == (report.guest_state + report.vmi_state
                                + report.management_state + report.hv_state)

    def test_empty_host_has_no_guest_state(self, m1):
        xen = XenHypervisor()
        xen.boot(m1)
        report = xen.memory_report()
        assert report.guest_state == 0
        assert report.hv_state > 0
