"""Trusted-computing-base accounting (§4.4).

The paper sizes HyperTP at ~15 KLOC total, of which 8.5 KLOC joins the TCB
and nearly 90 % of that sits in user space.  This module models that
accounting so the property — "HyperTP contributes a comparatively minimal
amount of code, mostly outside the kernel, active only during transplant" —
can be computed and checked rather than merely quoted.
"""

from dataclasses import dataclass
from typing import List

# Baseline TCB of a virtualization stack (hypervisor + management VM),
# "in the scale of millions of LOCs" per Zhang et al. [58].
BASELINE_TCB_KLOC = 2000.0


@dataclass(frozen=True)
class CodeComponent:
    """One body of HyperTP code."""

    name: str
    kloc: float
    in_kernel: bool  # kernel/hypervisor space vs user space
    in_tcb: bool  # counted toward the trusted base
    always_active: bool  # False: runs only during transplant


# The paper's §4.4 inventory.
HYPERTP_COMPONENTS: List[CodeComponent] = [
    CodeComponent("hypervisor patches (Xen + KVM)", 2.2,
                  in_kernel=True, in_tcb=True, always_active=False),
    CodeComponent("userspace management tools (libxl, kvmtool, PRAM/kexec)",
                  5.2, in_kernel=False, in_tcb=True, always_active=False),
    CodeComponent("HyperTP orchestration", 1.1,
                  in_kernel=False, in_tcb=True, always_active=False),
    CodeComponent("testing, utilities and evaluation", 6.1,
                  in_kernel=False, in_tcb=False, always_active=False),
]


@dataclass
class TCBReport:
    """Aggregated accounting."""

    total_kloc: float
    tcb_kloc: float
    tcb_userspace_kloc: float
    tcb_kernel_kloc: float
    relative_tcb_increase: float

    @property
    def userspace_share(self) -> float:
        """Fraction of the TCB contribution living in user space."""
        return self.tcb_userspace_kloc / self.tcb_kloc if self.tcb_kloc else 0.0


def account(components: List[CodeComponent] = None,
            baseline_kloc: float = BASELINE_TCB_KLOC) -> TCBReport:
    """Compute the §4.4 accounting over a component inventory."""
    components = HYPERTP_COMPONENTS if components is None else components
    total = sum(c.kloc for c in components)
    tcb = [c for c in components if c.in_tcb]
    tcb_kloc = sum(c.kloc for c in tcb)
    tcb_user = sum(c.kloc for c in tcb if not c.in_kernel)
    tcb_kernel = sum(c.kloc for c in tcb if c.in_kernel)
    return TCBReport(
        total_kloc=total,
        tcb_kloc=tcb_kloc,
        tcb_userspace_kloc=tcb_user,
        tcb_kernel_kloc=tcb_kernel,
        relative_tcb_increase=tcb_kloc / baseline_kloc,
    )


def attack_surface_properties(components: List[CodeComponent] = None) -> dict:
    """The qualitative §4.4 claims, derived from the inventory."""
    components = HYPERTP_COMPONENTS if components is None else components
    return {
        "activated_only_during_transplant": all(
            not c.always_active for c in components
        ),
        "processes_vm_inputs": False,  # isolated per VM, no guest input paths
        "isolated_between_vms": True,
    }
