"""MySQL + sysbench model (Fig. 12).

The paper's measurements: during migration, request latency rises by ~252 %
and throughput drops by ~68 % for ~76 s; InPlaceTP interrupts service for
~9 s (downtime + NIC re-init).  We model both metrics; latency is reported
as 0 while the service is unreachable (no requests complete), matching how
the paper's plots show gaps.
"""

from repro.hypervisors.base import HypervisorKind
from repro.workloads.base import HostTimeline, MetricSeries, Workload

BASE_LATENCY_MS = 5.0
BASE_QPS = 1_500.0
MIGRATION_LATENCY_FACTOR = 3.52  # +252 %
MIGRATION_QPS_FACTOR = 0.32      # -68 %
KVM_SPEEDUP = 1.06               # slight native advantage, as in Fig. 12


class MySQLWorkload(Workload):
    """Relational database under a sysbench OLTP load."""

    metric_name = "mysql-qps"
    metric_unit = "queries/s"
    network_dependent = True

    def baseline(self, kind: HypervisorKind) -> float:
        if kind is HypervisorKind.KVM:
            return BASE_QPS * KVM_SPEEDUP
        return BASE_QPS

    def latency_ms(self, t: float, timeline: HostTimeline) -> float:
        """Per-request latency at time ``t`` (0 = unreachable)."""
        if timeline.is_paused(t) or timeline.is_network_down(t):
            return 0.0
        base = BASE_LATENCY_MS
        if timeline.hypervisor_at(t) is HypervisorKind.KVM:
            base /= KVM_SPEEDUP
        factor = timeline.degradation_factor(t)
        if factor < 1.0:
            # Throughput degradation shows up as queueing latency.
            base *= MIGRATION_LATENCY_FACTOR
        jitter = 1.0 + self._rng.uniform(-self.noise, self.noise)
        return base * jitter

    def sample(self, t: float, timeline: HostTimeline) -> float:
        if timeline.is_paused(t) or timeline.is_network_down(t):
            return 0.0
        base = self.baseline(timeline.hypervisor_at(t))
        if timeline.degradation_factor(t) < 1.0:
            base *= MIGRATION_QPS_FACTOR
        jitter = 1.0 + self._rng.uniform(-self.noise, self.noise)
        return max(0.0, base * jitter)

    def run_latency(self, duration_s: float, timeline: HostTimeline,
                    sample_interval_s: float = 1.0) -> MetricSeries:
        series = MetricSeries(name="mysql-latency", unit="ms")
        t = 0.0
        while t < duration_s:
            series.append(t, self.latency_ms(t, timeline))
            t += sample_interval_s
        return series
