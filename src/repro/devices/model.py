"""Device transplant strategies.

Maps each guest driver class to the strategy the paper applies (§4.2.3) and
provides the pre-pause preparation and post-restore steps around a
transplant.  The strategy strings here are also what lands in each device's
:class:`~repro.core.uisr.format.UISRDeviceState` record.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import TransplantError
from repro.guest.drivers import (
    EmulatedDriver,
    GuestDriver,
    NetworkDriver,
    PassthroughDriver,
)
from repro.hypervisors.state import Packer

STRATEGY_PASSTHROUGH = "passthrough-pause"
STRATEGY_TRANSLATE = "translate"
STRATEGY_UNPLUG_RESCAN = "unplug-rescan"

# Each hypervisor's native paravirtual network transport; the rescan after
# a transplant installs the target's flavor (xen-netfront -> virtio-net).
NATIVE_NET_FLAVOR = {
    "xen": "xen-netfront",
    "kvm": "virtio-net",
    "nova": "nova-net",
}


def transplant_strategy_for(driver: GuestDriver) -> Tuple[str, bytes]:
    """Return (strategy, UISR payload) for one driver.

    * Pass-through: state lives in Guest State; the payload is empty.
    * Network (emulated): unplug/rescan; payload records only identity.
    * Other emulated devices: the VMM-side emulation state is copied into
      the payload for translation on the target.
    """
    if isinstance(driver, PassthroughDriver):
        return STRATEGY_PASSTHROUGH, b""
    if isinstance(driver, NetworkDriver):
        return STRATEGY_UNPLUG_RESCAN, driver.name.encode()
    if isinstance(driver, EmulatedDriver):
        payload = Packer().u32(driver.vmm_state_bytes).raw(
            b"\x00" * min(driver.vmm_state_bytes, 4096)
        ).bytes()
        return STRATEGY_TRANSLATE, payload
    return STRATEGY_TRANSLATE, b""


@dataclass
class DeviceTransplantPlan:
    """Per-VM device actions and their guest-side time costs."""

    prepare_actions: List[str] = field(default_factory=list)
    restore_actions: List[str] = field(default_factory=list)
    prepare_seconds: float = 0.0
    restore_seconds: float = 0.0


def plan_device_transplant(drivers: List[GuestDriver]) -> DeviceTransplantPlan:
    """Notify guests and quiesce/unplug devices before the transplant.

    This runs while the VM is still live (part of the preparation work the
    paper performs before pausing guests), so its cost does not add to
    downtime — only the restore half does.
    """
    plan = DeviceTransplantPlan()
    for driver in drivers:
        driver.notify_maintenance()
        if isinstance(driver, PassthroughDriver):
            plan.prepare_seconds += driver.pause()
            plan.prepare_actions.append(f"pause {driver.name}")
            plan.restore_seconds += driver.resume_cost_s
            plan.restore_actions.append(f"resume {driver.name}")
        elif isinstance(driver, NetworkDriver):
            plan.prepare_seconds += driver.unplug()
            plan.prepare_actions.append(f"unplug {driver.name}")
            plan.restore_seconds += driver.rescan_cost_s
            plan.restore_actions.append(f"rescan {driver.name}")
        else:
            plan.prepare_seconds += driver.pause()
            plan.prepare_actions.append(f"pause {driver.name}")
            plan.restore_seconds += driver.resume_cost_s
            plan.restore_actions.append(f"resume {driver.name}")
    return plan


def restore_devices(drivers: List[GuestDriver],
                    target_kind: Optional[str] = None) -> float:
    """Resume/rescan all devices after the transplant; returns guest seconds.

    ``target_kind`` (a hypervisor kind value) switches rescanned network
    interfaces to the target's native paravirtual transport.
    """
    flavor = NATIVE_NET_FLAVOR.get(target_kind) if target_kind else None
    total = 0.0
    for driver in drivers:
        if isinstance(driver, NetworkDriver):
            total += driver.rescan(flavor=flavor)
            if not driver.tcp_connections_alive:
                raise TransplantError(
                    f"device {driver.name}: TCP connections dropped across "
                    f"unplug/rescan — transplant broke the invariant"
                )
        else:
            total += driver.resume()
    return total
