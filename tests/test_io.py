"""Tests for the repro.io streaming frame layer and page codecs."""

import pytest

from repro.core import wire
from repro.core.pram import PRAMFilesystem
from repro.errors import StateFormatError
from repro.guest.image import GuestImage
from repro.hw.memory import PAGE_4K, PhysicalMemory
from repro.io import (
    END_FRAME,
    FRAME_OVERHEAD,
    FrameReader,
    FrameWriter,
    Packer,
    PageStreamDecoder,
    PageStreamEncoder,
    StreamMeter,
    Unpacker,
    decode_entry_records,
    decode_frame,
    encode_entry_records,
    encode_frame,
)
from repro.obs.metrics import MetricsRegistry

MIB = 1024 * 1024


def finished_stream(payloads=((1, b"hello"), (2, b"\x00" * 32))):
    writer = FrameWriter()
    for frame_type, payload in payloads:
        writer.frame(frame_type, payload)
    return writer.finish()


def read_all(data):
    reader = FrameReader(data)
    frames = list(reader.frames())
    reader.expect_end()
    return frames


class TestFrameCodec:
    def test_single_frame_roundtrip(self):
        encoded = encode_frame(7, b"payload")
        frame_type, payload, consumed = decode_frame(encoded)
        assert (frame_type, payload) == (7, b"payload")
        assert consumed == len(encoded) == FRAME_OVERHEAD + len(b"payload")

    def test_decode_at_offset(self):
        prefix = encode_frame(1, b"a")
        encoded = prefix + encode_frame(2, b"bb")
        frame_type, payload, _ = decode_frame(encoded, offset=len(prefix))
        assert (frame_type, payload) == (2, b"bb")

    def test_empty_payload_roundtrip(self):
        frame_type, payload, _ = decode_frame(encode_frame(3, b""))
        assert (frame_type, payload) == (3, b"")

    def test_type_out_of_range_rejected(self):
        with pytest.raises(StateFormatError):
            encode_frame(256, b"")
        with pytest.raises(StateFormatError):
            encode_frame(-1, b"")

    def test_end_frame_with_payload_rejected(self):
        with pytest.raises(StateFormatError):
            encode_frame(END_FRAME, b"x")


class TestFrameCorruption:
    def test_bit_flip_any_byte_fails_loudly(self):
        # The acceptance bar: no single-byte corruption anywhere in the
        # stream — magic, version, type, length, payload or CRC — may
        # decode silently.
        stream = finished_stream()
        for position in range(len(stream)):
            corrupted = bytearray(stream)
            corrupted[position] ^= 0xFF
            with pytest.raises(StateFormatError):
                read_all(bytes(corrupted))

    def test_single_bit_flip_fails_loudly(self):
        stream = finished_stream()
        for position in range(len(stream)):
            corrupted = bytearray(stream)
            corrupted[position] ^= 0x01
            with pytest.raises(StateFormatError):
                read_all(bytes(corrupted))

    def test_truncation_at_every_offset_fails_loudly(self):
        stream = finished_stream()
        for cut in range(len(stream)):
            with pytest.raises(StateFormatError):
                read_all(stream[:cut])

    def test_trailing_garbage_rejected(self):
        stream = finished_stream()
        reader = FrameReader(stream + b"tail")
        list(reader.frames())
        with pytest.raises(StateFormatError, match="trailing"):
            reader.expect_end()


class TestFrameWriterReader:
    def test_multi_frame_roundtrip(self):
        payloads = ((1, b"a"), (9, b"bc"), (255, b""))
        assert read_all(finished_stream(payloads)) == list(payloads)

    def test_writer_rejects_end_type(self):
        with pytest.raises(StateFormatError):
            FrameWriter().frame(END_FRAME, b"")

    def test_writer_rejects_append_after_finish(self):
        writer = FrameWriter()
        writer.finish()
        with pytest.raises(StateFormatError):
            writer.frame(1, b"late")
        with pytest.raises(StateFormatError):
            writer.finish()

    def test_writer_accounting(self):
        writer = FrameWriter()
        size = writer.frame(1, b"abc")
        assert size == FRAME_OVERHEAD + 3
        assert writer.frames_written == 1
        assert writer.bytes_written == size
        assert len(writer.finish()) == size + FRAME_OVERHEAD

    def test_reader_rejects_read_past_end(self):
        reader = FrameReader(finished_stream(()))
        assert reader.read() is None
        with pytest.raises(StateFormatError, match="past END"):
            reader.read()

    def test_expect_end_requires_end_frame(self):
        reader = FrameReader(finished_stream())
        reader.read()
        with pytest.raises(StateFormatError, match="not terminated"):
            reader.expect_end()


class TestPackerUnpacker:
    def test_running_length_matches_bytes(self):
        packer = Packer()
        assert len(packer) == 0
        packer.u8(1).u16(2).u32(3).u64(4).i64(-5).raw(b"xyz")
        packer.u64_seq([7, 8])
        assert len(packer) == len(packer.bytes())

    def test_u64_seq_corrupt_count_rejected_before_materializing(self):
        # A flipped count must not drive a multi-GB allocation: the
        # validation happens against the remaining buffer first.
        blob = Packer().u32(0xFFFFFFFF).u64(1).bytes()
        with pytest.raises(StateFormatError, match="truncated"):
            Unpacker(blob).u64_seq()

    def test_u64_seq_roundtrip(self):
        blob = Packer().u64_seq([1, 2, 3]).bytes()
        assert Unpacker(blob).u64_seq() == (1, 2, 3)


class TestPageStream:
    def test_batch_roundtrip(self):
        records = [(0, 11), (1, 22), (5, 33)]
        encoded = PageStreamEncoder().encode_batch(records)
        assert PageStreamDecoder().decode_batch(encoded) == records

    def test_cross_batch_dedup(self):
        # The digest table is stream-scoped: content sent in batch 1 is a
        # 4-byte back-reference in batch 2, and the decoder resolves it.
        encoder = PageStreamEncoder()
        decoder = PageStreamDecoder()
        first = encoder.encode_batch([(0, 111), (1, 222)])
        second = encoder.encode_batch([(2, 222), (3, 111)])
        assert len(second) < len(first)
        assert decoder.decode_batch(first) == [(0, 111), (1, 222)]
        assert decoder.decode_batch(second) == [(2, 222), (3, 111)]
        assert encoder.stats.dedup_hits == 2
        assert encoder.stats.unique_digests == 2

    def test_rle_coalesces_contiguous_gfns(self):
        contiguous = PageStreamEncoder().encode_batch(
            [(gfn, 1000 + gfn) for gfn in range(64)])
        scattered = PageStreamEncoder().encode_batch(
            [(gfn * 2, 1000 + gfn) for gfn in range(64)])
        assert len(contiguous) < len(scattered)

    def test_undefined_ref_rejected(self):
        encoder = PageStreamEncoder()
        encoder.encode_batch([(0, 111)])
        referencing = encoder.encode_batch([(1, 111)])
        # A fresh decoder never saw the literal the ref points at.
        with pytest.raises(StateFormatError, match="undefined digest"):
            PageStreamDecoder().decode_batch(referencing)

    def test_run_coverage_mismatch_rejected(self):
        blob = (Packer().u32(3).u32(1).u64(0).u32(2)
                .u8(0).u64(1).u8(0).u64(2).bytes())
        with pytest.raises(StateFormatError, match="runs cover"):
            PageStreamDecoder().decode_batch(blob)

    def test_unknown_tag_rejected(self):
        blob = Packer().u32(1).u32(1).u64(0).u32(1).u8(7).bytes()
        with pytest.raises(StateFormatError, match="unknown page record"):
            PageStreamDecoder().decode_batch(blob)


class TestEntryRecords:
    def test_contiguous_entries_coalesce_to_runs(self):
        records = [(gfn, gfn + 100, 9) for gfn in range(256)]
        encoded = encode_entry_records(records)
        assert len(encoded) < 8 * len(records)
        assert decode_entry_records(encoded) == records

    def test_scattered_entries_stay_raw(self):
        records = [(gfn * 3, gfn * 7 + 1, 0) for gfn in range(16)]
        encoded = encode_entry_records(records)
        assert len(encoded) == 1 + 4 + 8 * len(records)
        assert decode_entry_records(encoded) == records

    def test_empty_roundtrip(self):
        assert decode_entry_records(encode_entry_records([])) == []

    def test_unknown_mode_rejected(self):
        with pytest.raises(StateFormatError, match="unknown entry-record"):
            decode_entry_records(b"\x07")

    def test_raw_corrupt_count_rejected(self):
        blob = Packer().u8(0).u32(0xFFFFFF).u64(0).bytes()
        with pytest.raises(StateFormatError, match="truncated"):
            decode_entry_records(blob)


class TestCrossPathDedup:
    def test_wire_and_pram_stats_match(self):
        # The acceptance bar for unification: the MigrationTP wire and the
        # PRAM contents encoding push the same guest image through the
        # same page codec, so their dedup statistics are identical —
        # batch for batch, byte for byte.
        memory = PhysicalMemory(16 * MIB)
        image = GuestImage(memory, 2 * MIB, page_size=PAGE_4K)  # 512 pages
        for gfn in range(512):
            image.write_page(gfn, (gfn % 16) * 2 + 1)  # duplicate-heavy

        records = [(gfn, image.read_page(gfn))
                   for gfn, _ in sorted(image.mappings())]
        stream = wire.MigrationStream()
        stream.send(wire.PageBatch(pages=tuple(records)))
        wire_stats = stream.page_stats

        fs = PRAMFilesystem(memory)
        fs.add_vm_file("vm0", image.mappings(), page_size=PAGE_4K)
        fs.encode(include_contents=True)
        pram_stats = fs.last_encode_stats

        assert wire_stats.dedup_hits > 0
        assert wire_stats.as_dict() == pram_stats.as_dict()


class TestStreamMeter:
    def test_local_counters(self):
        meter = StreamMeter("test")
        writer = FrameWriter(meter)
        writer.frame(1, b"abcd")
        stream = writer.finish()
        assert meter.bytes_out == len(stream)
        reader = FrameReader(stream, meter)
        list(reader.frames())
        assert meter.bytes_in == len(stream)

    def test_registry_mirroring(self):
        registry = MetricsRegistry()
        stream = wire.MigrationStream(registry=registry)
        pages = tuple((gfn, 1) for gfn in range(8))
        stream.send(wire.PageBatch(pages=pages))
        sent = registry.counter("io_wire_bytes_out").value
        assert sent == stream.bytes_sent > 0
        assert registry.counter("io_wire_dedup_hits").value == 7
        for message in stream.receive_all():
            assert isinstance(message, wire.PageBatch)
        assert registry.counter("io_wire_bytes_in").value == sent


class TestFrameErrorDiagnostics:
    """Truncation and CRC errors must carry the absolute byte offset and
    the frame's type tag, so a fault in a long multi-frame stream (or on
    a worker pipe) pinpoints the broken frame instead of just failing."""

    def test_crc_error_reports_offset_and_type(self):
        first = encode_frame(1, b"hello")
        second = bytearray(encode_frame(7, b"world"))
        second[-1] ^= 0xFF  # corrupt the second frame's CRC trailer
        stream = first + bytes(second) + encode_frame(END_FRAME, b"")
        with pytest.raises(StateFormatError) as excinfo:
            read_all(stream)
        message = str(excinfo.value)
        assert f"byte offset {len(first)}" in message
        assert "(type 7)" in message
        assert "CRC mismatch" in message

    def test_truncated_body_reports_offset_and_type(self):
        first = encode_frame(1, b"hello")
        second = encode_frame(9, b"payload-that-gets-cut")
        stream = first + second[:-6]
        with pytest.raises(StateFormatError) as excinfo:
            decode_frame(stream, len(first))
        message = str(excinfo.value)
        assert f"byte offset {len(first)}" in message
        assert "(type 9)" in message
        assert "truncated" in message

    def test_truncated_header_reports_offset(self):
        first = encode_frame(3, b"abc")
        with pytest.raises(StateFormatError) as excinfo:
            decode_frame(first + b"\x01\x02", len(first))
        assert f"byte offset {len(first)}" in str(excinfo.value)

    def test_bad_magic_reports_offset(self):
        first = encode_frame(3, b"abc")
        junk = b"\xde\xad\xbe\xef" + b"\x00" * 8
        with pytest.raises(StateFormatError) as excinfo:
            decode_frame(first + junk, len(first))
        message = str(excinfo.value)
        assert "magic" in message
        assert f"byte offset {len(first)}" in message

    def test_base_offset_shifts_reported_position(self):
        frame = bytearray(encode_frame(5, b"x" * 10))
        frame[-2] ^= 0x55
        with pytest.raises(StateFormatError) as excinfo:
            decode_frame(bytes(frame), 0, base_offset=4096)
        assert "byte offset 4096" in str(excinfo.value)


class TestReadStreamFrame:
    """Incremental framing over a blocking binary stream (worker pipes)."""

    def test_roundtrip_over_bytesio(self):
        import io as stdio

        from repro.io import read_stream_frame

        stream = stdio.BytesIO(
            encode_frame(1, b"alpha") + encode_frame(2, b"beta")
            + encode_frame(END_FRAME, b"")
        )
        offset = 0
        seen = []
        while True:
            frame_type, payload, consumed = read_stream_frame(stream, offset)
            offset += consumed
            if frame_type == END_FRAME:
                break
            seen.append((frame_type, payload))
        assert seen == [(1, b"alpha"), (2, b"beta")]
        assert offset == stream.tell()

    def test_eof_between_frames_reports_offset(self):
        import io as stdio

        from repro.io import read_stream_frame

        first = encode_frame(1, b"alpha")
        stream = stdio.BytesIO(first)
        _, _, consumed = read_stream_frame(stream, 0)
        with pytest.raises(StateFormatError) as excinfo:
            read_stream_frame(stream, consumed)
        message = str(excinfo.value)
        assert "stream closed" in message
        assert f"byte offset {len(first)}" in message

    def test_partial_frame_at_eof_reports_truncation(self):
        import io as stdio

        from repro.io import read_stream_frame

        whole = encode_frame(6, b"cut-me-short")
        stream = stdio.BytesIO(whole[:-5])
        with pytest.raises(StateFormatError) as excinfo:
            read_stream_frame(stream, 0)
        message = str(excinfo.value)
        assert "truncated" in message
        assert "(type 6)" in message

    def test_meter_counts_bytes_in(self):
        import io as stdio

        from repro.io import read_stream_frame

        meter = StreamMeter("pipe")
        frame = encode_frame(1, b"counted")
        _, _, consumed = read_stream_frame(stdio.BytesIO(frame), 0, meter)
        assert consumed == len(frame)
        assert meter.bytes_in == len(frame)
