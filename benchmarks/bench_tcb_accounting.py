"""§4.4 — trusted-computing-base accounting.

Paper: ~15 KLOC total, 8.5 KLOC in the TCB, nearly 90 % of that in user
space; relative increase over a millions-of-LOC virtualization TCB is
negligible, and the code is active only during transplant.
"""

from repro.bench.report import format_table, print_experiment
from repro.core.tcb import (
    HYPERTP_COMPONENTS,
    account,
    attack_surface_properties,
)


def run():
    report = account()
    rows = [[c.name, c.kloc, "kernel" if c.in_kernel else "user",
             "yes" if c.in_tcb else "no"] for c in HYPERTP_COMPONENTS]
    rows.append(["TOTAL", report.total_kloc, "", ""])
    rows.append(["TCB total", report.tcb_kloc, "", ""])
    rows.append(["TCB userspace share",
                 f"{report.userspace_share:.0%}", "", ""])
    rows.append(["Relative TCB increase",
                 f"{report.relative_tcb_increase:.2%}", "", ""])
    props = attack_surface_properties()
    rows.append(["Active only during transplant",
                 str(props["activated_only_during_transplant"]), "", ""])
    return rows


def test_tcb_accounting(benchmark):
    rows = benchmark(run)
    print_experiment("§4.4", "HyperTP TCB accounting",
                     format_table(["component", "KLOC", "space", "in TCB"],
                                  rows))


if __name__ == "__main__":
    print_experiment("§4.4", "HyperTP TCB accounting",
                     format_table(["component", "KLOC", "space", "in TCB"],
                                  run()))
