"""Fig. 7 — InPlaceTP Xen->KVM scalability on M1 and M2.

Three sweeps per machine: vCPU count {1..10} (flat), guest memory
{2..12 GB} (PRAM/Reboot grow), VM count {2..12} (M1's 4 cores parallelize
PRAM worse than M2's 28).  Downtime stays within the paper's ranges
(M1: 1.7-3.6 s, M2: 2.94-4.28 s).

Run directly with ``--workers N`` to spread the six (machine, axis) cells
over worker processes; every cell is an independent simulation, so the
rows are identical for any worker count.
"""

import argparse

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import inplace_axis_cell, inplace_sweep
from repro.hw.machine import M1_SPEC, M2_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.par import ParallelRunner

VCPUS = [1, 2, 4, 6, 8, 10]
MEMORY = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
VM_COUNTS = [2, 4, 6, 8, 10, 12]


def run(spec):
    sweep = inplace_sweep(spec, HypervisorKind.KVM, VCPUS, MEMORY, VM_COUNTS)
    rows = []
    for axis, points in (("vcpus", VCPUS), ("memory_gib", MEMORY),
                         ("vm_count", VM_COUNTS)):
        for point, report in zip(points, sweep[axis]):
            rows.append([
                axis, point, report.pram_s, report.translation_s,
                report.reboot_s, report.restoration_s, report.downtime_s,
            ])
    return rows


HEADERS = ["sweep", "x", "PRAM (s)", "Transl. (s)", "Reboot (s)",
           "Restor. (s)", "downtime (s)"]


def test_fig7_m1(benchmark):
    rows = benchmark(run, M1_SPEC)
    print_experiment("Fig. 7 (M1)", "InPlaceTP Xen->KVM scalability",
                     format_table(HEADERS, rows))


def test_fig7_m2(benchmark):
    rows = benchmark(run, M2_SPEC)
    print_experiment("Fig. 7 (M2)", "InPlaceTP Xen->KVM scalability",
                     format_table(HEADERS, rows))


def run_parallel(workers=1):
    """The same rows as ``run(M1) + run(M2)``, one worker cell per axis."""
    cells = [
        {"spec": spec_name, "target": HypervisorKind.KVM.value,
         "axis": axis, "points": points}
        for spec_name in ("M1", "M2")
        for axis, points in (("vcpus", VCPUS), ("memory_gib", MEMORY),
                             ("vm_count", VM_COUNTS))
    ]
    runner = ParallelRunner(workers=workers, task_timeout_s=600.0)
    per_cell = runner.map_tasks(
        inplace_axis_cell, cells,
        labels=[f"{c['spec']}-{c['axis']}" for c in cells],
    )
    by_spec = {"M1": [], "M2": []}
    for cell, rows in zip(cells, per_cell):
        by_spec[cell["spec"]].extend(rows)
    return by_spec


def test_fig7_parallel_matches_serial():
    by_spec = run_parallel(workers=1)
    assert by_spec["M1"] == run(M1_SPEC)
    assert by_spec["M2"] == run(M2_SPEC)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()
    by_spec = run_parallel(workers=args.workers)
    for spec_name in ("M1", "M2"):
        print_experiment(f"Fig. 7 ({spec_name})",
                         "InPlaceTP Xen->KVM scalability",
                         format_table(HEADERS, by_spec[spec_name]))
