"""Extension — streaming quality-of-experience through each mechanism.

Not a paper artifact, but it quantifies the §5.4 premise that streaming
VMs can ride transplants: a client with a normal playback buffer (12 s)
never rebuffers through InPlaceTP (~9 s interruption incl. NIC) or
MigrationTP (ms pause), while a thin 2 s buffer exposes the InPlaceTP
window.  The KVM->Xen direction's longer reboot overruns even the normal
buffer — the quantified reason operators prefer transplanting *toward*
the fast-booting hypervisor.
"""

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import make_host_pair, make_kvm_host, make_xen_host
from repro.core.migration import MigrationTP
from repro.core.transplant import HyperTP
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.workloads import timeline_for_inplace, timeline_for_migration
from repro.workloads.streaming import StreamingWorkload

TRIGGER_T = 30.0
DURATION = 150.0


def scenario_inplace(direction):
    if direction == "xen->kvm":
        machine = make_xen_host(M1_SPEC, vm_count=1, vcpus=2, memory_gib=4.0)
        source, target = HypervisorKind.XEN, HypervisorKind.KVM
    else:
        machine = make_kvm_host(M1_SPEC, vm_count=1, vcpus=2, memory_gib=4.0)
        source, target = HypervisorKind.KVM, HypervisorKind.XEN
    report = HyperTP().inplace(machine, target, SimClock())
    return timeline_for_inplace(report, TRIGGER_T, source, target)


def scenario_migration():
    source, destination, fabric = make_host_pair(
        M1_SPEC, HypervisorKind.KVM, vcpus=2, memory_gib=4.0,
    )
    domain = next(iter(source.hypervisor.domains.values()))
    report = MigrationTP(fabric, source, destination).migrate(
        domain, dirty_rate_bytes_s=64 << 20,
    )
    return timeline_for_migration(report, TRIGGER_T, HypervisorKind.XEN,
                                  HypervisorKind.KVM,
                                  precopy_throughput_factor=0.8)


def run():
    scenarios = [
        ("InPlaceTP xen->kvm", scenario_inplace("xen->kvm")),
        ("InPlaceTP kvm->xen", scenario_inplace("kvm->xen")),
        ("MigrationTP xen->kvm", scenario_migration()),
    ]
    rows = []
    for label, timeline in scenarios:
        for buffer_s in (2.0, 12.0):
            stats = StreamingWorkload(buffer_s=buffer_s).playback(
                DURATION, timeline,
            )
            rows.append([
                label, f"{buffer_s:.0f}s buffer",
                stats.rebuffer_events,
                stats.rebuffer_seconds,
                f"{stats.rebuffer_ratio:.1%}",
            ])
    return rows


HEADERS = ["mechanism", "client buffer", "rebuffer events", "stalled (s)",
           "stall ratio"]


def test_streaming_qoe(benchmark):
    rows = benchmark(run)
    print_experiment("Extension", "streaming QoE through each mechanism",
                     format_table(HEADERS, rows))


if __name__ == "__main__":
    print_experiment("Extension", "streaming QoE through each mechanism",
                     format_table(HEADERS, run()))
