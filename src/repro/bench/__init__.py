"""Benchmark-harness utilities: experiment runners and table formatting."""

from repro.bench.report import format_table, format_series, print_experiment
from repro.bench.runner import (
    inplace_breakdown,
    inplace_sweep,
    migration_sweep,
    make_xen_host,
    make_kvm_host,
    make_host_pair,
)

__all__ = [
    "format_table",
    "format_series",
    "print_experiment",
    "inplace_breakdown",
    "inplace_sweep",
    "migration_sweep",
    "make_xen_host",
    "make_kvm_host",
    "make_host_pair",
]
