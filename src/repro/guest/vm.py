"""The virtual machine object and its lifecycle.

A :class:`VirtualMachine` bundles the guest-visible state (image, vCPUs,
platform, devices) with a lifecycle state machine.  Hypervisors wrap VMs in
their own domain structures; HyperTP moves the VM between hypervisors while
preserving the guest-visible state.
"""

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import VMLifecycleError
from repro.guest.devices import PlatformState, make_default_platform
from repro.guest.drivers import GuestDriver
from repro.guest.image import GuestImage
from repro.guest.vcpu import VCPUState, make_boot_vcpu
from repro.hw.memory import PAGE_2M

GIB = 1024 ** 3


@dataclass(frozen=True)
class VMConfig:
    """Sizing and identity of a VM (the paper's default is 1 vCPU, 1 GB)."""

    name: str
    vcpus: int = 1
    memory_bytes: int = GIB
    page_size: int = PAGE_2M
    seed: int = 0
    # Whether the owner tolerates InPlaceTP's seconds of downtime; VMs that
    # do not are migrated away before a host transplant (§4.5.2, §5.4).
    inplace_compatible: bool = True

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise VMLifecycleError(f"VM {self.name}: need >= 1 vCPU")
        if self.memory_bytes <= 0 or self.memory_bytes % self.page_size:
            raise VMLifecycleError(
                f"VM {self.name}: memory must be a positive multiple of the "
                f"page size"
            )

    @property
    def memory_gib(self) -> float:
        return self.memory_bytes / GIB


class VMState(enum.Enum):
    """Lifecycle states; transitions are enforced by :class:`VirtualMachine`."""

    RUNNING = "running"
    PAUSED = "paused"
    SUSPENDED = "suspended"  # paused + state externalized (UISR built)
    DESTROYED = "destroyed"


_ALLOWED_TRANSITIONS = {
    VMState.RUNNING: {VMState.PAUSED, VMState.DESTROYED},
    VMState.PAUSED: {VMState.RUNNING, VMState.SUSPENDED, VMState.DESTROYED},
    VMState.SUSPENDED: {VMState.RUNNING, VMState.PAUSED, VMState.DESTROYED},
    VMState.DESTROYED: set(),
}


class VirtualMachine:
    """A running guest: image + vCPUs + platform + devices + lifecycle."""

    def __init__(self, config: VMConfig, image: GuestImage,
                 platform: Optional[PlatformState] = None,
                 vcpu_states: Optional[List[VCPUState]] = None):
        self.config = config
        self.image = image
        self.platform = platform or make_default_platform(
            config.vcpus, seed=config.seed
        )
        self.vcpus = vcpu_states or [
            make_boot_vcpu(i, seed=config.seed) for i in range(config.vcpus)
        ]
        if len(self.vcpus) != config.vcpus:
            raise VMLifecycleError(
                f"VM {config.name}: got {len(self.vcpus)} vCPU states for "
                f"{config.vcpus} vCPUs"
            )
        self.devices: List[GuestDriver] = []
        self.state = VMState.RUNNING
        # Timeline bookkeeping for downtime accounting.
        self.paused_at: Optional[float] = None
        self.total_downtime_s = 0.0
        self.pause_intervals: List[tuple] = []

    @property
    def name(self) -> str:
        return self.config.name

    # -- lifecycle ---------------------------------------------------------

    def _transition(self, new_state: VMState) -> None:
        if new_state not in _ALLOWED_TRANSITIONS[self.state]:
            raise VMLifecycleError(
                f"VM {self.name}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def pause(self, now: float) -> None:
        self._transition(VMState.PAUSED)
        self.paused_at = now

    def mark_suspended(self) -> None:
        self._transition(VMState.SUSPENDED)

    def resume(self, now: float) -> None:
        if self.state not in (VMState.PAUSED, VMState.SUSPENDED):
            raise VMLifecycleError(
                f"VM {self.name}: cannot resume from {self.state.value}"
            )
        self.state = VMState.RUNNING
        if self.paused_at is not None:
            interval = (self.paused_at, now)
            self.pause_intervals.append(interval)
            self.total_downtime_s += max(0.0, now - self.paused_at)
            self.paused_at = None

    def destroy(self) -> None:
        self._transition(VMState.DESTROYED)
        self.image.release()

    # -- devices -----------------------------------------------------------

    def attach_device(self, device: GuestDriver) -> None:
        self.devices.append(device)

    def __repr__(self) -> str:
        return (
            f"VirtualMachine({self.name}, {self.config.vcpus} vCPU, "
            f"{self.config.memory_gib:g} GiB, {self.state.value})"
        )
