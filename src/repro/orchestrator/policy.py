"""Transplant policy: which mechanism for which VM.

"In our current prototype, it is up to the datacenter operator to decide
which transplant approach is the most appropriate" (§1) — this module is
that decision, made explicit and testable.  A policy looks at each VM's
downtime tolerance and the host's predicted InPlaceTP downtime, and
assigns the VM to InPlaceTP (ride the micro-reboot) or MigrationTP
(evacuate first).
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import OrchestratorError
from repro.guest.drivers import PassthroughDriver
from repro.hw.machine import Machine
from repro.hypervisors.base import Hypervisor, HypervisorKind
from repro.core.pipeline import InPlacePipeline
from repro.core.timings import DEFAULT_COST_MODEL, CostModel
from repro.orchestrator.scheduled_events import AZURE_MAINTENANCE_BOUND_S


class Mechanism(enum.Enum):
    INPLACE = "inplace"
    MIGRATION = "migration"
    PINNED = "pinned"  # pass-through device: cannot migrate, must ride


@dataclass
class VMAssignment:
    """The policy's verdict for one VM."""

    vm_name: str
    mechanism: Mechanism
    reason: str


@dataclass
class HostPlan:
    """Per-host mechanism assignments plus the predicted downtime."""

    host: str
    predicted_inplace_downtime_s: float
    assignments: List[VMAssignment] = field(default_factory=list)

    def by_mechanism(self, mechanism: Mechanism) -> List[str]:
        return [a.vm_name for a in self.assignments
                if a.mechanism is mechanism]


class TransplantPolicy:
    """Tolerance-driven mechanism selection.

    ``default_tolerance_s`` applies to VMs with no explicit entry; the
    Azure maintenance bound is the conventional default (VMs are expected
    to tolerate up to 30 s of maintenance pause).
    """

    def __init__(self, tolerances_s: Optional[Dict[str, float]] = None,
                 default_tolerance_s: float = AZURE_MAINTENANCE_BOUND_S,
                 cost_model: CostModel = DEFAULT_COST_MODEL):
        if default_tolerance_s < 0:
            raise OrchestratorError("tolerance cannot be negative")
        self.tolerances_s = dict(tolerances_s or {})
        self.default_tolerance_s = default_tolerance_s
        self.cost = cost_model

    def tolerance_of(self, vm_name: str) -> float:
        return self.tolerances_s.get(vm_name, self.default_tolerance_s)

    def predict_inplace_downtime_s(self, machine: Machine,
                                   target: HypervisorKind) -> float:
        """Predicted InPlaceTP downtime for the host's current population.

        Derived from the staged pipeline (the one cost path), so the
        policy predicts with the same floats the fleet later executes.
        """
        hypervisor: Hypervisor = machine.hypervisor
        if hypervisor is None:
            raise OrchestratorError(f"{machine.name} has no hypervisor")
        vm_shapes = []
        for domain in hypervisor.domains.values():
            image = domain.vm.image
            entries = self.cost.entries_for(image.size_bytes,
                                            image.page_size, True)
            vm_shapes.append((domain.vm.config.vcpus, entries))
        if not vm_shapes:
            vm_shapes = [(0, 0)]
        pipeline = InPlacePipeline(machine, self.cost, target)
        return pipeline.plan_shapes(machine.name, vm_shapes).downtime_s

    def plan_host(self, machine: Machine,
                  target: HypervisorKind) -> HostPlan:
        """Assign every VM on ``machine`` a mechanism."""
        predicted = self.predict_inplace_downtime_s(machine, target)
        plan = HostPlan(host=machine.name,
                        predicted_inplace_downtime_s=predicted)
        for domain in sorted(machine.hypervisor.domains.values(),
                             key=lambda d: d.domid):
            vm = domain.vm
            has_passthrough = any(isinstance(d, PassthroughDriver)
                                  for d in vm.devices)
            tolerance = self.tolerance_of(vm.name)
            if has_passthrough:
                # §4.2.3: pass-through forbids migration entirely.
                plan.assignments.append(VMAssignment(
                    vm.name, Mechanism.PINNED,
                    "pass-through device forbids migration; rides the "
                    "micro-reboot regardless of tolerance",
                ))
            elif predicted <= tolerance:
                plan.assignments.append(VMAssignment(
                    vm.name, Mechanism.INPLACE,
                    f"predicted downtime {predicted:.2f}s within "
                    f"tolerance {tolerance:.2f}s",
                ))
            else:
                plan.assignments.append(VMAssignment(
                    vm.name, Mechanism.MIGRATION,
                    f"predicted downtime {predicted:.2f}s exceeds "
                    f"tolerance {tolerance:.2f}s",
                ))
        return plan

    def apply_to_configs(self, machine: Machine,
                         target: HypervisorKind) -> HostPlan:
        """Plan the host and stamp each VM's ``inplace_compatible`` flag so
        the existing transplant machinery honours the policy."""
        import dataclasses

        plan = self.plan_host(machine, target)
        rides = set(plan.by_mechanism(Mechanism.INPLACE)) \
            | set(plan.by_mechanism(Mechanism.PINNED))
        for domain in machine.hypervisor.domains.values():
            vm = domain.vm
            vm.config = dataclasses.replace(
                vm.config, inplace_compatible=vm.name in rides,
            )
        return plan
