"""Xen -> UISR translation (the ``to_uisr_*`` side for Xen).

Pulls the domain's platform state through the toolstack's
``xc_domain_hvm_getcontext`` (exactly what the paper's prototype reuses,
§4.2.1), decodes the Xen-native records, and repackages them as a UISR
document.  The memory map is attached either by PRAM reference (InPlaceTP)
or as an explicit chunk list (MigrationTP).
"""

from typing import List, Optional

from repro.errors import UISRError
from repro.hypervisors.base import Domain, HypervisorKind
from repro.hypervisors.xen.hypervisor import XenHypervisor
from repro.core.uisr.format import (
    UISR_VERSION,
    UISRDeviceState,
    UISRMemoryChunk,
    UISRMemoryMap,
    UISRPlatform,
    UISRVCpu,
    UISRVMState,
)


def _memory_map_for(domain: Domain, pram_file: Optional[str]) -> UISRMemoryMap:
    image = domain.vm.image
    if pram_file is not None:
        return UISRMemoryMap(
            page_size=image.page_size,
            total_bytes=image.size_bytes,
            pram_file=pram_file,
        )
    order = (image.page_size // 4096).bit_length() - 1
    chunks = [
        UISRMemoryChunk(gfn=gfn, mfn=mfn, order=order)
        for gfn, mfn in image.mappings()
    ]
    return UISRMemoryMap(
        page_size=image.page_size,
        total_bytes=image.size_bytes,
        chunks=chunks,
    )


def _device_states(domain: Domain) -> List[UISRDeviceState]:
    from repro.devices.model import transplant_strategy_for

    states = []
    for driver in domain.vm.devices:
        strategy, payload = transplant_strategy_for(driver)
        states.append(UISRDeviceState(
            name=driver.name,
            device_class=type(driver).__name__,
            strategy=strategy,
            payload=payload,
        ))
    return states


def to_uisr_xen(hypervisor: XenHypervisor, domain: Domain,
                pram_file: Optional[str] = None) -> UISRVMState:
    """Translate a Xen domain's VM_i State into UISR."""
    if hypervisor.kind is not HypervisorKind.XEN:
        raise UISRError(f"to_uisr_xen called on {hypervisor.kind.value}")
    blob = hypervisor.toolstack.xc_domain_hvm_getcontext(domain.domid)
    vcpus, platform = hypervisor.toolstack.decode_context(blob)
    return UISRVMState(
        version=UISR_VERSION,
        vm_name=domain.vm.name,
        vcpu_count=domain.vm.config.vcpus,
        memory_bytes=domain.vm.image.size_bytes,
        source_hypervisor=HypervisorKind.XEN.value,
        vcpus=[UISRVCpu(v) for v in vcpus],
        platform=UISRPlatform(platform),
        memory_map=_memory_map_for(domain, pram_file),
        devices=_device_states(domain),
    )
