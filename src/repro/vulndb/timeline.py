"""Vulnerability-window modelling (§2.2 and Fig. 1).

A vulnerability window runs from a flaw's discovery to the moment the
running hypervisor carries the fix.  It decomposes into *time to patch
release* (tracked per CVE when known) plus *time to patch application*
(a per-datacenter policy knob).  HyperTP's pitch is that the window can be
collapsed to the duration of a transplant.
"""

import statistics
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import VulnDBError
from repro.vulndb.cve import CVERecord
from repro.vulndb.data import VulnerabilityDatabase


@dataclass(frozen=True)
class VulnerabilityWindow:
    """The exposed period for one flaw in one datacenter."""

    cve_id: str
    days_to_patch_release: int
    days_to_patch_application: int

    @property
    def total_days(self) -> float:
        return self.days_to_patch_release + self.days_to_patch_application

    def mitigated_days(self, transplant_hours: float) -> float:
        """Exposure when HyperTP covers the window (Fig. 1b): just the time
        to decide + execute the transplant, clamped at the unmitigated
        window — a transplant slower than the patch cycle never *adds*
        exposure, because the operator would simply patch instead."""
        if transplant_hours < 0:
            raise VulnDBError("transplant duration cannot be negative")
        return min(transplant_hours / 24.0, self.total_days)


@dataclass
class WindowStatistics:
    """Aggregate §2.2 statistics over a set of windows."""

    count: int
    mean_days: float
    min_days: int
    max_days: int
    over_60_fraction: float


def windows_for(db: VulnerabilityDatabase,
                patch_application_days: int = 0) -> List[VulnerabilityWindow]:
    """Windows for every CVE with known patch-release timing."""
    if patch_application_days < 0:
        raise VulnDBError("patch application delay cannot be negative")
    return [
        VulnerabilityWindow(
            cve_id=record.cve_id,
            days_to_patch_release=record.days_to_patch,
            days_to_patch_application=patch_application_days,
        )
        for record in db.all()
        if record.days_to_patch is not None
    ]


def window_statistics(db: VulnerabilityDatabase,
                      hypervisor_kind: Optional[str] = None
                      ) -> WindowStatistics:
    """The §2.2 headline numbers (computed, not quoted)."""
    records: List[CVERecord] = db.all()
    if hypervisor_kind is not None:
        records = [r for r in records if r.affects(hypervisor_kind)]
    days = [r.days_to_patch for r in records if r.days_to_patch is not None]
    if not days:
        raise VulnDBError("no timeline data for the requested scope")
    return WindowStatistics(
        count=len(days),
        mean_days=statistics.mean(days),
        min_days=min(days),
        max_days=max(days),
        over_60_fraction=sum(1 for d in days if d > 60) / len(days),
    )
