"""Frame-protocol symmetry between writer and reader state machines.

Every channel built on :mod:`repro.io.frames` declares its frame-type
tags as module-level integer constants or an enum, emits them through
``FrameWriter.frame(TAG, ...)`` (or ``encode_frame(TAG, ...)``), and
consumes them in a decode function that walks a ``FrameReader`` /
``decode_frame`` stream.  A tag that is emitted but never examined by any
reader branch is silently-dropped state; a tag a reader tests for but
nothing emits is a dead branch hiding a protocol drift.  Both directions
broke real decoders before; this rule generalizes the narrower
``codec-symmetry`` stream-shape check to every frame channel.

Model, per module in scope:

* **tags** — module-level ``NAME = <int>`` constants whose name contains
  ``FRAME``, any constant passed to a writer call, and the members of any
  module-level enum used in a writer call.
* **emissions** — ``*.frame(TAG, ...)`` / ``*._frame(TAG, ...)`` /
  ``encode_frame(TAG, ...)`` calls whose first argument resolves to a
  known tag.  The END marker (``END_FRAME`` / frame type 0) is the
  codec's own framing, not channel state, and is ignored.
* **consumptions** — inside any function that constructs a
  ``FrameReader`` or calls ``decode_frame`` (a *reader context*): loads
  of tag constant names, loads of enum members, and enum-constructor
  calls ``EnumName(tag)`` — the latter consume every member, because the
  constructor raises on unknown tags and therefore discriminates all of
  them.

``repro/io`` itself is exempt: it is the codec layer, whose only tag is
the END marker.
"""

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.cfg import walk_runtime
from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule

#: channels that speak the frame protocol (the codec layer itself is out).
FRAME_SCOPE = ("core/", "cluster/", "hypervisors/", "fleet/", "obs/",
               "par/")
FRAME_EXEMPT_PREFIXES = ("io/",)

WRITER_METHODS = frozenset({"frame", "_frame"})
WRITER_FUNCTIONS = frozenset({"encode_frame"})
READER_MARKERS = frozenset({"FrameReader"})
READER_FUNCTIONS = frozenset({"decode_frame", "read_stream_frame"})
END_TAG_NAMES = frozenset({"END_FRAME"})


def _module_int_constants(tree: ast.Module) -> Dict[str, Tuple[int, int]]:
    """name -> (value, line) for module-level integer constants."""
    constants: Dict[str, Tuple[int, int]] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            name, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.value is not None:
            name, value = stmt.target.id, stmt.value
        else:
            continue
        if isinstance(value, ast.Constant) and isinstance(value.value, int) \
                and not isinstance(value.value, bool):
            constants[name] = (value.value, stmt.lineno)
    return constants


def _module_enums(tree: ast.Module) -> Dict[str, Dict[str, int]]:
    """enum class name -> {member -> line} for module-level int enums."""
    enums: Dict[str, Dict[str, int]] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        is_enum = any(
            (isinstance(base, ast.Name) and base.id.endswith("Enum"))
            or (isinstance(base, ast.Attribute)
                and base.attr.endswith("Enum"))
            for base in stmt.bases
        )
        if not is_enum:
            continue
        members: Dict[str, int] = {}
        for sub in stmt.body:
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                    and isinstance(sub.targets[0], ast.Name) \
                    and isinstance(sub.value, ast.Constant):
                members[sub.targets[0].id] = sub.lineno
        if members:
            enums[stmt.name] = members
    return enums


#: a tag is either ("const", name) or ("enum", class, member)
_Tag = Tuple


def _tag_label(tag: _Tag) -> str:
    if tag[0] == "const":
        return tag[1]
    return f"{tag[1]}.{tag[2]}"


class _ModuleProtocol:
    """Emissions and consumptions of one module's frame channels."""

    def __init__(self, module: SourceModule):
        self.module = module
        self.constants = _module_int_constants(module.tree)
        self.enums = _module_enums(module.tree)
        self.emitted: Dict[_Tag, int] = {}   # tag -> first emission line
        self.consumed: Dict[_Tag, int] = {}  # tag -> first consumption line
        self.emitting_enums: Set[str] = set()
        self._collect()

    def _tag_of(self, expr: ast.expr) -> Optional[_Tag]:
        if isinstance(expr, ast.Name) and expr.id in self.constants:
            return ("const", expr.id)
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id in self.enums \
                and expr.attr in self.enums[expr.value.id]:
            return ("enum", expr.value.id, expr.attr)
        return None

    def _is_end(self, tag: _Tag) -> bool:
        if tag[0] == "const":
            name = tag[1]
            return name in END_TAG_NAMES or self.constants[name][0] == 0
        return False

    def _collect(self) -> None:
        for func in self._functions():
            reader = self._is_reader_context(func)
            for sub in walk_runtime(func):
                if isinstance(sub, ast.Call):
                    self._collect_call(sub, reader)
                elif reader and isinstance(sub, (ast.Name, ast.Attribute)):
                    tag = self._tag_of(sub)
                    if tag is not None and not self._is_end(tag):
                        self.consumed.setdefault(tag, sub.lineno)

    def _functions(self) -> Iterable[ast.FunctionDef]:
        for sub in ast.walk(self.module.tree):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield sub

    def _is_reader_context(self, func) -> bool:
        for sub in walk_runtime(func):
            if isinstance(sub, ast.Call):
                if isinstance(sub.func, ast.Name) \
                        and sub.func.id in (READER_MARKERS
                                            | READER_FUNCTIONS):
                    return True
                if isinstance(sub.func, ast.Attribute) \
                        and sub.func.attr in READER_FUNCTIONS:
                    return True
        return False

    def _collect_call(self, call: ast.Call, reader: bool) -> None:
        is_writer = (
            (isinstance(call.func, ast.Attribute)
             and call.func.attr in WRITER_METHODS)
            or (isinstance(call.func, ast.Name)
                and call.func.id in WRITER_FUNCTIONS)
        )
        if is_writer and call.args:
            tag = self._tag_of(call.args[0])
            if tag is not None and not self._is_end(tag):
                self.emitted.setdefault(tag, call.lineno)
                if tag[0] == "enum":
                    self.emitting_enums.add(tag[1])
        if reader and isinstance(call.func, ast.Name) \
                and call.func.id in self.enums:
            # EnumName(tag) raises on unknown tags: it discriminates —
            # and therefore consumes — every member.
            for member, line in self.enums[call.func.id].items():
                self.consumed.setdefault(("enum", call.func.id, member),
                                         call.lineno)


@register_rule
class FrameProtocolSymmetryRule(Rule):
    name = "frame-protocol-symmetry"
    description = (
        "every frame type a FrameWriter emits has a matching FrameReader "
        "branch and vice versa (per module; END frames exempt)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not module.path.startswith(FRAME_SCOPE):
                continue
            if module.path.startswith(FRAME_EXEMPT_PREFIXES):
                continue
            protocol = _ModuleProtocol(module)
            if not protocol.emitted and not protocol.consumed:
                continue
            yield from self._check_module(protocol)

    def _check_module(self,
                      protocol: _ModuleProtocol) -> Iterable[Finding]:
        module = protocol.module
        emitted = protocol.emitted
        consumed = protocol.consumed
        findings: List[Finding] = []
        for tag in emitted:
            if tag not in consumed:
                findings.append(self.finding(
                    module.path, emitted[tag],
                    f"frame type {_tag_label(tag)} is emitted here but no "
                    f"reader branch in this module consumes it; receivers "
                    f"will drop or choke on the frame",
                    symbol=_tag_label(tag)))
        for tag in consumed:
            if tag in emitted:
                continue
            if not self._is_declared_tag(protocol, tag):
                continue
            findings.append(self.finding(
                module.path, consumed[tag],
                f"reader branch consumes frame type {_tag_label(tag)} "
                f"but no writer in this module emits it; the branch is "
                f"dead or the writer drifted",
                symbol=_tag_label(tag)))
        for finding in sorted(findings, key=lambda f: (f.line, f.message)):
            yield finding

    @staticmethod
    def _is_declared_tag(protocol: _ModuleProtocol, tag: _Tag) -> bool:
        """Reader-only reports need the name to *look like* a frame tag:
        a FRAME-named constant, or a member of an enum the module's
        writers use.  Plain constants compared in a reader for other
        reasons (lengths, versions) stay out."""
        if tag[0] == "const":
            return "FRAME" in tag[1].upper()
        return tag[1] in protocol.emitting_enums
