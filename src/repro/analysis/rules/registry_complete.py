"""Registry completeness: every HypervisorKind has a converter pair.

The paper's repertoire model (§3.1) only works if each hypervisor in the
pool can both export to and restore from UISR.  A ``HypervisorKind``
member without a ``registry.register(HypervisorKind.X, to, from)`` call is
a hypervisor that boots but cannot take part in a transplant — discovered
today at lint time rather than mid-transplant via ``UISRError``.
"""

import ast
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import Project, top_level_classes

KIND_CLASS = "HypervisorKind"
REGISTER_METHOD = "register"


def _enum_members(node: ast.ClassDef) -> Set[str]:
    members = set()
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id.isupper():
                    members.add(target.id)
    return members


def _registered_kinds(tree: ast.Module) -> Tuple[Set[str], Optional[int]]:
    """Kinds passed to ``.register(HypervisorKind.X, ...)`` calls, plus the
    line of the first such call (anchor for findings)."""
    kinds: Set[str] = set()
    anchor: Optional[int] = None
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == REGISTER_METHOD
                and node.args):
            continue
        first = node.args[0]
        if (isinstance(first, ast.Attribute)
                and isinstance(first.value, ast.Name)
                and first.value.id == KIND_CLASS):
            kinds.add(first.attr)
            if anchor is None:
                anchor = node.lineno
    return kinds, anchor


@register_rule
class RegistryCompletenessRule(Rule):
    name = "registry-completeness"
    description = (
        "every HypervisorKind member must have a converter pair registered "
        "in the default ConverterRegistry"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        kind_module = None
        kind_class = None
        for module in project.modules:
            classes = top_level_classes(module.tree)
            if KIND_CLASS in classes:
                kind_module, kind_class = module, classes[KIND_CLASS]
                break
        if kind_class is None:
            return
        members = _enum_members(kind_class)

        registrations: Dict[str, Tuple[str, int]] = {}
        for module in project.modules:
            kinds, anchor = _registered_kinds(module.tree)
            for kind in kinds:
                registrations.setdefault(kind, (module.path, anchor or 1))

        if not registrations:
            yield self.finding(
                kind_module.path, kind_class.lineno,
                f"no converter registrations found for any {KIND_CLASS} "
                f"member; the default registry is empty",
                symbol=KIND_CLASS,
            )
            return

        anchor_path, anchor_line = sorted(registrations.values())[0]
        for member in sorted(members - set(registrations)):
            yield self.finding(
                anchor_path, anchor_line,
                f"{KIND_CLASS}.{member} has no registered to_uisr/from_uisr "
                f"converter pair; transplants involving it will fail at "
                f"runtime with UISRError",
                symbol=member,
            )
