"""``repro.sentinel`` — the event-driven response plane.

Replays a vulnerability feed against a simulated fleet and runs the
paper's operational loop continuously: gate each disclosure, score a
transplant target, launch fleet campaigns, preempt them when a new
critical flaw invalidates the target, and transplant back once the patch
cycle closes the flaw.  The output is the per-CVE end-to-end
disclosure->remediated window distribution (§2.2, Fig. 1), measured.
"""

from repro.sentinel.feedstream import (
    DAY_S,
    DisclosureEvent,
    FeedSchedule,
    build_feed,
    feed_statistics,
)
from repro.sentinel.inventory import FleetInventory
from repro.sentinel.policy import PolicyConfig, ResponsePolicy, TargetChoice
from repro.sentinel.report import (
    SENTINEL_WINDOW_BUCKETS,
    SentinelReport,
    build_report,
)
from repro.sentinel.responder import (
    CampaignRecord,
    CVEState,
    Sentinel,
    SentinelConfig,
)

__all__ = [
    "DAY_S",
    "DisclosureEvent",
    "FeedSchedule",
    "build_feed",
    "feed_statistics",
    "FleetInventory",
    "PolicyConfig",
    "ResponsePolicy",
    "TargetChoice",
    "SENTINEL_WINDOW_BUCKETS",
    "SentinelReport",
    "build_report",
    "CampaignRecord",
    "CVEState",
    "Sentinel",
    "SentinelConfig",
]
