"""Guest-side models.

A guest VM is described by a :class:`VMConfig`, owns a :class:`GuestImage`
(its physical address space, backed by host frames), a set of
:class:`~repro.guest.vcpu.VCPUState` objects and virtual platform devices.
All of this is *Guest State* or *VM_i State* in the paper's memory-separation
terminology; the hypervisor packages wrap these in their own formats.
"""

from repro.guest.vcpu import VCPUState, make_boot_vcpu
from repro.guest.devices import (
    LAPICState,
    IOAPICState,
    PITState,
    MTRRState,
    XSAVEState,
    PlatformState,
    make_default_platform,
)
from repro.guest.image import GuestImage
from repro.guest.vm import VMConfig, VirtualMachine, VMState
from repro.guest.drivers import GuestDriver, NetworkDriver, PassthroughDriver

__all__ = [
    "VCPUState",
    "make_boot_vcpu",
    "LAPICState",
    "IOAPICState",
    "PITState",
    "MTRRState",
    "XSAVEState",
    "PlatformState",
    "make_default_platform",
    "GuestImage",
    "VMConfig",
    "VirtualMachine",
    "VMState",
    "GuestDriver",
    "NetworkDriver",
    "PassthroughDriver",
]
