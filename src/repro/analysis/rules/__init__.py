"""Built-in analysis rules.

Importing this package registers every rule with the engine's registry.
To add a rule: write a module here with a ``@register_rule`` class and
import it below (see ``docs/static-analysis.md``).
"""

from repro.analysis.rules import (  # noqa: F401
    codec_symmetry,
    frame_symmetry,
    hygiene,
    io_hygiene,
    journal_hygiene,
    mechanism_hygiene,
    obs_hygiene,
    par_hygiene,
    registry_complete,
    state_machine,
    sync_protocol,
    uisr_coverage,
)
