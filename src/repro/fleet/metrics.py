"""Fleet-scale vulnerability-window metrics.

The paper's headline claim (§1, Fig. 13) is about the *vulnerability
window*: disclosure of a critical CVE until the fleet no longer runs the
vulnerable hypervisor.  This module aggregates per-host windows into the
fleet view — percentiles, the hosts-remediated-over-time curve, retry and
rollback counts — and serializes it to a deterministic JSON document
(same seed and config produce byte-identical output).
"""

import json
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.errors import FleetError
from repro.fleet.state import FleetTrace, HostRecord, HostState
from repro.obs.metrics import MetricsRegistry

METRICS_FORMAT = "hypertp-fleet-metrics"
METRICS_VERSION = 1

#: fixed bucket bounds (seconds) for per-host vulnerability windows — up to
#: a day, roughly logarithmic, shared by every campaign so snapshots diff.
WINDOW_BUCKETS = (
    1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1200.0, 1800.0,
    3600.0, 7200.0, 14400.0, 28800.0, 86400.0,
)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over ``values`` (``q`` in [0, 100])."""
    if not values:
        raise FleetError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise FleetError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    # Nearest rank = ceil(n * q / 100).  Fraction keeps the product exact
    # (float multiplication can land an epsilon above an integer boundary
    # and push ceil one rank too high).
    rank = max(1, math.ceil(Fraction(len(ordered)) * Fraction(q) / 100))
    return ordered[rank - 1]


@dataclass
class HostOutcome:
    """Terminal result of one host."""

    name: str
    state: str
    wave: int
    vm_count: int
    planned_migrations: int
    window_s: Optional[float]
    retries: int
    rollbacks: int
    skipped_migrations: int
    failure_reasons: List[str] = field(default_factory=list)

    @classmethod
    def from_record(cls, record: HostRecord) -> "HostOutcome":
        return cls(
            name=record.name,
            state=record.state.value,
            wave=record.wave,
            vm_count=record.vm_count,
            planned_migrations=record.planned_migrations,
            window_s=record.window_s,
            retries=record.retries,
            rollbacks=record.rollbacks,
            skipped_migrations=record.skipped_migrations,
            failure_reasons=list(record.failure_reasons),
        )


@dataclass
class FleetMetrics:
    """The measured outcome of one emergency campaign."""

    trigger_cve: str
    source_hypervisor: str
    target_hypervisor: str
    hosts: int
    vms: int
    waves: int
    disclosure_at_s: float
    completed_at_s: float
    per_host: List[HostOutcome]
    remediation_curve: List[List[float]]
    window_percentiles_s: Dict[str, float]
    fleet_window_s: Optional[float]
    done_hosts: int
    rolled_back_hosts: int
    retries_total: int
    rollbacks_total: int
    migrations_executed: int
    migrations_skipped: int
    #: non-default mechanism policy, if one was configured.  None (the
    #: hybrid default) keeps the document byte-identical to pre-policy
    #: campaigns; any other policy annotates the campaign block and adds
    #: a top-level mechanism_mix section.
    mechanism: Optional[str] = None
    mechanism_mix: Optional[Dict[str, Dict[str, int]]] = None

    @property
    def all_terminal(self) -> bool:
        """Liveness: every host reached DONE or ROLLED_BACK."""
        terminal = {HostState.DONE.value, HostState.ROLLED_BACK.value}
        return all(h.state in terminal for h in self.per_host)

    def to_dict(self) -> Dict:
        document = {
            "format": METRICS_FORMAT,
            "version": METRICS_VERSION,
            "campaign": {
                "trigger_cve": self.trigger_cve,
                "source_hypervisor": self.source_hypervisor,
                "target_hypervisor": self.target_hypervisor,
                "hosts": self.hosts,
                "vms": self.vms,
                "waves": self.waves,
                "disclosure_at_s": self.disclosure_at_s,
                "completed_at_s": self.completed_at_s,
            },
            "window": {
                "fleet_window_s": self.fleet_window_s,
                "percentiles_s": dict(sorted(
                    self.window_percentiles_s.items()
                )),
                "remediation_curve": self.remediation_curve,
            },
            "robustness": {
                "done_hosts": self.done_hosts,
                "rolled_back_hosts": self.rolled_back_hosts,
                "retries_total": self.retries_total,
                "rollbacks_total": self.rollbacks_total,
                "migrations_executed": self.migrations_executed,
                "migrations_skipped": self.migrations_skipped,
            },
            "per_host": [
                {
                    "name": h.name,
                    "state": h.state,
                    "wave": h.wave,
                    "vm_count": h.vm_count,
                    "planned_migrations": h.planned_migrations,
                    "window_s": h.window_s,
                    "retries": h.retries,
                    "rollbacks": h.rollbacks,
                    "skipped_migrations": h.skipped_migrations,
                    "failure_reasons": h.failure_reasons,
                }
                for h in sorted(self.per_host, key=lambda h: h.name)
            ],
        }
        if self.mechanism is not None:
            document["campaign"]["mechanism"] = self.mechanism
            document["mechanism_mix"] = self.mechanism_mix
        return document

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def report_into(self, registry: MetricsRegistry) -> MetricsRegistry:
        """Publish the campaign outcome into a metrics registry.

        Counters for the totals, gauges for the fleet-level window, and a
        fixed-bucket histogram of per-host windows (observed in sorted
        host order, so the snapshot is deterministic).
        """
        registry.counter(
            "fleet_hosts_done_total", "hosts remediated (DONE)",
        ).inc(self.done_hosts)
        registry.counter(
            "fleet_hosts_rolled_back_total", "hosts rolled back",
        ).inc(self.rolled_back_hosts)
        registry.counter(
            "fleet_retries_total", "phase retries across all hosts",
        ).inc(self.retries_total)
        registry.counter(
            "fleet_rollbacks_total", "rollback procedures executed",
        ).inc(self.rollbacks_total)
        registry.counter(
            "fleet_migrations_executed_total", "evacuations that ran",
        ).inc(self.migrations_executed)
        registry.counter(
            "fleet_migrations_skipped_total", "evacuations skipped",
        ).inc(self.migrations_skipped)
        registry.gauge(
            "fleet_window_seconds",
            "disclosure -> last host remediated",
        ).set(self.fleet_window_s if self.fleet_window_s is not None else 0.0)
        registry.gauge(
            "fleet_campaign_waves", "planner wave count",
        ).set(self.waves)
        histogram = registry.histogram(
            "fleet_host_window_seconds",
            "per-host disclosure -> remediated window",
            buckets=WINDOW_BUCKETS,
        )
        for outcome in sorted(self.per_host, key=lambda h: h.name):
            if outcome.window_s is not None:
                histogram.observe(outcome.window_s)
        return registry


def collect_metrics(records: Sequence[HostRecord], trace: FleetTrace, *,
                    trigger_cve: str, source_hypervisor: str,
                    target_hypervisor: str, waves: int,
                    disclosure_at_s: float, completed_at_s: float,
                    migrations_executed: int,
                    registry: Optional[MetricsRegistry] = None,
                    mechanism: Optional[str] = None,
                    mechanism_mix: Optional[Dict[str, Dict[str, int]]] = None,
                    ) -> FleetMetrics:
    """Aggregate host records and the transition trace into fleet metrics.

    When a ``registry`` is given the aggregate is also published into it
    (see :meth:`FleetMetrics.report_into`).
    """
    outcomes = [HostOutcome.from_record(r) for r in records]
    windows = [h.window_s for h in outcomes if h.window_s is not None]
    percentiles = {
        key: percentile(windows, q)
        for key, q in (("p50", 50.0), ("p95", 95.0), ("p99", 99.0),
                       ("max", 100.0))
    } if windows else {}
    metrics = FleetMetrics(
        trigger_cve=trigger_cve,
        source_hypervisor=source_hypervisor,
        target_hypervisor=target_hypervisor,
        hosts=len(outcomes),
        vms=sum(h.vm_count for h in outcomes),
        waves=waves,
        disclosure_at_s=disclosure_at_s,
        completed_at_s=completed_at_s,
        per_host=outcomes,
        remediation_curve=trace.remediation_curve(),
        window_percentiles_s=percentiles,
        fleet_window_s=max(windows) if windows else None,
        done_hosts=sum(1 for h in outcomes
                       if h.state == HostState.DONE.value),
        rolled_back_hosts=sum(1 for h in outcomes
                              if h.state == HostState.ROLLED_BACK.value),
        retries_total=sum(h.retries for h in outcomes),
        rollbacks_total=sum(h.rollbacks for h in outcomes),
        migrations_executed=migrations_executed,
        migrations_skipped=sum(h.skipped_migrations for h in outcomes),
        mechanism=mechanism,
        mechanism_mix=mechanism_mix,
    )
    if registry is not None:
        metrics.report_into(registry)
    return metrics
