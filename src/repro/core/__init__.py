"""HyperTP core — the paper's primary contribution.

Submodules:

* :mod:`uisr` — Unified Intermediate State Representation (format, binary
  codec, converter registry).
* :mod:`convert` — Xen <-> UISR <-> KVM converters and compatibility fixups.
* :mod:`memsep` — memory-separation classifier (Fig. 2).
* :mod:`pram` — the PRAM over-kexec memory file system (Fig. 4).
* :mod:`kexec` — simulated micro-reboot with PRAM hand-over.
* :mod:`timings` — calibrated cost model for every transplant phase.
* :mod:`optimizations` — the four §4.2.5 optimisations as toggles.
* :mod:`inplace` — InPlaceTP workflow (Fig. 3).
* :mod:`migration` — MigrationTP and homogeneous live-migration baseline.
* :mod:`transplant` — the :class:`HyperTP` façade tying it all together.
* :mod:`tcb` — trusted-computing-base accounting (§4.4).
"""

from repro.core.transplant import HyperTP, TransplantReport
from repro.core.inplace import InPlaceTP, InPlaceReport
from repro.core.migration import MigrationTP, LiveMigration, MigrationReport
from repro.core.optimizations import OptimizationConfig
from repro.core.timings import CostModel, DEFAULT_COST_MODEL

__all__ = [
    "HyperTP",
    "TransplantReport",
    "InPlaceTP",
    "InPlaceReport",
    "MigrationTP",
    "LiveMigration",
    "MigrationReport",
    "OptimizationConfig",
    "CostModel",
    "DEFAULT_COST_MODEL",
]
