"""Network fabric connecting machines.

A :class:`Fabric` is a set of full-duplex :class:`Link` objects between named
machines.  Migration code asks the fabric for the effective transfer rate
between a source and a destination; the rate is bounded by the slower of the
two NICs and the link itself, with fair sharing across concurrent flows.
"""

from typing import Dict, Optional, Tuple

from repro.errors import HardwareError
from repro.hw.machine import Machine
from repro.sim.resources import BandwidthLink, effective_tcp_rate


class Link:
    """A point-to-point (or switch-mediated) link between two machines."""

    def __init__(self, a: Machine, b: Machine, latency_s: float = 0.0005):
        rate = min(a.nic.rate_bytes_per_s, b.nic.rate_bytes_per_s)
        self.a = a
        self.b = b
        self.pipe = BandwidthLink(effective_tcp_rate(rate), latency_s=latency_s)
        self.active_flows = 0

    def endpoints(self) -> Tuple[str, str]:
        return (self.a.name, self.b.name)

    def transfer_time(self, nbytes: float, concurrent: Optional[int] = None) -> float:
        """Seconds to transfer ``nbytes`` given current (or given) contention."""
        flows = concurrent if concurrent is not None else max(1, self.active_flows)
        return self.pipe.transfer_time(nbytes, concurrent=flows)


class Fabric:
    """Registry of links between machines, keyed by unordered name pairs."""

    def __init__(self):
        self._links: Dict[frozenset, Link] = {}

    def connect(self, a: Machine, b: Machine, latency_s: float = 0.0005) -> Link:
        if a is b:
            raise HardwareError("cannot connect a machine to itself")
        key = frozenset((a.name, b.name))
        link = Link(a, b, latency_s=latency_s)
        self._links[key] = link
        return link

    def link_between(self, a: Machine, b: Machine) -> Link:
        key = frozenset((a.name, b.name))
        try:
            return self._links[key]
        except KeyError:
            raise HardwareError(f"no link between {a.name} and {b.name}") from None

    def connected(self, a: Machine, b: Machine) -> bool:
        return frozenset((a.name, b.name)) in self._links

    def full_mesh(self, machines) -> None:
        """Connect every pair of machines (the cluster testbed topology)."""
        machines = list(machines)
        for i, a in enumerate(machines):
            for b in machines[i + 1:]:
                if not self.connected(a, b):
                    self.connect(a, b)
