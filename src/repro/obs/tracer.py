"""Sim-clock-sourced span recording.

A :class:`Tracer` opens live spans around code as it runs on the simulated
clock — as a context manager (``with tracer.span("Reboot", "downtime")``) or
a decorator (:func:`traced`) — and also accepts precomputed spans via
:meth:`Tracer.add` for timelines that are calculated rather than simulated
(pre-copy round plans, executor cost models, post-run state-transition
logs).

The clock is a zero-argument callable; components bind it to whatever
drives them (``lambda: engine.now``, ``lambda: clock.now``) via
:meth:`Tracer.bind_clock`, so one tracer follows a campaign across engines.

Tracing must cost nothing when off: :data:`NULL_TRACER` is a shared no-op
whose ``span()`` returns a reusable empty context manager and whose
``enabled`` flag lets call sites skip building ``Span`` objects entirely.
Instrumented code takes ``tracer=NULL_TRACER`` by default and never pays
for allocation, clock reads, or list appends unless a real tracer is
passed in.
"""

import functools
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.trace import Span, Trace


class Tracer:
    """Records live spans against a bindable simulated clock."""

    enabled = True

    def __init__(self, now: Optional[Callable[[], float]] = None,
                 trace: Optional[Trace] = None):
        self._now = now if now is not None else (lambda: 0.0)
        self.trace = trace if trace is not None else Trace()
        # (name, track, start) of every span opened and not yet closed.
        self._open: List[Tuple[str, str, float]] = []

    def bind_clock(self, now: Callable[[], float]) -> None:
        """Point the tracer at a new time source (e.g. a fresh engine)."""
        self._now = now

    @property
    def now(self) -> float:
        return self._now()

    @property
    def open_spans(self) -> List[Tuple[str, str, float]]:
        """Spans currently open (empty unless called mid-``with`` block)."""
        return list(self._open)

    @contextmanager
    def span(self, name: str, category: str = "", track: str = "host",
             args: Optional[Dict[str, object]] = None):
        """Open a span now; close it (and record it) when the block exits.

        Works across generator ``yield``s: the span ends when the ``with``
        block is finally left, at whatever simulated time the clock then
        reads — so wrapping a ``yield duration`` records exactly that
        phase's window.
        """
        start = self._now()
        self._open.append((name, track, start))
        try:
            yield self
        finally:
            self._open.pop()
            self.trace.add(Span(name, category, start, self._now(),
                                track=track, args=args))

    def add(self, span: Span) -> None:
        """Record a precomputed span (already closed by construction)."""
        self.trace.add(span)

    def extend(self, spans) -> None:
        for span in spans:
            self.trace.add(span)

    def to_chrome_trace(self) -> str:
        """Export the recorded trace; refuses while any span is open."""
        if self._open:
            dangling = ", ".join(
                f"{name!r} on {track!r}" for name, track, _ in self._open
            )
            raise ObservabilityError(
                f"cannot export with open spans: {dangling}"
            )
        return self.trace.to_chrome_trace()


class _NullContext:
    """Reusable empty context manager — the zero-cost ``span()`` result."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Drop-in no-op: every operation returns immediately.

    ``enabled`` is False so call sites can skip building precomputed spans
    (``if tracer.enabled: tracer.add(...)``).
    """

    enabled = False

    def bind_clock(self, now: Callable[[], float]) -> None:
        pass

    def span(self, name: str, category: str = "", track: str = "host",
             args: Optional[Dict[str, object]] = None):
        return _NULL_CONTEXT

    def add(self, span: Span) -> None:
        pass

    def extend(self, spans) -> None:
        pass

    @property
    def open_spans(self) -> List[Tuple[str, str, float]]:
        return []


#: the shared no-op tracer every instrumented component defaults to
NULL_TRACER = NullTracer()


def traced(name: Optional[str] = None, category: str = "",
           track: str = "host", tracer_attr: str = "tracer"):
    """Method decorator: wrap each call in a span on ``self.<tracer_attr>``.

    The span is named after the method unless ``name`` is given.  Objects
    without the attribute fall back to :data:`NULL_TRACER`, so decorating
    a method never forces its class to carry a tracer.
    """
    def decorate(fn):
        span_name = name if name is not None else fn.__name__

        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            tracer = getattr(self, tracer_attr, NULL_TRACER)
            with tracer.span(span_name, category, track):
                return fn(self, *args, **kwargs)
        return wrapper
    return decorate
