"""Property-based tests (hypothesis) for the core data structures."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest.devices import (
    IOAPICPin,
    IOAPICState,
    KVM_IOAPIC_PINS,
    XEN_IOAPIC_PINS,
    make_default_platform,
)
from repro.guest.vcpu import make_boot_vcpu
from repro.hw.memory import PAGE_2M, PAGE_4K, PhysicalMemory
from repro.hypervisors.kvm import formats as kvm_formats
from repro.hypervisors.xen import formats as xen_formats
from repro.core.convert.compat import ioapic_grow_to, ioapic_shrink_to
from repro.core.pram import PageEntry, PRAMFilesystem
from repro.core.uisr.codec import decode_uisr, encode_uisr
from repro.vulndb.cve import cvss_v2_base_score, severity_for_score

GIB = 1024 ** 3


# -- PRAM page entries -----------------------------------------------------

page_entries = st.builds(
    PageEntry,
    gfn=st.integers(min_value=0, max_value=(1 << 28) - 1),
    mfn=st.integers(min_value=0, max_value=(1 << 30) - 1),
    order=st.integers(min_value=0, max_value=(1 << 6) - 1),
)


@given(page_entries)
def test_page_entry_pack_roundtrip(entry):
    assert PageEntry.unpacked(entry.packed()) == entry


@given(page_entries)
def test_page_entry_packed_fits_in_8_bytes(entry):
    assert 0 <= entry.packed() < (1 << 64)


# -- PRAM filesystem over arbitrary layouts ---------------------------------

@st.composite
def vm_layouts(draw):
    """A small set of VMs with disjoint random frame layouts."""
    vm_count = draw(st.integers(min_value=1, max_value=4))
    layouts = {}
    next_mfn = 0
    for i in range(vm_count):
        pages = draw(st.integers(min_value=1, max_value=64))
        mapping = {}
        for gfn in range(pages):
            next_mfn += draw(st.integers(min_value=512, max_value=1024))
            mapping[gfn] = next_mfn
        layouts[f"vm{i}"] = mapping
    return layouts


@given(vm_layouts())
@settings(max_examples=40)
def test_pram_encode_decode_roundtrip(layouts):
    memory = PhysicalMemory(GIB)
    fs = PRAMFilesystem(memory)
    for name, mapping in layouts.items():
        fs.add_vm_file(name, mapping.items(), page_size=PAGE_2M)
    decoded = PRAMFilesystem.decode(fs.encode(), memory)
    for name, mapping in layouts.items():
        assert decoded.layout_of(name) == mapping


@given(vm_layouts())
@settings(max_examples=40)
def test_pram_entries_cover_every_frame_exactly_once(layouts):
    memory = PhysicalMemory(GIB)
    fs = PRAMFilesystem(memory)
    for name, mapping in layouts.items():
        fs.add_vm_file(name, mapping.items(), page_size=PAGE_2M)
    seen = []
    for pram_file in fs.files.values():
        for entry in pram_file.entries:
            assert entry.byte_size == PAGE_2M  # power-of-two chunk
            seen.append(entry.mfn)
    expected = [m for mapping in layouts.values() for m in mapping.values()]
    assert sorted(seen) == sorted(expected)


# -- physical-memory allocator invariants -------------------------------------

@given(st.lists(st.sampled_from(["alloc4k", "alloc2m", "free"]),
                min_size=1, max_size=60),
       st.randoms(use_true_random=False))
@settings(max_examples=40)
def test_allocator_never_double_allocates(ops, rng):
    memory = PhysicalMemory(64 * (1 << 20))
    live = []
    for op in ops:
        if op == "free" and live:
            frame = live.pop(rng.randrange(len(live)))
            memory.free(frame.mfn)
        elif op in ("alloc4k", "alloc2m"):
            size = PAGE_4K if op == "alloc4k" else PAGE_2M
            try:
                live.append(memory.allocate(size))
            except Exception:
                continue
    # No two live frames overlap.
    spans = sorted((f.mfn, f.mfn + f.size // PAGE_4K) for f in live)
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert end <= start
    # Accounting is exact.
    assert memory.allocated_bytes == sum(f.size for f in live)


# -- state-format roundtrips over random vCPU populations -----------------------

@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=25)
def test_xen_context_roundtrip_any_vcpu_count(vcpus, seed):
    states = [make_boot_vcpu(i, seed=seed) for i in range(vcpus)]
    platform = make_default_platform(vcpus, seed=seed)
    decoded_vcpus, decoded_platform = xen_formats.decode_hvm_context(
        xen_formats.encode_hvm_context(states, platform)
    )
    assert ([v.architectural_view() for v in decoded_vcpus]
            == [v.architectural_view() for v in states])
    assert decoded_platform.architectural_view() == platform.architectural_view()


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=25)
def test_kvm_bundle_roundtrip_any_vcpu_count(vcpus, seed):
    states = [make_boot_vcpu(i, seed=seed) for i in range(vcpus)]
    platform = make_default_platform(vcpus, ioapic_pins=KVM_IOAPIC_PINS,
                                     seed=seed)
    bundle = kvm_formats.encode_bundle(states, platform)
    decoded_vcpus, decoded_platform = kvm_formats.decode_bundle(bundle)
    assert ([v.architectural_view() for v in decoded_vcpus]
            == [v.architectural_view() for v in states])
    assert decoded_platform.architectural_view() == platform.architectural_view()


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=25)
def test_uisr_codec_roundtrip_any_vcpu_count(vcpus, seed):
    from tests.test_uisr import make_uisr

    state = make_uisr(vcpus=vcpus, seed=seed)
    decoded = decode_uisr(encode_uisr(state))
    assert decoded.architectural_view() == state.architectural_view()


# -- IOAPIC fixups --------------------------------------------------------------

@st.composite
def ioapics(draw):
    pin_count = draw(st.sampled_from([KVM_IOAPIC_PINS, XEN_IOAPIC_PINS]))
    pins = []
    for index in range(pin_count):
        live = index < 16 and draw(st.booleans())
        pins.append(IOAPICPin(
            vector=draw(st.integers(min_value=0x20, max_value=0xFE)) if live else 0,
            masked=not live,
            trigger_level=draw(st.booleans()),
            dest_apic=draw(st.integers(min_value=0, max_value=3)),
        ))
    return IOAPICState(pins=pins)


@given(ioapics())
@settings(max_examples=40)
def test_ioapic_shrink_grow_preserves_low_pins(ioapic):
    if ioapic.pin_count == XEN_IOAPIC_PINS:
        transformed = ioapic_grow_to(
            ioapic_shrink_to(ioapic, KVM_IOAPIC_PINS), XEN_IOAPIC_PINS
        )
    else:
        transformed = ioapic_shrink_to(
            ioapic_grow_to(ioapic, XEN_IOAPIC_PINS), KVM_IOAPIC_PINS
        )
    low = min(KVM_IOAPIC_PINS, ioapic.pin_count)
    assert (transformed.redirection_view()[:low]
            == ioapic.redirection_view()[:low])


# -- CVSS ------------------------------------------------------------------------

_av = st.sampled_from(["L", "A", "N"])
_ac = st.sampled_from(["H", "M", "L"])
_au = st.sampled_from(["M", "S", "N"])
_impact = st.sampled_from(["N", "P", "C"])


@given(_av, _ac, _au, _impact, _impact, _impact)
def test_cvss_v2_score_in_range(av, ac, au, c, i, a):
    score = cvss_v2_base_score(f"AV:{av}/AC:{ac}/Au:{au}/C:{c}/I:{i}/A:{a}")
    assert 0.0 <= score <= 10.0
    severity_for_score(score)  # always maps to a band


@given(_av, _ac, _au)
def test_cvss_v2_zero_impact_scores_zero(av, ac, au):
    assert cvss_v2_base_score(f"AV:{av}/AC:{ac}/Au:{au}/C:N/I:N/A:N") == 0.0
