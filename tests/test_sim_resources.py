"""Tests for CPU pools and bandwidth links."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import (
    BandwidthLink,
    CPUPool,
    effective_tcp_rate,
    gigabits,
    pages_for,
)


class TestCPUPool:
    def test_single_worker_serializes(self):
        pool = CPUPool(1)
        assert pool.parallel_makespan([1.0, 2.0, 3.0]) == 6.0

    def test_enough_workers_take_the_max(self):
        pool = CPUPool(8)
        assert pool.parallel_makespan([1.0, 2.0, 3.0]) == 3.0

    def test_two_workers_balance(self):
        pool = CPUPool(2)
        # LPT: worker A gets 3, worker B gets 2+1.
        assert pool.parallel_makespan([3.0, 2.0, 1.0]) == 3.0

    def test_makespan_never_beats_max_task(self):
        pool = CPUPool(4)
        tasks = [0.5] * 10 + [4.0]
        assert pool.parallel_makespan(tasks) >= 4.0

    def test_empty_tasks(self):
        assert CPUPool(4).parallel_makespan([]) == 0.0

    def test_serial_makespan_is_sum(self):
        assert CPUPool(4).serial_makespan([1.0, 2.0]) == 3.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            CPUPool(2).parallel_makespan([1.0, -1.0])

    def test_zero_workers_rejected(self):
        with pytest.raises(SimulationError):
            CPUPool(0)

    def test_more_workers_never_slower(self):
        tasks = [0.3, 1.2, 0.7, 2.0, 0.9, 1.5]
        times = [CPUPool(w).parallel_makespan(tasks) for w in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)


class TestBandwidthLink:
    def test_transfer_time_is_linear(self):
        link = BandwidthLink(100.0)
        assert link.transfer_time(200.0) == pytest.approx(2.0)

    def test_latency_added(self):
        link = BandwidthLink(100.0, latency_s=0.5)
        assert link.transfer_time(100.0) == pytest.approx(1.5)

    def test_zero_bytes_costs_latency_only(self):
        link = BandwidthLink(100.0, latency_s=0.25)
        assert link.transfer_time(0) == 0.25

    def test_fair_sharing_slows_flows(self):
        link = BandwidthLink(100.0)
        assert link.transfer_time(100.0, concurrent=4) == pytest.approx(4.0)

    def test_sequential_transfer_sums(self):
        link = BandwidthLink(100.0)
        assert link.sequential_transfer_time([100.0, 200.0]) == pytest.approx(3.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(SimulationError):
            BandwidthLink(100.0).transfer_time(-1)

    def test_bad_concurrency_rejected(self):
        with pytest.raises(SimulationError):
            BandwidthLink(100.0).flow_rate(0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(SimulationError):
            BandwidthLink(0.0)


def test_gigabits_conversion():
    assert gigabits(1.0) == pytest.approx(125e6)
    assert gigabits(10.0) == pytest.approx(1.25e9)


def test_effective_tcp_rate_below_raw():
    raw = gigabits(1.0)
    assert effective_tcp_rate(raw) < raw
    assert effective_tcp_rate(raw, efficiency=1.0) == raw


def test_effective_tcp_rate_validates_efficiency():
    with pytest.raises(SimulationError):
        effective_tcp_rate(1e9, efficiency=0.0)
    with pytest.raises(SimulationError):
        effective_tcp_rate(1e9, efficiency=1.5)


def test_pages_for_rounds_up():
    assert pages_for(1, 4096) == 1
    assert pages_for(4096, 4096) == 1
    assert pages_for(4097, 4096) == 2


def test_pages_for_bad_page_size():
    with pytest.raises(SimulationError):
        pages_for(100, 0)
