"""A small forward dataflow framework over :mod:`repro.analysis.cfg` graphs.

The protocol rules are all *may*-analyses over finite powerset lattices —
the set of resources that may be held, the set of states a host record
may be in — so the framework is deliberately minimal: facts are
``frozenset`` values (or anything hashable), ``join`` is set union by
default, and a rule supplies one ``transfer(node, fact) -> fact``
function.  The solver runs a worklist to a fixpoint; monotone transfer
functions over a finite lattice guarantee termination.

Edge semantics (matching the CFG builder's contract):

* A **normal** edge propagates the node's *output* fact.
* An **exception** edge propagates the node's *input* fact — "the
  statement raised, so its effects did not happen".  Cleanup nodes
  (``with-exit``, ``finally`` suites) whose effects run even while an
  exception unwinds are wired with normal edges by the builder, so they
  need no special case here.
"""

from collections import deque
from typing import Callable, Dict

from repro.analysis.cfg import CFG, CFGNode

__all__ = ["Solution", "solve_forward"]


class Solution:
    """In/out facts per node index after the fixpoint."""

    def __init__(self, cfg: CFG, in_facts: Dict[int, object],
                 out_facts: Dict[int, object]):
        self.cfg = cfg
        self.in_facts = in_facts
        self.out_facts = out_facts

    def in_fact(self, index: int, default=frozenset()):
        """The input fact, or ``default`` when the node is unreachable."""
        return self.in_facts.get(index, default)

    def out_fact(self, index: int, default=frozenset()):
        return self.out_facts.get(index, default)

    def reachable(self, index: int) -> bool:
        return index in self.in_facts


def _union(a, b):
    return a | b


def solve_forward(cfg: CFG,
                  entry_fact,
                  transfer: Callable[[CFGNode, object], object],
                  join: Callable[[object, object], object] = _union,
                  max_iterations: int = 100000) -> Solution:
    """Run ``transfer`` over ``cfg`` to a forward fixpoint.

    Nodes never reached from the entry keep no fact at all (they are
    absent from the solution maps) rather than a misleading bottom value.
    """
    in_facts: Dict[int, object] = {cfg.entry: entry_fact}
    out_facts: Dict[int, object] = {}
    worklist = deque([cfg.entry])
    queued = {cfg.entry}
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety valve
            raise RuntimeError(
                f"dataflow did not converge after {max_iterations} steps"
            )
        index = worklist.popleft()
        queued.discard(index)
        node = cfg.node(index)
        fact_in = in_facts[index]
        fact_out = transfer(node, fact_in)
        out_facts[index] = fact_out
        for successor, value in (
            [(s, fact_out) for s in node.succ]
            + [(s, fact_in) for s in node.exc_succ]
        ):
            if successor in in_facts:
                merged = join(in_facts[successor], value)
                if merged == in_facts[successor]:
                    continue
                in_facts[successor] = merged
            else:
                in_facts[successor] = value
            if successor not in queued:
                worklist.append(successor)
                queued.add(successor)
    return Solution(cfg, in_facts, out_facts)
