"""Tests for the MigrationTP wire protocol."""

import random

import pytest

from repro.errors import MigrationError, StateFormatError
from repro.core import wire
from repro.core.migration import LiveMigration, MigrationTP


class TestMessageCodec:
    def test_hello_roundtrip(self):
        hello = wire.Hello(
            vm_name="vm0", source_hypervisor="xen", target_hypervisor="kvm",
            vcpus=4, memory_bytes=1 << 30, page_size=2 << 20,
        )
        decoded, consumed = wire.decode_message(wire.encode_message(hello))
        assert decoded == hello
        assert consumed == len(wire.encode_message(hello))

    def test_round_and_pages_roundtrip(self):
        header = wire.RoundHeader(index=3, page_count=2)
        batch = wire.PageBatch(pages=((1, 0xAA), (2, 0xBB)))
        for message in (header, batch):
            decoded, _ = wire.decode_message(wire.encode_message(message))
            assert decoded == message

    def test_uisr_and_done_roundtrip(self):
        for message in (wire.UISRPayload(blob=b"\x01\x02\x03"),
                        wire.Done(final_digest=0xDEADBEEF)):
            decoded, _ = wire.decode_message(wire.encode_message(message))
            assert decoded == message

    def test_bad_magic_rejected(self):
        frame = bytearray(wire.encode_message(wire.Done(final_digest=1)))
        frame[0] ^= 0xFF
        with pytest.raises(StateFormatError):
            wire.decode_message(bytes(frame))

    def test_unknown_type_rejected(self):
        frame = bytearray(wire.encode_message(wire.Done(final_digest=1)))
        frame[4] = 99  # the type byte after the 4-byte magic
        with pytest.raises(StateFormatError):
            wire.decode_message(bytes(frame))

    def test_oversized_batch_rejected(self):
        pages = tuple((i, i) for i in range(wire.MAX_BATCH_PAGES + 1))
        with pytest.raises(MigrationError):
            wire.encode_message(wire.PageBatch(pages=pages))

    def test_stream_preserves_order(self):
        stream = wire.MigrationStream()
        stream.send(wire.RoundHeader(index=1, page_count=0))
        stream.send(wire.Done(final_digest=7))
        messages = list(stream.receive_all())
        assert isinstance(messages[0], wire.RoundHeader)
        assert isinstance(messages[1], wire.Done)
        assert stream.messages_sent == 2
        assert stream.bytes_sent > 0


class TestReceiverStateMachine:
    def _hello(self, pages=4):
        return wire.Hello(
            vm_name="vm0", source_hypervisor="xen", target_hypervisor="kvm",
            vcpus=1, memory_bytes=pages * 4096, page_size=4096,
        )

    def test_happy_path(self):
        receiver = wire.StreamReceiver()
        receiver.feed(self._hello())
        receiver.feed(wire.RoundHeader(index=1, page_count=4))
        receiver.feed(wire.PageBatch(pages=tuple((g, g + 100)
                                                 for g in range(4))))
        receiver.feed(wire.UISRPayload(blob=b"state"))
        receiver.feed(wire.Done(final_digest=123))
        assert receiver.page_digests == {0: 100, 1: 101, 2: 102, 3: 103}

    def test_pages_before_hello_rejected(self):
        receiver = wire.StreamReceiver()
        with pytest.raises(MigrationError):
            receiver.feed(wire.RoundHeader(index=1, page_count=0))

    def test_duplicate_hello_rejected(self):
        receiver = wire.StreamReceiver()
        receiver.feed(self._hello())
        with pytest.raises(MigrationError):
            receiver.feed(self._hello())

    def test_truncated_round_rejected(self):
        receiver = wire.StreamReceiver()
        receiver.feed(self._hello())
        receiver.feed(wire.RoundHeader(index=1, page_count=4))
        receiver.feed(wire.PageBatch(pages=((0, 1),)))
        with pytest.raises(MigrationError):
            receiver.feed(wire.RoundHeader(index=2, page_count=0))

    def test_round_overflow_rejected(self):
        receiver = wire.StreamReceiver()
        receiver.feed(self._hello())
        receiver.feed(wire.RoundHeader(index=1, page_count=1))
        with pytest.raises(MigrationError):
            receiver.feed(wire.PageBatch(pages=((0, 1), (1, 2))))

    def test_message_after_done_rejected(self):
        receiver = wire.StreamReceiver()
        receiver.feed(self._hello())
        receiver.feed(wire.RoundHeader(index=1, page_count=0))
        receiver.feed(wire.UISRPayload(blob=b""))
        receiver.feed(wire.Done(final_digest=0))
        with pytest.raises(MigrationError):
            receiver.feed(wire.RoundHeader(index=2, page_count=0))

    def test_finish_checks_coverage(self):
        receiver = wire.StreamReceiver()
        receiver.feed(self._hello(pages=4))
        receiver.feed(wire.RoundHeader(index=1, page_count=2))
        receiver.feed(wire.PageBatch(pages=((0, 1), (1, 2))))
        receiver.feed(wire.UISRPayload(blob=b"x"))
        receiver.feed(wire.Done(final_digest=0))
        with pytest.raises(MigrationError):
            receiver.finish(computed_digest=0)

    def test_finish_checks_digest(self):
        receiver = wire.StreamReceiver()
        receiver.feed(self._hello(pages=1))
        receiver.feed(wire.RoundHeader(index=1, page_count=1))
        receiver.feed(wire.PageBatch(pages=((0, 5),)))
        receiver.feed(wire.UISRPayload(blob=b"x"))
        receiver.feed(wire.Done(final_digest=777))
        with pytest.raises(MigrationError):
            receiver.finish(computed_digest=778)
        receiver.finish(computed_digest=777)


class TestStreamedMigration:
    def test_wire_accounting_in_report(self, xen_host_factory,
                                       kvm_host_factory, fabric):
        source = xen_host_factory(name="wsrc")
        destination = kvm_host_factory(name="wdst")
        fabric.connect(source, destination)
        domain = next(iter(source.hypervisor.domains.values()))
        report = MigrationTP(fabric, source, destination).migrate(domain)
        # HELLO + >=1 round header + ceil(512/1024) batches + UISR + DONE.
        assert report.wire_messages >= 5
        # >= 9 B per unique-content page record (tag + literal digest).
        assert report.wire_bytes > 512 * 9
        assert report.guest_digest_preserved

    def test_guest_writes_during_precopy_still_consistent(
            self, xen_host_factory, kvm_host_factory, fabric):
        """Dirtied pages are re-sent; destination matches the final state."""
        source = xen_host_factory(name="dsrc", memory_gib=1.0)
        destination = kvm_host_factory(name="ddst")
        fabric.connect(source, destination)
        domain = next(iter(source.hypervisor.domains.values()))
        initial_digest = domain.vm.image.content_digest()
        report = MigrationTP(fabric, source, destination).migrate(
            domain, dirty_rate_bytes_s=48 << 20,
            guest_writes_rng=random.Random(7),
        )
        assert report.guest_digest_preserved
        assert report.pages_resent > 0
        # The guest really wrote during migration: final != initial.
        assert domain.vm.image.content_digest() != initial_digest

    def test_xen_baseline_also_streams(self, xen_host_factory, fabric):
        source = xen_host_factory(name="xs")
        destination = xen_host_factory(name="xd", vm_count=0)
        fabric.connect(source, destination)
        domain = next(iter(source.hypervisor.domains.values()))
        report = LiveMigration(fabric, source, destination).migrate(
            domain, guest_writes_rng=random.Random(3),
            dirty_rate_bytes_s=32 << 20,
        )
        assert report.guest_digest_preserved
        assert report.wire_messages >= 4
