"""Shared-resource models used by the cost model.

These are *analytical* resources: rather than queueing simulated requests,
they answer "how long does this batch of work take given contention", which is
what the transplant cost model needs (e.g. PRAM construction parallelised
across a machine's cores, or N concurrent migrations sharing a link).
"""

import math
from typing import Sequence

from repro.errors import SimulationError


class CPUPool:
    """Models the cores available for parallel host-side work.

    The paper parallelises VM_i-State translation and PRAM construction with
    one thread per VM, bounded by the machine's core count (§4.2.5).  M1 (4
    cores) therefore scales worse than M2 (28 cores) in Fig. 7c/7f.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise SimulationError(f"CPUPool needs >= 1 worker, got {workers}")
        self.workers = workers

    def parallel_makespan(self, task_durations: Sequence[float]) -> float:
        """Makespan of running ``task_durations`` on ``workers`` cores (LPT).

        Uses longest-processing-time-first greedy assignment, which is how a
        work-stealing thread pool behaves to first order.
        """
        if not task_durations:
            return 0.0
        if any(d < 0 for d in task_durations):
            raise SimulationError("task durations must be non-negative")
        loads = [0.0] * min(self.workers, len(task_durations))
        for duration in sorted(task_durations, reverse=True):
            loads[loads.index(min(loads))] += duration
        return max(loads)

    def serial_makespan(self, task_durations: Sequence[float]) -> float:
        """Makespan with no parallelism (ablation baseline)."""
        return float(sum(task_durations))


class BandwidthLink:
    """A network link with fixed capacity shared fairly by concurrent flows.

    Capacity is expressed in bytes per second.  ``transfer_time`` answers how
    long one flow takes when ``concurrent`` flows share the link.
    """

    def __init__(self, bytes_per_second: float, latency_s: float = 0.0):
        if bytes_per_second <= 0:
            raise SimulationError("link bandwidth must be positive")
        if latency_s < 0:
            raise SimulationError("link latency must be non-negative")
        self.bytes_per_second = float(bytes_per_second)
        self.latency_s = float(latency_s)

    def flow_rate(self, concurrent: int = 1) -> float:
        """Per-flow throughput (bytes/s) with fair sharing."""
        if concurrent < 1:
            raise SimulationError("concurrent flow count must be >= 1")
        return self.bytes_per_second / concurrent

    def transfer_time(self, nbytes: float, concurrent: int = 1) -> float:
        """Seconds to move ``nbytes`` as one of ``concurrent`` fair flows."""
        if nbytes < 0:
            raise SimulationError("cannot transfer a negative byte count")
        if nbytes == 0:
            return self.latency_s
        return self.latency_s + nbytes / self.flow_rate(concurrent)

    def sequential_transfer_time(self, sizes: Sequence[float]) -> float:
        """Seconds to move each size one after another (Xen's receive side)."""
        return sum(self.transfer_time(s) for s in sizes)


def gigabits(gbps: float) -> float:
    """Convert link speed in Gbit/s to bytes/s."""
    return gbps * 1e9 / 8.0


def effective_tcp_rate(raw_bytes_per_second: float, efficiency: float = 0.93) -> float:
    """Apply a protocol-efficiency factor (TCP/IP + migration framing).

    1 Gbps Ethernet sustains roughly 110-117 MB/s of payload; the default
    efficiency reproduces the ~9.5 s the paper measures for a 1 GB VM.
    """
    if not 0 < efficiency <= 1:
        raise SimulationError(f"efficiency must be in (0, 1], got {efficiency}")
    return raw_bytes_per_second * efficiency


def pages_for(nbytes: int, page_size: int) -> int:
    """Number of ``page_size`` pages covering ``nbytes``."""
    if page_size <= 0:
        raise SimulationError("page size must be positive")
    return math.ceil(nbytes / page_size)
