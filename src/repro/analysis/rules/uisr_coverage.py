"""UISR field coverage: translation must be lossless in both directions.

The ``to_uisr_*`` side must populate *every* field of ``UISRVMState``
explicitly (a field left to its dataclass default is state silently
dropped on the way into UISR), and the paired ``from_uisr_*`` side must
consume every field (a field never read on restore is state silently
dropped on the way out).  Both halves of §3.1's lossless-translation
invariant, checked on the AST.

The write side is checked at ``UISRVMState(...)`` construction sites
inside ``to_uisr_*`` functions; the read side by collecting ``state.X``
attribute reads inside ``from_uisr_*`` functions (passing a field to a
helper — ``verify_restore_target(..., devices=state.devices)`` — counts,
because the call site reads the attribute).  The wrapper records
``UISRVCpu``/``UISRPlatform`` are additionally required to be unwrapped
(their ``.vcpu``/``.platform`` payload read) on the restore side.
"""

import ast
from typing import Dict, Iterable, List, Optional

from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import (
    Project,
    SourceModule,
    all_attribute_names,
    attribute_reads,
    dataclass_fields,
    top_level_classes,
    top_level_functions,
)

STATE_CLASS = "UISRVMState"
#: wrapper record -> the payload field from_uisr_* must unwrap
WRAPPER_FIELDS = {"UISRVCpu": "vcpu", "UISRPlatform": "platform"}

TO_PREFIX = "to_uisr_"
FROM_PREFIX = "from_uisr_"


def _state_param(func: ast.FunctionDef) -> Optional[str]:
    """The parameter holding the UISR document in a from_uisr_* function."""
    for arg in func.args.args + func.args.kwonlyargs:
        annotation = arg.annotation
        if isinstance(annotation, ast.Name) and annotation.id == STATE_CLASS:
            return arg.arg
    for arg in func.args.args + func.args.kwonlyargs:
        if arg.arg == "state":
            return arg.arg
    return None


def _find_dataclasses(project: Project) -> Dict[str, List[str]]:
    """Field lists of the UISR dataclasses, wherever they are defined."""
    fields: Dict[str, List[str]] = {}
    wanted = {STATE_CLASS, *WRAPPER_FIELDS}
    for module in project.modules:
        for name, node in top_level_classes(module.tree).items():
            if name in wanted and name not in fields:
                fields[name] = dataclass_fields(node)
    return fields


@register_rule
class UISRFieldCoverageRule(Rule):
    name = "uisr-field-coverage"
    description = (
        "every UISRVMState field must be written by each to_uisr_* "
        "converter and read by each from_uisr_* converter"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        classes = _find_dataclasses(project)
        state_fields = classes.get(STATE_CLASS)
        if not state_fields:
            return  # nothing to check against (fixture without the class)
        for module in project.modules:
            for name, func in top_level_functions(module.tree).items():
                if name.startswith(TO_PREFIX):
                    yield from self._check_writer(module, func, state_fields)
                elif name.startswith(FROM_PREFIX):
                    yield from self._check_reader(module, func, state_fields,
                                                  classes)

    # -- write side ----------------------------------------------------------

    def _check_writer(self, module: SourceModule, func: ast.FunctionDef,
                      state_fields: List[str]) -> Iterable[Finding]:
        calls = [
            node for node in ast.walk(func)
            if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == STATE_CLASS)
        ]
        if not calls:
            yield self.finding(
                module.path, func.lineno,
                f"{func.name!r} never constructs {STATE_CLASS}; a to_uisr_* "
                f"converter must produce the full UISR document",
                symbol=func.name,
            )
            return
        for call in calls:
            provided = set(state_fields[:len(call.args)])
            for keyword in call.keywords:
                if keyword.arg is None:  # **kwargs: cannot check statically
                    return
                provided.add(keyword.arg)
            for field in state_fields:
                if field not in provided:
                    yield self.finding(
                        module.path, call.lineno,
                        f"{func.name!r} builds {STATE_CLASS} without "
                        f"{field!r}; relying on the dataclass default drops "
                        f"state on the way into UISR (lossy translation)",
                        symbol=func.name,
                    )
            for keyword in call.keywords:
                if keyword.arg is not None and keyword.arg not in state_fields:
                    yield self.finding(
                        module.path, call.lineno,
                        f"{func.name!r} passes unknown {STATE_CLASS} field "
                        f"{keyword.arg!r}",
                        symbol=func.name,
                    )

    # -- read side -----------------------------------------------------------

    def _check_reader(self, module: SourceModule, func: ast.FunctionDef,
                      state_fields: List[str],
                      classes: Dict[str, List[str]]) -> Iterable[Finding]:
        param = _state_param(func)
        if param is None:
            yield self.finding(
                module.path, func.lineno,
                f"{func.name!r} has no recognizable UISR document parameter "
                f"(annotate one with {STATE_CLASS} or name it 'state')",
                symbol=func.name,
            )
            return
        reads = attribute_reads(func, param)
        for field in state_fields:
            if field not in reads:
                yield self.finding(
                    module.path, func.lineno,
                    f"{func.name!r} never reads {STATE_CLASS}.{field}; state "
                    f"written by the to_uisr_* side is dropped on restore "
                    f"(lossy translation)",
                    symbol=func.name,
                )
        every_attr = set(all_attribute_names(func))
        for wrapper, payload in WRAPPER_FIELDS.items():
            if wrapper in classes and payload not in every_attr:
                yield self.finding(
                    module.path, func.lineno,
                    f"{func.name!r} never unwraps {wrapper}.{payload}; the "
                    f"wrapped record is not restored",
                    symbol=func.name,
                )
