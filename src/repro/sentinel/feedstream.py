"""Replaying a vulnerability feed as timed disclosure events.

The paper's timeline (§2.2, Fig. 1) starts at *disclosure*: the moment an
advisory reaches the operator.  Real feeds are messy — advisories arrive
in bursts when an embargo lifts, mirrors deliver them out of publication
order, and the same CVE is re-announced by several trackers — so the
sentinel's feed layer models all three, deterministically per seed.

:func:`build_feed` is a pure function from ``(database, schedule)`` to a
delivery-ordered list of :class:`DisclosureEvent`; the responder replays
the list on the sim engine.  Purity is the determinism contract: the same
seed produces the same feed in any process, which is what makes sentinel
reports byte-identical across reruns and worker counts.
"""

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SentinelError
from repro.vulndb.data import VulnerabilityDatabase

#: one simulated day, the unit the vulndb timeline speaks in
DAY_S = 86400.0


@dataclass(frozen=True)
class FeedSchedule:
    """Shape of the replayed feed (all knobs deterministic per seed)."""

    seed: int = 42
    #: mean gap between consecutive advisories (feed density)
    mean_gap_days: float = 7.0
    #: gap jitter: each gap is drawn from ``mean * [1-j, 1+j]``
    jitter: float = 0.5
    #: probability the next advisory lands in the same batch (gap 0) —
    #: embargo lifts and quarterly roundups disclose several CVEs at once
    batch_probability: float = 0.1
    #: probability an advisory is re-delivered later as a duplicate
    duplicate_probability: float = 0.05
    #: probability two consecutive advisories swap delivery times —
    #: the feed then delivers them out of publication order
    out_of_order_probability: float = 0.1
    #: cap on distinct advisories replayed (None = the whole database)
    limit: Optional[int] = None
    #: sim time of the first delivery
    start_s: float = 0.0

    def __post_init__(self):
        if self.mean_gap_days <= 0:
            raise SentinelError(
                f"mean gap must be positive, got {self.mean_gap_days}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise SentinelError(f"jitter out of [0,1]: {self.jitter}")
        for name in ("batch_probability", "duplicate_probability",
                     "out_of_order_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SentinelError(f"{name} out of [0,1]: {value}")
        if self.limit is not None and self.limit < 1:
            raise SentinelError(f"limit must be >= 1 or None, got {self.limit}")
        if self.start_s < 0:
            raise SentinelError(f"start_s must be >= 0, got {self.start_s}")


@dataclass(frozen=True)
class DisclosureEvent:
    """One advisory delivery: a CVE id arriving at the operator."""

    time_s: float
    cve_id: str
    #: a re-announcement of an advisory delivered earlier
    duplicate: bool = False


def build_feed(db: VulnerabilityDatabase,
               schedule: FeedSchedule) -> List[DisclosureEvent]:
    """The delivery-ordered disclosure feed for ``db`` under ``schedule``.

    Publication order is the database's ``(year, cve_id)`` order; delivery
    order is publication order perturbed by batching, duplicate
    re-announcements and adjacent-pair inversions, all drawn from one
    seeded stream.
    """
    records = sorted(db.all(), key=lambda r: (r.year, r.cve_id))
    if schedule.limit is not None:
        records = records[:schedule.limit]
    if not records:
        raise SentinelError("the feed has no advisories to replay")

    rng = random.Random(f"sentinel-feed:{schedule.seed}")
    times: List[float] = []
    now = schedule.start_s
    for index in range(len(records)):
        if index > 0:
            if rng.random() < schedule.batch_probability:
                gap = 0.0
            else:
                spread = schedule.jitter * (2.0 * rng.random() - 1.0)
                gap = schedule.mean_gap_days * DAY_S * (1.0 + spread)
            now += gap
        times.append(now)

    # Adjacent-pair inversions: swapping the two *times* makes delivery
    # order disagree with publication order without moving the envelope.
    for index in range(len(records) - 1):
        if times[index] == times[index + 1]:
            continue  # batched pairs have no order to invert
        if rng.random() < schedule.out_of_order_probability:
            times[index], times[index + 1] = times[index + 1], times[index]

    events = [DisclosureEvent(time_s=times[i], cve_id=records[i].cve_id)
              for i in range(len(records))]

    # Duplicate re-announcements trail the original by a fraction of the
    # mean gap (a mirror picking the advisory up later the same cycle).
    duplicates: List[DisclosureEvent] = []
    for event in events:
        if rng.random() < schedule.duplicate_probability:
            lag = (0.25 + 0.75 * rng.random()) * schedule.mean_gap_days * DAY_S
            duplicates.append(DisclosureEvent(
                time_s=event.time_s + lag, cve_id=event.cve_id,
                duplicate=True,
            ))
    events.extend(duplicates)

    # Stable sort: simultaneous deliveries keep generation order, so the
    # replayed interleaving is a pure function of (db, schedule).
    events.sort(key=lambda e: e.time_s)
    return events


def feed_statistics(events: List[DisclosureEvent],
                    db: VulnerabilityDatabase) -> Dict[str, object]:
    """Deterministic summary of a built feed for the sentinel report."""
    originals = [e for e in events if not e.duplicate]
    by_id = {r.cve_id: r for r in db.all()}
    publication = sorted(
        originals, key=lambda e: (by_id[e.cve_id].year, e.cve_id))
    delivered_rank = {e.cve_id: i for i, e in enumerate(originals)}
    inversions = sum(
        1 for a, b in zip(publication, publication[1:])
        if delivered_rank[a.cve_id] > delivered_rank[b.cve_id]
    )
    batched = sum(1 for a, b in zip(originals, originals[1:])
                  if a.time_s == b.time_s)
    return {
        "advisories": len(originals),
        "duplicates": sum(1 for e in events if e.duplicate),
        "batched_pairs": batched,
        "out_of_order": inversions,
        "first_at_s": originals[0].time_s if originals else 0.0,
        "last_at_s": originals[-1].time_s if originals else 0.0,
    }
