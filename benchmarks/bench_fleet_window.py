"""Fleet vulnerability window vs fleet size and failure rate.

The paper measures the transplant itself (Figs. 6-13); this bench seeds the
perf trajectory for the fleet control plane layered on top: how the
disclosure->remediated window distribution (p50/p95/p99/max) scales from 10
to 1000 hosts, how injected per-phase failures (kexec hang, migration
stall, UISR verify mismatch) stretch the tail, and what each §4.5.2
mechanism policy (inplace / migration / auto, vs the hybrid grid) costs
at the largest failure-free cell.

Every cell of the sweep is an independent seeded campaign, so the sweep
runs through :class:`repro.par.ParallelRunner` (``--workers N``); the
deterministic payload of the emitted artifact is byte-identical for any
worker count — wall-clock numbers live in the volatile ``meta`` block
(see :mod:`repro.bench.report`).  ``--compare-serial`` runs the sweep
both ways, asserts payload equality and records the speedup in ``meta``.

Emits ``BENCH_fleet_window.json`` next to this file (override with
``--json PATH``); ``--smoke`` restricts to the 10-host column for CI.
A wall-clock guard asserts the 1000-host run stays sub-superlinear — the
simulator is O(n log n) in events, so 100x the hosts must cost far less
than 10000x the wall time.
"""

import argparse
import os
import time
from pathlib import Path

from repro.bench.report import format_table, print_experiment, write_bench_json
from repro.par import ParallelRunner

FLEET_SIZES = [10, 100, 1000]
SMOKE_SIZES = [10]
FAIL_RATES = [0.0, 0.01, 0.05]
#: §4.5.2 policies swept at the largest failure-free cell; "hybrid" is
#: the default every other cell already runs
MECHANISMS = ["inplace", "migration", "auto"]
SEED = 42

DEFAULT_JSON_PATH = Path(__file__).resolve().parent / "BENCH_fleet_window.json"

PAYLOAD_FORMAT = "hypertp-bench-fleet-window"
PAYLOAD_VERSION = 3


def measure_cell(cell):
    """Worker entrypoint: one campaign for one sweep cell.

    Returns the deterministic result entry and, *separately*, the cell's
    wall-clock cost — wall time is the one nondeterministic number here
    and must never enter the byte-compared payload.
    """
    from repro.fleet import (
        FailureInjector,
        FleetConfig,
        FleetController,
        RetryPolicy,
    )

    hosts = cell["hosts"]
    fail_rate = cell["fail_rate"]
    mechanism = cell.get("mechanism", "hybrid")
    seed = cell.get("seed", SEED)
    config = FleetConfig(hosts=hosts, vms_per_host=10, inplace_fraction=0.8,
                         group_size=max(2, hosts // 5), seed=seed,
                         concurrency=8, mechanism=mechanism)
    controller = FleetController(
        config,
        injector=FailureInjector(fail_rate, seed=seed),
        retry=RetryPolicy(max_retries=3, backoff_base_s=5.0),
    )
    started = time.perf_counter()
    metrics = controller.run()
    wall_s = time.perf_counter() - started
    return {
        "entry": {
            "hosts": hosts,
            "fail_rate": fail_rate,
            "mechanism": mechanism,
            "seed": seed,
            "done_hosts": metrics.done_hosts,
            "rolled_back_hosts": metrics.rolled_back_hosts,
            "retries_total": metrics.retries_total,
            "rollbacks_total": metrics.rollbacks_total,
            "migrations_executed": metrics.migrations_executed,
            "mechanism_mix": controller.mechanism_mix(),
            "fleet_window_s": metrics.fleet_window_s,
            "percentiles_s": metrics.window_percentiles_s,
        },
        "wall_s": round(wall_s, 4),
    }


def sweep_cells(smoke=False):
    sizes = SMOKE_SIZES if smoke else FLEET_SIZES
    cells = [{"hosts": hosts, "fail_rate": rate, "seed": SEED,
              "mechanism": "hybrid"}
             for hosts in sizes for rate in FAIL_RATES]
    # The §4.5.2 policy sweep: largest failure-free cell, one campaign
    # per non-default mechanism (hybrid is the grid above).
    cells.extend({"hosts": sizes[-1], "fail_rate": 0.0, "seed": SEED,
                  "mechanism": mechanism}
                 for mechanism in MECHANISMS)
    return cells


def cell_label(cell):
    label = f"hosts{cell['hosts']}-fail{cell['fail_rate']:g}"
    if cell.get("mechanism", "hybrid") != "hybrid":
        label += f"-{cell['mechanism']}"
    return label


def run(smoke=False, workers=1):
    """The sweep; returns per-cell dicts in cell order plus pool stats."""
    cells = sweep_cells(smoke)
    runner = ParallelRunner(workers=workers, task_timeout_s=600.0)
    results = runner.map_tasks(measure_cell, cells,
                               labels=[cell_label(c) for c in cells])
    return results, runner.stats


def write_json(results, path=DEFAULT_JSON_PATH, workers=1, stats=None,
               extra_meta=None):
    """Write the artifact: deterministic entries, volatile walls in meta."""
    payload = {
        "format": PAYLOAD_FORMAT,
        "version": PAYLOAD_VERSION,
        "seed": SEED,
        "results": [r["entry"] for r in results],
    }
    meta = {
        "workers": workers,
        "wall_s": round(sum(r["wall_s"] for r in results), 4),
        "cell_walls_s": [
            {"hosts": r["entry"]["hosts"],
             "fail_rate": r["entry"]["fail_rate"],
             "mechanism": r["entry"]["mechanism"],
             "wall_s": r["wall_s"]}
            for r in results
        ],
    }
    if stats is not None:
        meta["pool"] = stats.to_dict()
    if extra_meta:
        meta.update(extra_meta)
    write_bench_json(str(path), payload, meta)
    return path


def to_rows(results):
    rows = []
    for result in results:
        entry = result["entry"]
        pct = entry["percentiles_s"]
        rows.append([
            entry["hosts"],
            f"{entry['fail_rate']:.0%}",
            entry["mechanism"],
            entry["done_hosts"],
            entry["rolled_back_hosts"],
            entry["retries_total"],
            entry["migrations_executed"],
            f"{pct['p50']:.1f}" if pct else "-",
            f"{pct['p95']:.1f}" if pct else "-",
            f"{pct['p99']:.1f}" if pct else "-",
            f"{pct['max']:.1f}" if pct else "-",
            f"{result['wall_s']:.3f}",
        ])
    return rows


HEADERS = ["hosts", "fail", "mech", "done", "rolled back", "retries",
           "migr", "p50 (s)", "p95 (s)", "p99 (s)", "max (s)", "wall (s)"]


def test_fleet_window_sweep(benchmark):
    results, stats = benchmark.pedantic(run, kwargs={"smoke": True},
                                        rounds=1, iterations=1)
    write_json(results, stats=stats)
    print_experiment("fleet window", "percentiles vs size and failure rate",
                     format_table(HEADERS, to_rows(results)))


def test_wall_clock_guard():
    """1000 hosts must not blow up superlinearly over 100 hosts."""
    small = measure_cell({"hosts": 100, "fail_rate": 0.0})
    large = measure_cell({"hosts": 1000, "fail_rate": 0.0})
    entry = large["entry"]
    assert entry["done_hosts"] + entry["rolled_back_hosts"] == 1000
    # Generous absolute ceiling: the run takes well under a second today.
    assert large["wall_s"] < 60.0
    # 10x the hosts may cost ~10x wall plus constant overhead, never ~100x.
    assert large["wall_s"] < 30 * max(small["wall_s"], 0.01)


def test_parallel_payload_identical():
    """Smoke sweep at 2 workers must match the serial payload exactly."""
    serial, _ = run(smoke=True, workers=1)
    parallel, _ = run(smoke=True, workers=2)
    assert [r["entry"] for r in parallel] == [r["entry"] for r in serial]


def _wall_total(results):
    return sum(r["wall_s"] for r in results)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="10-host column only (CI)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep (1 = serial)")
    parser.add_argument("--compare-serial", action="store_true",
                        help="also run serially, assert byte-identical "
                             "payloads, and record the speedup in meta")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        default=str(DEFAULT_JSON_PATH))
    args = parser.parse_args()

    extra_meta = {}
    started = time.perf_counter()
    results, stats = run(smoke=args.smoke, workers=args.workers)
    elapsed = time.perf_counter() - started
    extra_meta["elapsed_s"] = round(elapsed, 4)

    if args.compare_serial and args.workers > 1:
        serial_started = time.perf_counter()
        serial_results, _ = run(smoke=args.smoke, workers=1)
        serial_elapsed = time.perf_counter() - serial_started
        if [r["entry"] for r in serial_results] != \
                [r["entry"] for r in results]:
            raise SystemExit(
                "parallel sweep payload differs from the serial sweep"
            )
        extra_meta["serial_elapsed_s"] = round(serial_elapsed, 4)
        extra_meta["speedup"] = round(serial_elapsed / max(elapsed, 1e-9), 2)
        print(f"serial {serial_elapsed:.2f} s vs {args.workers} workers "
              f"{elapsed:.2f} s -> speedup {extra_meta['speedup']:.2f}x "
              f"(payloads identical)")
        cores = os.cpu_count() or 1
        if cores < args.workers:
            print(f"note: only {cores} CPU core(s) visible; the sweep is "
                  f"CPU-bound, so {args.workers} workers cannot beat "
                  f"serial wall-clock on this host (see meta.host_env)")

    path = write_json(results, args.json_path, workers=args.workers,
                      stats=stats, extra_meta=extra_meta)
    print_experiment("fleet window", "percentiles vs size and failure rate",
                     format_table(HEADERS, to_rows(results)))
    print(f"JSON written to {path}")


if __name__ == "__main__":
    main()
