"""Nova-style compute manager with the host-live-upgrade API (§4.5.2).

``NovaCompute`` owns the per-host drivers and an internal database of host
records (which hypervisor each host runs).  Its ``host_live_upgrade``
reproduces the paper's workflow: migrate away VMs that do not support
HyperTP, save the rest, trigger the upgrade, update the database, restore.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import OrchestratorError
from repro.hw.machine import Machine
from repro.hw.network import Fabric
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.inplace import InPlaceReport
from repro.core.migration import MigrationReport
from repro.orchestrator.compute_driver import LibvirtComputeDriver


@dataclass
class HostRecord:
    """Nova's database row for one compute host."""

    host: str
    hypervisor_type: str
    hypervisor_version: str = "simulated"
    upgrades: int = 0


@dataclass
class HostUpgradeResult:
    """Outcome of one host_live_upgrade call."""

    host: str
    migrated_away: List[MigrationReport] = field(default_factory=list)
    inplace: Optional[InPlaceReport] = None

    @property
    def vm_disruption_s(self) -> float:
        downtimes = [r.downtime_s for r in self.migrated_away]
        if self.inplace is not None:
            downtimes.append(self.inplace.downtime_s)
        return max(downtimes, default=0.0)


class NovaCompute:
    """The compute-service manager for a set of hosts."""

    def __init__(self, fabric: Optional[Fabric] = None):
        self.fabric = fabric
        self.drivers: Dict[str, LibvirtComputeDriver] = {}
        self.database: Dict[str, HostRecord] = {}

    # -- host registration ---------------------------------------------------

    def register_host(self, machine: Machine) -> LibvirtComputeDriver:
        if machine.name in self.drivers:
            raise OrchestratorError(f"host {machine.name} already registered")
        driver = LibvirtComputeDriver(machine, fabric=self.fabric)
        self.drivers[machine.name] = driver
        self.database[machine.name] = HostRecord(
            host=machine.name,
            hypervisor_type=driver.hypervisor_kind.value,
        )
        return driver

    def driver_for(self, host: str) -> LibvirtComputeDriver:
        try:
            return self.drivers[host]
        except KeyError:
            raise OrchestratorError(f"unknown host {host!r}") from None

    def hosts_running(self, kind: HypervisorKind) -> List[str]:
        return sorted(
            host for host, record in self.database.items()
            if record.hypervisor_type == kind.value
        )

    # -- the new API ----------------------------------------------------------

    def host_live_upgrade(self, host: str, target: HypervisorKind,
                          clock: Optional[SimClock] = None,
                          evacuation_host: Optional[str] = None
                          ) -> HostUpgradeResult:
        """Upgrade one host's hypervisor with HyperTP.

        Steps (paper §4.5.2): (1) live-migrate VMs that do not support
        HyperTP to ``evacuation_host``; (2) save remaining guests + trigger
        the host upgrade through the driver; (3) update the Nova database;
        (4) the driver restores all VMs on the upgraded host.
        """
        clock = clock or SimClock()
        driver = self.driver_for(host)
        if driver.hypervisor_kind is target:
            raise OrchestratorError(
                f"{host} already runs {target.value}; nothing to upgrade"
            )
        result = HostUpgradeResult(host=host)

        hv = driver.connection.hypervisor
        incompatible = [
            d.vm.name
            for d in sorted(hv.domains.values(), key=lambda d: d.domid)
            if not d.vm.config.inplace_compatible
        ]
        if incompatible:
            if evacuation_host is None:
                raise OrchestratorError(
                    f"{host}: {len(incompatible)} VMs need evacuation but "
                    f"no evacuation host was given"
                )
            dest = self.driver_for(evacuation_host)
            if dest.hypervisor_kind is not target:
                raise OrchestratorError(
                    f"evacuation host {evacuation_host} must already run "
                    f"{target.value}"
                )
            for vm_name in incompatible:
                result.migrated_away.append(
                    driver.live_migration(vm_name, dest, clock)
                )

        result.inplace = driver.hypertp_host_upgrade(target, clock)
        record = self.database[host]
        record.hypervisor_type = target.value
        record.upgrades += 1
        return result
