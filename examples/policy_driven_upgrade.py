#!/usr/bin/env python3
"""Policy-driven host upgrade with guest notification.

The paper leaves the InPlaceTP-vs-MigrationTP choice to the operator (§1);
this example makes that policy concrete.  A host runs a mixed VM
population: most tolerate a short freeze, one latency-critical VM has a
0.5 s budget, and one holds a pass-through NIC (cannot migrate at all).
The policy predicts the host's InPlaceTP downtime, assigns each VM a
mechanism, guests are notified through the scheduled-events plane, and
the transplant executes accordingly.
"""

from repro import HyperTP, HypervisorKind, M1_SPEC, SimClock, VMConfig
from repro.bench import make_kvm_host, make_xen_host
from repro.guest.drivers import PassthroughDriver
from repro.hw.network import Fabric
from repro.orchestrator import (
    EventType,
    Mechanism,
    ScheduledEventsService,
    TransplantPolicy,
)

GIB = 1024 ** 3


def main():
    # The host and its mixed population.
    machine = make_xen_host(M1_SPEC, vm_count=3, name="prod-host")
    xen = machine.hypervisor
    xen.create_vm(VMConfig("latency-critical", vcpus=1, memory_bytes=GIB))
    dpdk = xen.create_vm(VMConfig("dpdk-router", vcpus=2,
                                  memory_bytes=2 * GIB))
    dpdk.vm.attach_device(PassthroughDriver("sriov-vf0"))

    # The operator's policy: 30 s default tolerance, 0.5 s for the
    # latency-critical VM.
    policy = TransplantPolicy(tolerances_s={"latency-critical": 0.5})
    plan = policy.apply_to_configs(machine, HypervisorKind.KVM)

    print(f"Predicted InPlaceTP downtime for {plan.host}: "
          f"{plan.predicted_inplace_downtime_s:.2f} s")
    for assignment in plan.assignments:
        print(f"  {assignment.vm_name:>18} -> {assignment.mechanism.value:<10}"
              f" ({assignment.reason})")

    # Notify guests through the scheduled-events plane.
    events = ScheduledEventsService(notice_s=900.0)
    clock = SimClock()
    posted = []
    for assignment in plan.assignments:
        event_type = (EventType.REDEPLOY
                      if assignment.mechanism is Mechanism.MIGRATION
                      else EventType.FREEZE)
        duration = (plan.predicted_inplace_downtime_s
                    if event_type is EventType.FREEZE else 120.0)
        posted.append(events.post(assignment.vm_name, event_type,
                                  now=clock.now,
                                  expected_duration_s=duration))
    print(f"\nPosted {len(posted)} maintenance events "
          f"(notice: {events.notice_s / 60:.0f} min).")
    # Guest agents acknowledge, waiving the notice period.
    for event in posted:
        events.acknowledge(event.event_id)
        events.start(event.event_id, now=clock.now, require_ack=True)
    print("All guests acknowledged; starting immediately.")

    # Execute: migrations away first, then the micro-reboot.
    fabric = Fabric()
    spare = make_kvm_host(M1_SPEC, name="spare")
    fabric.connect(machine, spare)
    report = HyperTP().transplant_host(
        machine, HypervisorKind.KVM, fabric=fabric, spare=spare,
        clock=clock,
    )
    for event in posted:
        events.complete(event.event_id)

    print(f"\nDone in {report.total_s:.1f} simulated seconds:")
    print(f"  migrated away : {[r.vm_name for r in report.migrated]}")
    print(f"  rode the kexec: {report.inplace_count} VMs "
          f"({report.inplace.downtime_s:.2f} s downtime)")
    print(f"  worst downtime: {report.worst_downtime_s:.2f} s "
          f"(latency-critical saw "
          f"{max((r.downtime_s for r in report.migrated), default=0) * 1000:.0f} ms)")
    print(f"  host now runs : {machine.hypervisor.kind.value}")


if __name__ == "__main__":
    main()
