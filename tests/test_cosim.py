"""Co-simulation tests: a transplant as an engine process, interleaved
with live workload samplers on the same simulated timeline."""

import pytest

from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.sim.engine import Engine
from repro.core.inplace import InPlaceTP


class TestAsProcess:
    def test_process_produces_same_report_as_run(self, xen_host_factory):
        direct_machine = xen_host_factory(vm_count=2)
        direct = InPlaceTP(direct_machine, HypervisorKind.KVM).run(SimClock())

        engine_machine = xen_host_factory(vm_count=2)
        engine = Engine()
        process = InPlaceTP(engine_machine, HypervisorKind.KVM).as_process(engine)
        engine.run()
        assert process.done
        cosim = process.result
        assert cosim.downtime_s == pytest.approx(direct.downtime_s)
        assert cosim.phase_breakdown == direct.phase_breakdown
        assert cosim.total_s == pytest.approx(direct.total_s)

    def test_engine_clock_tracks_transplant(self, xen_host_factory):
        machine = xen_host_factory(vm_count=1)
        engine = Engine()
        process = InPlaceTP(machine, HypervisorKind.KVM).as_process(engine)
        engine.run()
        assert engine.now == pytest.approx(process.result.total_s)

    def test_live_sampler_sees_the_pause_window(self, xen_host_factory):
        """A 10 Hz sampler process observes the VM's actual lifecycle state
        while the transplant runs — no precomputed timeline involved."""
        machine = xen_host_factory(vm_count=1)
        vm = next(iter(machine.hypervisor.domains.values())).vm
        engine = Engine()
        samples = []

        def sampler():
            for _ in range(400):
                samples.append((engine.now, vm.state.value))
                yield 0.01

        engine.spawn(sampler(), name="sampler")
        transplant = InPlaceTP(machine, HypervisorKind.KVM)
        process = transplant.as_process(engine)
        engine.run()
        report = process.result

        not_running = [t for t, state in samples if state != "running"]
        assert not_running, "sampler must catch the pause window"
        observed_downtime = max(not_running) - min(not_running) + 0.01
        assert observed_downtime == pytest.approx(report.downtime_s,
                                                  abs=0.05)
        # The pause starts after the PRAM phase (prepare-ahead).
        assert min(not_running) >= report.pram_s - 0.02

    def test_two_hosts_transplant_concurrently(self, xen_host_factory):
        """Independent machines share the engine; their phases interleave."""
        fast = xen_host_factory(vm_count=1)
        slow = xen_host_factory(vm_count=8, name="slow-host")
        engine = Engine()
        p_fast = InPlaceTP(fast, HypervisorKind.KVM).as_process(engine)
        p_slow = InPlaceTP(slow, HypervisorKind.KVM).as_process(engine)
        engine.run()
        assert p_fast.result.total_s < p_slow.result.total_s
        assert engine.now == pytest.approx(
            max(p_fast.result.total_s, p_slow.result.total_s)
        )
        assert fast.hypervisor.kind is HypervisorKind.KVM
        assert slow.hypervisor.kind is HypervisorKind.KVM

    def test_failure_in_process_rolls_back(self, xen_host_factory):
        from repro.errors import TransplantError

        machine = xen_host_factory(vm_count=1)
        vm = next(iter(machine.hypervisor.domains.values())).vm

        def hook(phase):
            if phase == "translate":
                raise RuntimeError("chaos")

        engine = Engine()
        transplant = InPlaceTP(machine, HypervisorKind.KVM,
                               failure_hook=hook)
        transplant.as_process(engine)
        with pytest.raises(TransplantError, match="aborted"):
            engine.run()
        assert transplant.rolled_back
        assert vm.state.value == "running"
        assert machine.hypervisor.kind is HypervisorKind.XEN
