"""Per-function control-flow graphs for the protocol verifier.

The shallow AST rules in ``repro.analysis.rules`` see one statement at a
time; the protocol rules (sync-primitive balance, state-machine
conformance) need to reason about *paths* — does every path from an
``acquire`` reach a ``release``, which states can flow into a
``transition`` call.  This module lowers one ``ast.FunctionDef`` into a
statement-level CFG suitable for the forward dataflow solver in
:mod:`repro.analysis.dataflow`.

Shape of the graph
------------------

* One node per *simple* statement; compound statements contribute a node
  for the part evaluated at runtime (the ``if``/``while`` test, the
  ``for`` iterable, the ``with`` items) plus structure edges.
* Three synthetic nodes: ``entry``, ``exit`` (normal returns and
  fall-through) and ``raise`` (exceptions escaping the function).
* Edges are either *normal* (``succ``) or *exception* (``exc_succ``).
  The dataflow solver propagates a node's **input** fact along exception
  edges — "the statement raised, its effects did not happen" — and its
  output fact along normal edges.
* ``with`` blocks get a synthetic ``with-exit`` node through which normal
  fall-through, abrupt jumps (``return``/``break``/``continue``) and
  exception unwinds all route, because ``__exit__`` runs on every one of
  those paths.  The same routing applies to ``finally`` suites.
* Generator suspension points are not control transfers; nodes containing
  ``yield``/``yield from`` are flagged (``has_yield``) so rules can treat
  suspension as an event.

May-raise model
---------------

By default a node may raise iff its runtime payload contains an
``ast.Call``, ``ast.Raise`` or ``ast.Assert`` — attribute access,
subscripts and arithmetic are assumed total, otherwise every statement
would sprout an exception edge and no explicit acquire/release pairing
could ever verify.  Rules can narrow this further by passing a
``may_raise`` predicate to :func:`build_cfg` (e.g. the sync rule trusts
the semaphore primitives themselves not to raise).
"""

import ast
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["CFGNode", "CFG", "build_cfg", "payload_exprs", "default_may_raise"]

#: node kinds a builder produces (documented for rule authors).
NODE_KINDS = (
    "entry", "exit", "raise",
    "stmt", "branch", "for-iter", "with-enter", "with-exit",
    "except", "finally",
)


class CFGNode:
    """One CFG node: a payload AST plus normal/exception successor sets."""

    __slots__ = ("index", "kind", "payload", "line", "succ", "exc_succ",
                 "has_yield")

    def __init__(self, index: int, kind: str, payload, line: int):
        self.index = index
        self.kind = kind
        self.payload = payload  # ast node, list of withitems, or None
        self.line = line
        self.succ: List[int] = []
        self.exc_succ: List[int] = []
        self.has_yield = False

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"CFGNode({self.index}, {self.kind!r}, line={self.line}, "
                f"succ={self.succ}, exc={self.exc_succ})")


class CFG:
    """The graph for one function: nodes plus the three synthetic indices."""

    def __init__(self, func, nodes: List[CFGNode], entry: int, exit: int,
                 raise_exit: int):
        self.func = func
        self.nodes = nodes
        self.entry = entry
        self.exit = exit
        self.raise_exit = raise_exit

    def node(self, index: int) -> CFGNode:
        return self.nodes[index]


def payload_exprs(payload) -> List[ast.AST]:
    """The AST nodes a CFG node evaluates, as a list (handles with-items)."""
    if payload is None:
        return []
    if isinstance(payload, list):
        out = []
        for item in payload:
            out.append(item.context_expr)
        return out
    return [payload]


def walk_runtime(node: ast.AST):
    """``ast.walk`` that does not descend into nested function/class bodies.

    Code inside a nested ``def``/``lambda`` runs when *that* object is
    called, not when the enclosing statement executes, so its calls and
    yields must not count as events of this statement.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            stack.append(child)


def default_may_raise(payload) -> bool:
    for expr in payload_exprs(payload):
        for sub in walk_runtime(expr):
            if isinstance(sub, (ast.Call, ast.Raise, ast.Assert)):
                return True
    return False


def _contains_yield(payload) -> bool:
    for expr in payload_exprs(payload):
        for sub in walk_runtime(expr):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return True
    return False


class _Cleanup:
    """One entry of the cleanup stack: a ``finally`` suite or a ``with``
    exit that abrupt jumps and unwinding exceptions must route through."""

    __slots__ = ("kind", "entry", "pending")

    def __init__(self, kind: str, entry: int):
        self.kind = kind          # "finally" | "with" | "loop"
        self.entry = entry        # node index (unused for "loop")
        self.pending: List[int] = []  # targets routed through this cleanup


class _Builder:
    def __init__(self, func, may_raise: Callable[[object], bool]):
        self.func = func
        self.may_raise = may_raise
        self.nodes: List[CFGNode] = []
        self.entry = self._new("entry", None, getattr(func, "lineno", 0))
        self.exit = self._new("exit", None, getattr(func, "lineno", 0))
        self.raise_exit = self._new("raise", None, getattr(func, "lineno", 0))
        # Stack of exception-target lists; top applies to the current suite.
        self.exc_targets: List[List[int]] = [[self.raise_exit.index]]
        # Cleanup contexts (finally suites / with exits / loop markers).
        self.cleanups: List[_Cleanup] = []
        # (break_targets, continue_target) per enclosing loop.
        self.loops: List[Tuple[List[int], int]] = []

    # -- node/edge helpers ---------------------------------------------------

    def _new(self, kind: str, payload, line: int) -> CFGNode:
        node = CFGNode(len(self.nodes), kind, payload, line)
        self.nodes.append(node)
        return node

    def _stmt_node(self, kind: str, payload, line: int) -> CFGNode:
        node = self._new(kind, payload, line)
        node.has_yield = _contains_yield(payload)
        if self.may_raise(payload):
            for target in self.exc_targets[-1]:
                if target not in node.exc_succ:
                    node.exc_succ.append(target)
        return node

    def _link(self, frontier: Sequence[int], target: int) -> None:
        for index in frontier:
            succ = self.nodes[index].succ
            if target not in succ:
                succ.append(target)

    # -- abrupt jumps through cleanup contexts -------------------------------

    def _route_abrupt(self, node: CFGNode, target: int,
                      through: Sequence[_Cleanup]) -> None:
        """Connect an abrupt jump, detouring through cleanup suites.

        ``through`` is the innermost-first list of cleanups the jump
        unwinds.  The jump edges into the first cleanup; each cleanup's
        exit later gains an edge to the next hop (recorded in
        ``pending``).
        """
        hops = [c for c in through if c.kind != "loop"]
        if not hops:
            self._link([node.index], target)
            return
        self._link([node.index], hops[0].entry)
        for current, nxt in zip(hops, hops[1:]):
            current.pending.append(nxt.entry)
        hops[-1].pending.append(target)

    def _cleanups_for_return(self) -> List[_Cleanup]:
        return list(reversed(self.cleanups))

    def _cleanups_for_loop_jump(self) -> List[_Cleanup]:
        out: List[_Cleanup] = []
        for cleanup in reversed(self.cleanups):
            if cleanup.kind == "loop":
                break
            out.append(cleanup)
        return out

    # -- statement lowering --------------------------------------------------

    def seq(self, stmts: Sequence[ast.stmt],
            frontier: List[int]) -> List[int]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable tail (after return/raise/...)
            frontier = self.stmt(stmt, frontier)
        return frontier

    def stmt(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, ast.Return):
            node = self._stmt_node("stmt", stmt, stmt.lineno)
            self._link(frontier, node.index)
            self._route_abrupt(node, self.exit.index,
                               self._cleanups_for_return())
            return []
        if isinstance(stmt, ast.Raise):
            node = self._stmt_node("stmt", stmt, stmt.lineno)
            self._link(frontier, node.index)
            return []
        if isinstance(stmt, ast.Break):
            node = self._stmt_node("stmt", stmt, stmt.lineno)
            self._link(frontier, node.index)
            if self.loops:
                break_targets, _ = self.loops[-1]
                marker = self._new("stmt", None, stmt.lineno)
                self._route_abrupt(node, marker.index,
                                   self._cleanups_for_loop_jump())
                break_targets.append(marker.index)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._stmt_node("stmt", stmt, stmt.lineno)
            self._link(frontier, node.index)
            if self.loops:
                _, continue_target = self.loops[-1]
                self._route_abrupt(node, continue_target,
                                   self._cleanups_for_loop_jump())
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # A nested definition is a binding, not executed body code.
            node = self._new("stmt", None, stmt.lineno)
            self._link(frontier, node.index)
            return [node.index]
        # Simple statement: Expr, Assign, AugAssign, AnnAssign, Assert,
        # Delete, Pass, Import, Global, Nonlocal, ...
        node = self._stmt_node("stmt", stmt, stmt.lineno)
        self._link(frontier, node.index)
        return [node.index]

    def _if(self, stmt: ast.If, frontier: List[int]) -> List[int]:
        test = self._stmt_node("branch", stmt.test, stmt.lineno)
        self._link(frontier, test.index)
        body_out = self.seq(stmt.body, [test.index])
        if stmt.orelse:
            else_out = self.seq(stmt.orelse, [test.index])
        else:
            else_out = [test.index]
        return body_out + else_out

    def _while(self, stmt: ast.While, frontier: List[int]) -> List[int]:
        head = self._stmt_node("branch", stmt.test, stmt.lineno)
        self._link(frontier, head.index)
        break_targets: List[int] = []
        self.loops.append((break_targets, head.index))
        self.cleanups.append(_Cleanup("loop", -1))
        body_out = self.seq(stmt.body, [head.index])
        self._link(body_out, head.index)
        self.cleanups.pop()
        self.loops.pop()
        is_infinite = (isinstance(stmt.test, ast.Constant)
                       and bool(stmt.test.value))
        normal_exit = [] if is_infinite else [head.index]
        if stmt.orelse:
            normal_exit = self.seq(stmt.orelse, normal_exit)
        return normal_exit + break_targets

    def _for(self, stmt, frontier: List[int]) -> List[int]:
        head = self._stmt_node("for-iter", stmt.iter, stmt.lineno)
        self._link(frontier, head.index)
        break_targets: List[int] = []
        self.loops.append((break_targets, head.index))
        self.cleanups.append(_Cleanup("loop", -1))
        body_out = self.seq(stmt.body, [head.index])
        self._link(body_out, head.index)
        self.cleanups.pop()
        self.loops.pop()
        normal_exit = [head.index]
        if stmt.orelse:
            normal_exit = self.seq(stmt.orelse, normal_exit)
        return normal_exit + break_targets

    def _with(self, stmt, frontier: List[int]) -> List[int]:
        enter = self._stmt_node("with-enter", stmt.items, stmt.lineno)
        self._link(frontier, enter.index)
        # Two __exit__ nodes with the same release payload, so a fact that
        # arrived on an exception edge cannot re-enter the normal
        # continuation (and vice versa): ``wexit`` completes the block
        # normally, ``wunwind`` runs __exit__ while an exception keeps
        # unwinding to the outer targets.
        wexit = self._new("with-exit", stmt.items, stmt.lineno)
        wunwind = self._new("with-exit", stmt.items, stmt.lineno)
        outer = list(self.exc_targets[-1])
        self.exc_targets.append([wunwind.index])
        cleanup = _Cleanup("with", wexit.index)
        self.cleanups.append(cleanup)
        body_out = self.seq(stmt.body, [enter.index])
        self.cleanups.pop()
        self.exc_targets.pop()
        self._link(body_out, wexit.index)
        for target in outer:
            self._link([wunwind.index], target)
        for target in cleanup.pending:
            self._link([wexit.index], target)
        return [wexit.index]

    def _try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        outer = list(self.exc_targets[-1])
        handler_entries = []
        for handler in stmt.handlers:
            entry = self._new("except", handler.type, handler.lineno)
            handler_entries.append(entry)
        # The finally suite is lowered twice — one copy on the normal
        # (and abrupt-jump) continuation, one on the exception unwind —
        # so facts from the two path families stay separate.
        fin: Optional[_Cleanup] = None
        fin_unwind_entry: Optional[int] = None
        if stmt.finalbody:
            fin_entry = self._new("finally", None, stmt.finalbody[0].lineno)
            fin = _Cleanup("finally", fin_entry.index)
            unwind = self._new("finally", None, stmt.finalbody[0].lineno)
            fin_unwind_entry = unwind.index
        # A body exception may hit a handler, or (no handler matches)
        # unwind through the finally suite and escape.
        body_targets = [entry.index for entry in handler_entries]
        if fin_unwind_entry is not None:
            body_targets = body_targets + [fin_unwind_entry]
        else:
            body_targets = body_targets + outer
        if fin is not None:
            self.cleanups.append(fin)
        self.exc_targets.append(body_targets)
        body_out = self.seq(stmt.body, frontier)
        self.exc_targets.pop()
        if stmt.orelse:
            body_out = self.seq(stmt.orelse, body_out)
        handler_outs: List[int] = []
        handler_targets = ([fin_unwind_entry]
                           if fin_unwind_entry is not None else []) + outer
        self.exc_targets.append(handler_targets)
        for entry, handler in zip(handler_entries, stmt.handlers):
            handler_outs += self.seq(handler.body, [entry.index])
        self.exc_targets.pop()
        if fin is not None:
            self.cleanups.pop()
        after = body_out + handler_outs
        if fin is None:
            return after
        self._link(after, fin.entry)
        fin_out = self.seq(stmt.finalbody, [fin.entry])
        for target in fin.pending:
            self._link(fin_out, target)
        # The unwind copy: the suite runs, then the pending exception
        # continues to the outer targets.
        unwind_out = self.seq(stmt.finalbody, [fin_unwind_entry])
        for target in outer:
            self._link(unwind_out, target)
        return fin_out

    def build(self) -> CFG:
        frontier = self.seq(self.func.body, [self.entry.index])
        self._link(frontier, self.exit.index)
        return CFG(self.func, self.nodes, self.entry.index, self.exit.index,
                   self.raise_exit.index)


def build_cfg(func, may_raise: Optional[Callable[[object], bool]] = None) -> CFG:
    """Lower one ``ast.FunctionDef``/``AsyncFunctionDef`` to a CFG."""
    return _Builder(func, may_raise or default_may_raise).build()
