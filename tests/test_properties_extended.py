"""Property-based tests for the NOVA format, wire protocol and storage."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest.devices import make_default_platform
from repro.guest.vcpu import make_boot_vcpu
from repro.hypervisors.nova import formats as nova_formats
from repro.core import wire
from repro.storage.remote import BLOCK_SIZE, RemoteBlockStore


# -- NOVA snapshot roundtrips ---------------------------------------------------

@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=25)
def test_nova_snapshot_roundtrip_any_vcpu_count(vcpus, seed):
    states = [make_boot_vcpu(i, seed=seed) for i in range(vcpus)]
    platform = make_default_platform(
        vcpus, ioapic_pins=nova_formats.NOVA_IOAPIC_PINS, seed=seed,
    )
    blob = nova_formats.encode_snapshot(states, platform)
    decoded_vcpus, decoded_platform = nova_formats.decode_snapshot(blob)
    assert ([v.architectural_view() for v in decoded_vcpus]
            == [v.architectural_view() for v in states])
    assert decoded_platform.architectural_view() == platform.architectural_view()


# -- wire-protocol message fuzzing -----------------------------------------------

_hellos = st.builds(
    wire.Hello,
    vm_name=st.text(alphabet=st.characters(min_codepoint=33,
                                           max_codepoint=126),
                    min_size=1, max_size=32),
    source_hypervisor=st.sampled_from(["xen", "kvm", "nova"]),
    target_hypervisor=st.sampled_from(["xen", "kvm", "nova"]),
    vcpus=st.integers(min_value=1, max_value=128),
    memory_bytes=st.integers(min_value=4096, max_value=1 << 40),
    page_size=st.sampled_from([4096, 2 << 20]),
)

_rounds = st.builds(
    wire.RoundHeader,
    index=st.integers(min_value=0, max_value=10),
    page_count=st.integers(min_value=0, max_value=1 << 30),
)

_batches = st.builds(
    wire.PageBatch,
    pages=st.lists(
        st.tuples(st.integers(min_value=0, max_value=(1 << 48) - 1),
                  st.integers(min_value=0, max_value=(1 << 63) - 1)),
        max_size=64,
    ).map(tuple),
)

_payloads = st.builds(wire.UISRPayload, blob=st.binary(max_size=512))
_dones = st.builds(wire.Done,
                   final_digest=st.integers(min_value=0,
                                            max_value=(1 << 64) - 1))

_messages = st.one_of(_hellos, _rounds, _batches, _payloads, _dones)


@given(_messages)
@settings(max_examples=80)
def test_wire_message_roundtrip(message):
    frame = wire.encode_message(message)
    decoded, consumed = wire.decode_message(frame)
    assert decoded == message
    assert consumed == len(frame)


@given(st.lists(_messages, min_size=1, max_size=12))
@settings(max_examples=30)
def test_wire_stream_preserves_sequence(messages):
    stream = wire.MigrationStream()
    for message in messages:
        stream.send(message)
    assert list(stream.receive_all()) == messages


@given(st.lists(_messages, min_size=1, max_size=6), st.binary(max_size=16))
@settings(max_examples=30)
def test_wire_trailing_garbage_detected(messages, garbage):
    from repro.errors import MigrationError, StateFormatError

    stream = wire.MigrationStream()
    for message in messages:
        stream.send(message)
    stream._buffer.extend(garbage)
    try:
        decoded = list(stream.receive_all())
        # Either the garbage happened to parse as frames appended at the
        # end, or the prefix decoded intact; the real messages always come
        # through first, in order.
        assert decoded[:len(messages)] == messages
    # loud failure is the other acceptable outcome when fuzzing with garbage
    # repro-lint: disable=exception-hygiene
    except (StateFormatError, MigrationError):
        pass


# -- consistent end-to-end migration under random workloads -----------------------

@given(st.integers(min_value=0, max_value=2 ** 20),
       st.integers(min_value=1, max_value=96))
@settings(max_examples=10, deadline=None)
def test_migration_consistent_under_random_writes(seed, dirty_mb):
    import random

    from repro.guest.vm import VMConfig
    from repro.hw.machine import M1_SPEC, Machine
    from repro.hw.network import Fabric
    from repro.hypervisors import KVMHypervisor, XenHypervisor
    from repro.core.migration import MigrationTP

    source = Machine(M1_SPEC)
    xen = XenHypervisor()
    xen.boot(source)
    domain = xen.create_vm(VMConfig("fuzz", vcpus=1,
                                    memory_bytes=1 << 30, seed=seed))
    destination = Machine(M1_SPEC)
    KVMHypervisor().boot(destination)
    fabric = Fabric()
    fabric.connect(source, destination)
    report = MigrationTP(fabric, source, destination).migrate(
        domain, dirty_rate_bytes_s=dirty_mb << 20,
        guest_writes_rng=random.Random(seed),
    )
    assert report.guest_digest_preserved


# -- storage ------------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=255),
                          st.integers(min_value=0, max_value=(1 << 63) - 1)),
                max_size=100))
@settings(max_examples=30)
def test_volume_reads_see_last_write(writes):
    store = RemoteBlockStore()
    volume = store.create_volume("v", 256 * BLOCK_SIZE)
    shadow = {}
    for lba, digest in writes:
        volume.write_block(lba, digest)
        shadow[lba] = digest
    for lba, digest in shadow.items():
        assert volume.read_block(lba) == digest
    untouched = set(range(256)) - set(shadow)
    for lba in list(untouched)[:10]:
        assert volume.read_block(lba) == 0
