"""Xen credit scheduler — VM Management State.

The scheduler's run queues reference per-domain vCPU structures; the paper
classifies this as *VM Management State*: hypervisor-dependent but never
translated, because it can be rebuilt from the VM_i States after transplant
(Fig. 2).  We model exactly that: queues are derived data, and ``rebuild``
reconstructs them from the domain list.
"""

from dataclasses import dataclass, field
from typing import Dict, List

DEFAULT_WEIGHT = 256
DEFAULT_CAP = 0  # uncapped


@dataclass
class CreditVCPU:
    """Per-vCPU credit accounting entry."""

    domid: int
    vcpu_index: int
    credit: int = 300
    weight: int = DEFAULT_WEIGHT
    cap: int = DEFAULT_CAP


@dataclass
class CreditRunqueue:
    """One physical CPU's run queue."""

    pcpu: int
    entries: List[CreditVCPU] = field(default_factory=list)


class CreditScheduler:
    """Credit-scheduler queues over a machine's physical CPUs."""

    def __init__(self, pcpus: int):
        self.pcpus = max(1, pcpus)
        self.runqueues: List[CreditRunqueue] = [
            CreditRunqueue(p) for p in range(self.pcpus)
        ]
        self._weights: Dict[int, int] = {}

    def add_domain(self, domid: int, vcpus: int,
                   weight: int = DEFAULT_WEIGHT) -> None:
        self._weights[domid] = weight
        for index in range(vcpus):
            queue = self.runqueues[(domid + index) % self.pcpus]
            queue.entries.append(
                CreditVCPU(domid=domid, vcpu_index=index, weight=weight)
            )

    def remove_domain(self, domid: int) -> None:
        self._weights.pop(domid, None)
        for queue in self.runqueues:
            queue.entries = [e for e in queue.entries if e.domid != domid]

    def rebuild(self, domains) -> None:
        """Reconstruct all queues from scratch (post-transplant path)."""
        weights = dict(self._weights)
        self.runqueues = [CreditRunqueue(p) for p in range(self.pcpus)]
        self._weights = {}
        for domain in domains:
            self.add_domain(
                domain.domid,
                domain.vm.config.vcpus,
                weight=weights.get(domain.domid, DEFAULT_WEIGHT),
            )

    def queued_vcpus(self) -> int:
        return sum(len(q.entries) for q in self.runqueues)

    def report(self) -> Dict[str, object]:
        return {
            "scheduler": "credit",
            "pcpus": self.pcpus,
            "queued_vcpus": self.queued_vcpus(),
            "domains": sorted(self._weights),
        }
