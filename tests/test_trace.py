"""Tests for span tracing and chrome-trace export."""

import json

import pytest

from repro.errors import ReproError
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.sim.trace import Span, Trace, trace_inplace, trace_migration
from repro.bench.runner import make_host_pair, make_xen_host
from repro.core.migration import MigrationTP
from repro.core.transplant import HyperTP


class TestSpan:
    def test_duration(self):
        span = Span("x", "cat", 1.0, 3.5)
        assert span.duration_s == 2.5

    def test_backwards_span_rejected(self):
        with pytest.raises(ReproError):
            Span("x", "cat", 3.0, 1.0)


class TestTrace:
    def test_total_span(self):
        trace = Trace()
        trace.extend([Span("a", "c", 0.0, 1.0), Span("b", "c", 5.0, 7.0)])
        assert trace.total_span() == 7.0
        assert Trace().total_span() == 0.0

    def test_chrome_export_is_valid_json(self):
        trace = Trace()
        trace.add(Span("a", "c", 0.5, 1.0, args={"k": 1}))
        document = json.loads(trace.to_chrome_trace())
        event = document["traceEvents"][0]
        assert event["name"] == "a"
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(0.5e6)
        assert event["args"] == {"k": 1}


class TestReportTraces:
    def test_inplace_trace_matches_report(self):
        machine = make_xen_host(M1_SPEC, vm_count=1)
        report = HyperTP().inplace(machine, HypervisorKind.KVM, SimClock())
        trace = trace_inplace(report)
        by_name = {s.name: s for s in trace.spans}
        assert by_name["PRAM"].duration_s == pytest.approx(report.pram_s)
        assert by_name["Reboot"].duration_s == pytest.approx(report.reboot_s)
        # The guests-paused span covers exactly the downtime.
        assert by_name["VMs paused"].duration_s == pytest.approx(
            report.downtime_s
        )
        # Phases are contiguous: translation starts when PRAM ends.
        assert by_name["Translation"].start_s == pytest.approx(
            by_name["PRAM"].end_s
        )
        json.loads(trace.to_chrome_trace())  # exports cleanly

    def test_migration_trace_rounds(self):
        source, destination, fabric = make_host_pair(
            M1_SPEC, HypervisorKind.KVM,
        )
        domain = next(iter(source.hypervisor.domains.values()))
        report = MigrationTP(fabric, source, destination).migrate(
            domain, dirty_rate_bytes_s=48 << 20,
        )
        trace = trace_migration(report)
        round_spans = [s for s in trace.spans if s.category == "precopy"]
        assert len(round_spans) == report.round_count
        stop = next(s for s in trace.spans if s.name == "stop-and-copy")
        assert stop.duration_s == pytest.approx(report.downtime_s)
        assert stop.start_s == pytest.approx(
            sum(r.duration_s for r in report.rounds)
        )
