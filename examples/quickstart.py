#!/usr/bin/env python3
"""Quickstart: transplant one host from Xen to KVM and back.

Builds a simulated M1 machine running Xen with two guests, runs an
InPlaceTP to KVM (the paper's fast direction: ~1.7 s of downtime for a
small VM), verifies the guests survived bit-identically, and transplants
back to Xen once the "patch" ships.
"""

from repro import (
    HyperTP,
    HypervisorKind,
    M1_SPEC,
    Machine,
    SimClock,
    VMConfig,
    XenHypervisor,
)
from repro.core.memsep import transplant_work_summary

GIB = 1024 ** 3


def main():
    # A physical machine with Xen and two small guests.
    machine = Machine(M1_SPEC, name="demo-host")
    xen = XenHypervisor()
    xen.boot(machine)
    xen.create_vm(VMConfig("web", vcpus=1, memory_bytes=GIB))
    xen.create_vm(VMConfig("db", vcpus=2, memory_bytes=2 * GIB))
    digests = {d.vm.name: d.vm.image.content_digest()
               for d in xen.domains.values()}

    print("Memory separation on the Xen host (Fig. 2):")
    for line in transplant_work_summary(xen):
        print("  " + line)

    # Transplant to KVM.
    hypertp = HyperTP()
    clock = SimClock()
    report = hypertp.inplace(machine, HypervisorKind.KVM, clock)

    print(f"\nInPlaceTP Xen->KVM on {report.machine}:")
    for phase, seconds in report.phase_breakdown.items():
        print(f"  {phase:>12}: {seconds:6.3f} s")
    print(f"  {'downtime':>12}: {report.downtime_s:6.3f} s "
          f"(paper: ~1.7 s for 1 vCPU / 1 GB)")
    print(f"  PRAM metadata: {report.pram_metadata_bytes / 1024:.0f} KiB, "
          f"UISR: {report.uisr_bytes / 1024:.1f} KiB")

    survived = all(
        d.vm.image.content_digest() == digests[d.vm.name]
        for d in machine.hypervisor.domains.values()
    )
    print(f"  guests bit-identical: {survived}")

    # The patch shipped — go back.
    back = hypertp.inplace(machine, HypervisorKind.XEN, clock)
    print(f"\nInPlaceTP KVM->Xen (two kernels to boot): "
          f"downtime {back.downtime_s:.2f} s (paper: ~7.8 s)")
    print(f"Simulated elapsed time overall: {clock.now:.1f} s")


if __name__ == "__main__":
    main()
